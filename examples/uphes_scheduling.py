"""Optimal daily scheduling of the UPHES plant — the paper's application.

Optimizes the 12 market decisions (8 day-ahead energy blocks + 4
upward-reserve blocks) of the synthetic Maizeret-like plant with the
paper's best-performing configuration for this problem: mic-q-EGO at
n_batch = 4. Then inspects the winning schedule hour by hour.

Run with::

    python examples/uphes_scheduling.py
"""

import numpy as np

from repro import UPHESSimulator, optimize


def bar(value: float, scale: float = 1.0, width: int = 20) -> str:
    n = int(round(abs(value) * scale))
    return ("#" * min(n, width)).ljust(width)


def main() -> None:
    simulator = UPHESSimulator(seed=0, sim_time=10.0)

    result = optimize(
        simulator,
        algorithm="mic-q-ego",
        n_batch=4,
        budget=300.0,
        seed=1,
        time_scale=1.0,
    )

    print("UPHES daily scheduling (mic-q-EGO, n_batch=4)")
    print(f"  initial-design best profit : {result.initial_best:9.0f} EUR")
    print(f"  optimized expected profit  : {result.best_value:9.0f} EUR")
    print(f"  cycles / simulations       : {result.n_cycles} / "
          f"{result.n_simulations}")

    x = result.best_x
    print("\nDecision vector")
    print("  energy blocks [MW, + sell / - buy]:",
          np.round(x[:8], 2).tolist())
    print("  reserve offers [MW]              :",
          np.round(x[8:], 2).tolist())

    trace = simulator.simulate_detailed(x)
    print("\nProfit breakdown [EUR]:")
    for key, value in trace.breakdown.items():
        print(f"  {key:24s} {value:10.1f}")

    print("\nHour  price   committed  delivered  head[m]  upper fill")
    steps_per_hour = int(round(1.0 / simulator.config.dt_hours))
    for h in range(0, 24, 2):
        t = h * steps_per_hour
        fill = trace.upper_volume[t] / simulator.config.upper.v_max
        print(
            f"{h:4d}  {trace.energy_price[t]:5.1f}  "
            f"{trace.committed_power[t]:9.2f}  "
            f"{trace.delivered_power[t]:9.2f}  "
            f"{trace.head[t]:7.1f}  {bar(fill, 10):s} {fill:4.0%}"
        )

    # The defining arbitrage shape: the plant should buy cheap energy
    # (pump) and sell expensive energy (turbine) on average.
    committed = trace.committed_power
    prices = trace.energy_price
    buy_price = prices[committed < 0].mean() if np.any(committed < 0) else 0
    sell_price = prices[committed > 0].mean() if np.any(committed > 0) else 0
    if buy_price and sell_price:
        print(f"\naverage buy price  : {buy_price:5.1f} EUR/MWh")
        print(f"average sell price : {sell_price:5.1f} EUR/MWh")


if __name__ == "__main__":
    main()
