"""Ask/tell service demo: in-process server, four threaded workers.

The paper's deployment is a master proposing batches and a cluster of
workers each owning one 10 s UPHES simulation. This example runs that
shape end to end on one machine, over real HTTP:

1. start an in-process :class:`repro.service.ServiceServer` on an
   ephemeral port;
2. create a session optimizing Ackley-12 with TuRBO;
3. run four worker threads, each looping pull-ask -> evaluate -> post
   tell through the stdlib HTTP client — the same loop ``repro worker``
   runs as a separate process;
4. print the best-so-far trajectory and the engine's counters.

Usage::

    python examples/ask_tell_service.py [evals_per_worker]
"""

import sys
import threading

from repro.service import ServiceClient, ServiceServer, SessionManager, run_worker

N_WORKERS = 4


def main(evals_per_worker: int = 10) -> None:
    manager = SessionManager(store_dir=None)  # memory-only for the demo
    with ServiceServer(manager) as server:
        client = ServiceClient(server.url)
        client.create_session(
            "demo",
            problem="ackley",
            dim=12,
            algorithm="turbo",
            n_batch=N_WORKERS,
            seed=0,
            n_initial=16,
            ask_timeout=120.0,
            max_pending=4 * N_WORKERS,
        )
        print(f"server up at {server.url}; "
              f"{N_WORKERS} workers x {evals_per_worker} evaluations")

        stats = [None] * N_WORKERS

        def work(i: int) -> None:
            stats[i] = run_worker(
                server.url, "demo",
                max_evals=evals_per_worker, backoff_s=0.05,
            )

        threads = [
            threading.Thread(target=work, args=(i,)) for i in range(N_WORKERS)
        ]
        for t in threads:
            t.start()

        # Watch the incumbent while the fleet works.
        last_best = None
        while any(t.is_alive() for t in threads):
            for t in threads:
                t.join(timeout=0.5)
            status = client.session_status("demo")
            best = status["best_value"]
            if best is not None and best != last_best:
                print(f"  told={status['counters']['tells']:3d}  "
                      f"best so far {best:.4f}")
                last_best = best

        status = client.session_status("demo")
        counters = status["counters"]
        print(f"\ninitial best : {status['initial_best']:.4f}")
        print(f"final best   : {status['best_value']:.4f}")
        print(f"evaluations  : {counters['tells']} told over "
              f"{counters['proposals']} proposals "
              f"({sum(s.n_asked for s in stats)} asks, "
              f"{counters['requeues']} requeues)")
        assert status["n_pending"] == 0, "no ticket may be left behind"
        assert status["best_value"] <= status["initial_best"], (
            "BO must not lose to its own initial design"
        )


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 10)
