"""Quickstart: parallel Bayesian optimization of a benchmark function.

Reproduces the paper's basic setting in one call: a 12-dimensional
Ackley function whose evaluations cost 10 (virtual) seconds, optimized
by TuRBO with a batch of 4 parallel workers under a 5-minute budget.

Run with::

    python examples/quickstart.py
"""

from repro import get_benchmark, optimize


def main() -> None:
    # An expensive black box: every evaluation costs 10 virtual seconds.
    problem = get_benchmark("ackley", dim=12, sim_time=10.0)

    # Five-minute budget, batch of 4 (i.e. 4 parallel workers), the
    # paper's TuRBO configuration. time_scale charges our measured
    # fit/acquisition time against the same virtual clock.
    result = optimize(
        problem,
        algorithm="turbo",
        n_batch=4,
        budget=300.0,
        seed=0,
        time_scale=1.0,
    )

    print(f"problem          : {result.problem} (d={problem.dim})")
    print(f"algorithm        : {result.algorithm}, n_batch={result.n_batch}")
    print(f"initial design   : {result.n_initial} points, "
          f"best {result.initial_best:.3f}")
    print(f"budgeted cycles  : {result.n_cycles} "
          f"({result.n_simulations} simulations)")
    print(f"virtual elapsed  : {result.elapsed:.0f} s "
          f"(budget {result.budget:.0f} s)")
    print(f"final best value : {result.best_value:.4f} "
          f"(optimum {problem.optimum:g})")
    print(f"best point       : {result.best_x.round(3)}")

    print("\ncycle  t_start  fit[s]  acq[s]  best")
    for rec in result.history[:: max(1, len(result.history) // 10)]:
        print(
            f"{rec.cycle:5d}  {rec.t_start:7.1f}  {rec.fit_time:6.3f}  "
            f"{rec.acq_time:6.3f}  {rec.best_value:8.3f}"
        )

    assert result.best_value < result.initial_best, "BO must add value"


if __name__ == "__main__":
    main()
