"""A tour of the UPHES plant physics (the paper's Figure 1 + §2.1).

No optimization here — this walks through the simulator substrate:
the plant topology, the head-dependent operating envelopes with their
forbidden zones, the non-convex hill curves, groundwater exchange, and
a hand-made schedule's full day of operation.

Run with::

    python examples/uphes_plant_tour.py
"""

import numpy as np

from repro.experiments.figures import figure_1_description
from repro.uphes import UPHESSimulator


def main() -> None:
    print(figure_1_description())

    sim = UPHESSimulator(seed=0, sim_time=0.0)
    machine = sim.machine
    cfg = sim.config

    print("\n== Head-dependent operating envelopes (the forbidden zones) ==")
    print("head[m]   turbine window [MW]    pump window [MW]")
    for head in (60.0, 70.0, 80.0, 90.0, 100.0, 110.0, 120.0):
        t_min, t_max = machine.turbine_limits(head)
        p_min, p_max = machine.pump_limits(head)
        t_win = "unavailable " if t_max == 0 else f"[{t_min:4.2f}, {t_max:4.2f}]"
        p_win = "unavailable " if p_max == 0 else f"[{p_min:4.2f}, {p_max:4.2f}]"
        print(f"{head:7.0f}   {t_win:>14s}        {p_win:>14s}")

    print("\n== Hill curve: turbine efficiency vs power at three heads ==")
    powers = np.linspace(4.0, 8.0, 9)
    print("P[MW]   " + "  ".join(f"{p:5.1f}" for p in powers))
    for head in (75.0, 90.0, 105.0):
        eta = machine.turbine_efficiency(powers, head)
        print(f"H={head:3.0f}m " + "  ".join(f"{e:5.3f}" for e in eta))

    print("\n== Groundwater exchange with the mine surroundings ==")
    for level in (-95.0, -85.0, -80.0, -75.0):
        flow = sim.groundwater.flow(level)
        direction = "into the pit" if flow > 0 else (
            "out of the pit" if flow < 0 else "equilibrium")
        print(f"pit level {level:6.1f} m -> {flow:+7.3f} m3/s ({direction})")

    print("\n== A hand-made arbitrage day ==")
    x = np.zeros(12)
    x[0] = x[1] = -7.5  # pump through the night valley (00:00-06:00)
    x[5] = 5.5          # generate into the evening ramp (15:00-18:00)
    x[6] = 7.5          # generate through the peak (18:00-21:00)
    x[10] = 1.0         # offer 1 MW of reserve 12:00-18:00
    trace = sim.simulate_detailed(x)
    print(f"expected profit: {trace.profit:8.1f} EUR")
    for key, value in trace.breakdown.items():
        print(f"  {key:24s} {value:10.1f}")

    print("\nupper-basin fill over the day "
          "(one char per 1.5 h, #=10% of capacity):")
    marks = []
    for t in range(0, cfg.n_steps, 6):
        fill = trace.upper_volume[t] / cfg.upper.v_max
        marks.append(str(int(fill * 10)))
    print("  hour 0 " + "".join(marks) + " hour 24")

    print("\n== Why random vectors lose money ==")
    rng = np.random.default_rng(0)
    X = rng.uniform(sim.lower, sim.upper, (1000, 12))
    y = sim(X)
    print(f"1000 random schedules: best {y.max():8.1f} EUR, "
          f"mean {y.mean():9.1f} EUR")
    print("  (most commitments land in a forbidden zone or cannot be")
    print("   backed by water — penalties dominate; see paper §4)")


if __name__ == "__main__":
    main()
