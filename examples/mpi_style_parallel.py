"""Master–worker batch evaluation, the paper's MPI4Py layout.

The paper parallelizes simulator calls with MPI4Py: rank 0 runs the BO
loop, worker ranks evaluate candidates. This example runs the same
layout on the in-process communicator — a KB-q-EGO loop whose batches
are evaluated by a pool of worker "ranks" — and cross-checks the result
against a serial run.

Run with::

    python examples/mpi_style_parallel.py
"""

import numpy as np

from repro.core import KBqEGO
from repro.doe import latin_hypercube
from repro.parallel import MasterWorkerEvaluator
from repro.problems import get_benchmark


def main() -> None:
    n_batch = 4
    problem = get_benchmark("rosenbrock", dim=6)
    X0 = latin_hypercube(24, problem.bounds, seed=0)

    with MasterWorkerEvaluator(problem, n_workers=n_batch) as workers:
        optimizer = KBqEGO(
            problem,
            n_batch,
            seed=0,
            acq_options={"n_restarts": 3, "raw_samples": 64, "maxiter": 25},
            gp_options={"n_restarts": 0, "maxiter": 30},
        )
        optimizer.initialize(X0, workers.evaluate(X0))

        print(f"master rank driving {n_batch} worker ranks")
        print(f"initial best: {optimizer.best_f:12.2f}")
        for cycle in range(8):
            proposal = optimizer.propose()
            y = workers.evaluate(proposal.X)  # scattered to the workers
            optimizer.update(proposal.X, y)
            print(
                f"cycle {cycle + 1}: batch of {len(y)} evaluated in "
                f"parallel -> best {optimizer.best_f:12.2f}"
            )

    # Cross-check: the worker pool computes exactly the serial values.
    probe = latin_hypercube(8, problem.bounds, seed=1)
    with MasterWorkerEvaluator(problem, n_workers=3) as workers:
        np.testing.assert_allclose(workers.evaluate(probe), problem(probe))
    print("\nworker-pool results match serial evaluation — OK")


if __name__ == "__main__":
    main()
