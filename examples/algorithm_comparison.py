"""League table: every acquisition process on the UPHES problem.

Runs the paper's five algorithms plus this repository's extensions
(mic-TuRBO — the combination the paper proposes as future work — and
LP-EGO, local penalization) under an identical small budget and initial
design, and prints a league table with timing breakdowns.

Run with::

    python examples/algorithm_comparison.py [budget_s]
"""

import sys

from repro import UPHESSimulator
from repro.core import make_optimizer, run_optimization
from repro.doe import latin_hypercube

ALGORITHMS = (
    "KB-q-EGO",
    "mic-q-EGO",
    "MC-based q-EGO",
    "BSP-EGO",
    "TuRBO",
    "mic-TuRBO",
    "LP-EGO",
    "Random",
)


def main(budget: float = 240.0, n_batch: int = 4, seed: int = 0) -> None:
    simulator = UPHESSimulator(seed=0, sim_time=10.0)
    X0 = latin_hypercube(16 * n_batch, simulator.bounds, seed=seed)

    print(
        f"UPHES scheduling, n_batch={n_batch}, budget={budget:.0f} virtual s, "
        f"shared initial design of {len(X0)} points\n"
    )
    print(f"{'algorithm':>16s}  {'profit':>8s}  {'cycles':>6s}  "
          f"{'sims':>5s}  {'fit[s]':>7s}  {'acq[s]':>7s}")

    rows = []
    for name in ALGORITHMS:
        optimizer = make_optimizer(name, simulator, n_batch, seed=seed)
        result = run_optimization(
            simulator, optimizer, budget,
            initial_design=X0, time_scale=15.0, seed=seed,
        )
        fit_total = sum(r.fit_time for r in result.history)
        acq_total = sum(r.acq_time for r in result.history)
        rows.append((result.best_value, name))
        print(
            f"{name:>16s}  {result.best_value:8.0f}  {result.n_cycles:6d}  "
            f"{result.n_simulations:5d}  {fit_total:7.2f}  {acq_total:7.2f}"
        )

    # The asynchronous steady-state scheme under the same budget:
    # no batch barrier, one dispatch per freed worker.
    from repro.core import run_async_optimization

    async_result = run_async_optimization(
        simulator, n_batch, budget, n_initial=len(X0), seed=seed,
        time_scale=15.0,
    )
    rows.append((async_result.best_value, "async-EI"))
    print(
        f"{'async-EI':>16s}  {async_result.best_value:8.0f}  {'—':>6s}  "
        f"{async_result.n_simulations:5d}  {'—':>7s}  "
        f"{sum(r.acq_time for r in async_result.history):7.2f}"
    )

    rows.sort(reverse=True)
    print(f"\nwinner: {rows[0][1]} ({rows[0][0]:.0f} EUR); "
          f"random-search baseline: "
          f"{next(v for v, n in rows if n == 'Random'):.0f} EUR")


if __name__ == "__main__":
    main(float(sys.argv[1]) if len(sys.argv) > 1 else 240.0)
