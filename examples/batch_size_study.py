"""The breaking point: a miniature of the paper's batch-size study.

Runs one algorithm across batch sizes under a fixed virtual wall-clock
budget and shows the paper's central finding: beyond a moderate batch
size, the growing surrogate/acquisition overhead eats the cycle count
and larger batches stop paying off.

Run with::

    python examples/batch_size_study.py [algorithm] [budget_s]
"""

import sys

from repro import get_benchmark, optimize


def main(algorithm: str = "turbo", budget: float = 240.0) -> None:
    problem = get_benchmark("ackley", dim=12, sim_time=10.0)
    print(
        f"{algorithm} on {problem.name} (d=12, sim=10 s, "
        f"budget={budget:.0f} s virtual, overhead charged at 15x)\n"
    )
    print("n_batch  cycles  simulations  sims/worker  final best")
    rows = []
    for q in (1, 2, 4, 8, 16):
        result = optimize(
            problem,
            algorithm=algorithm,
            n_batch=q,
            budget=budget,
            seed=0,
            time_scale=15.0,  # laptop overheads scaled to paper regime
        )
        rows.append((q, result))
        print(
            f"{q:7d}  {result.n_cycles:6d}  {result.n_simulations:11d}  "
            f"{result.n_simulations / q:11.1f}  {result.best_value:10.3f}"
        )

    sims = {q: r.n_simulations for q, r in rows}
    print(
        "\nPer-worker productivity falls with the batch size — the "
        "sequential\nfit/acquisition share grows with both q and the "
        "data set (paper §3)."
    )
    q_last, q_prev = 16, 8
    ratio = sims[q_last] / max(sims[q_prev], 1)
    print(
        f"Doubling {q_prev} -> {q_last} workers multiplied simulations by "
        f"{ratio:.2f}x (ideal: 2.0x) — the breaking point."
    )


if __name__ == "__main__":
    algo = sys.argv[1] if len(sys.argv) > 1 else "turbo"
    budget = float(sys.argv[2]) if len(sys.argv) > 2 else 240.0
    main(algo, budget)
