"""Rolling-horizon operation: re-optimizing the plant day after day.

Real UPHES operators solve the paper's problem every day, carrying the
reservoir state (and the groundwater's overnight drift) from one day to
the next. This example chains three daily optimizations: each day the
scheduler re-optimizes under the current reservoir fills, the winning
schedule is "executed" through the detailed simulator, and the final
volumes seed the next day's problem.

Run with::

    python examples/rolling_horizon.py
"""

from dataclasses import replace

import numpy as np

from repro import optimize
from repro.uphes import UPHESConfig, UPHESSimulator

N_DAYS = 3


def main() -> None:
    config = UPHESConfig()
    upper_fill, lower_fill = config.upper_fill0, config.lower_fill0

    total_profit = 0.0
    print("day  up-fill  low-fill  optimized profit  head range [m]")
    for day in range(N_DAYS):
        day_config = replace(
            config, upper_fill0=upper_fill, lower_fill0=lower_fill
        )
        # A new scenario seed per day: tomorrow's prices are a fresh
        # draw from the same market model.
        simulator = UPHESSimulator(day_config, seed=100 + day, sim_time=10.0)

        result = optimize(
            simulator,
            algorithm="turbo",
            n_batch=4,
            budget=420.0,
            seed=day,
            time_scale=10.0,
        )
        trace = simulator.simulate_detailed(result.best_x)
        total_profit += trace.profit

        print(
            f"{day + 1:3d}  {upper_fill:7.0%}  {lower_fill:8.0%}  "
            f"{trace.profit:16.0f}  "
            f"[{trace.head.min():5.1f}, {trace.head.max():5.1f}]"
        )

        # Carry the end-of-day reservoir state into tomorrow.
        upper_fill = float(
            np.clip(trace.upper_volume[-1] / day_config.upper.v_max, 0.0, 1.0)
        )
        lower_fill = float(
            np.clip(trace.lower_volume[-1] / day_config.lower.v_max, 0.0, 1.0)
        )

    print(f"\n{N_DAYS}-day cumulative expected profit: {total_profit:.0f} EUR")
    print("(reservoir state and groundwater drift carried across days)")


if __name__ == "__main__":
    main()
