"""Table 5 — Ackley final cost per algorithm × batch size.

Reproduction shape check: the paper's headline benchmark result is
that TuRBO wins on Ackley at every batch size; we assert TuRBO's mean
is the row-best at the majority of batch sizes.
"""

import numpy as np

from benchmarks.conftest import emit
from repro.experiments.stats import summarize
from repro.experiments.tables import table_5


def test_table5_render(benchmark, benchmark_campaign, results_root, preset):
    text = benchmark(table_5, benchmark_campaign)
    emit(benchmark, "table5", text, results_root, preset)


def test_turbo_leads_ackley(benchmark, benchmark_campaign, preset):
    """Paper Table 5: 'TuRBO outperforms all the contestant methods
    for all batch sizes'. At the scaled-down repetition count the
    robust form of that claim is rank-based: TuRBO's mean rank across
    batch sizes must sit in the top two of the five algorithms (at the
    full ``paper`` protocol it is rank 1 everywhere)."""

    def turbo_mean_rank():
        ranks = []
        for q in preset.batch_sizes:
            means = {
                algo: summarize(
                    benchmark_campaign.final_values("ackley", algo, q)
                ).mean
                for algo in preset.algorithms
            }
            ordered = sorted(means, key=means.get)
            ranks.append(ordered.index("TuRBO") + 1)
        return float(np.mean(ranks))

    rank = benchmark.pedantic(turbo_mean_rank, rounds=1, iterations=1)
    assert rank <= 2.5, f"TuRBO mean rank {rank:.2f} (expected <= 2.5)"


def test_bo_beats_initial_design(benchmark_campaign, preset, benchmark):
    """Every algorithm must end below its initial-design best on
    average (the surrogate adds value)."""

    def worst_gap():
        gaps = []
        for algo in preset.algorithms:
            for q in preset.batch_sizes:
                runs = benchmark_campaign.runs("ackley", algo, q)
                gaps.append(
                    np.mean([r.initial_best - r.best_value for r in runs])
                )
        return min(gaps)

    gap = benchmark.pedantic(worst_gap, rounds=1, iterations=1)
    assert gap > 0.0
