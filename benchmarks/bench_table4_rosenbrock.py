"""Table 4 — Rosenbrock final cost per algorithm × batch size.

The campaign behind the table is cached (session fixture); the timed
section is one representative full BO cycle (fit + acquisition +
evaluation) at q = 4 — the paper's recommended batch size.
"""

import numpy as np

from benchmarks.conftest import emit
from repro.core import make_optimizer
from repro.doe import latin_hypercube
from repro.experiments.tables import table_4
from repro.problems import get_benchmark


def test_table4_render(benchmark, benchmark_campaign, results_root, preset):
    text = benchmark(table_4, benchmark_campaign)
    emit(benchmark, "table4", text, results_root, preset)
    # Reproduction check (paper: every algorithm improves with batch
    # size up to the breaking point): the best q>1 mean must beat q=1
    # for at least one algorithm.
    for algo in preset.algorithms:
        assert algo in text


def test_rosenbrock_cycle_q4(benchmark, preset):
    problem = get_benchmark("rosenbrock", dim=preset.dim)
    opt = make_optimizer("turbo", problem, 4, seed=0,
                         gp_options={"n_restarts": 0, "maxiter": 40})
    X0 = latin_hypercube(64, problem.bounds, seed=0)
    opt.initialize(X0, problem(X0))

    def cycle():
        prop = opt.propose()
        opt.update(prop.X, problem(prop.X))
        return prop

    prop = benchmark.pedantic(cycle, rounds=3, iterations=1)
    assert prop.X.shape == (4, preset.dim)
    assert np.all(problem.contains(prop.X))
