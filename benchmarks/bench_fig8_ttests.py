"""Figure 8 — pairwise Student's t-test p-value heat maps.

One matrix per batch size on the UPHES outcomes, exactly the paper's
statistical comparison. Structural checks: symmetry, unit diagonal,
values in [0, 1].
"""

import numpy as np
import pytest

from benchmarks.conftest import emit
from repro.experiments.figures import figure_8


@pytest.mark.parametrize("q", [1, 2, 4, 8, 16])
def test_figure8_render(benchmark, uphes_campaign, results_root, preset, q):
    if q not in preset.batch_sizes:
        pytest.skip(f"preset lacks n_batch={q}")
    data, text = benchmark(figure_8, uphes_campaign, q)
    emit(benchmark, f"figure8_q{q}", text, results_root, preset)
    p = np.asarray(data["p"])
    k = len(preset.algorithms)
    assert p.shape == (k, k)
    np.testing.assert_allclose(p, p.T)
    np.testing.assert_array_equal(np.diag(p), 1.0)
    assert np.all(p >= 0.0) and np.all(p <= 1.0)
