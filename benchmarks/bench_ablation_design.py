"""Ablation benches for the design choices DESIGN.md §6 calls out.

These are not paper tables; they quantify the choices the paper's
algorithms embed, on small live runs:

- fantasy (rank-1 Cholesky) updates vs full refits in the KB loop;
- mic-q-EGO's criterion pair (EI+UCB) vs EI-only fantasies;
- BSP-EGO's region multiplier (1× / 2× / 4× regions per worker);
- TuRBO's acquisition inside the trust region: qEI vs Thompson.
"""

import time

import numpy as np
import pytest

from repro.core import BSPEGO, KBqEGO, MicQEGO, TuRBO, run_optimization
from repro.doe import latin_hypercube
from repro.gp import GaussianProcess
from repro.problems import get_benchmark

FAST = {
    "acq_options": {"n_restarts": 2, "raw_samples": 64, "maxiter": 25,
                    "n_mc": 64},
    "gp_options": {"n_restarts": 0, "maxiter": 30},
}


@pytest.fixture(scope="module")
def training_data():
    problem = get_benchmark("ackley", dim=12)
    X = latin_hypercube(128, problem.bounds, seed=0)
    return problem, X, problem(X)


class TestFantasyVsRefit:
    def test_fantasy_update(self, benchmark, training_data):
        problem, X, y = training_data
        gp = GaussianProcess(dim=12, input_bounds=problem.bounds)
        gp.fit(X, y, n_restarts=0, maxiter=30, seed=0)
        x_new = latin_hypercube(1, problem.bounds, seed=1)
        benchmark(gp.fantasize, x_new)

    def test_full_refit(self, benchmark, training_data):
        problem, X, y = training_data
        gp = GaussianProcess(dim=12, input_bounds=problem.bounds)
        gp.fit(X, y, n_restarts=0, maxiter=30, seed=0)
        x_new = latin_hypercube(1, problem.bounds, seed=1)
        y_new = gp.predict(x_new, return_std=False)
        X_aug = np.vstack([X, x_new])
        y_aug = np.concatenate([y, y_new])

        def refit():
            g = GaussianProcess(dim=12, input_bounds=problem.bounds)
            g.fit(X_aug, y_aug, n_restarts=0, maxiter=30, seed=0)

        benchmark(refit)

    def test_fantasy_is_much_cheaper(self, training_data):
        problem, X, y = training_data
        gp = GaussianProcess(dim=12, input_bounds=problem.bounds)
        gp.fit(X, y, n_restarts=0, maxiter=30, seed=0)
        x_new = latin_hypercube(1, problem.bounds, seed=1)

        t0 = time.perf_counter()
        for _ in range(10):
            gp.fantasize(x_new)
        t_fant = (time.perf_counter() - t0) / 10

        t0 = time.perf_counter()
        GaussianProcess(dim=12, input_bounds=problem.bounds).fit(
            X, y, n_restarts=0, maxiter=30, seed=0
        )
        t_refit = time.perf_counter() - t0
        assert t_fant * 3 < t_refit, (
            f"fantasy {t_fant:.4f}s not clearly cheaper than refit "
            f"{t_refit:.4f}s"
        )


def _short_run(opt_cls, problem, q=4, budget=100.0, seed=0, **kwargs):
    opt = opt_cls(problem, q, seed=seed, **FAST, **kwargs)
    return run_optimization(problem, opt, budget, time_scale=0.0, seed=seed)


class TestMicCriteria:
    def test_mic_run(self, benchmark):
        problem = get_benchmark("ackley", dim=12, sim_time=10.0)
        res = benchmark.pedantic(
            _short_run, args=(MicQEGO, problem), rounds=1, iterations=1
        )
        assert res.best_value < res.initial_best

    def test_kb_run(self, benchmark):
        problem = get_benchmark("ackley", dim=12, sim_time=10.0)
        res = benchmark.pedantic(
            _short_run, args=(KBqEGO, problem), rounds=1, iterations=1
        )
        assert res.best_value < res.initial_best


class TestBSPRegions:
    @pytest.mark.parametrize("rpw", [1, 2, 4])
    def test_region_multiplier(self, benchmark, rpw):
        problem = get_benchmark("ackley", dim=12, sim_time=10.0)
        res = benchmark.pedantic(
            _short_run, args=(BSPEGO, problem), rounds=1, iterations=1,
            kwargs={"regions_per_worker": rpw},
        )
        assert res.best_value < res.initial_best


class TestTuRBOAcquisition:
    @pytest.mark.parametrize("acq", ["qei", "thompson"])
    def test_tr_acquisition_variant(self, benchmark, acq):
        problem = get_benchmark("ackley", dim=12, sim_time=10.0)
        res = benchmark.pedantic(
            _short_run, args=(TuRBO, problem), rounds=1, iterations=1,
            kwargs={"acquisition": acq},
        )
        assert res.best_value < res.initial_best
