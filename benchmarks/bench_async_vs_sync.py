"""Ablation: batch-synchronous vs asynchronous parallel BO.

The paper's breaking point is partly a *synchronization* artefact: all
q workers idle while the master fits and acquires. The steady-state
asynchronous scheme overlaps selection with simulation. This bench runs
both under the same virtual budget and worker count and checks the
async scheme's throughput advantage (simulations completed) at a large
worker count — the regime where the paper's algorithms saturate.
"""

import pytest

from repro.core import KBqEGO, run_optimization
from repro.core.async_driver import run_async_optimization
from repro.problems import get_benchmark

FAST_GP = {"n_restarts": 0, "maxiter": 25}
FAST_ACQ = {"n_restarts": 2, "raw_samples": 64, "maxiter": 25, "n_mc": 64}
BUDGET = 150.0
WORKERS = 8


def _sync():
    problem = get_benchmark("ackley", dim=12, sim_time=10.0)
    opt = KBqEGO(problem, WORKERS, seed=0, gp_options=FAST_GP,
                 acq_options=FAST_ACQ)
    return run_optimization(problem, opt, BUDGET, n_initial=32,
                            time_scale=1.0, seed=0)


def _async():
    problem = get_benchmark("ackley", dim=12, sim_time=10.0)
    return run_async_optimization(
        problem, WORKERS, BUDGET, n_initial=32, time_scale=1.0, seed=0,
        gp_options=FAST_GP,
        acq_options={k: v for k, v in FAST_ACQ.items() if k != "n_mc"},
    )


def test_sync_baseline(benchmark):
    res = benchmark.pedantic(_sync, rounds=1, iterations=1)
    assert res.best_value < res.initial_best


def test_async_variant(benchmark):
    res = benchmark.pedantic(_async, rounds=1, iterations=1)
    assert res.best_value < res.initial_best


def test_async_throughput_advantage(benchmark):
    """Same budget, same workers: the asynchronous scheme completes at
    least as many simulations (usually clearly more, since workers
    never wait for the slowest batch member or the master)."""

    def compare():
        return _async().n_simulations, _sync().n_simulations

    n_async, n_sync = benchmark.pedantic(compare, rounds=1, iterations=1)
    assert n_async >= n_sync, (n_async, n_sync)
