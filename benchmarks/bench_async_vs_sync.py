"""Ablation: batch-synchronous vs asynchronous parallel BO.

The paper's breaking point is partly a *synchronization* artefact: all
q workers idle while the master fits and acquires. The steady-state
asynchronous scheme overlaps selection with simulation. This bench runs
both under the same virtual budget and worker count and checks the
async scheme's throughput advantage (simulations completed) at a large
worker count — the regime where the paper's algorithms saturate.

Both drivers report per-worker busy/idle shares on the virtual
timeline (the PR-4 cluster accounting): the async driver carries them
on :class:`~repro.core.async_driver.AsyncResult` directly, while the
synchronous driver exposes them as ``cluster.busy_virtual_s`` /
``cluster.idle_virtual_s`` metrics counters, read here through a
temporary :class:`~repro.obs.MetricsRegistry`.
"""

from repro.core import KBqEGO, run_optimization
from repro.core.async_driver import run_async_optimization
from repro.obs import MetricsRegistry, set_metrics
from repro.problems import get_benchmark

FAST_GP = {"n_restarts": 0, "maxiter": 25}
FAST_ACQ = {"n_restarts": 2, "raw_samples": 64, "maxiter": 25, "n_mc": 64}
BUDGET = 150.0
WORKERS = 8


def _sync():
    """Synchronous run plus its (busy_share, idle_share) tuple."""
    problem = get_benchmark("ackley", dim=12, sim_time=10.0)
    opt = KBqEGO(problem, WORKERS, seed=0, gp_options=FAST_GP,
                 acq_options=FAST_ACQ)
    metrics = MetricsRegistry()
    prev = set_metrics(metrics)
    try:
        res = run_optimization(problem, opt, BUDGET, n_initial=32,
                               time_scale=1.0, seed=0)
    finally:
        set_metrics(prev)
    busy = metrics.counter("cluster.busy_virtual_s").value
    idle = metrics.counter("cluster.idle_virtual_s").value
    total = busy + idle
    busy_share = busy / total if total > 0 else 0.0
    return res, busy_share, 1.0 - busy_share


def _async():
    problem = get_benchmark("ackley", dim=12, sim_time=10.0)
    return run_async_optimization(
        problem, WORKERS, BUDGET, n_initial=32, time_scale=1.0, seed=0,
        gp_options=FAST_GP,
        acq_options={k: v for k, v in FAST_ACQ.items() if k != "n_mc"},
    )


def test_sync_baseline(benchmark):
    res, busy_share, idle_share = benchmark.pedantic(
        _sync, rounds=1, iterations=1
    )
    assert res.best_value < res.initial_best
    assert 0.0 < busy_share <= 1.0
    benchmark.extra_info["busy_share"] = busy_share
    benchmark.extra_info["idle_share"] = idle_share


def test_async_variant(benchmark):
    res = benchmark.pedantic(_async, rounds=1, iterations=1)
    assert res.best_value < res.initial_best
    assert res.busy_virtual_s > 0
    assert 0.0 < res.busy_share <= 1.0
    benchmark.extra_info["busy_share"] = res.busy_share
    benchmark.extra_info["idle_share"] = res.idle_share


def test_async_throughput_advantage(benchmark):
    """Same budget, same workers: the asynchronous scheme completes at
    least as many simulations (usually clearly more, since workers
    never wait for the slowest batch member or the master), and keeps
    its workers at least as busy."""

    def compare():
        a = _async()
        res, sync_busy, _ = _sync()
        return a.n_simulations, res.n_simulations, a.busy_share, sync_busy

    n_async, n_sync, busy_async, busy_sync = benchmark.pedantic(
        compare, rounds=1, iterations=1
    )
    assert n_async >= n_sync, (n_async, n_sync)
    benchmark.extra_info["busy_share_async"] = busy_async
    benchmark.extra_info["busy_share_sync"] = busy_sync
