"""Table 7 — UPHES profit min/mean/max/sd per algorithm × batch size.

Timed section: one full UPHES BO cycle at q = 4 (the paper's best
compromise) plus the raw simulator throughput. Shape checks: the BO
outcomes dwarf the random-sampling plateau, and the batch-size trend
improves from q = 1 to the q = 4 region before the breaking point.
"""

import numpy as np

from benchmarks.conftest import emit
from repro.core import make_optimizer
from repro.doe import latin_hypercube, uniform_random
from repro.experiments.stats import summarize
from repro.experiments.tables import table_7
from repro.uphes import UPHESSimulator


def test_table7_render(benchmark, uphes_campaign, results_root, preset):
    text = benchmark(table_7, uphes_campaign)
    emit(benchmark, "table7", text, results_root, preset)
    for q in preset.batch_sizes:
        assert f"n_batch = {q}" in text


def test_profit_improves_with_moderate_batches(benchmark, uphes_campaign,
                                               preset):
    """Paper §3.2: 'an improvement of the final average profit ...
    along with the increase of the batch size up to n_batch = 4'."""
    qs = preset.batch_sizes

    def overall_mean(q):
        vals = []
        for algo in preset.algorithms:
            vals.extend(uphes_campaign.final_values("uphes", algo, q))
        return float(np.mean(vals))

    means = benchmark.pedantic(
        lambda: {q: overall_mean(q) for q in qs}, rounds=1, iterations=1
    )
    mid = [q for q in (4, 8) if q in qs]
    assert mid, "preset must include a moderate batch size"
    assert max(means[q] for q in mid) > means[qs[0]]


def test_uphes_cycle_q4(benchmark, preset):
    sim = UPHESSimulator(seed=0, sim_time=preset.sim_time)
    opt = make_optimizer("mic-q-ego", sim, 4, seed=0,
                         gp_options={"n_restarts": 0, "maxiter": 40})
    X0 = latin_hypercube(64, sim.bounds, seed=0)
    opt.initialize(X0, -sim(X0))  # minimization orientation

    def cycle():
        prop = opt.propose()
        opt.update(prop.X, -sim(prop.X))
        return prop

    prop = benchmark.pedantic(cycle, rounds=3, iterations=1)
    assert prop.X.shape == (4, 12)


def test_simulator_throughput(benchmark):
    sim = UPHESSimulator(seed=0, sim_time=0.0)
    X = uniform_random(256, sim.bounds, seed=0)
    y = benchmark(sim, X)
    assert y.shape == (256,)
