"""Table 3 — acquisition function per algorithm × batch size.

Regenerates the table and times one acquisition of each kind (the
single-point EI path, the EI+UCB multi-infill round, and the joint
MC-qEI) on a representative mid-campaign model.
"""

import numpy as np
import pytest

from benchmarks.conftest import emit
from repro.acquisition import (
    ExpectedImprovement,
    UpperConfidenceBound,
    optimize_acqf,
    qExpectedImprovement,
)
from repro.doe import latin_hypercube
from repro.experiments.tables import table_3
from repro.gp import GaussianProcess
from repro.problems import get_benchmark


def test_table3_render(benchmark, results_root, preset):
    text = benchmark(table_3, preset)
    emit(benchmark, "table3", text, results_root, preset)
    assert "EI/UCB (50%)" in text


@pytest.fixture(scope="module")
def model():
    problem = get_benchmark("ackley", dim=12)
    X = latin_hypercube(64, problem.bounds, seed=0)
    y = problem(X)
    gp = GaussianProcess(dim=12, input_bounds=problem.bounds)
    gp.fit(X, y, n_restarts=0, maxiter=40, seed=0)
    return problem, gp, float(y.min())


def test_acquire_ei(benchmark, model):
    problem, gp, best = model
    x, val = benchmark(
        optimize_acqf, ExpectedImprovement(gp, best), problem.bounds,
        n_restarts=4, raw_samples=128, maxiter=40, seed=0,
    )
    assert np.all(x >= problem.lower) and np.all(x <= problem.upper)


def test_acquire_ucb(benchmark, model):
    problem, gp, _ = model
    x, val = benchmark(
        optimize_acqf, UpperConfidenceBound(gp, beta=2.0), problem.bounds,
        n_restarts=4, raw_samples=128, maxiter=40, seed=0,
    )
    assert np.all(x >= problem.lower) and np.all(x <= problem.upper)


@pytest.mark.parametrize("q", [2, 4, 8])
def test_acquire_qei(benchmark, model, q):
    problem, gp, best = model
    acq = qExpectedImprovement(gp, best, q=q, n_mc=128, seed=0)
    X, val = benchmark(
        optimize_acqf, acq, problem.bounds, q=q,
        n_restarts=2, raw_samples=64, maxiter=25, seed=0,
    )
    assert X.shape == (q, 12)
