"""Micro-benchmarks of the substrates under the algorithms.

Not paper artefacts — these document the cost profile that *produces*
the paper's overhead phenomena: GP fitting versus data-set size,
qEI gradient cost versus batch size, fantasy-update cost, and the
virtual cluster's accounting overhead.
"""

import numpy as np
import pytest

from repro.acquisition import qExpectedImprovement
from repro.doe import latin_hypercube
from repro.gp import GaussianProcess
from repro.parallel import SimulatedCluster, VirtualClock
from repro.problems import get_benchmark


@pytest.mark.parametrize("n", [64, 256, 512])
def test_gp_fit_scaling(benchmark, n):
    """The O(n³) fit cost behind the paper's breaking point."""
    problem = get_benchmark("ackley", dim=12)
    X = latin_hypercube(n, problem.bounds, seed=0)
    y = problem(X)

    def fit():
        gp = GaussianProcess(dim=12, input_bounds=problem.bounds)
        gp.fit(X, y, n_restarts=0, maxiter=25, seed=0)
        return gp

    gp = benchmark.pedantic(fit, rounds=2, iterations=1)
    assert gp.n_train == n


@pytest.mark.parametrize("q", [2, 4, 8, 16])
def test_qei_gradient_scaling(benchmark, q):
    """The O(q·(n² + n·d)) per-gradient cost of joint MC-qEI."""
    problem = get_benchmark("ackley", dim=12)
    X = latin_hypercube(128, problem.bounds, seed=0)
    y = problem(X)
    gp = GaussianProcess(dim=12, input_bounds=problem.bounds)
    gp.fit(X, y, n_restarts=0, maxiter=25, seed=0)
    acq = qExpectedImprovement(gp, float(np.median(y)), q=q, n_mc=128, seed=0)
    Xq = latin_hypercube(q, problem.bounds, seed=1)

    val, grad = benchmark(acq.value_and_grad, Xq)
    assert grad.shape == (q, 12)


def test_gp_predict_batch(benchmark):
    problem = get_benchmark("ackley", dim=12)
    X = latin_hypercube(256, problem.bounds, seed=0)
    gp = GaussianProcess(dim=12, input_bounds=problem.bounds)
    gp.fit(X, problem(X), n_restarts=0, maxiter=25, seed=0)
    Xq = latin_hypercube(512, problem.bounds, seed=1)
    mu, sigma = benchmark(gp.predict, Xq)
    assert mu.shape == (512,)


def test_virtual_cluster_accounting_overhead(benchmark):
    """The accounting itself must be negligible next to a real cycle."""
    problem = get_benchmark("sphere", dim=12, sim_time=10.0)
    X = latin_hypercube(16, problem.bounds, seed=0)

    def one_batch():
        cluster = SimulatedCluster(16, clock=VirtualClock())
        return cluster.evaluate(problem, X)

    y = benchmark(one_batch)
    assert y.shape == (16,)
