"""Table 2 — budget allocation per batch size.

Regenerates the table from the preset and *verifies* the driver's time
accounting realizes it: a free-acquisition run under the preset budget
performs exactly budget/sim_time cycles.
"""

from benchmarks.conftest import emit
from repro.core import RandomSearch, run_optimization
from repro.experiments.tables import table_2
from repro.parallel import OverheadModel
from repro.problems import get_benchmark


def test_table2_render(benchmark, results_root, preset):
    text = benchmark(table_2, preset)
    emit(benchmark, "table2", text, results_root, preset)
    for q in preset.batch_sizes:
        assert f"\n{q} " in text or text.rstrip().endswith(str(q))


def test_budget_realized_by_driver(benchmark, preset):
    problem = get_benchmark("sphere", dim=preset.dim,
                            sim_time=preset.sim_time)

    def run():
        opt = RandomSearch(problem, 2, seed=0)
        return run_optimization(
            problem, opt, preset.budget,
            n_initial=preset.initial_per_batch * 2,
            overhead=OverheadModel(0.0, 0.0), time_scale=0.0, seed=0,
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result.n_cycles == preset.max_cycles_per_run
    assert result.n_initial == preset.initial_per_batch * 2
