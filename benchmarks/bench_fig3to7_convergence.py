"""Figures 3–7 — UPHES convergence curves per batch size.

One figure per batch size: the running best profit vs cycles, averaged
over the repetitions. Shape checks: curves are non-decreasing, every
algorithm ends above its starting point, and the curves are truncated
to the common cycle count exactly as the paper does.
"""

import numpy as np
import pytest

from benchmarks.conftest import emit
from repro.experiments.figures import figure_3_to_7

FIG_BY_Q = {1: 3, 2: 4, 4: 5, 8: 6, 16: 7}


def _qs(preset):
    return [q for q in preset.batch_sizes if q in FIG_BY_Q]


@pytest.mark.parametrize("q", [1, 2, 4, 8, 16])
def test_figure_render(benchmark, uphes_campaign, results_root, preset, q):
    if q not in preset.batch_sizes:
        pytest.skip(f"preset lacks n_batch={q}")
    series, text = benchmark(figure_3_to_7, uphes_campaign, q)
    emit(benchmark, f"figure{FIG_BY_Q[q]}", text, results_root, preset)
    for algo in preset.algorithms:
        mean = np.asarray(series[algo]["mean"])
        assert mean.size > 0
        assert np.all(np.diff(mean) >= -1e-9)  # running best is monotone


def test_curves_improve_over_start(benchmark, uphes_campaign, preset):
    def min_gain():
        gains = []
        for q in _qs(preset):
            series, _ = figure_3_to_7(uphes_campaign, q)
            for algo in preset.algorithms:
                m = series[algo]["mean"]
                if m:
                    gains.append(m[-1] - m[0])
        return min(gains)

    gain = benchmark.pedantic(min_gain, rounds=1, iterations=1)
    assert gain >= 0.0
