"""Ablations of the paper's proposed remedies (Discussion §4/§5).

The paper closes with three leads against the breaking point: faster
surrogates (subsets of data), multiple complementary criteria, and
space partitioning/reduction — "for example, a multi-infill-criterion
TuRBO can easily be considered and implemented". These benches measure
all three on live short runs:

- TuRBO vs mic-TuRBO (the proposed combination) at a large batch size;
- full-data vs subset-of-data GP fitting in KB-q-EGO;
- mic-q-EGO with 2 vs 3 complementary criteria.
"""

import pytest

from repro.core import KBqEGO, MicQEGO, MicTuRBO, TuRBO, run_optimization
from repro.problems import get_benchmark

FAST = {
    "acq_options": {"n_restarts": 2, "raw_samples": 64, "maxiter": 25,
                    "n_mc": 64},
}


def _run(opt_cls, q=8, budget=120.0, seed=0, gp_extra=None, **kwargs):
    problem = get_benchmark("ackley", dim=12, sim_time=10.0)
    gp_options = {"n_restarts": 0, "maxiter": 30, **(gp_extra or {})}
    opt = opt_cls(problem, q, seed=seed, gp_options=gp_options, **FAST,
                  **kwargs)
    return run_optimization(problem, opt, budget, time_scale=0.0, seed=seed)


class TestMicTuRBOCombination:
    @pytest.mark.parametrize("cls", [TuRBO, MicTuRBO],
                             ids=["turbo-qei", "mic-turbo"])
    def test_variant(self, benchmark, cls):
        res = benchmark.pedantic(_run, args=(cls,), rounds=1, iterations=1)
        assert res.best_value < res.initial_best

    def test_mic_turbo_acquisition_not_slower_than_qei(self):
        """The combination's selling point: single-point criteria in a
        small region keep the acquisition cheap at large q."""
        res_qei = _run(TuRBO, q=16, budget=80.0)
        res_mic = _run(MicTuRBO, q=16, budget=80.0)
        t_qei = sum(r.acq_time for r in res_qei.history) / max(
            res_qei.n_cycles, 1
        )
        t_mic = sum(r.acq_time for r in res_mic.history) / max(
            res_mic.n_cycles, 1
        )
        assert t_mic < 3.0 * t_qei  # same order; often cheaper


class TestSubsetOfData:
    @pytest.mark.parametrize("cap", [None, 64],
                             ids=["full-data", "subset-64"])
    def test_kb_with_cap(self, benchmark, cap):
        res = benchmark.pedantic(
            _run, args=(KBqEGO,), rounds=1, iterations=1,
            kwargs={"gp_extra": {"max_points": cap}},
        )
        assert res.best_value < res.initial_best

    def test_cap_reduces_fit_time(self):
        full = _run(KBqEGO, q=8, budget=150.0)
        capped = _run(KBqEGO, q=8, budget=150.0,
                      gp_extra={"max_points": 48})
        # compare the *last* cycles, where data sets diverge most
        t_full = full.history[-1].fit_time
        t_capped = capped.history[-1].fit_time
        assert t_capped < t_full


class TestCriteriaCount:
    @pytest.mark.parametrize(
        "criteria",
        [("ei", "ucb"), ("ei", "ucb", "pi")],
        ids=["2-criteria", "3-criteria"],
    )
    def test_mic_with_criteria(self, benchmark, criteria):
        res = benchmark.pedantic(
            _run, args=(MicQEGO,), rounds=1, iterations=1,
            kwargs={"criteria": criteria},
        )
        assert res.best_value < res.initial_best
