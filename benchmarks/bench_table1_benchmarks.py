"""Table 1 — benchmark definitions, plus raw evaluation throughput.

Regenerates the paper's Table 1 and times the vectorized evaluation of
each benchmark function (the cheap substrate under the 10-s virtual
simulation cost).
"""

import numpy as np
import pytest

from benchmarks.conftest import emit
from repro.doe import uniform_random
from repro.experiments.tables import table_1
from repro.problems import get_benchmark
from repro.problems.benchmarks import PAPER_BENCHMARKS


def test_table1_render(benchmark, results_root, preset):
    text = benchmark(table_1, preset.dim)
    emit(benchmark, "table1", text, results_root, preset)
    for name in ("Rosenbrock", "Ackley", "Schwefel"):
        assert name in text


@pytest.mark.parametrize("name", PAPER_BENCHMARKS)
def test_benchmark_eval_throughput(benchmark, name):
    problem = get_benchmark(name, dim=12)
    X = uniform_random(1024, problem.bounds, seed=0)
    y = benchmark(problem, X)
    assert y.shape == (1024,)
    assert np.all(y >= -1e-6)  # f_min = 0 for all three
