"""Figure 9a/b — UPHES simulations and cycles vs batch size.

Shape checks from the paper's scalability discussion: the cycle count
decreases monotonically-ish with the batch size (the sequential part
grows), small batches stay close to the 120-cycle ceiling, and the
breaking point shows up as a sub-linear simulation ratio between the
two largest batch sizes.
"""

import numpy as np
import pytest

from benchmarks.conftest import emit
from repro.experiments.figures import figure_9


def test_figure9_render(benchmark, uphes_campaign, results_root, preset):
    data, text = benchmark(figure_9, uphes_campaign)
    emit(benchmark, "figure9", text, results_root, preset)
    assert set(data) == {"simulations", "cycles"}


def test_cycles_decrease_with_batch(benchmark, uphes_campaign, preset):
    qs = sorted(preset.batch_sizes)

    def cycle_means():
        out = {}
        for q in qs:
            vals = []
            for algo in preset.algorithms:
                vals.extend(
                    r.n_cycles for r in uphes_campaign.runs("uphes", algo, q)
                )
            out[q] = float(np.mean(vals))
        return out

    means = benchmark.pedantic(cycle_means, rounds=1, iterations=1)
    assert means[qs[-1]] < means[qs[0]]


def test_small_batches_near_cycle_ceiling(benchmark, uphes_campaign, preset):
    """Paper: q=1,2 reach close to the maximum cycle count."""
    q0 = min(preset.batch_sizes)
    ceiling = preset.max_cycles_per_run

    def mean_cycles():
        vals = []
        for algo in preset.algorithms:
            vals.extend(
                r.n_cycles for r in uphes_campaign.runs("uphes", algo, q0)
            )
        return float(np.mean(vals))

    mean = benchmark.pedantic(mean_cycles, rounds=1, iterations=1)
    assert mean > 0.55 * ceiling


def test_uphes_breaking_point(benchmark, uphes_campaign, preset):
    qs = sorted(preset.batch_sizes)
    if len(qs) < 3:
        pytest.skip("needs at least three batch sizes")
    q_mid, q_max = qs[-2], qs[-1]

    def ratio():
        sims = {q: [] for q in (q_mid, q_max)}
        for algo in preset.algorithms:
            for q in (q_mid, q_max):
                sims[q].extend(
                    r.n_simulations
                    for r in uphes_campaign.runs("uphes", algo, q)
                )
        return float(np.mean(sims[q_max]) / np.mean(sims[q_mid]))

    observed = benchmark.pedantic(ratio, rounds=1, iterations=1)
    assert observed < 0.85 * (q_max / q_mid)
