"""Discussion §4 — the random-sampling comparison.

The paper: "Even considering a large random sample of almost 12,000
objective function evaluations, the best-observed profit is around
EUR −1200. All investigated BO algorithms allow to achieve much better
profits with significantly fewer simulations."

Regenerates both halves: a 12,000-point random sample of the UPHES
simulator (timed — this is also the simulator's throughput benchmark),
and the comparison against the campaign's BO outcomes.
"""

import numpy as np

from benchmarks.conftest import emit
from repro.doe import uniform_random
from repro.uphes import UPHESSimulator

N_RANDOM = 12_000


def test_random_sampling_plateau(benchmark, results_root, preset):
    sim = UPHESSimulator(seed=0, sim_time=0.0)
    X = uniform_random(N_RANDOM, sim.bounds, seed=123)

    y = benchmark.pedantic(sim, args=(X,), rounds=1, iterations=1)
    best = float(y.max())
    text = (
        f"Discussion §4 — random sampling on UPHES\n"
        f"evaluations: {N_RANDOM}\n"
        f"best profit: {best:.0f} EUR (paper: ≈ -1200 EUR)\n"
        f"mean profit: {float(y.mean()):.0f} EUR\n"
        f"p99 profit:  {float(np.percentile(y, 99)):.0f} EUR"
    )
    emit(benchmark, "discussion_random", text, results_root, preset)
    # Paper's qualitative claim: the random plateau is in the red.
    assert best < 0.0


def test_bo_beats_random_plateau(benchmark, uphes_campaign, preset):
    """The PBO outcomes at the paper's best batch size must exceed the
    12k-random plateau — with a fraction of the evaluations.

    (At the scaled-down ``quick`` budget the *best* algorithm's mean
    carries the claim; the full ``paper`` protocol shows it for all.)
    """
    sim = UPHESSimulator(seed=0, sim_time=0.0)
    X = uniform_random(N_RANDOM, sim.bounds, seed=123)
    random_best = float(sim(X).max())

    def best_algo_mean():
        q = 4 if 4 in preset.batch_sizes else preset.batch_sizes[-1]
        return max(
            float(np.mean(uphes_campaign.final_values("uphes", algo, q)))
            for algo in preset.algorithms
        )

    best = benchmark.pedantic(best_algo_mean, rounds=1, iterations=1)
    assert best > random_best
