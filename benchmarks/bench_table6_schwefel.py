"""Table 6 — Schwefel final cost per algorithm × batch size.

Schwefel is the paper's hardest benchmark (highly multi-modal, modes of
equal amplitude): the paper observes larger acquisition costs and
earlier breaking points here. The shape checks are correspondingly
looser: BO must beat the initial design, and the rendered table must
cover the full roster.
"""

import numpy as np

from benchmarks.conftest import emit
from repro.experiments.tables import table_6


def test_table6_render(benchmark, benchmark_campaign, results_root, preset):
    text = benchmark(table_6, benchmark_campaign)
    emit(benchmark, "table6", text, results_root, preset)
    for algo in preset.algorithms:
        assert algo in text


def test_schwefel_progress(benchmark, benchmark_campaign, preset):
    def mean_improvement():
        gains = []
        for algo in preset.algorithms:
            for q in preset.batch_sizes:
                runs = benchmark_campaign.runs("schwefel", algo, q)
                gains.append(
                    np.mean([r.initial_best - r.best_value for r in runs])
                )
        return float(np.mean(gains))

    gain = benchmark.pedantic(mean_improvement, rounds=1, iterations=1)
    assert gain > 0.0
