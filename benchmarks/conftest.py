"""Shared fixtures for the benchmark harness.

The benches regenerate every table and figure of the paper. The heavy
part — the (algorithm × batch × seed) campaign — runs **once per
preset** and is cached as JSON under ``results/``; the pytest-benchmark
timings then measure the per-cycle building blocks (fits, acquisitions,
simulator calls) and the renderers, while each bench *prints* the
reproduced table/figure and stores it in ``benchmark.extra_info``.

Select the protocol with ``--preset`` (default: ``quick``; ``paper``
reproduces the full Table-2 protocol and needs cluster-scale wall
time; ``smoke`` is CI-sized).
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.experiments import Campaign, get_preset


def pytest_addoption(parser):
    parser.addoption(
        "--preset",
        action="store",
        default="quick",
        choices=["paper", "quick", "smoke"],
        help="experimental protocol for the reproduction benches",
    )
    parser.addoption(
        "--results-root",
        action="store",
        default="results",
        help="campaign cache directory",
    )


@pytest.fixture(scope="session")
def preset(request):
    return get_preset(request.config.getoption("--preset"))


@pytest.fixture(scope="session")
def results_root(request):
    return Path(request.config.getoption("--results-root"))


@pytest.fixture(scope="session")
def benchmark_campaign(preset, results_root):
    """The synthetic-benchmark campaign (Tables 4–6, Figure 2)."""
    return Campaign(preset, root=results_root).ensure()


@pytest.fixture(scope="session")
def uphes_campaign(preset, results_root):
    """The UPHES campaign (Table 7, Figures 3–9)."""
    return Campaign(preset, problems=["uphes"], root=results_root).ensure()


def emit(benchmark, name: str, text: str, results_root: Path, preset) -> None:
    """Print a reproduced artefact and persist it alongside the cache."""
    print(f"\n{text}\n")
    benchmark.extra_info[name] = text
    out = results_root / preset.name / "report"
    out.mkdir(parents=True, exist_ok=True)
    (out / f"{name}.txt").write_text(text + "\n")
