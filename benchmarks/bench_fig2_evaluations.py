"""Figure 2a–c — number of evaluations vs batch size per benchmark.

Shape checks from the paper: the evaluation count does *not* keep
scaling linearly with the batch size (a breaking point appears around
q = 8–16), and BSP-EGO — whose acquisition is parallel — achieves the
best scaling at the largest batch size.
"""

import numpy as np
import pytest

from benchmarks.conftest import emit
from repro.experiments.figures import figure_2
from repro.problems.benchmarks import PAPER_BENCHMARKS


@pytest.mark.parametrize("problem", PAPER_BENCHMARKS)
def test_figure2_render(benchmark, benchmark_campaign, results_root, preset,
                        problem):
    data, text = benchmark(figure_2, benchmark_campaign, problem)
    emit(benchmark, f"figure2_{problem}", text, results_root, preset)
    assert set(data) == set(preset.algorithms)


def test_breaking_point_exists(benchmark, benchmark_campaign, preset):
    """Beyond the breaking point, doubling q stops doubling the number
    of simulations: the q_max/q_mid simulation ratio must fall clearly
    short of the ideal q_max/q_mid speedup."""
    qs = sorted(preset.batch_sizes)
    if len(qs) < 3:
        pytest.skip("needs at least three batch sizes")
    q_mid, q_max = qs[-2], qs[-1]

    def ratio():
        sims_mid, sims_max = [], []
        for algo in preset.algorithms:
            for r in benchmark_campaign.runs("ackley", algo, q_mid):
                sims_mid.append(r.n_simulations)
            for r in benchmark_campaign.runs("ackley", algo, q_max):
                sims_max.append(r.n_simulations)
        return float(np.mean(sims_max) / np.mean(sims_mid))

    observed = benchmark.pedantic(ratio, rounds=1, iterations=1)
    ideal = q_max / q_mid
    assert observed < 0.85 * ideal, (
        f"no breaking point: sims ratio {observed:.2f} ~ ideal {ideal:.2f}"
    )


def test_bsp_parallel_ap_mechanism(benchmark, benchmark_campaign, preset):
    """Paper: 'Only BSP-EGO managed to achieve better scalability ...
    thanks to its parallel AP'. The mechanism is directly observable in
    the run records: BSP-EGO's *charged* acquisition time (the LPT
    makespan over the workers) must be well below what the same
    measured work would cost serially — which is exactly what buys it
    extra evaluations at large batch sizes."""
    q_max = max(preset.batch_sizes)

    def parallel_speedup():
        charged, serial = 0.0, 0.0
        for problem in preset.benchmarks:
            for r in benchmark_campaign.runs(problem, "BSP-EGO", q_max):
                charged += sum(r.acq_charged)
                serial += sum(
                    (f + a) * r.time_scale
                    for f, a in zip(r.fit_times, r.acq_times)
                )
        return charged / serial

    ratio = benchmark.pedantic(parallel_speedup, rounds=1, iterations=1)
    assert ratio < 0.85, (
        f"BSP-EGO's parallel AP charged {ratio:.2f}x of its serial cost "
        f"at q={q_max} (expected clearly below 1)"
    )
