"""Ablation: exact GP vs the RFF fast surrogate (Discussion §4).

Times the surrogate fit at growing data-set sizes for both backends —
the exact O(n³) GP is what creates the paper's breaking point; the
low-rank O(n·D²) RFF model is its proposed remedy — and runs KB-q-EGO
end-to-end on both.
"""

import numpy as np
import pytest

from repro.core import KBqEGO, run_optimization
from repro.doe import latin_hypercube
from repro.gp import GaussianProcess, RFFGaussianProcess
from repro.problems import get_benchmark


@pytest.mark.parametrize("n", [128, 512])
@pytest.mark.parametrize("backend", ["exact", "rff"])
def test_surrogate_fit_cost(benchmark, n, backend):
    problem = get_benchmark("ackley", dim=12)
    X = latin_hypercube(n, problem.bounds, seed=0)
    y = problem(X)

    def fit():
        if backend == "exact":
            gp = GaussianProcess(dim=12, input_bounds=problem.bounds)
        else:
            gp = RFFGaussianProcess(dim=12, n_features=256,
                                    input_bounds=problem.bounds, seed=0)
        gp.fit(X, y, n_restarts=0, maxiter=20, seed=0)
        return gp

    gp = benchmark.pedantic(fit, rounds=2, iterations=1)
    assert gp.n_train == n


@pytest.mark.parametrize("backend", ["exact", "rff"])
def test_kb_run_per_backend(benchmark, backend):
    problem = get_benchmark("ackley", dim=12, sim_time=10.0)

    def run():
        opt = KBqEGO(
            problem, 4, seed=0,
            gp_options={"n_restarts": 0, "maxiter": 25, "backend": backend,
                        "n_features": 256},
            acq_options={"n_restarts": 2, "raw_samples": 64, "maxiter": 25},
        )
        return run_optimization(problem, opt, 100.0, time_scale=0.0, seed=0)

    res = benchmark.pedantic(run, rounds=1, iterations=1)
    assert res.best_value < res.initial_best
