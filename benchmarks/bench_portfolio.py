"""Ablation: bandit portfolio vs fixed-strategy asynchronous BO.

The paper's central empirical finding is that no single acquisition
strategy wins everywhere (TuRBO on the benchmarks, mic-q-EGO on the
plant). The portfolio driver turns that finding into a scheduler: a
bandit reallocates freed workers across acquisition arms by
sliding-window improvement credit. This bench compares, under one
virtual budget and worker count,

- the full portfolio (kb / mic / turbo / bsp / random arms);
- each fixed strategy run through the *same* completion-driven driver
  (a single-arm portfolio — identical scheduling, no adaptivity);
- the pre-existing single-strategy async driver as the KB-EI reference.

``scripts/portfolio_smoke.py`` runs the CI-sized version of this
comparison (plus chaos injection) and archives ``BENCH_portfolio.json``.
"""

from repro.core.async_driver import run_async_optimization
from repro.portfolio import run_portfolio_optimization
from repro.problems import get_benchmark

FAST_GP = {"n_restarts": 0, "maxiter": 25}
FAST_ACQ = {"n_restarts": 2, "raw_samples": 64, "maxiter": 25}
BUDGET = 150.0
WORKERS = 8


def _problem():
    return get_benchmark("ackley", dim=12, sim_time=10.0)


def _portfolio(arms=("kb", "mic", "turbo", "bsp", "random")):
    return run_portfolio_optimization(
        _problem(), WORKERS, BUDGET, arms=arms, n_initial=32, seed=0,
        time_scale=1.0, gp_options=FAST_GP, acq_options=FAST_ACQ,
    )


def test_portfolio_run(benchmark):
    res = benchmark.pedantic(_portfolio, rounds=1, iterations=1)
    assert res.best_value < res.initial_best
    # every arm got at least one worker (the exploration floor at work)
    assert all(s["selections"] > 0 for s in res.arm_stats.values())
    benchmark.extra_info["busy_share"] = res.busy_share
    benchmark.extra_info["arm_selections"] = {
        name: s["selections"] for name, s in res.arm_stats.items()
    }


def test_portfolio_vs_fixed_arms(benchmark):
    """The portfolio must stay competitive with the best single arm it
    contains — adaptivity may cost a little, but must not collapse."""

    def compare():
        port = _portfolio()
        fixed = {
            name: _portfolio(arms=(name,)).best_value
            for name in ("kb", "turbo", "random")
        }
        return port, fixed

    port, fixed = benchmark.pedantic(compare, rounds=1, iterations=1)
    best_fixed = min(fixed.values())
    worst_fixed = max(fixed.values())
    assert port.best_value <= worst_fixed, (port.best_value, fixed)
    benchmark.extra_info["portfolio_best"] = port.best_value
    benchmark.extra_info["fixed_best"] = {k: v for k, v in fixed.items()}
    benchmark.extra_info["gap_to_best_fixed"] = port.best_value - best_fixed


def test_portfolio_matches_async_reference(benchmark):
    """Same machinery as the single-strategy async driver: comparable throughput
    and utilization under identical budget/workers."""

    def compare():
        port = _portfolio()
        ref = run_async_optimization(
            _problem(), WORKERS, BUDGET, n_initial=32, seed=0,
            time_scale=1.0, gp_options=FAST_GP, acq_options=FAST_ACQ,
        )
        return port, ref

    port, ref = benchmark.pedantic(compare, rounds=1, iterations=1)
    assert port.n_simulations >= 0.5 * ref.n_simulations
    assert port.busy_share > 0.5
    benchmark.extra_info["portfolio_sims"] = port.n_simulations
    benchmark.extra_info["async_sims"] = ref.n_simulations
