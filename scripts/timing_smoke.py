"""Instrumented timing smoke: per-phase medians + tracing overhead.

Usage::

    PYTHONPATH=src python scripts/timing_smoke.py [--out BENCH_pr4.json]
                                                  [--budget 80] [--dim 3]
    PYTHONPATH=src python scripts/timing_smoke.py --q-sweep \
                                                  [--out BENCH_pr9.json]

Default mode runs the paper's five algorithms (KB-q-EGO, mic-q-EGO,
MC-based q-EGO, BSP-EGO, TuRBO) on a fast benchmark twice each — once
untraced, once with the full observability stack (tracer + metrics)
enabled — and writes:

- per-algorithm, per-phase wall-second medians (fit / acq_optimize /
  fantasy_update / evaluate / checkpoint spans);
- the traced-vs-untraced wall-time overhead, which the PR's acceptance
  criterion requires to stay under 5% (the instrumentation budget);
- an equality check of the two runs' results — tracing must be
  RNG-neutral, so best value and evaluation counts must match bit
  for bit.

The result lands in ``BENCH_pr4.json`` so CI can archive the timing
profile per commit.

``--q-sweep`` instead A/B-tests the O(n³)-wall features (factor cache
+ carried-hyperparameter refits + batched multi-start acquisition
polish) at q ∈ {1, 4, 16}: for each batch size it measures the
fit+acquisition overhead (per simulated evaluation, and as a share of
cycle wall) with the features off vs on, checks that the q=16 overhead
drops — attacking the curve the BENCH_pr4 profile flagged as the
dominant cost at large q — and verifies the factor cache alone is
bit-neutral on run results. The report lands in ``BENCH_pr9.json``.
"""

from __future__ import annotations

import argparse
import json
import platform
import time
from pathlib import Path

from repro.core import make_optimizer, run_optimization
from repro.obs import (
    NULL_METRICS,
    NULL_TRACER,
    MetricsRegistry,
    Tracer,
    phase_summary,
    set_metrics,
    set_tracer,
)
from repro.problems import get_benchmark

ALGORITHMS = ("kb_qego", "mic_qego", "mc_qego", "bsp_ego", "turbo")

#: Keep the smoke fast: tiny inner-optimization budgets.
FAST = {
    "acq_options": {"n_restarts": 2, "raw_samples": 64, "maxiter": 25,
                    "n_mc": 64},
    "gp_options": {"n_restarts": 0, "maxiter": 30},
}


def run_once(algorithm, problem, budget, *, traced: bool, seed: int = 0):
    """One run; returns (result, wall_seconds, tracer-or-None)."""
    tracer = None
    if traced:
        tracer = Tracer()
        set_tracer(tracer)
        set_metrics(MetricsRegistry())
    else:
        set_tracer(NULL_TRACER)
        set_metrics(NULL_METRICS)
    try:
        optimizer = make_optimizer(algorithm, problem, 2, seed=seed, **FAST)
        t0 = time.perf_counter()
        result = run_optimization(
            problem, optimizer, budget, n_initial=6, seed=seed
        )
        wall = time.perf_counter() - t0
    finally:
        set_tracer(NULL_TRACER)
        set_metrics(NULL_METRICS)
    return result, wall, tracer


#: q-sweep A/B arms: everything this PR adds to the hot path, off vs on.
#: ``refit_every=4`` is the setting that actually exercises the cache's
#: append/truncate shortcuts (the default fit-every-cycle re-optimization
#: changes the hyperparameter fingerprint and misses on purpose).
FEATURES_OFF = {
    "gp_options": {"factor_cache": False, "refit_every": 1},
    "acq_options": {"batch_starts": False},
}
FEATURES_ON = {
    "gp_options": {"factor_cache": True, "refit_every": 4},
    "acq_options": {"batch_starts": True},
}


def _merged(overrides):
    return {
        "acq_options": {**FAST["acq_options"],
                        **overrides.get("acq_options", {})},
        "gp_options": {**FAST["gp_options"],
                       **overrides.get("gp_options", {})},
    }


def run_q(algorithm, problem, q, budget, overrides, *, seed: int = 0):
    """One traced run at batch size q; returns (result, wall, tracer)."""
    tracer = Tracer()
    set_tracer(tracer)
    set_metrics(MetricsRegistry())
    try:
        optimizer = make_optimizer(algorithm, problem, q, seed=seed,
                                   **_merged(overrides))
        t0 = time.perf_counter()
        result = run_optimization(
            problem, optimizer, budget, n_initial=6, seed=seed
        )
        wall = time.perf_counter() - t0
    finally:
        set_tracer(NULL_TRACER)
        set_metrics(NULL_METRICS)
    return result, wall, tracer


def overhead_profile(tracer, n_simulations: int) -> dict:
    """fit + acquisition-optimize wall seconds, as a share of the cycle
    wall and normalized per simulated evaluation.

    Evaluation time is virtual on the benchmark problems, so cycle wall
    is nearly pure optimizer overhead and the share saturates; the
    per-evaluation overhead is the robust A/B signal — it is what
    decides whether the optimizer keeps up with a real simulator.
    """
    rows = phase_summary(tracer.spans)
    cycle = rows.get("cycle", {}).get("total_s", 0.0)
    fit = rows.get("fit", {}).get("total_s", 0.0)
    acq = rows.get("acq_optimize", {}).get("total_s", 0.0)
    return {
        "overhead_share": (fit + acq) / cycle if cycle else 0.0,
        "overhead_s_per_eval": (fit + acq) / max(n_simulations, 1),
        "fit_total_s": fit,
        "acq_total_s": acq,
    }


def _result_fingerprint(result):
    return (
        float(result.best_value),
        int(result.n_simulations),
        tuple(float(v) for v in result.best_x.ravel()),
        tuple(float(v) for v in result.trajectory),
    )


def main_q_sweep(args) -> int:
    problem = get_benchmark("sphere", dim=args.dim, sim_time=10.0)
    algo = args.q_algorithm
    qs = (1, 4, 16)
    report = {
        "bench": "timing_smoke_qsweep",
        "algorithm": algo,
        "budget": args.budget,
        "dim": args.dim,
        "python": platform.python_version(),
        "q": {},
    }
    for q in qs:
        run_q(algo, problem, q, args.budget, FEATURES_OFF)   # warmup
        cell = {}
        for label, overrides in (("off", FEATURES_OFF), ("on", FEATURES_ON)):
            wall_min, prof, res = float("inf"), None, None
            for _ in range(args.repeats):
                result, wall, tracer = run_q(
                    algo, problem, q, args.budget, overrides
                )
                if wall < wall_min:
                    wall_min, res = wall, result
                    prof = overhead_profile(tracer, result.n_simulations)
            cell[label] = {
                "wall_s": wall_min,
                **prof,
                "best_value": res.best_value,
                "n_cycles": res.n_cycles,
                "n_simulations": res.n_simulations,
            }
        cell["speedup"] = cell["off"]["wall_s"] / cell["on"]["wall_s"]
        report["q"][str(q)] = cell
        print(f"q={q:2d}  overhead/eval off "
              f"{1e3 * cell['off']['overhead_s_per_eval']:6.1f}ms  on "
              f"{1e3 * cell['on']['overhead_s_per_eval']:6.1f}ms  "
              f"share {100 * cell['off']['overhead_share']:.1f}% -> "
              f"{100 * cell['on']['overhead_share']:.1f}%  "
              f"speedup {cell['speedup']:4.2f}x")

    # Bit-neutrality of the cache alone: identical config modulo the
    # factor_cache switch must reproduce the run bit for bit (the
    # refit_every/batch_starts knobs legitimately move low-order bits,
    # so they are held fixed at their defaults here).
    base = {"gp_options": {"refit_every": 1}, "acq_options": {}}
    res_on, _, _ = run_q(
        algo, problem, qs[-1], args.budget,
        {**base, "gp_options": {**base["gp_options"], "factor_cache": True}},
    )
    res_off, _, _ = run_q(
        algo, problem, qs[-1], args.budget,
        {**base, "gp_options": {**base["gp_options"], "factor_cache": False}},
    )
    neutral = _result_fingerprint(res_on) == _result_fingerprint(res_off)

    q_hi = report["q"][str(qs[-1])]
    reduced = (
        q_hi["on"]["overhead_s_per_eval"] < q_hi["off"]["overhead_s_per_eval"]
        and q_hi["on"]["overhead_share"] < q_hi["off"]["overhead_share"]
    )
    report["checks"] = {
        "q16_overhead_reduced": reduced,
        "cache_bit_neutral": neutral,
    }
    out = Path(args.out or "BENCH_pr9.json")
    out.write_text(json.dumps(report, indent=2) + "\n")
    print(f"\nwritten to {out} (q=16 overhead/eval "
          f"{1e3 * q_hi['off']['overhead_s_per_eval']:.1f}ms -> "
          f"{1e3 * q_hi['on']['overhead_s_per_eval']:.1f}ms, "
          f"cache neutral={neutral})")
    if not reduced:
        print("FAIL: q=16 fit+acquisition overhead did not drop")
        return 1
    if not neutral:
        print("FAIL: factor cache changed run results")
        return 1
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default=None)
    parser.add_argument("--budget", type=float, default=200.0,
                        help="virtual seconds per run")
    parser.add_argument("--dim", type=int, default=3)
    parser.add_argument("--repeats", type=int, default=5,
                        help="wall-time repetitions per mode (min is used)")
    parser.add_argument("--q-sweep", action="store_true",
                        help="A/B the factor-cache + batched-acquisition "
                             "features across q=1/4/16 instead of the "
                             "traced-vs-untraced overhead profile")
    parser.add_argument("--q-algorithm", default="kb_qego",
                        help="algorithm for the --q-sweep mode")
    args = parser.parse_args(argv)
    if args.q_sweep:
        return main_q_sweep(args)
    args.out = args.out or "BENCH_pr4.json"

    problem = get_benchmark("sphere", dim=args.dim, sim_time=10.0)
    report = {
        "bench": "timing_smoke",
        "budget": args.budget,
        "dim": args.dim,
        "python": platform.python_version(),
        "algorithms": {},
    }
    total_plain = total_traced = 0.0
    for algo in ALGORITHMS:
        # One warmup (JIT-warm numpy caches, page in the modules), then
        # interleaved min-of-N wall times per mode — interleaving keeps
        # CPU-frequency drift from biasing one mode over the other.
        run_once(algo, problem, args.budget, traced=False)
        plain_wall = traced_wall = float("inf")
        plain_result = tracer = traced_result = None
        for _ in range(args.repeats):
            result, wall, _ = run_once(algo, problem, args.budget,
                                       traced=False)
            if wall < plain_wall:
                plain_wall, plain_result = wall, result
            result, wall, trc = run_once(algo, problem, args.budget,
                                         traced=True)
            if wall < traced_wall:
                traced_wall, tracer, traced_result = wall, trc, result

        overhead = (traced_wall - plain_wall) / plain_wall
        total_plain += plain_wall
        total_traced += traced_wall
        phases = {
            name: {"count": row["count"], "median_s": row["median_s"],
                   "total_s": row["total_s"]}
            for name, row in phase_summary(tracer.spans).items()
        }
        neutral = (
            plain_result.best_value == traced_result.best_value
            and plain_result.n_simulations == traced_result.n_simulations
        )
        report["algorithms"][algo] = {
            "wall_untraced_s": plain_wall,
            "wall_traced_s": traced_wall,
            "overhead_frac": overhead,
            "rng_neutral": neutral,
            "best_value": traced_result.best_value,
            "n_cycles": traced_result.n_cycles,
            "n_spans": len(tracer.spans),
            "phases": phases,
        }
        print(f"{algo:10s}  untraced {plain_wall:6.2f}s  traced "
              f"{traced_wall:6.2f}s  overhead {100 * overhead:+5.1f}%  "
              f"neutral={neutral}")

    # Per-algorithm walls are sub-second, so single-cell overheads are
    # noise-bound (they come out negative as often as positive); the
    # acceptance gate is the aggregate over all five algorithms.
    overall = total_traced / total_plain - 1.0
    report["overall_overhead_frac"] = overall
    out = Path(args.out)
    out.write_text(json.dumps(report, indent=2) + "\n")
    print(f"\nwritten to {out} (aggregate overhead "
          f"{100 * overall:+.1f}%)")
    if not all(a["rng_neutral"] for a in report["algorithms"].values()):
        print("FAIL: tracing changed run results")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
