"""Instrumented timing smoke: per-phase medians + tracing overhead.

Usage::

    PYTHONPATH=src python scripts/timing_smoke.py [--out BENCH_pr4.json]
                                                  [--budget 80] [--dim 3]

Runs the paper's five algorithms (KB-q-EGO, mic-q-EGO, MC-based q-EGO,
BSP-EGO, TuRBO) on a fast benchmark twice each — once untraced, once
with the full observability stack (tracer + metrics) enabled — and
writes:

- per-algorithm, per-phase wall-second medians (fit / acq_optimize /
  fantasy_update / evaluate / checkpoint spans);
- the traced-vs-untraced wall-time overhead, which the PR's acceptance
  criterion requires to stay under 5% (the instrumentation budget);
- an equality check of the two runs' results — tracing must be
  RNG-neutral, so best value and evaluation counts must match bit
  for bit.

The result lands in ``BENCH_pr4.json`` so CI can archive the timing
profile per commit.
"""

from __future__ import annotations

import argparse
import json
import platform
import time
from pathlib import Path

from repro.core import make_optimizer, run_optimization
from repro.obs import (
    NULL_METRICS,
    NULL_TRACER,
    MetricsRegistry,
    Tracer,
    phase_summary,
    set_metrics,
    set_tracer,
)
from repro.problems import get_benchmark

ALGORITHMS = ("kb_qego", "mic_qego", "mc_qego", "bsp_ego", "turbo")

#: Keep the smoke fast: tiny inner-optimization budgets.
FAST = {
    "acq_options": {"n_restarts": 2, "raw_samples": 64, "maxiter": 25,
                    "n_mc": 64},
    "gp_options": {"n_restarts": 0, "maxiter": 30},
}


def run_once(algorithm, problem, budget, *, traced: bool, seed: int = 0):
    """One run; returns (result, wall_seconds, tracer-or-None)."""
    tracer = None
    if traced:
        tracer = Tracer()
        set_tracer(tracer)
        set_metrics(MetricsRegistry())
    else:
        set_tracer(NULL_TRACER)
        set_metrics(NULL_METRICS)
    try:
        optimizer = make_optimizer(algorithm, problem, 2, seed=seed, **FAST)
        t0 = time.perf_counter()
        result = run_optimization(
            problem, optimizer, budget, n_initial=6, seed=seed
        )
        wall = time.perf_counter() - t0
    finally:
        set_tracer(NULL_TRACER)
        set_metrics(NULL_METRICS)
    return result, wall, tracer


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="BENCH_pr4.json")
    parser.add_argument("--budget", type=float, default=200.0,
                        help="virtual seconds per run")
    parser.add_argument("--dim", type=int, default=3)
    parser.add_argument("--repeats", type=int, default=5,
                        help="wall-time repetitions per mode (min is used)")
    args = parser.parse_args(argv)

    problem = get_benchmark("sphere", dim=args.dim, sim_time=10.0)
    report = {
        "bench": "timing_smoke",
        "budget": args.budget,
        "dim": args.dim,
        "python": platform.python_version(),
        "algorithms": {},
    }
    total_plain = total_traced = 0.0
    for algo in ALGORITHMS:
        # One warmup (JIT-warm numpy caches, page in the modules), then
        # interleaved min-of-N wall times per mode — interleaving keeps
        # CPU-frequency drift from biasing one mode over the other.
        run_once(algo, problem, args.budget, traced=False)
        plain_wall = traced_wall = float("inf")
        plain_result = tracer = traced_result = None
        for _ in range(args.repeats):
            result, wall, _ = run_once(algo, problem, args.budget,
                                       traced=False)
            if wall < plain_wall:
                plain_wall, plain_result = wall, result
            result, wall, trc = run_once(algo, problem, args.budget,
                                         traced=True)
            if wall < traced_wall:
                traced_wall, tracer, traced_result = wall, trc, result

        overhead = (traced_wall - plain_wall) / plain_wall
        total_plain += plain_wall
        total_traced += traced_wall
        phases = {
            name: {"count": row["count"], "median_s": row["median_s"],
                   "total_s": row["total_s"]}
            for name, row in phase_summary(tracer.spans).items()
        }
        neutral = (
            plain_result.best_value == traced_result.best_value
            and plain_result.n_simulations == traced_result.n_simulations
        )
        report["algorithms"][algo] = {
            "wall_untraced_s": plain_wall,
            "wall_traced_s": traced_wall,
            "overhead_frac": overhead,
            "rng_neutral": neutral,
            "best_value": traced_result.best_value,
            "n_cycles": traced_result.n_cycles,
            "n_spans": len(tracer.spans),
            "phases": phases,
        }
        print(f"{algo:10s}  untraced {plain_wall:6.2f}s  traced "
              f"{traced_wall:6.2f}s  overhead {100 * overhead:+5.1f}%  "
              f"neutral={neutral}")

    # Per-algorithm walls are sub-second, so single-cell overheads are
    # noise-bound (they come out negative as often as positive); the
    # acceptance gate is the aggregate over all five algorithms.
    overall = total_traced / total_plain - 1.0
    report["overall_overhead_frac"] = overall
    out = Path(args.out)
    out.write_text(json.dumps(report, indent=2) + "\n")
    print(f"\nwritten to {out} (aggregate overhead "
          f"{100 * overall:+.1f}%)")
    if not all(a["rng_neutral"] for a in report["algorithms"].values()):
        print("FAIL: tracing changed run results")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
