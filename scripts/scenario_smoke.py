"""Scenario smoke: the workload family's CI acceptance matrix.

Usage::

    PYTHONPATH=src python scripts/scenario_smoke.py [--out BENCH_scenarios.json]
                                                    [--cycles 3] [--n-scenarios 4]

Runs the CI-sized acceptance experiment for ``repro.scenarios``:

1. **Golden reduction** — a single-plant / no-event / one-regime spec
   must build the plain ``UPHESSimulator`` and drive a bit-identical
   optimization trace (same incumbent trajectory, same journal modulo
   the journaled spec itself) as the pre-scenario path: the subsystem
   is RNG-neutral where it claims to be.
2. **Wrapper passthrough** — even the fleet wrapper, forced onto a
   degenerate spec, must delegate bit-exactly to its single plant.
3. **Event economics** — the injected outage can only lower profit
   against the same seed lineage without it.
4. **Matrix end-to-end** — a tiny 2-plant × 2-regime × 1-outage
   scenario (plus the paper reduction and the multi-objective mode)
   sweeps through the campaign matrix under the analytic time model.

The result lands in ``BENCH_scenarios.json`` so CI can assert and
archive it per commit.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import platform
import time
from pathlib import Path

import numpy as np

from repro.core import AnalyticTimeModel, make_optimizer, run_optimization
from repro.resilience import RunJournal, read_events
from repro.scenarios import (
    EventSpec,
    FleetSimulator,
    PlantSpec,
    RegimeSpec,
    ScenarioSpec,
    build_problem,
    compact,
    get_scenario,
    matrix_markdown,
    run_matrix,
)
from repro.uphes import UPHESSimulator

FAST = {
    "acq_options": {"n_restarts": 2, "raw_samples": 32, "maxiter": 15,
                    "n_mc": 32},
    "gp_options": {"n_restarts": 0, "maxiter": 20},
}
SEED = 1234
#: Measured wall seconds: the only journal fields allowed to differ.
VOLATILE_FIELDS = frozenset({"fit_time", "acq_time"})


def smoke_spec(n_scenarios: int) -> ScenarioSpec:
    """The CI matrix cell: 2 plants × 2 regimes × 1 outage."""
    return compact(
        ScenarioSpec(
            name="ci-smoke",
            plants=(
                PlantSpec(name="maizeret"),
                PlantSpec(
                    name="big-sister",
                    config={
                        "machine": {"p_turb_max": 10.0, "p_pump_max": 10.0}
                    },
                ),
            ),
            regimes=(
                RegimeSpec.named("winter-peak"),
                RegimeSpec.named("summer-flat"),
            ),
            events=(
                EventSpec(kind="outage", plant="maizeret",
                          start_hour=8.0, end_hour=12.0),
            ),
            price_impact=0.4,
        ),
        n_scenarios,
    )


def _journal_hash(events: list[dict]) -> str:
    canonical = [
        {k: v for k, v in ev.items() if k not in VOLATILE_FIELDS}
        for ev in events
    ]
    payload = json.dumps(canonical, sort_keys=True)
    return hashlib.sha256(payload.encode()).hexdigest()


def _golden_run(problem, journal_path, cycles: int):
    optimizer = make_optimizer("turbo", problem, 2, seed=SEED, **FAST)
    result = run_optimization(
        problem,
        optimizer,
        budget=1e9,
        n_initial=6,
        seed=SEED,
        max_cycles=cycles,
        time_model=AnalyticTimeModel(),
        journal=RunJournal(journal_path, fsync=False),
    )
    return result, read_events(journal_path)


def check_golden_reduction(tmp: Path, cycles: int, n_scenarios: int) -> dict:
    """Driver-level RNG-neutrality of the degenerate spec."""
    spec = compact(get_scenario("paper"), n_scenarios)
    reduced = build_problem(spec)
    plain = UPHESSimulator(
        config=spec.plants[0].resolve(), seed=spec.seed,
        sim_time=spec.sim_time,
    )
    builds_plain = isinstance(reduced, UPHESSimulator) and not isinstance(
        reduced, FleetSimulator
    )

    res_spec, ev_spec = _golden_run(reduced, tmp / "spec.jsonl", cycles)
    res_plain, ev_plain = _golden_run(plain, tmp / "plain.jsonl", cycles)

    trajectory_equal = (
        res_spec.best_value == res_plain.best_value
        and np.array_equal(res_spec.best_x, res_plain.best_x)
        and [r.best_value for r in res_spec.history]
        == [r.best_value for r in res_plain.history]
    )
    # run_started differs by exactly the journaled spec; all later
    # events (designs, batches, state snapshots, RNG streams) must
    # hash identically.
    cfg_spec = dict(ev_spec[0]["config"])
    spec_delta_only = cfg_spec.pop("problem_spec", None) == spec.to_dict() and (
        cfg_spec == ev_plain[0]["config"]
    )
    tail_equal = _journal_hash(ev_spec[1:]) == _journal_hash(ev_plain[1:])
    return {
        "builds_plain_simulator": bool(builds_plain),
        "trajectory_equal": bool(trajectory_equal),
        "spec_delta_only": bool(spec_delta_only),
        "journal_tail_equal": bool(tail_equal),
        "pass": bool(
            builds_plain and trajectory_equal and spec_delta_only
            and tail_equal
        ),
    }


def check_passthrough(n_scenarios: int) -> dict:
    """Forced fleet wrapper == inner plant, bit for bit."""
    fleet = FleetSimulator(compact(get_scenario("paper"), n_scenarios))
    inner = fleet._sims[0][0]
    rng = np.random.default_rng(SEED)
    X = rng.uniform(
        fleet.bounds[:, 0], fleet.bounds[:, 1], size=(32, fleet.dim)
    )
    ok = np.array_equal(fleet.evaluate(X), inner.evaluate(X))
    return {"pass": bool(ok)}


def check_outage_economics(n_scenarios: int) -> dict:
    """The injected outage can only lower profit (same lineage).

    Compared without the market-coupling term: with ``price_impact >
    0`` an outage legitimately *can* raise fleet profit (the outaged
    plant's lost injection lifts the price its sibling settles at).
    Even for price takers, a schedule that was committing at a *loss*
    inside the window can gain a little when the trip penalty undercuts
    the avoided bad trade — so the check is on the average cost over a
    random batch, with any pointwise gains bounded well below it.
    """
    base = {**smoke_spec(n_scenarios).to_dict(), "price_impact": 0.0}
    hit = FleetSimulator(ScenarioSpec.from_dict(base))
    clean = FleetSimulator(
        ScenarioSpec.from_dict({**base, "events": []})
    )
    rng = np.random.default_rng(SEED)
    X = rng.uniform(
        hit.bounds[:, 0], hit.bounds[:, 1], size=(32, hit.dim)
    )
    gap = clean.evaluate(X) - hit.evaluate(X)
    max_gain = float(-gap.min())
    mean_cost = float(gap.mean())
    return {
        "max_profit_gain_under_outage": max_gain,
        "mean_outage_cost": mean_cost,
        "pass": bool(mean_cost > 0.0 and max_gain < 0.1 * mean_cost),
    }


def run_smoke_matrix(cycles: int, n_scenarios: int) -> dict:
    result = run_matrix(
        scenarios=("paper", smoke_spec(n_scenarios), "mo"),
        algorithms=("turbo",),
        n_batch=2,
        n_cycles=cycles,
        seeds=(0,),
        n_scenarios=n_scenarios,
    )
    rows = result["rows"]
    finite = all(np.isfinite(r["best_profit"]) for r in rows)
    improved = sum(r["best_profit"] >= r["initial_best"] for r in rows)
    mo_rows = [r for r in rows if r["objective"] == "multi"]
    mo_ok = all(
        r["algorithm"] == "mo_bpi" and r["front_size"] >= 1 for r in mo_rows
    )
    result["checks"] = {
        "n_cells": len(rows),
        "all_finite": bool(finite),
        "cells_not_worse_than_initial": int(improved),
        "mo_cell_ok": bool(mo_ok),
        "pass": bool(finite and mo_ok and len(rows) == 3),
    }
    return result


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default="BENCH_scenarios.json")
    parser.add_argument("--tmp", default="/tmp/scenario-smoke")
    parser.add_argument("--cycles", type=int, default=3)
    parser.add_argument("--n-scenarios", type=int, default=4)
    args = parser.parse_args()
    tmp = Path(args.tmp)
    tmp.mkdir(parents=True, exist_ok=True)

    t0 = time.time()
    print("== golden reduction (degenerate spec vs plain simulator) ==")
    golden = check_golden_reduction(tmp, args.cycles, args.n_scenarios)
    print(json.dumps(golden, indent=2))

    print("== fleet wrapper passthrough ==")
    passthrough = check_passthrough(args.n_scenarios)
    print(json.dumps(passthrough, indent=2))

    print("== outage economics ==")
    outage = check_outage_economics(args.n_scenarios)
    print(json.dumps(outage, indent=2))

    print("== campaign matrix ==")
    matrix = run_smoke_matrix(args.cycles, args.n_scenarios)
    print(matrix_markdown(matrix))
    print(json.dumps(matrix["checks"], indent=2))

    record = {
        "host": platform.platform(),
        "python": platform.python_version(),
        "elapsed_s": round(time.time() - t0, 2),
        "params": {
            "cycles": args.cycles,
            "n_scenarios": args.n_scenarios,
            "seed": SEED,
        },
        "checks": {
            "golden_reduction_pass": golden["pass"],
            "passthrough_pass": passthrough["pass"],
            "outage_pass": outage["pass"],
            "matrix_pass": matrix["checks"]["pass"],
        },
        "golden": golden,
        "outage": outage,
        "matrix": matrix,
    }
    Path(args.out).write_text(json.dumps(record, indent=2))
    print(f"\nwrote {args.out} in {record['elapsed_s']}s")
    return 0 if all(record["checks"].values()) else 1


if __name__ == "__main__":
    raise SystemExit(main())
