"""End-to-end smoke test of the ask/tell service over real processes.

What the CI ``service-smoke`` job (and anyone locally) runs:

1. start ``repro serve`` as a subprocess with an on-disk session store;
2. create an Ackley-12 session with a short ``ask_timeout``;
3. launch four ``repro worker`` processes; one of them holds every
   ticket for 60 s (a stalled simulation) and is SIGKILLed mid-run —
   its outstanding ticket must requeue via the timeout sweep;
4. assert: the surviving workers finish the budget, **zero tickets are
   lost** (no pending work left, at least one requeue happened), and
   the final best improves on the initial design's best;
5. SIGTERM the server and assert a clean drain (exit code 0);
6. restart the server on the same store and assert the session resumes
   with the identical best-so-far.

Exits non-zero on the first violated assertion.

Usage::

    PYTHONPATH=src python scripts/service_smoke.py [--evals-per-worker N]
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import subprocess
import sys
import tempfile
import time
import urllib.request

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def request(url: str, method: str, path: str, payload=None, timeout=15):
    data = None if payload is None else json.dumps(payload).encode()
    req = urllib.request.Request(
        url + path, data=data, method=method,
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(req, timeout=timeout) as resp:
        return json.loads(resp.read())


def wait_ready(url: str, deadline_s: float = 30.0) -> None:
    t0 = time.time()
    while time.time() - t0 < deadline_s:
        try:
            request(url, "GET", "/status", timeout=2)
            return
        except Exception:
            time.sleep(0.2)
    raise RuntimeError("server did not become ready")


def start_server(store: str, env: dict) -> tuple[subprocess.Popen, str]:
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0",
         "--store", store, "--no-fsync", "--quiet"],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True, env=env,
    )
    line = proc.stdout.readline()
    if "serving on" not in line:
        proc.kill()
        raise RuntimeError(f"unexpected server banner: {line!r}")
    url = line.split()[2]
    wait_ready(url)
    return proc, url


def start_worker(url: str, env: dict, max_evals: int, hold: float = 0.0):
    return subprocess.Popen(
        [sys.executable, "-m", "repro", "worker", "--url", url,
         "--session", "smoke", "--max-evals", str(max_evals),
         "--hold", str(hold), "--backoff", "0.1", "--quiet"],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True, env=env,
    )


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--evals-per-worker", type=int, default=12)
    parser.add_argument("--ask-timeout", type=float, default=3.0)
    args = parser.parse_args()

    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO, "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    store = tempfile.mkdtemp(prefix="repro-service-smoke-")
    checks = 0

    def check(cond: bool, what: str) -> None:
        nonlocal checks
        checks += 1
        status = "ok" if cond else "FAIL"
        print(f"  [{status}] {what}", flush=True)
        if not cond:
            raise SystemExit(f"service smoke failed: {what}")

    print("== starting server ==", flush=True)
    server, url = start_server(store, env)
    try:
        request(url, "POST", "/sessions", {
            "name": "smoke", "problem": "ackley", "dim": 12,
            "algorithm": "turbo", "n_batch": 4, "seed": 0, "n_initial": 16,
            "ask_timeout": args.ask_timeout, "max_pending": 32,
        })

        print("== 4 workers, one doomed ==", flush=True)
        victim = start_worker(url, env, max_evals=100, hold=60.0)
        # Wait until the victim provably holds a ticket...
        t0 = time.time()
        while time.time() - t0 < 30:
            if request(url, "GET", "/sessions/smoke/status")["n_pending"] > 0:
                break
            time.sleep(0.2)
        check(request(url, "GET", "/sessions/smoke/status")["n_pending"] > 0,
              "victim worker holds a ticket")
        victim.kill()
        victim.wait()

        workers = [start_worker(url, env, max_evals=args.evals_per_worker)
                   for _ in range(3)]
        for w in workers:
            out, _ = w.communicate(timeout=600)
            check(w.returncode == 0, f"worker exited cleanly: {out.strip()!r}")

        status = request(url, "GET", "/sessions/smoke/status")
        counters = status["counters"]
        check(counters["requeues"] >= 1,
              f"killed worker's ticket requeued ({counters['requeues']})")
        check(status["n_pending"] == 0,
              "zero tickets lost (nothing pending at the end)")
        check(counters["tells"] >= 3 * args.evals_per_worker,
              f"budget completed ({counters['tells']} tells)")
        best = request(url, "GET", "/sessions/smoke/best")
        check(status["initialized"] and
              best["y"] <= status["initial_best"],
              f"improved on initial design "
              f"({status['initial_best']:.3f} -> {best['y']:.3f})")

        print("== SIGTERM drain ==", flush=True)
        server.send_signal(signal.SIGTERM)
        out, _ = server.communicate(timeout=60)
        check(server.returncode == 0, "server drained cleanly on SIGTERM")
        check("drained cleanly" in out, "drain banner printed")
        server = None
    finally:
        if server is not None:
            server.kill()
            server.wait()

    print("== restart from store ==", flush=True)
    server2, url2 = start_server(store, env)
    try:
        best2 = request(url2, "GET", "/sessions/smoke/best")
        status2 = request(url2, "GET", "/sessions/smoke/status")
        check(best2["y"] == best["y"] and best2["n_told"] == best["n_told"],
              "restarted server resumes identical best-so-far")
        check(status2["n_pending"] == status["n_pending"],
              "restarted server resumes the pending ledger")
        server2.send_signal(signal.SIGTERM)
        server2.communicate(timeout=60)
        check(server2.returncode == 0, "second drain clean")
        server2 = None
    finally:
        if server2 is not None:
            server2.kill()
            server2.wait()

    print(f"\nservice smoke: {checks} checks passed", flush=True)
    return 0


if __name__ == "__main__":
    sys.exit(main())
