"""Load + chaos harness for the sharded ask/tell fleet.

Drives a :class:`~repro.service.fleet.FleetSupervisor` (real shard
subprocesses behind the front-door router) with concurrent ask/tell
load threads, injects one fault mid-run, and publishes
``BENCH_service.json`` with throughput and p50/p99 ask latency split
into *before* / *during* / *after* failover windows, the measured
recovery time, and the per-session ticket ledger proving **zero
tickets were lost** across the fault.

Fault modes (``--fault``):

- ``sigkill`` — SIGKILL the shard owning the first session while that
  session provably has tickets in flight; the supervisor must detect
  the death, respawn the shard, and the restarted process must recover
  every session (pending ledger included) from its checkpoints;
- ``slow``    — SIGSTOP the same shard (alive-but-unresponsive) for a
  few heartbeats, then SIGCONT; the supervisor marks it suspect/dead
  and traffic resumes;
- ``none``    — pure load baseline (windows split by thirds).

Zero-lost criterion, per session, checked after a drain phase that
ask+tells until nothing is pending::

    asks == tells + requeues   and   n_pending == 0

Usage (the CI ``fleet-chaos`` job runs the small default)::

    PYTHONPATH=src python scripts/service_load.py \
        --shards 2 --sessions 2 --load-threads 4 --phase-s 5 \
        --fault sigkill --out BENCH_service.json
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import threading
import time

import numpy as np

from repro.service import FleetSupervisor, ServiceClient, ServiceClientError
from repro.service.client import CircuitOpenError


def percentile(values, q: float) -> float:
    if not values:
        return float("nan")
    return float(np.percentile(np.asarray(values, dtype=float), q))


class LoadThread(threading.Thread):
    """One closed-loop client: ask → evaluate (sphere) → tell, forever.

    Every op is recorded as ``(t_done, ask_latency_s | None, ok)`` so
    the harness can window the series around the fault afterwards. A
    failed ask (breaker open, shed, shard down past retries) is an
    error sample; a ticket whose tell ultimately fails stays pending on
    the shard and is recovered by the expiry sweep — the ledger check
    at the end accounts for it as a requeue, not a loss.
    """

    def __init__(self, url: str, sessions: list[str], stop: threading.Event,
                 seed: int):
        super().__init__(daemon=True)
        self.client = ServiceClient(
            url, timeout=10.0, max_retries=4, backoff=0.1,
            retry_backpressure=True,
        )
        self.sessions = sessions
        self.stop_event = stop
        self.rng = np.random.default_rng(seed)
        self.records: list[tuple[float, float | None, bool]] = []

    def run(self) -> None:
        i = 0
        while not self.stop_event.is_set():
            session = self.sessions[i % len(self.sessions)]
            i += 1
            t0 = time.monotonic()
            try:
                ticket, x = self.client.ask(session, 1)[0]
                ask_latency = time.monotonic() - t0
            except (ServiceClientError, CircuitOpenError, OSError):
                self.records.append((time.monotonic(), None, False))
                time.sleep(0.05)
                continue
            y = float(np.sum(np.square(x)))
            try:
                self.client.tell(session, ticket, y)
                self.records.append((time.monotonic(), ask_latency, True))
            except (ServiceClientError, CircuitOpenError, OSError):
                # Ticket left pending; the expiry sweep will requeue it.
                self.records.append((time.monotonic(), ask_latency, False))
                time.sleep(0.05)


def window_stats(records, t_from: float, t_to: float) -> dict:
    ops = [r for r in records if t_from <= r[0] < t_to]
    lat = [r[1] for r in ops if r[1] is not None and r[2]]
    span = max(t_to - t_from, 1e-9)
    return {
        "n_ops": len(ops),
        "n_ok": sum(1 for r in ops if r[2]),
        "n_errors": sum(1 for r in ops if not r[2]),
        "throughput_ops_s": round(len(ops) / span, 2),
        "ask_p50_ms": round(percentile(lat, 50) * 1e3, 2),
        "ask_p99_ms": round(percentile(lat, 99) * 1e3, 2),
    }


def wait_pending(client, session: str, timeout_s: float = 30.0) -> int:
    """Block until the session holds at least one in-flight ticket."""
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        n = client.session_status(session)["n_pending"]
        if n > 0:
            return n
        time.sleep(0.1)
    return 0


def drain_session(client, session: str, timeout_s: float = 60.0) -> dict:
    """Ask+tell until nothing is pending, then return the final status.

    Expired tickets are only swept back into the queue during ask/tell,
    so polling alone cannot drain — each cycle here both triggers the
    sweep and resolves one ticket immediately.
    """
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        status = client.session_status(session)
        if status["n_pending"] == 0:
            return status
        try:
            ticket, x = client.ask(session, 1)[0]
            client.tell(session, ticket, float(np.sum(np.square(x))))
        except (ServiceClientError, CircuitOpenError, OSError):
            time.sleep(0.25)
    return client.session_status(session)


def recovery_window(supervisor, victim: int, t_fault: float) -> float | None:
    """Wall seconds from the fault until the victim shard is healthy."""
    for event in supervisor.events:
        if (event["kind"] == "healthy" and event["shard"] == victim
                and event["t"] >= t_fault):
            return event["t"] - t_fault
    return None


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--shards", type=int, default=2)
    parser.add_argument("--sessions", type=int, default=2)
    parser.add_argument("--load-threads", type=int, default=4)
    parser.add_argument("--phase-s", type=float, default=5.0,
                        help="seconds of load before the fault and after "
                             "recovery (the measurement windows)")
    parser.add_argument("--fault", default="sigkill",
                        choices=("sigkill", "slow", "none"))
    parser.add_argument("--slow-s", type=float, default=4.0,
                        help="SIGSTOP duration for --fault slow")
    parser.add_argument("--ask-timeout", type=float, default=3.0,
                        help="session ticket expiry (drives requeue of "
                             "tickets orphaned by the fault)")
    parser.add_argument("--heartbeat", type=float, default=0.4)
    parser.add_argument("--max-missed", type=int, default=2)
    parser.add_argument("--p99-budget-ms", type=float, default=2000.0,
                        help="fail if the after-recovery ask p99 exceeds "
                             "this")
    parser.add_argument("--out", default="BENCH_service.json")
    parser.add_argument("--store", default=None,
                        help="fleet store dir (default: fresh tempdir)")
    args = parser.parse_args()

    checks: list[dict] = []

    def check(cond: bool, what: str) -> None:
        print(f"  [{'ok' if cond else 'FAIL'}] {what}", flush=True)
        checks.append({"check": what, "ok": bool(cond)})

    store = args.store or tempfile.mkdtemp(prefix="repro-fleet-load-")
    sessions = [f"load-{i}" for i in range(args.sessions)]
    supervisor = FleetSupervisor(
        args.shards, store,
        heartbeat_s=args.heartbeat,
        heartbeat_timeout_s=1.0,
        max_missed=args.max_missed,
        restart_backoff_s=0.2,
        max_inflight=128,
        max_queue=128,
    )
    print(f"== fleet: {args.shards} shards, store={store} ==", flush=True)
    t_run0 = time.time()
    with supervisor:
        url = supervisor.url
        print(f"router on {url}", flush=True)
        admin = ServiceClient(url, timeout=10.0, max_retries=4, backoff=0.1,
                              retry_backpressure=True)
        for name in sessions:
            admin.create_session(
                name, problem="sphere", dim=8, algorithm="random",
                n_batch=4, seed=0, n_initial=4,
                ask_timeout=args.ask_timeout, max_pending=64,
            )
        owners = {s: supervisor.router.ring.owner(s) for s in sessions}
        print(f"session -> shard: {owners}", flush=True)

        stop = threading.Event()
        threads = [
            LoadThread(url, sessions, stop, seed=1000 + i)
            for i in range(args.load_threads)
        ]
        for t in threads:
            t.start()

        print(f"== load: before window ({args.phase_s:.0f}s) ==", flush=True)
        time.sleep(args.phase_s)

        victim = owners[sessions[0]]
        t_fault = t_recovered = None
        if args.fault != "none":
            # The fault only proves anything if the victim shard holds
            # live tickets when it dies.
            n_pending = wait_pending(admin, sessions[0])
            check(n_pending > 0,
                  f"victim shard {victim} holds {n_pending} live "
                  f"ticket(s) at fault time")
            t_fault = time.time()
            if args.fault == "sigkill":
                print(f"== fault: SIGKILL shard {victim} ==", flush=True)
                supervisor.sigkill_shard(victim)
            else:
                print(f"== fault: SIGSTOP shard {victim} "
                      f"for {args.slow_s:.0f}s ==", flush=True)
                supervisor.pause_shard(victim)
                threading.Timer(
                    args.slow_s, supervisor.resume_shard, (victim,)
                ).start()
            deadline = time.time() + 120.0
            while time.time() < deadline:
                t_rec = recovery_window(supervisor, victim, t_fault)
                if t_rec is not None:
                    t_recovered = t_fault + t_rec
                    break
                time.sleep(0.1)
            check(t_recovered is not None,
                  "supervisor restarted the shard to healthy")
            if t_recovered is None:
                t_recovered = time.time()
            print(f"recovered in {t_recovered - t_fault:.2f}s", flush=True)

        print(f"== load: after window ({args.phase_s:.0f}s) ==", flush=True)
        time.sleep(args.phase_s)
        stop.set()
        for t in threads:
            t.join(timeout=30.0)

        print("== drain: resolve every outstanding ticket ==", flush=True)
        ledgers = {}
        zero_lost = True
        for name in sessions:
            status = drain_session(admin, name)
            counters = status["counters"]
            balanced = (counters["asks"]
                        == counters["tells"] + counters["requeues"])
            lost = status["n_pending"] != 0 or not balanced
            zero_lost = zero_lost and not lost
            ledgers[name] = {
                "shard": owners[name],
                "asks": counters["asks"],
                "tells": counters["tells"],
                "requeues": counters["requeues"],
                "expired_tells": counters.get("expired_tells", 0),
                "n_pending_final": status["n_pending"],
                "balanced": balanced,
            }
            check(not lost,
                  f"{name}: asks({counters['asks']}) == "
                  f"tells({counters['tells']}) + "
                  f"requeues({counters['requeues']}), pending 0")
        check(zero_lost, "zero tickets lost across the fleet")

        records = [r for t in threads for r in t.records]
        records.sort(key=lambda r: r[0])
        # Convert wall-clock fault instants to the monotonic timeline
        # the records use.
        mono_now, wall_now = time.monotonic(), time.time()
        to_mono = lambda w: w - wall_now + mono_now  # noqa: E731
        t_lo = records[0][0] if records else 0.0
        t_hi = (records[-1][0] + 1e-9) if records else 1.0
        if t_fault is not None:
            m_fault, m_rec = to_mono(t_fault), to_mono(t_recovered)
        else:
            span = (t_hi - t_lo) / 3.0
            m_fault, m_rec = t_lo + span, t_lo + 2 * span
        phases = {
            "before": window_stats(records, t_lo, m_fault),
            "during": window_stats(records, m_fault, m_rec),
            "after": window_stats(records, m_rec, t_hi),
        }
        for name, stats in phases.items():
            print(f"  {name:<7s} {stats['n_ops']:5d} ops "
                  f"({stats['n_errors']} errors) "
                  f"{stats['throughput_ops_s']:8.1f} ops/s "
                  f"p50 {stats['ask_p50_ms']:7.1f} ms "
                  f"p99 {stats['ask_p99_ms']:7.1f} ms", flush=True)
        if phases["after"]["n_ok"]:
            check(phases["after"]["ask_p99_ms"] <= args.p99_budget_ms,
                  f"after-recovery ask p99 "
                  f"{phases['after']['ask_p99_ms']:.1f} ms within "
                  f"{args.p99_budget_ms:.0f} ms budget")
        check(phases["before"]["n_ok"] > 0, "load ran before the fault")
        check(phases["after"]["n_ok"] > 0, "load ran after recovery")

        bench = {
            "bench": "service_fleet_chaos",
            "config": {
                "shards": args.shards,
                "sessions": args.sessions,
                "load_threads": args.load_threads,
                "phase_s": args.phase_s,
                "fault": args.fault,
                "ask_timeout": args.ask_timeout,
                "heartbeat_s": args.heartbeat,
                "max_missed": args.max_missed,
            },
            "fault": {
                "mode": args.fault,
                "victim_shard": victim if args.fault != "none" else None,
                "recovery_s": (round(t_recovered - t_fault, 3)
                               if t_fault is not None else None),
            },
            "phases": phases,
            "ledgers": ledgers,
            "zero_lost": zero_lost,
            "supervisor_events": [
                {k: (round(v, 3) if isinstance(v, float) else v)
                 for k, v in e.items()}
                for e in supervisor.events
            ],
            "checks": checks,
            "elapsed_s": round(time.time() - t_run0, 2),
        }

    with open(args.out, "w") as fh:
        json.dump(bench, fh, indent=2)
    print(f"\nbench written to {args.out}", flush=True)

    failed = [c["check"] for c in checks if not c["ok"]]
    if failed:
        print(f"service load FAILED: {failed}", flush=True)
        return 1
    print(f"service load: {len(checks)} checks passed", flush=True)
    return 0


if __name__ == "__main__":
    sys.exit(main())
