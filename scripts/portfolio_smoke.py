"""Portfolio smoke: bandit portfolio vs fixed arms + chaos injection.

Usage::

    PYTHONPATH=src python scripts/portfolio_smoke.py [--out BENCH_portfolio.json]
                                                     [--budget 120] [--workers 8]

Runs the CI-sized acceptance experiment for the portfolio subsystem on
three problems (two benchmarks + the UPHES plant), all at ``q`` workers
under one virtual budget with ``time_scale=0`` (measured overheads do
not perturb the virtual schedule, so every number below is exactly
reproducible):

1. **Portfolio vs fixed arms** — the full bandit portfolio against
   each fixed strategy run through the *same* completion-driven driver
   (single-arm portfolios: identical scheduling, no adaptivity). The
   check: portfolio final regret matches or beats the best fixed arm's
   (within 10% of its regret plus 2% of the observed spread) on at
   least 2 of the 3 problems.
2. **Idle share** — the portfolio's worker idle share must be lower
   than the batch-synchronous driver's (KB-q-EGO, PR-4 cluster
   accounting) on every problem.
3. **Chaos** — a run with an injected always-failing arm must
   quarantine it, still converge, and lose zero evaluations.
4. **Kill/resume** — the final journaled ``portfolio_state`` snapshot
   must rebuild the allocator's counters bit-identically, and a
   re-run from the same seed must replay the identical arm sequence.

The result lands in ``BENCH_portfolio.json`` so CI can assert and
archive it per commit.
"""

from __future__ import annotations

import argparse
import json
import platform
import time
from pathlib import Path

from repro.core import KBqEGO, run_optimization
from repro.obs import MetricsRegistry, set_metrics
from repro.portfolio import BanditAllocator, run_portfolio_optimization
from repro.portfolio.arms import DEFAULT_ARMS, FailingArm
from repro.problems import CountingProblem, get_benchmark
from repro.resilience import RunJournal
from repro.uphes import UPHESSimulator

#: Keep the smoke fast: tiny inner-optimization budgets.
FAST = {
    "gp_options": {"n_restarts": 0, "maxiter": 25},
    "acq_options": {"n_restarts": 2, "raw_samples": 64, "maxiter": 25},
}
FIXED_ARMS = ("kb", "turbo", "random")
SYNC_ACQ = {**FAST["acq_options"], "n_mc": 64}


def make_problems(sim_time: float):
    return {
        "ackley": lambda: get_benchmark("ackley", dim=6, sim_time=sim_time),
        "rosenbrock": lambda: get_benchmark("rosenbrock", dim=6,
                                            sim_time=sim_time),
        "uphes": lambda: UPHESSimulator(seed=0, sim_time=sim_time),
    }


def score(result) -> float:
    """Final objective in minimization orientation (lower is better)."""
    return -result.best_value if result.maximize else result.best_value


def run_portfolio(factory, workers, budget, n_initial, *, arms=DEFAULT_ARMS,
                  seed=0, journal=None, **kwargs):
    return run_portfolio_optimization(
        factory(), workers, budget, arms=arms, n_initial=n_initial,
        seed=seed, time_scale=0.0, refit_every=2, journal=journal,
        **FAST, **kwargs,
    )


def run_sync(factory, workers, budget, n_initial):
    """Batch-synchronous KB-q-EGO + its busy/idle share (PR-4 metrics)."""
    problem = factory()
    opt = KBqEGO(problem, workers, seed=0,
                 gp_options=FAST["gp_options"], acq_options=SYNC_ACQ)
    metrics = MetricsRegistry()
    prev = set_metrics(metrics)
    try:
        res = run_optimization(problem, opt, budget, n_initial=n_initial,
                               time_scale=0.0, seed=0)
    finally:
        set_metrics(prev)
    busy = metrics.counter("cluster.busy_virtual_s").value
    idle = metrics.counter("cluster.idle_virtual_s").value
    total = busy + idle
    idle_share = idle / total if total > 0 else 1.0
    return res, idle_share


def chaos_check(workers, budget, n_initial, journal_path):
    """Injected always-failing arm: quarantined, converged, no losses."""
    problem = CountingProblem(get_benchmark("ackley", dim=6, sim_time=10.0))
    journal = RunJournal(journal_path, fsync=False)
    res = run_portfolio_optimization(
        problem, workers, budget,
        arms=(*DEFAULT_ARMS, FailingArm(problem)),
        allocator_options={"max_sick": 2, "quarantine": 8},
        n_initial=n_initial, seed=0, time_scale=0.0, refit_every=2,
        journal=journal, **FAST,
    )
    events = journal.events()
    stats = res.arm_stats["failing"]
    return {
        "failing_arm_failures": stats["failures"],
        "failing_arm_quarantines": stats["quarantines"],
        "quarantine_journaled": any(
            e["event"] == "arm_quarantined" for e in events
        ),
        "converged": bool(res.best_value < res.initial_best),
        "zero_lost_evaluations": bool(
            problem.n_evals == res.n_initial + res.n_simulations
        ),
        "n_simulations": res.n_simulations,
        "best_value": res.best_value,
    }


def resume_check(workers, budget, n_initial, journal_path):
    """Allocator counters replay bit-identically across kill/resume."""
    factory = make_problems(10.0)["ackley"]
    journal = RunJournal(journal_path, fsync=False)
    first = run_portfolio(factory, workers, budget, n_initial,
                          journal=journal)
    snaps = [e for e in journal.events() if e["event"] == "portfolio_state"]
    resumed = BanditAllocator(list(first.arm_names))
    resumed.set_state(snaps[-1]["allocator"])
    counters_match = resumed.stats() == first.arm_stats

    second = run_portfolio(factory, workers, budget, n_initial)
    same_arm_sequence = (
        [r.arm for r in first.history] == [r.arm for r in second.history]
    )
    same_best = first.best_value == second.best_value
    return {
        "n_snapshots": len(snaps),
        "counters_bit_identical": bool(counters_match),
        "rerun_same_arm_sequence": bool(same_arm_sequence),
        "rerun_same_best": bool(same_best),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default="BENCH_portfolio.json")
    parser.add_argument("--budget", type=float, default=120.0)
    parser.add_argument("--workers", type=int, default=8)
    parser.add_argument("--n-initial", type=int, default=24)
    parser.add_argument("--sim-time", type=float, default=10.0)
    parser.add_argument("--tmp", default=None,
                        help="directory for scratch journals (default: cwd)")
    args = parser.parse_args(argv)
    tmp = Path(args.tmp) if args.tmp else Path(".")
    tmp.mkdir(parents=True, exist_ok=True)
    t_start = time.time()

    problems = make_problems(args.sim_time)
    per_problem = {}
    n_portfolio_wins = 0
    for name, factory in problems.items():
        print(f"[{name}] portfolio ...", flush=True)
        port = run_portfolio(factory, args.workers, args.budget,
                             args.n_initial)
        fixed = {}
        for arm in FIXED_ARMS:
            print(f"[{name}] fixed arm {arm} ...", flush=True)
            fixed[arm] = run_portfolio(factory, args.workers, args.budget,
                                       args.n_initial, arms=(arm,))
        print(f"[{name}] batch-synchronous reference ...", flush=True)
        sync_res, sync_idle = run_sync(factory, args.workers, args.budget,
                                       args.n_initial)

        scores = {arm: score(r) for arm, r in fixed.items()}
        port_score = score(port)
        optimum = getattr(factory(), "optimum", None)
        floor = (
            float(optimum) if optimum is not None
            else min([port_score, *scores.values(), score(sync_res)])
        )
        regrets = {arm: s - floor for arm, s in scores.items()}
        port_regret = port_score - floor
        best_fixed = min(regrets.values())
        spread = max(regrets.values()) - best_fixed
        tol = 0.10 * best_fixed + 0.02 * spread + 1e-9
        matches = bool(port_regret <= best_fixed + tol)
        n_portfolio_wins += matches

        per_problem[name] = {
            "portfolio": {
                "best_value": port.best_value,
                "regret": port_regret,
                "n_simulations": port.n_simulations,
                "idle_share": port.idle_share,
                "arm_selections": {
                    a: s["selections"] for a, s in port.arm_stats.items()
                },
            },
            "fixed": {
                arm: {
                    "best_value": fixed[arm].best_value,
                    "regret": regrets[arm],
                    "n_simulations": fixed[arm].n_simulations,
                }
                for arm in FIXED_ARMS
            },
            "sync": {
                "best_value": sync_res.best_value,
                "n_simulations": sync_res.n_simulations,
                "idle_share": sync_idle,
            },
            "portfolio_matches_best_fixed": matches,
            "portfolio_idle_below_sync": bool(port.idle_share < sync_idle),
        }
        print(f"[{name}] portfolio regret {port_regret:.3f} vs best fixed "
              f"{best_fixed:.3f} (match={matches}); idle "
              f"{port.idle_share:.1%} vs sync {sync_idle:.1%}", flush=True)

    print("[chaos] failing-arm injection ...", flush=True)
    chaos = chaos_check(args.workers, args.budget, args.n_initial,
                        tmp / "portfolio_chaos.jsonl")
    print("[resume] allocator kill/resume replay ...", flush=True)
    resume = resume_check(args.workers, 60.0, args.n_initial,
                          tmp / "portfolio_resume.jsonl")

    record = {
        "schema": 1,
        "config": {
            "workers": args.workers,
            "budget": args.budget,
            "n_initial": args.n_initial,
            "sim_time": args.sim_time,
            "arms": list(DEFAULT_ARMS),
            "fixed_baselines": list(FIXED_ARMS),
            "time_scale": 0.0,
        },
        "platform": {
            "python": platform.python_version(),
            "machine": platform.machine(),
        },
        "problems": per_problem,
        "chaos": chaos,
        "resume": resume,
        "checks": {
            "portfolio_matches_best_fixed_count": n_portfolio_wins,
            "portfolio_matches_best_fixed_on_2_of_3": n_portfolio_wins >= 2,
            "idle_below_sync_everywhere": all(
                p["portfolio_idle_below_sync"] for p in per_problem.values()
            ),
            "chaos_pass": bool(
                chaos["failing_arm_quarantines"] >= 1
                and chaos["quarantine_journaled"]
                and chaos["converged"]
                and chaos["zero_lost_evaluations"]
            ),
            "resume_pass": bool(
                resume["counters_bit_identical"]
                and resume["rerun_same_arm_sequence"]
                and resume["rerun_same_best"]
            ),
        },
        "wall_seconds": round(time.time() - t_start, 2),
    }
    Path(args.out).write_text(json.dumps(record, indent=2) + "\n")
    print(f"\nwrote {args.out} in {record['wall_seconds']:.0f}s")
    for key, val in record["checks"].items():
        print(f"  {key}: {val}")
    failed = [
        k for k, v in record["checks"].items()
        if isinstance(v, bool) and not v
    ]
    if failed:
        print(f"FAILED checks: {failed}")
        return 1
    print("all checks passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
