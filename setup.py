"""Legacy setup shim.

The primary build configuration lives in ``pyproject.toml``. This file
exists so that ``pip install -e .`` works on environments whose
setuptools lacks PEP 660 editable-wheel support (no ``wheel`` package
installed), falling back to the classic develop install.
"""

from setuptools import setup

setup()
