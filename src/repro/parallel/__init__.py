"""Parallel-evaluation substrate.

The paper runs its five algorithms under a hard *wall-clock* budget on
a 16-core node with MPI4Py, where each UPHES simulation costs ~10 s.
This package reproduces that experimental machinery:

- :mod:`repro.parallel.clock` — virtual and wall clocks sharing one
  interface, so the same driver runs real experiments and fast,
  deterministic replays;
- :mod:`repro.parallel.simcluster` — a virtual-clock batch executor
  modelling ``n`` workers plus the paper's parallel-call overhead;
- :mod:`repro.parallel.executor` — real serial / thread / process
  executors behind one protocol;
- :mod:`repro.parallel.comm` — an in-process MPI-style communicator
  and the master–worker evaluation service the paper built on MPI4Py.
"""

from repro.parallel.clock import Clock, VirtualClock, WallClock
from repro.parallel.comm import Communicator, MasterWorkerEvaluator, run_mpi
from repro.parallel.executor import (
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
)
from repro.parallel.simcluster import OverheadModel, SimulatedCluster, lpt_makespan
from repro.parallel.supervision import RuntimeQuantiles

__all__ = [
    "Clock",
    "Communicator",
    "MasterWorkerEvaluator",
    "OverheadModel",
    "ProcessExecutor",
    "RuntimeQuantiles",
    "SerialExecutor",
    "SimulatedCluster",
    "ThreadExecutor",
    "VirtualClock",
    "WallClock",
    "lpt_makespan",
    "run_mpi",
]
