"""Executor supervision: adaptive per-evaluation timeouts.

A static timeout limit must be provisioned for the slowest plausible
simulation, so every hung run wastes that entire worst case. Production
schedulers instead learn the runtime distribution and kill stragglers a
small multiple past a high quantile of *observed* runtimes.

:class:`RuntimeQuantiles` is that estimator: feed it every completed
evaluation's duration and ask :meth:`timeout` for the effective limit —
``multiplier × quantile`` of the recent window once ``min_samples``
completions are available, never exceeding the static limit it refines.
On the virtual-clock cluster the saved waiting is virtual seconds
returned to the optimization budget.

The windowed quantile estimation itself lives in
:class:`repro.obs.metrics.StreamingQuantiles` — the same estimator the
observability layer's histograms use — so supervision and metrics agree
on what "the p95 runtime" means (one implementation, one property
suite).
"""

from __future__ import annotations

from repro.obs.metrics import StreamingQuantiles
from repro.util import ConfigurationError


class RuntimeQuantiles:
    """Streaming runtime-quantile tracker for adaptive timeouts.

    Parameters
    ----------
    quantile:
        Runtime quantile the timeout is anchored on (default 0.95).
    multiplier:
        Safety factor applied to the quantile (default 3.0): an
        evaluation is declared hung only when it exceeds several times
        the typical slow run.
    min_samples:
        Completions required before the estimate is trusted; until
        then :meth:`timeout` returns the static default unchanged.
    window:
        Number of most-recent observations kept, so the estimate
        tracks drift in the runtime distribution.
    """

    def __init__(
        self,
        quantile: float = 0.95,
        multiplier: float = 3.0,
        min_samples: int = 8,
        window: int = 256,
    ):
        if not 0.0 < quantile < 1.0:
            raise ConfigurationError(f"quantile must be in (0, 1), got {quantile}")
        if multiplier < 1.0:
            raise ConfigurationError(
                f"multiplier must be >= 1, got {multiplier}"
            )
        if min_samples < 1:
            raise ConfigurationError(
                f"min_samples must be >= 1, got {min_samples}"
            )
        if window < min_samples:
            raise ConfigurationError(
                f"window must be >= min_samples, got {window} < {min_samples}"
            )
        self.quantile = float(quantile)
        self.multiplier = float(multiplier)
        self.min_samples = int(min_samples)
        self.window = int(window)
        self._stream = StreamingQuantiles(window=self.window)

    @property
    def n_samples(self) -> int:
        return len(self._stream)

    def observe(self, duration: float) -> None:
        """Record one completed evaluation's duration (seconds)."""
        duration = float(duration)
        if duration < 0:
            raise ConfigurationError(f"duration must be >= 0, got {duration}")
        self._stream.observe(duration)

    def quantile_value(self) -> float | None:
        """Current runtime quantile, or None before any observation."""
        return self._stream.quantile(self.quantile)

    def timeout(self, default: float) -> float:
        """Effective timeout: learned limit, capped by the static one."""
        if len(self._stream) < self.min_samples:
            return float(default)
        return min(float(default), self.multiplier * self.quantile_value())
