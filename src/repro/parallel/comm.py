"""In-process MPI-style message passing.

The paper parallelizes with MPI4Py in a master–worker layout: rank 0
runs the Bayesian optimization loop and scatters candidate batches to
worker ranks, which run the simulator and send profits back. MPI is not
available in this environment, so this module provides a faithful
in-process substitute: ranks are threads, each with a mailbox per peer,
and the familiar primitives (``send``/``recv``/``bcast``/``scatter``/
``gather``/``barrier``) have MPI semantics (blocking, ordered per
sender–receiver pair).

It is genuinely concurrent (thread-based), so with a simulator that
releases the GIL — or simply sleeps, like a licensed external binary —
the master–worker service exhibits real batch parallelism.
"""

from __future__ import annotations

import queue
import threading
from typing import Any, Callable

import numpy as np

from repro.util import ConfigurationError

#: Matches MPI_ANY_SOURCE.
ANY_SOURCE = -1
_DEFAULT_TAG = 0

# Sentinel shutting down the worker loop of MasterWorkerEvaluator.
_STOP = object()


class Communicator:
    """A fixed-size communicator shared by ``size`` rank endpoints.

    Construct once, then hand ``rank_view(r)`` to each rank's code.
    Mailboxes are per (source, destination, tag) FIFO queues, so
    messages between a pair of ranks with one tag never reorder —
    matching MPI's non-overtaking guarantee.
    """

    def __init__(self, size: int):
        if size < 1:
            raise ConfigurationError(f"size must be >= 1, got {size}")
        self.size = int(size)
        self._boxes: dict[tuple[int, int, int], queue.Queue] = {}  # guarded-by: self._boxes_lock
        self._boxes_lock = threading.Lock()
        self._barrier = threading.Barrier(self.size)

    def _box(self, src: int, dst: int, tag: int) -> queue.Queue:
        key = (src, dst, tag)
        with self._boxes_lock:
            if key not in self._boxes:
                self._boxes[key] = queue.Queue()
            return self._boxes[key]

    def _check_rank(self, rank: int, name: str) -> int:
        if not (0 <= rank < self.size):
            raise ConfigurationError(
                f"{name}={rank} out of range for communicator of size {self.size}"
            )
        return int(rank)

    def rank_view(self, rank: int) -> "RankView":
        """The endpoint object rank ``rank``'s code communicates with."""
        return RankView(self, self._check_rank(rank, "rank"))


class RankView:
    """One rank's endpoint: mirrors the mpi4py lowercase API."""

    def __init__(self, comm: Communicator, rank: int):
        self._comm = comm
        self.rank = rank

    @property
    def size(self) -> int:
        return self._comm.size

    # -- point to point -------------------------------------------------
    def send(self, obj: Any, dest: int, tag: int = _DEFAULT_TAG) -> None:
        self._comm._check_rank(dest, "dest")
        self._comm._box(self.rank, dest, tag).put(obj)

    def recv(
        self, source: int = ANY_SOURCE, tag: int = _DEFAULT_TAG,
        timeout: float | None = 30.0,
    ) -> Any:
        """Blocking receive; ``ANY_SOURCE`` polls every peer fairly.

        A ``timeout`` (default 30 s) guards against deadlocks in user
        code — raising ``TimeoutError`` beats hanging a test suite.
        """
        if source != ANY_SOURCE:
            self._comm._check_rank(source, "source")
            try:
                return self._comm._box(source, self.rank, tag).get(timeout=timeout)
            except queue.Empty:
                raise TimeoutError(
                    f"rank {self.rank} timed out receiving from {source}"
                ) from None
        import time as _time

        # Thread-transport receive timeout: real threads block in real
        # time here, exactly like the service layer's socket timeouts.
        # repro-lint: disable=CLK-001
        deadline = None if timeout is None else _time.monotonic() + timeout
        while True:
            for src in range(self._comm.size):
                box = self._comm._box(src, self.rank, tag)
                try:
                    return box.get_nowait()
                except queue.Empty:
                    continue
            # repro-lint: disable=CLK-001 (transport timeout, see above)
            if deadline is not None and _time.monotonic() > deadline:
                raise TimeoutError(f"rank {self.rank} timed out on ANY_SOURCE")
            _time.sleep(1e-4)

    # -- collectives -----------------------------------------------------
    def bcast(self, obj: Any, root: int = 0) -> Any:
        self._comm._check_rank(root, "root")
        if self.rank == root:
            for dst in range(self.size):
                if dst != root:
                    self.send(obj, dst, tag=-2)
            return obj
        return self.recv(source=root, tag=-2)

    def scatter(self, chunks, root: int = 0) -> Any:
        self._comm._check_rank(root, "root")
        if self.rank == root:
            if len(chunks) != self.size:
                raise ConfigurationError(
                    f"scatter needs {self.size} chunks, got {len(chunks)}"
                )
            own = None
            for dst, chunk in enumerate(chunks):
                if dst == root:
                    own = chunk
                else:
                    self.send(chunk, dst, tag=-3)
            return own
        return self.recv(source=root, tag=-3)

    def gather(self, obj: Any, root: int = 0) -> list | None:
        self._comm._check_rank(root, "root")
        if self.rank == root:
            out: list[Any] = [None] * self.size
            out[root] = obj
            for src in range(self.size):
                if src != root:
                    out[src] = self.recv(source=src, tag=-4)
            return out
        self.send(obj, root, tag=-4)
        return None

    def barrier(self) -> None:
        self._comm._barrier.wait()


def run_mpi(fn: Callable[[RankView], Any], size: int, timeout: float = 60.0) -> list:
    """Run ``fn(rank_view)`` on ``size`` thread-ranks; gather returns.

    The in-process analogue of ``mpiexec -n size python script.py``.
    Exceptions in any rank are re-raised in the caller after all ranks
    finish or the timeout elapses.
    """
    comm = Communicator(size)
    results: list[Any] = [None] * size
    errors: list[BaseException | None] = [None] * size

    def target(rank: int) -> None:
        try:
            results[rank] = fn(comm.rank_view(rank))
        except BaseException as exc:  # noqa: BLE001 - reported to caller
            errors[rank] = exc

    threads = [
        threading.Thread(target=target, args=(r,), name=f"mpi-rank-{r}")
        for r in range(size)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=timeout)
    alive = [t.name for t in threads if t.is_alive()]
    if alive:
        raise TimeoutError(f"ranks did not finish: {alive}")
    for exc in errors:
        if exc is not None:
            raise exc
    return results


class MasterWorkerEvaluator:
    """Master–worker batch evaluation over a :class:`Communicator`.

    The layout of the paper's MPI4Py harness: worker ranks sit in a
    service loop evaluating points; the master (the BO loop) calls
    :meth:`evaluate` with a batch and receives the objective values.
    Results are reassembled in submission order regardless of worker
    completion order.

    Use as a context manager, or call :meth:`shutdown` explicitly.
    """

    def __init__(self, problem, n_workers: int):
        if n_workers < 1:
            raise ConfigurationError(f"n_workers must be >= 1, got {n_workers}")
        self.problem = problem
        self.n_workers = int(n_workers)
        self._comm = Communicator(n_workers + 1)
        self._master = self._comm.rank_view(0)
        self._threads = [
            threading.Thread(
                target=self._worker_loop, args=(r,), name=f"worker-{r}", daemon=True
            )
            for r in range(1, n_workers + 1)
        ]
        for t in self._threads:
            t.start()

    def _worker_loop(self, rank: int) -> None:
        view = self._comm.rank_view(rank)
        while True:
            msg = view.recv(source=0, timeout=None)
            if msg is _STOP:
                return
            index, x = msg
            y = float(self.problem(np.asarray(x)[None, :])[0])
            view.send((index, y), dest=0)

    def evaluate(self, X) -> np.ndarray:
        """Evaluate the rows of ``X`` across the workers."""
        X = np.asarray(X, dtype=np.float64)
        if X.ndim == 1:
            X = X[None, :]
        n = X.shape[0]
        for i in range(n):
            worker = 1 + (i % self.n_workers)
            self._master.send((i, X[i]), dest=worker)
        y = np.empty(n, dtype=np.float64)
        for _ in range(n):
            index, value = self._master.recv(source=ANY_SOURCE)
            y[index] = value
        return y

    def shutdown(self) -> None:
        for r in range(1, self.n_workers + 1):
            self._master.send(_STOP, dest=r)
        for t in self._threads:
            t.join(timeout=10.0)

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.shutdown()
        return False
