"""Real executors behind one tiny protocol.

These evaluate a problem over a batch of points using actual
parallelism (threads or processes). The virtual-clock experiments use
:class:`repro.parallel.simcluster.SimulatedCluster` instead; the real
executors exist for users who plug in genuinely expensive simulators,
and to exercise the batch-evaluation code path with true concurrency in
the test suite.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor

import numpy as np

from repro.obs.tracer import trace_span
from repro.util import ConfigurationError, check_matrix


class SerialExecutor:
    """Evaluate the whole batch in the calling thread (one call)."""

    n_workers = 1

    def evaluate(self, problem, X) -> np.ndarray:
        X = check_matrix(X, "X", cols=problem.dim)
        with trace_span("executor", kind="serial", q=X.shape[0]):
            return problem(X)

    def shutdown(self) -> None:
        """Nothing to release."""

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.shutdown()
        return False


class _PoolExecutor:
    """Shared logic for thread/process pools: one row per task.

    The pool is created lazily on first :meth:`evaluate` and released
    by :meth:`shutdown`; a shut-down executor is dead — evaluating on
    it raises instead of silently spinning up a fresh pool behind the
    caller's back (a leak magnet in ``with``-managed code).
    """

    def __init__(self, n_workers: int):
        if n_workers < 1:
            raise ConfigurationError(f"n_workers must be >= 1, got {n_workers}")
        self.n_workers = int(n_workers)
        self._pool = None
        self._closed = False

    def _make_pool(self):
        raise NotImplementedError

    def evaluate(self, problem, X) -> np.ndarray:
        if self._closed:
            raise ConfigurationError(
                f"{type(self).__name__} has been shut down; create a new "
                "executor instead of reusing a closed one"
            )
        X = check_matrix(X, "X", cols=problem.dim)
        if self._pool is None:
            self._pool = self._make_pool()
        with trace_span("executor", kind=type(self).__name__,
                        q=X.shape[0], n_workers=self.n_workers):
            rows = [X[i : i + 1] for i in range(X.shape[0])]
            results = list(self._pool.map(problem, rows))
            return np.concatenate([np.atleast_1d(r) for r in results])

    def shutdown(self) -> None:
        self._closed = True
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.shutdown()
        return False


class ThreadExecutor(_PoolExecutor):
    """Thread-pool batch evaluation.

    Appropriate when the objective releases the GIL (NumPy-heavy
    simulators) or wraps an external process.
    """

    def _make_pool(self):
        return ThreadPoolExecutor(max_workers=self.n_workers)


class ProcessExecutor(_PoolExecutor):
    """Process-pool batch evaluation.

    The problem object must be picklable. Worth it only when a single
    evaluation costs far more than the fork/pickle overhead.
    """

    def _make_pool(self):
        return ProcessPoolExecutor(max_workers=self.n_workers)
