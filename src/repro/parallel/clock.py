"""Clocks: the time-accounting backbone of the experiments.

The paper's budget is wall-clock time (20 minutes) with ~10 s
simulations, so the *ratio* of acquisition overhead to simulation time
is the quantity under study. :class:`VirtualClock` lets the driver
charge simulation seconds without sleeping through them, making a
cluster-day of experiments reproducible on a laptop in minutes —
without changing any algorithm code, since :class:`WallClock` exposes
the same interface for real runs.
"""

from __future__ import annotations

import time

from repro.util import ValidationError


class Clock:
    """Minimal clock interface: read :attr:`now`, ``advance`` seconds."""

    @property
    def now(self) -> float:
        raise NotImplementedError

    def advance(self, seconds: float) -> None:
        raise NotImplementedError


class VirtualClock(Clock):
    """A clock that moves only when told to.

    ``advance`` is the only mutator; time never flows on its own, which
    makes every experiment bit-for-bit reproducible.
    """

    def __init__(self, start: float = 0.0):
        self._now = float(start)

    @property
    def now(self) -> float:
        return self._now

    def advance(self, seconds: float) -> None:
        if seconds < 0:
            raise ValidationError(f"cannot advance a clock by {seconds} s")
        self._now += float(seconds)

    def reset(self, start: float = 0.0) -> None:
        self._now = float(start)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"VirtualClock(now={self._now:.3f}s)"


class WallClock(Clock):
    """Real time via ``time.perf_counter``; ``advance`` sleeps."""

    def __init__(self):
        # repro-lint: disable=CLK-001 (this class IS the wall clock)
        self._t0 = time.perf_counter()

    @property
    def now(self) -> float:
        # repro-lint: disable=CLK-001 (this class IS the wall clock)
        return time.perf_counter() - self._t0

    def advance(self, seconds: float) -> None:
        if seconds < 0:
            raise ValidationError(f"cannot advance a clock by {seconds} s")
        time.sleep(seconds)
