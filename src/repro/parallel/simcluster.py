"""The virtual-clock cluster: batch evaluation with time accounting.

This models the paper's experimental platform: ``n_workers`` cores,
each simulation lasting ``problem.sim_time`` virtual seconds, plus a
parallel-call overhead that the paper observed ("a non-negligible
overhead results from parallel calls to the black-box simulator") and
modelled as case-specific. We use the affine model

    overhead(q) = o₀ + o₁·q,

configurable per experiment, defaulting to a small cost.

It also provides :func:`lpt_makespan`, the longest-processing-time
schedule used to charge BSP-EGO's *parallel acquisition process*: the
per-sub-region acquisition times are spread over the workers and the
virtual clock advances by the makespan — exactly the advantage the
paper credits BSP-EGO for.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.parallel.clock import Clock, VirtualClock
from repro.util import ConfigurationError, check_matrix


@dataclass(frozen=True)
class OverheadModel:
    """Affine parallel-call overhead: ``o0 + o1 * q`` seconds."""

    o0: float = 0.5
    o1: float = 0.05

    def __post_init__(self):
        if self.o0 < 0 or self.o1 < 0:
            raise ConfigurationError("overhead coefficients must be >= 0")

    def __call__(self, q: int) -> float:
        return self.o0 + self.o1 * q


def lpt_makespan(durations, n_workers: int) -> float:
    """Makespan of the longest-processing-time-first schedule.

    Greedy LPT: sort jobs by decreasing duration, always assign to the
    least-loaded worker. A 4/3-approximation of the optimal makespan —
    adequate for charging parallel acquisition time.
    """
    if n_workers < 1:
        raise ConfigurationError(f"n_workers must be >= 1, got {n_workers}")
    durations = np.asarray(durations, dtype=np.float64).reshape(-1)
    if durations.size == 0:
        return 0.0
    if np.any(durations < 0):
        raise ConfigurationError("durations must be >= 0")
    loads = np.zeros(n_workers)
    for dur in np.sort(durations)[::-1]:
        loads[np.argmin(loads)] += dur
    return float(loads.max())


class SimulatedCluster:
    """Batch evaluator charging virtual time for parallel simulations.

    Parameters
    ----------
    n_workers:
        Number of parallel simulation slots (the paper's ``n_batch``).
    clock:
        The shared :class:`~repro.parallel.clock.Clock`; defaults to a
        fresh :class:`VirtualClock`.
    overhead:
        Parallel-call overhead model (defaults to the affine model
        above). Charged once per batch call — matching the paper's
        software-dependent interface cost.
    """

    def __init__(
        self,
        n_workers: int,
        clock: Clock | None = None,
        overhead: OverheadModel | None = None,
    ):
        if n_workers < 1:
            raise ConfigurationError(f"n_workers must be >= 1, got {n_workers}")
        self.n_workers = int(n_workers)
        # Slots currently able to run simulations. Equal to n_workers
        # unless a fault model kills workers permanently
        # (FaultySimulatedCluster); drivers shrink their batches to it.
        self.alive_workers = int(n_workers)
        self.clock = clock if clock is not None else VirtualClock()
        self.overhead = overhead if overhead is not None else OverheadModel()
        self.n_evaluations = 0
        self.n_batches = 0
        self.time_simulating = 0.0
        # Virtual-clock utilization accounting (healthy path; the
        # driver derives the same quantities generically for fault-
        # injecting subclasses that override evaluate()).
        self.time_busy = 0.0   # worker-seconds actually simulating
        self.time_idle = 0.0   # worker-seconds of wave slack/overhead

    def batch_duration(self, q: int, sim_time: float) -> float:
        """Virtual seconds a batch of ``q`` simulations occupies."""
        if q < 1:
            raise ConfigurationError(f"q must be >= 1, got {q}")
        waves = -(-q // max(1, self.alive_workers))  # ceil division
        cost = waves * float(sim_time)
        if sim_time > 0.0:
            cost += self.overhead(q)
        return cost

    def evaluate(self, problem, X) -> np.ndarray:
        """Evaluate a batch, advancing the clock by its duration."""
        X = check_matrix(X, "X", cols=problem.dim)
        y = problem(X)
        duration = self.batch_duration(X.shape[0], problem.sim_time)
        self.clock.advance(duration)
        self.n_evaluations += X.shape[0]
        self.n_batches += 1
        self.time_simulating += duration
        busy = X.shape[0] * float(problem.sim_time)
        self.time_busy += busy
        self.time_idle += max(0.0, self.alive_workers * duration - busy)
        return y

    def charge_parallel(self, durations) -> float:
        """Advance the clock by the makespan of parallel sub-tasks.

        Used for BSP-EGO's parallel acquisition: the per-region
        acquisition durations are scheduled on the ``n_workers`` slots
        and the elapsed virtual time is their LPT makespan. Returns the
        charged duration.
        """
        makespan = lpt_makespan(durations, self.n_workers)
        self.clock.advance(makespan)
        return makespan

    def charge(self, seconds: float) -> None:
        """Advance the clock by a serial duration (fit/acquisition)."""
        self.clock.advance(seconds)
