"""repro — Parallel Bayesian Optimization for UPHES scheduling.

Reproduction of Gobert, Gmys, Toubeau, Vallée, Melab, Tuyttens:
*Parallel Bayesian Optimization for Optimal Scheduling of Underground
Pumped Hydro-Energy Storage Systems* (IPDPSW 2022; extended journal
version in Algorithms 15(12):446, 2022).

The package is organised bottom-up:

- :mod:`repro.util` — RNG handling, validation, errors.
- :mod:`repro.problems` — the benchmark functions of the paper's Table 1
  plus extras, and the :class:`~repro.problems.Problem` abstraction.
- :mod:`repro.doe` — initial designs (Latin hypercube, Sobol, uniform).
- :mod:`repro.gp` — exact Gaussian-process regression with ARD Matérn
  kernels, analytic marginal-likelihood gradients, and rank-1 "fantasy"
  updates for the Kriging Believer heuristic.
- :mod:`repro.acquisition` — EI / PI / UCB / scaled-EI with analytic
  spatial gradients, Monte-Carlo qEI, and the multi-start inner
  optimizer :func:`~repro.acquisition.optimize_acqf`.
- :mod:`repro.parallel` — virtual-clock batch executors, real thread /
  process executors, and an in-process MPI-style communicator.
- :mod:`repro.uphes` — the Underground Pumped Hydro-Energy Storage
  simulator substrate (the paper's proprietary Matlab/RAO black box,
  rebuilt as a physics-based synthetic simulator).
- :mod:`repro.core` — the five parallel BO algorithms under study
  (KB-q-EGO, mic-q-EGO, MC-based q-EGO, BSP-EGO, TuRBO) and a
  random-search baseline, plus the time-budgeted driver.
- :mod:`repro.experiments` — campaign runner, statistics, and the
  renderers for every table and figure of the paper.
"""

from repro.core import (
    BSPEGO,
    KBqEGO,
    MCqEGO,
    MicQEGO,
    RandomSearch,
    TuRBO,
    make_optimizer,
    optimize,
)
from repro.gp import GaussianProcess
from repro.problems import Problem, get_benchmark
from repro.uphes import UPHESSimulator

__version__ = "1.0.0"

__all__ = [
    "BSPEGO",
    "GaussianProcess",
    "KBqEGO",
    "MCqEGO",
    "MicQEGO",
    "Problem",
    "RandomSearch",
    "TuRBO",
    "UPHESSimulator",
    "get_benchmark",
    "make_optimizer",
    "optimize",
    "__version__",
]
