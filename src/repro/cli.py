"""Command-line interface for single optimization runs.

Usage::

    python -m repro --problem uphes --algorithm mic-q-ego --n-batch 4 \
                    --budget 1200 --seed 0 [--json out.json]

    python -m repro --problem ackley --algorithm turbo --n-batch 8 \
                    --budget 300 --time-scale 15 --journal run.jsonl

    python -m repro resume run.jsonl

    python -m repro serve --port 8751 --store sessions/
    python -m repro worker --url http://127.0.0.1:8751 --session prod

    python -m repro fleet --shards 4 --store fleet/ --port 8750

    python -m repro portfolio --problem ackley --workers 8 --budget 600

    python -m repro scenarios list
    python -m repro scenarios run stress --algorithm turbo --budget 300
    python -m repro scenarios matrix --out BENCH_scenarios.json

Runs one time-budgeted optimization under the paper's protocol and
prints a human-readable summary (or writes the full run record as JSON
with ``--json``). With ``--journal`` the run appends a crash-safe JSONL
event log; the ``resume`` subcommand continues an interrupted journaled
run under its remaining budget. ``--crash-rate`` / ``--timeout-rate`` /
``--nan-rate`` inject evaluation faults (see ``repro.resilience``).

The ``serve`` and ``worker`` subcommands run the ask/tell suggestion
service of :mod:`repro.service`: one long-lived HTTP server hosting
concurrent optimization sessions, driven by any number of worker
processes that pull candidates, run the simulator locally, and post
results back.

The ``portfolio`` subcommand runs the completion-driven asynchronous
driver of :mod:`repro.portfolio`: each freed worker is immediately
given a new point chosen by a bandit over acquisition arms, with
fantasies over the evaluations still in flight.

The ``scenarios`` subcommand drives the UPHES workload family of
:mod:`repro.scenarios`: declarative multi-plant / multi-regime /
event-scripted scenario specs, single runs or full campaign matrices.
"""

from __future__ import annotations

import argparse
import sys

from repro.core import algorithm_names, make_optimizer, run_optimization
from repro.experiments.records import RunRecord
from repro.problems.benchmarks import BENCHMARKS
from repro.uphes import UPHESSimulator

#: Subcommand names reserved ahead of the default single-run parser.
SUBCOMMANDS = (
    "resume", "serve", "worker", "portfolio", "fleet", "lint", "scenarios"
)


def package_version() -> str:
    """Installed package version, falling back to the source tree's."""
    try:
        from importlib.metadata import version

        return version("repro")
    except Exception:
        import repro

        return repro.__version__


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Parallel Bayesian optimization (paper protocol), one run.",
    )
    parser.add_argument(
        "--version", action="version", version=f"repro {package_version()}"
    )
    parser.add_argument(
        "--problem",
        default="ackley",
        choices=sorted(BENCHMARKS) + ["uphes"],
        help="objective: a benchmark function or the UPHES simulator",
    )
    parser.add_argument(
        "--algorithm",
        default="turbo",
        help="one of: " + ", ".join(algorithm_names()),
    )
    parser.add_argument("--n-batch", type=int, default=4,
                        help="batch size = parallel workers (default 4)")
    parser.add_argument("--budget", type=float, default=1200.0,
                        help="virtual seconds of optimization budget")
    parser.add_argument("--sim-time", type=float, default=10.0,
                        help="virtual seconds per simulation (paper: 10)")
    parser.add_argument("--dim", type=int, default=12,
                        help="benchmark dimension (ignored for uphes)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--time-scale", type=float, default=1.0,
                        help="multiplier on measured fit/acquisition time")
    parser.add_argument("--n-initial", type=int, default=None,
                        help="initial design size (default 16·n_batch)")
    parser.add_argument("--json", default=None, metavar="PATH",
                        help="write the full run record as JSON")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress the cycle table")
    parser.add_argument("--journal", default=None, metavar="PATH",
                        help="append a crash-safe JSONL event log; an "
                             "interrupted run continues with "
                             "'python -m repro resume PATH'")
    parser.add_argument("--crash-rate", type=float, default=0.0,
                        help="injected probability a simulation crashes")
    parser.add_argument("--timeout-rate", type=float, default=0.0,
                        help="injected probability a simulation hangs")
    parser.add_argument("--nan-rate", type=float, default=0.0,
                        help="injected probability a simulation returns NaN")
    parser.add_argument("--death-rate", type=float, default=0.0,
                        help="injected per-batch probability each worker "
                             "dies permanently (the batch shrinks "
                             "elastically to the survivors)")
    parser.add_argument("--adaptive-timeout", action="store_true",
                        help="learn the hung-simulation limit from observed "
                             "runtime quantiles instead of the static one")
    parser.add_argument("--max-attempts", type=int, default=3,
                        help="evaluation attempts per point under faults")
    parser.add_argument("--fallback", default="impute",
                        choices=("impute", "fantasy", "drop", "raise"),
                        help="action for points failed after all attempts")
    parser.add_argument("--max-sick-cycles", type=int, default=3,
                        help="consecutive degraded cycles before the "
                             "supervisor quarantines the surrogate behind "
                             "random-search proposals")
    parser.add_argument("--quarantine-cycles", type=int, default=5,
                        help="random-search cycles served per quarantine "
                             "before the surrogate is retried")
    _add_obs_arguments(parser)
    return parser


def _add_obs_arguments(parser: argparse.ArgumentParser) -> None:
    """The observability flags, shared by the run and resume parsers."""
    parser.add_argument("--trace", default=None, metavar="PATH",
                        help="enable span tracing and write the JSONL "
                             "trace (fit/acq/evaluate/checkpoint spans, "
                             "wall + virtual clocks, correlated to the "
                             "journal by cycle id) to PATH; also prints "
                             "a per-phase wall-time table")
    parser.add_argument("--metrics-out", default=None, metavar="PATH",
                        help="enable metrics collection and write the "
                             "counters/gauges/histogram snapshot as JSON "
                             "to PATH")


def build_resume_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro resume",
        description="Continue an interrupted journaled run "
                    "under its remaining budget.",
    )
    parser.add_argument("journal", help="JSONL run journal of the killed run")
    parser.add_argument("--json", default=None, metavar="PATH",
                        help="write the full run record as JSON")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress the cycle table")
    parser.add_argument("--no-fsync", action="store_true",
                        help="skip per-event fsync while continuing")
    _add_obs_arguments(parser)
    return parser


def _setup_obs(args):
    """Install the tracer/metrics requested on the command line.

    Returns ``(tracer, metrics)`` — either may be ``None`` when the
    corresponding flag is absent, leaving the shared null objects in
    place (the strict no-op fast path).
    """
    tracer = metrics = None
    if args.trace:
        from repro.obs import Tracer, set_tracer

        tracer = Tracer()
        set_tracer(tracer)
    if args.metrics_out:
        from repro.obs import MetricsRegistry, set_metrics

        metrics = MetricsRegistry()
        set_metrics(metrics)
    return tracer, metrics


def _export_obs(args, tracer, metrics, *, quiet: bool) -> None:
    """Write the trace/metrics artefacts and print the phase table."""
    if tracer is not None:
        from repro.obs import phase_summary, summary_markdown, write_trace_jsonl

        path = write_trace_jsonl(tracer, args.trace)
        print(f"\ntrace written to {path} ({len(tracer.spans)} spans)")
        if not quiet:
            print("\n" + summary_markdown(phase_summary(tracer.spans)))
    if metrics is not None:
        from repro.resilience import atomic_write_json

        atomic_write_json(
            args.metrics_out, metrics.snapshot(), fsync=False, indent=2
        )
        print(f"metrics written to {args.metrics_out}")


def make_problem(args):
    """Build the problem named on the command line."""
    if args.problem == "uphes":
        return UPHESSimulator(seed=0, sim_time=args.sim_time)
    from repro.problems import get_benchmark

    return get_benchmark(args.problem, dim=args.dim, sim_time=args.sim_time)


def _report(result, seed, *, quiet: bool, json_path: str | None) -> None:
    """The human-readable summary shared by the run and resume paths."""
    direction = "profit" if result.maximize else "cost"
    print(f"problem      : {result.problem} (d={len(result.best_x)}, "
          f"sim={result.sim_time:g}s)")
    print(f"algorithm    : {result.algorithm}, n_batch={result.n_batch}, "
          f"seed={seed}")
    print(f"initial      : {result.n_initial} points, best {direction} "
          f"{result.initial_best:.3f}")
    print(f"cycles/sims  : {result.n_cycles} / {result.n_simulations} "
          f"in {result.elapsed:.0f}/{result.budget:.0f} virtual s")
    print(f"final best   : {result.best_value:.3f}")
    if not quiet:
        print("\ncycle  t_start  fit[s]  acq[s]  best")
        step = max(1, len(result.history) // 12)
        for rec in result.history[::step]:
            print(f"{rec.cycle:5d}  {rec.t_start:7.1f}  {rec.fit_time:6.3f}"
                  f"  {rec.acq_time:6.3f}  {rec.best_value:10.3f}")

    if json_path:
        from repro.resilience import atomic_write_json

        record = RunRecord.from_result(result, seed=seed, preset="cli")
        atomic_write_json(json_path, record.to_dict(), fsync=False, indent=2)
        print(f"\nrun record written to {json_path}")


def build_serve_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro serve",
        description="Run the ask/tell suggestion server (repro.service).",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8751,
                        help="TCP port (0 picks an ephemeral one)")
    parser.add_argument("--store", default=None, metavar="DIR",
                        help="session checkpoint directory; sessions "
                             "survive server restarts when given")
    parser.add_argument("--max-sessions", type=int, default=64,
                        help="sessions resident in memory before LRU "
                             "eviction to the store")
    parser.add_argument("--idle-timeout", type=float, default=None,
                        help="seconds of inactivity before a session is "
                             "evicted from memory (state stays on disk)")
    parser.add_argument("--no-fsync", action="store_true",
                        help="skip fsync on session checkpoints")
    parser.add_argument("--backup-checkpoints", action="store_true",
                        help="keep a .bak of each session checkpoint's "
                             "previous generation and fall back to it on "
                             "a corrupt primary")
    parser.add_argument("--announce", default=None, metavar="PATH",
                        help="write {'url', 'pid'} JSON to PATH once the "
                             "server is bound (how the fleet supervisor "
                             "discovers ephemeral shard ports)")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress per-request access logging")
    return parser


def build_fleet_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro fleet",
        description="Run a supervised multi-process ask/tell fleet: N "
                    "shard servers behind one front-door router, with "
                    "heartbeats, automatic restart and checkpoint "
                    "recovery (repro.service.fleet).",
    )
    parser.add_argument("--shards", type=int, default=2,
                        help="shard server processes (default 2)")
    parser.add_argument("--store", required=True, metavar="DIR",
                        help="fleet root directory; shard i persists "
                             "sessions under DIR/shard-0i/sessions "
                             "(mandatory: restart recovery needs it)")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8750,
                        help="router TCP port (0 picks an ephemeral one)")
    parser.add_argument("--heartbeat", type=float, default=1.0,
                        help="seconds between shard health probes")
    parser.add_argument("--max-missed", type=int, default=3,
                        help="consecutive missed heartbeats before a live "
                             "shard is declared dead and restarted")
    parser.add_argument("--max-inflight", type=int, default=64,
                        help="requests relayed concurrently before new "
                             "ones queue at the front door")
    parser.add_argument("--max-queue", type=int, default=64,
                        help="queued requests before the router sheds "
                             "with 429 + Retry-After")
    parser.add_argument("--rate", type=float, default=None,
                        help="token-bucket rate limit in requests/s "
                             "(default: unlimited)")
    parser.add_argument("--burst", type=float, default=None,
                        help="token-bucket burst size (default: rate)")
    parser.add_argument("--announce", default=None, metavar="PATH",
                        help="write {'url', 'pid'} JSON once the router "
                             "is bound")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress per-request access logging")
    return parser


def build_worker_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro worker",
        description="Run one evaluation worker against an ask/tell server.",
    )
    parser.add_argument("--url", required=True,
                        help="server root, e.g. http://127.0.0.1:8751")
    parser.add_argument("--session", required=True,
                        help="session name to evaluate for")
    parser.add_argument("--max-evals", type=int, default=None,
                        help="stop after this many completed evaluations")
    parser.add_argument("--deadline", type=float, default=None,
                        help="stop after this many wall seconds")
    parser.add_argument("--hold", type=float, default=0.0,
                        help="extra seconds to hold each ticket before "
                             "telling (simulates a slow simulation)")
    parser.add_argument("--backoff", type=float, default=0.2,
                        help="initial backoff on 429 backpressure")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress the per-evaluation line")
    return parser


def build_portfolio_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro portfolio",
        description="Completion-driven async optimization with a bandit "
                    "portfolio of acquisition arms (repro.portfolio).",
    )
    parser.add_argument(
        "--problem",
        default="ackley",
        choices=sorted(BENCHMARKS) + ["uphes"],
        help="objective: a benchmark function or the UPHES simulator",
    )
    parser.add_argument("--dim", type=int, default=12,
                        help="benchmark dimension (ignored for uphes)")
    parser.add_argument("--sim-time", type=float, default=10.0,
                        help="virtual seconds per simulation (paper: 10)")
    parser.add_argument("--workers", type=int, default=4,
                        help="parallel evaluation workers (default 4)")
    parser.add_argument("--budget", type=float, default=1200.0,
                        help="virtual seconds of optimization budget")
    parser.add_argument("--arms", default=None,
                        help="comma-separated arm names (default: "
                             "kb,mic,turbo,bsp,random)")
    parser.add_argument("--fantasy", default="kb",
                        choices=("kb", "randomized_kb", "constant_liar"),
                        help="fantasy strategy over in-flight evaluations")
    parser.add_argument("--rkb-scale", type=float, default=1.0,
                        help="perturbation scale for randomized_kb")
    parser.add_argument("--rule", default="softmax",
                        choices=("softmax", "ucb"),
                        help="bandit reallocation rule over arms")
    parser.add_argument("--exploration-floor", type=float, default=0.1,
                        help="minimum total probability spread uniformly "
                             "over non-quarantined arms")
    parser.add_argument("--window", type=int, default=20,
                        help="sliding improvement-credit window per arm")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--time-scale", type=float, default=1.0,
                        help="multiplier on measured fit/acquisition time")
    parser.add_argument("--n-initial", type=int, default=None,
                        help="initial design size (default 16·workers)")
    parser.add_argument("--refit-every", type=int, default=1,
                        help="completions between GP refits")
    parser.add_argument("--json", default=None, metavar="PATH",
                        help="write the run summary as JSON")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress the per-arm table")
    parser.add_argument("--journal", default=None, metavar="PATH",
                        help="append a crash-safe JSONL event log "
                             "(dispatch/completion/arm decisions)")
    _add_obs_arguments(parser)
    return parser


def main_portfolio(argv=None) -> int:
    args = build_portfolio_parser().parse_args(argv)
    from repro.portfolio import DEFAULT_ARMS, run_portfolio_optimization

    problem = make_problem(args)
    arms = DEFAULT_ARMS
    if args.arms:
        arms = tuple(a.strip() for a in args.arms.split(",") if a.strip())
    journal = None
    if args.journal:
        from repro.resilience import RunJournal

        journal = RunJournal(args.journal)
    tracer, metrics = _setup_obs(args)

    result = run_portfolio_optimization(
        problem,
        args.workers,
        args.budget,
        arms=arms,
        allocator_options={
            "rule": args.rule,
            "exploration_floor": args.exploration_floor,
            "window": args.window,
        },
        fantasy=args.fantasy,
        rkb_scale=args.rkb_scale,
        n_initial=args.n_initial,
        refit_every=args.refit_every,
        time_scale=args.time_scale,
        seed=args.seed,
        journal=journal,
    )

    direction = "profit" if result.maximize else "cost"
    print(f"problem      : {result.problem} (d={len(result.best_x)}, "
          f"sim={problem.sim_time:g}s)")
    print(f"portfolio    : arms={','.join(result.arm_names)}, "
          f"workers={result.n_workers}, fantasy={args.fantasy}, "
          f"seed={args.seed}")
    print(f"initial      : {result.n_initial} points, best {direction} "
          f"{result.initial_best:.3f}")
    print(f"simulations  : {result.n_simulations} "
          f"in {result.elapsed:.0f}/{result.budget:.0f} virtual s")
    print(f"worker time  : busy {result.busy_share:.1%} / "
          f"idle {result.idle_share:.1%}")
    print(f"final best   : {result.best_value:.3f}")
    if not args.quiet:
        print("\narm       selected  completed  failed  quarantines  "
              "mean credit")
        for name, s in result.arm_stats.items():
            print(f"{name:<8s}  {s['selections']:8d}  {s['completions']:9d}"
                  f"  {s['failures']:6d}  {s['quarantines']:11d}"
                  f"  {s['mean_credit']:11.4f}")

    if args.json:
        from repro.resilience import atomic_write_json

        atomic_write_json(args.json, result.to_dict(), fsync=False, indent=2)
        print(f"\nrun summary written to {args.json}")
    _export_obs(args, tracer, metrics, quiet=args.quiet)
    return 0


def main_serve(argv=None) -> int:
    args = build_serve_parser().parse_args(argv)
    import signal

    from repro.obs import MetricsRegistry, get_metrics, set_metrics
    from repro.service import ServiceServer, SessionManager

    if not get_metrics().enabled:
        set_metrics(MetricsRegistry())
    manager = SessionManager(
        store_dir=args.store,
        max_sessions=args.max_sessions,
        idle_timeout=args.idle_timeout,
        fsync=not args.no_fsync,
        backup_checkpoints=args.backup_checkpoints,
    )
    server = ServiceServer(
        manager, host=args.host, port=args.port, quiet=args.quiet
    )
    server.start()
    print(f"serving on {server.url} "
          f"(store={args.store or 'memory-only'})", flush=True)
    if args.announce:
        _announce(args.announce, server.url)

    def _request_drain(signum, frame):
        server.request_shutdown()

    signal.signal(signal.SIGTERM, _request_drain)
    signal.signal(signal.SIGINT, _request_drain)
    try:
        while not server.wait_for_shutdown_request(timeout=1.0):
            manager.sweep_idle()
    finally:
        server.stop()
    print("drained cleanly", flush=True)
    return 0


def _announce(path: str, url: str) -> None:
    """Atomically publish the bound URL for supervisors to discover."""
    import os

    from repro.resilience import atomic_write_json

    atomic_write_json(path, {"url": url, "pid": os.getpid()}, fsync=False)


def main_fleet(argv=None) -> int:
    args = build_fleet_parser().parse_args(argv)
    import signal

    from repro.service import FleetSupervisor

    supervisor = FleetSupervisor(
        args.shards,
        args.store,
        host=args.host,
        port=args.port,
        heartbeat_s=args.heartbeat,
        max_missed=args.max_missed,
        max_inflight=args.max_inflight,
        max_queue=args.max_queue,
        rate=args.rate,
        burst=args.burst,
        quiet=args.quiet,
    )
    supervisor.start(wait_healthy=False)
    print(f"fleet router on {supervisor.url} "
          f"({args.shards} shards, store={args.store})", flush=True)
    if args.announce:
        _announce(args.announce, supervisor.url)
    healthy = supervisor.wait_all_healthy(timeout=supervisor.startup_timeout_s)
    print("all shards healthy" if healthy
          else "warning: not all shards healthy yet", flush=True)

    def _request_drain(signum, frame):
        supervisor.router.request_shutdown()

    signal.signal(signal.SIGTERM, _request_drain)
    signal.signal(signal.SIGINT, _request_drain)
    try:
        while not supervisor.router.wait_for_shutdown_request(timeout=1.0):
            pass
    finally:
        supervisor.stop()
    print("fleet drained cleanly", flush=True)
    return 0


def main_worker(argv=None) -> int:
    args = build_worker_parser().parse_args(argv)
    from repro.service import run_worker

    if args.max_evals is None and args.deadline is None:
        build_worker_parser().error("give --max-evals and/or --deadline")
    stats = run_worker(
        args.url,
        args.session,
        max_evals=args.max_evals,
        deadline_s=args.deadline,
        backoff_s=args.backoff,
        hold_s=args.hold,
        quiet=args.quiet,
    )
    print(f"worker done: asked={stats.n_asked} told={stats.n_told} "
          f"expired={stats.n_expired} duplicate={stats.n_duplicate} "
          f"backoffs={stats.n_backoff}", flush=True)
    return 0


def build_lint_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro lint",
        description="Check the repo-specific reproducibility invariants "
                    "(RNG/clock/atomicity/locking discipline) with the "
                    "AST rules of repro.analysis. Exits nonzero on any "
                    "finding not suppressed inline or grandfathered in "
                    "the baseline. See DESIGN.md §14.",
    )
    parser.add_argument("paths", nargs="*", default=["src"],
                        help="files or directories to scan (default: src)")
    parser.add_argument("--format", default="text",
                        choices=("text", "github", "json"),
                        help="finding output format; 'github' emits "
                             "::error workflow commands that annotate "
                             "PR lines")
    parser.add_argument("--baseline", default=None, metavar="PATH",
                        help="baseline file of grandfathered findings "
                             "(default: analysis/baseline.json when it "
                             "exists)")
    parser.add_argument("--no-baseline", action="store_true",
                        help="report every finding, baseline ignored")
    parser.add_argument("--update-baseline", action="store_true",
                        help="rewrite the baseline to the current "
                             "findings (deterministic: sorted, no "
                             "timestamps) and exit 0")
    parser.add_argument("--list-rules", action="store_true",
                        help="print every rule id with its rationale")
    parser.add_argument("--show-suppressed", action="store_true",
                        help="also list inline-suppressed findings")
    return parser


def main_lint(argv=None) -> int:
    args = build_lint_parser().parse_args(argv)
    from repro.analysis import (
        DEFAULT_BASELINE,
        RULES,
        analyze_paths,
        apply_baseline,
        format_github,
        format_json,
        format_text,
        load_baseline,
        save_baseline,
    )

    if args.list_rules:
        for rule in RULES:
            print(f"{rule.id}  {rule.title}")
            doc = (rule.__doc__ or "").strip()
            for line in doc.splitlines():
                print(f"    {line.strip()}")
            if rule.allowed_paths:
                print(f"    [allowed paths: {', '.join(rule.allowed_paths)}]")
            print()
        return 0

    report = analyze_paths(args.paths)

    baseline_path = args.baseline or DEFAULT_BASELINE
    entries: list = []
    import os

    if not args.no_baseline and not args.update_baseline:
        if args.baseline is not None or os.path.exists(baseline_path):
            entries = load_baseline(baseline_path)
    new, baselined, stale = apply_baseline(report.findings, entries)

    if args.update_baseline:
        path = save_baseline(baseline_path, report.findings)
        print(f"baseline rewritten: {path} "
              f"({len(report.findings)} grandfathered finding(s))")
        return 0

    if args.format == "github":
        out = format_github(new)
    elif args.format == "json":
        out = format_json(new, baselined=len(baselined),
                          suppressed=len(report.suppressed))
    else:
        out = format_text(new)
    if out:
        print(out)
    if args.show_suppressed and report.suppressed:
        print("suppressed:")
        for f in report.suppressed:
            print(f"  {f.location()}: {f.rule} (inline disable)")
    for entry in stale:
        print(f"warning: stale baseline entry (fixed? run "
              f"--update-baseline): {entry['path']}:{entry['line']} "
              f"{entry['rule']}")
    if args.format != "json":
        print(f"{report.n_files} file(s): {len(new)} finding(s), "
              f"{len(baselined)} baselined, "
              f"{len(report.suppressed)} suppressed")
    return 1 if new else 0


def build_scenarios_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro scenarios",
        description="The UPHES workload family (repro.scenarios): list "
                    "named scenario specs and price regimes, inspect a "
                    "spec as canonical JSON, run one spec under the "
                    "paper's time-budgeted driver, or sweep a campaign "
                    "matrix into comparison tables. See DESIGN.md §16.",
    )
    sub = parser.add_subparsers(dest="action", required=True)

    sub.add_parser("list", help="named scenarios and price regimes")

    show = sub.add_parser("show", help="print a spec as canonical JSON")
    show.add_argument("spec", help="scenario name or a spec JSON file path")

    run = sub.add_parser(
        "run", help="one optimization run on a scenario workload"
    )
    run.add_argument("spec", help="scenario name or a spec JSON file path")
    run.add_argument("--algorithm", default="turbo",
                     help="one of: " + ", ".join(algorithm_names()) +
                          " (multi-objective specs default to mo_bpi)")
    run.add_argument("--n-batch", type=int, default=4)
    run.add_argument("--budget", type=float, default=1200.0,
                     help="virtual seconds of optimization budget")
    run.add_argument("--seed", type=int, default=0,
                     help="optimizer/driver seed (the spec's own seed "
                          "freezes the scenario draws)")
    run.add_argument("--n-initial", type=int, default=None)
    run.add_argument("--time-scale", type=float, default=1.0)
    run.add_argument("--n-scenarios", type=int, default=None,
                     help="compact the spec to this many uncertainty "
                          "scenarios per plant (smoke runs)")
    run.add_argument("--json", default=None, metavar="PATH",
                     help="write the full run record as JSON")
    run.add_argument("--journal", default=None, metavar="PATH",
                     help="append a crash-safe JSONL event log (records "
                          "the spec and its scripted events; resume "
                          "with 'python -m repro resume PATH')")
    run.add_argument("--quiet", action="store_true")

    matrix = sub.add_parser(
        "matrix", help="sweep scenario × algorithm comparison matrix"
    )
    matrix.add_argument("--scenarios", default="paper,duo,seasonal,stress,mo",
                        help="comma-separated scenario names")
    matrix.add_argument("--algorithms", default="turbo",
                        help="comma-separated algorithm names")
    matrix.add_argument("--n-batch", type=int, default=2)
    matrix.add_argument("--cycles", type=int, default=3,
                        help="optimization cycles per cell")
    matrix.add_argument("--seeds", default="0",
                        help="comma-separated seeds")
    matrix.add_argument("--n-scenarios", type=int, default=None,
                        help="compact every spec for smoke runs")
    matrix.add_argument("--out", default=None, metavar="PATH",
                        help="archive the raw rows as JSON "
                             "(BENCH_scenarios.json in CI)")
    matrix.add_argument("--quiet", action="store_true",
                        help="suppress the markdown table")
    return parser


def _load_spec(ref: str):
    """Resolve a scenario reference: library name or spec JSON path."""
    import json
    import os

    from repro.scenarios import ScenarioSpec, get_scenario

    if os.path.exists(ref):
        with open(ref, encoding="utf-8") as fh:
            return ScenarioSpec.from_dict(json.load(fh))
    return get_scenario(ref)


def main_scenarios(argv=None) -> int:
    args = build_scenarios_parser().parse_args(argv)
    from repro.scenarios import (
        REGIMES,
        build_problem,
        compact,
        event_records,
        get_scenario,
        matrix_markdown,
        run_matrix,
        save_bench,
        scenario_names,
    )

    if args.action == "list":
        print("named scenarios:")
        for name in scenario_names():
            spec = get_scenario(name)
            print(f"  {name:<10s} {spec.n_plants} plant(s) × "
                  f"{spec.n_regimes} regime(s), {len(spec.events)} "
                  f"event(s), objective={spec.objective}")
        print("price regimes:")
        for name in sorted(REGIMES):
            overrides = REGIMES[name]
            desc = ", ".join(f"{k}={v:g}" for k, v in sorted(overrides.items()))
            print(f"  {name:<12s} {desc or '(paper-aligned market)'}")
        return 0

    if args.action == "show":
        spec = _load_spec(args.spec)
        import json as _json

        print(_json.dumps(spec.to_dict(), indent=2, sort_keys=True))
        return 0

    if args.action == "matrix":
        result = run_matrix(
            scenarios=[s.strip() for s in args.scenarios.split(",") if s.strip()],
            algorithms=[a.strip() for a in args.algorithms.split(",") if a.strip()],
            n_batch=args.n_batch,
            n_cycles=args.cycles,
            seeds=[int(s) for s in args.seeds.split(",") if s.strip()],
            n_scenarios=args.n_scenarios,
        )
        if not args.quiet:
            print(matrix_markdown(result))
        if args.out:
            save_bench(args.out, result)
            print(f"\nmatrix rows written to {args.out}")
        return 0

    # action == "run"
    spec = _load_spec(args.spec)
    if args.n_scenarios is not None:
        spec = compact(spec, args.n_scenarios)
    problem = build_problem(spec)
    algorithm = args.algorithm
    if spec.objective == "multi" and algorithm != "mo_bpi":
        algorithm = "mo_bpi"
    optimizer = make_optimizer(
        algorithm, problem, args.n_batch, seed=args.seed
    )
    journal = None
    if args.journal:
        from repro.resilience import RunJournal

        journal = RunJournal(args.journal)
    result = run_optimization(
        problem,
        optimizer,
        args.budget,
        n_initial=args.n_initial,
        time_scale=args.time_scale,
        seed=args.seed,
        journal=journal,
    )
    if journal is not None:
        # The scripted events degraded this run by construction; record
        # them in the same stream the supervisor uses for emergent ones.
        for record in event_records(spec):
            journal.record("degradation", cycle=0, **record)
    print(f"scenario     : {spec.name} ({spec.n_plants} plant(s) × "
          f"{spec.n_regimes} regime(s), {len(spec.events)} event(s), "
          f"objective={spec.objective})")
    _report(result, args.seed, quiet=args.quiet, json_path=args.json)
    hv_history = getattr(optimizer, "hv_history", None)
    if hv_history:
        front_x, front_f = optimizer.front()
        print(f"pareto front : {front_f.shape[0]} point(s), normalized "
              f"hypervolume {hv_history[-1]:.3f}")
    return 0


def main_resume(argv=None) -> int:
    args = build_resume_parser().parse_args(argv)
    from repro.resilience import resume_run

    tracer, metrics = _setup_obs(args)
    result = resume_run(args.journal, fsync=not args.no_fsync)
    _report(result, result.seed, quiet=args.quiet, json_path=args.json)
    _export_obs(args, tracer, metrics, quiet=args.quiet)
    return 0


def main(argv=None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "resume":
        return main_resume(argv[1:])
    if argv and argv[0] == "serve":
        return main_serve(argv[1:])
    if argv and argv[0] == "worker":
        return main_worker(argv[1:])
    if argv and argv[0] == "portfolio":
        return main_portfolio(argv[1:])
    if argv and argv[0] == "fleet":
        return main_fleet(argv[1:])
    if argv and argv[0] == "lint":
        return main_lint(argv[1:])
    if argv and argv[0] == "scenarios":
        return main_scenarios(argv[1:])
    args = build_parser().parse_args(argv)
    problem = make_problem(args)
    optimizer = make_optimizer(
        args.algorithm, problem, args.n_batch, seed=args.seed
    )

    journal = None
    if args.journal:
        from repro.resilience import RunJournal

        journal = RunJournal(args.journal)
    faults = retry = None
    if (args.crash_rate or args.timeout_rate or args.nan_rate
            or args.death_rate):
        from repro.resilience import FaultSpec, RetryPolicy

        faults = FaultSpec(
            crash_rate=args.crash_rate,
            timeout_rate=args.timeout_rate,
            nan_rate=args.nan_rate,
            seed=args.seed,
            death_rate=args.death_rate,
            adaptive_timeout=args.adaptive_timeout,
        )
        retry = RetryPolicy(
            max_attempts=args.max_attempts, fallback=args.fallback
        )
    from repro.core import SupervisorConfig

    supervisor = SupervisorConfig(
        max_sick_cycles=args.max_sick_cycles,
        quarantine_cycles=args.quarantine_cycles,
    )
    tracer, metrics = _setup_obs(args)

    result = run_optimization(
        problem,
        optimizer,
        args.budget,
        n_initial=args.n_initial,
        time_scale=args.time_scale,
        seed=args.seed,
        journal=journal,
        faults=faults,
        retry=retry,
        supervisor=supervisor,
    )
    _report(result, args.seed, quiet=args.quiet, json_path=args.json)
    _export_obs(args, tracer, metrics, quiet=args.quiet)
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via module
    sys.exit(main())
