"""Command-line interface for single optimization runs.

Usage::

    python -m repro --problem uphes --algorithm mic-q-ego --n-batch 4 \
                    --budget 1200 --seed 0 [--json out.json]

    python -m repro --problem ackley --algorithm turbo --n-batch 8 \
                    --budget 300 --time-scale 15

Runs one time-budgeted optimization under the paper's protocol and
prints a human-readable summary (or writes the full run record as JSON
with ``--json``).
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.core import ALGORITHMS, make_optimizer, run_optimization
from repro.experiments.records import RunRecord
from repro.problems.benchmarks import BENCHMARKS
from repro.uphes import UPHESSimulator


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Parallel Bayesian optimization (paper protocol), one run.",
    )
    parser.add_argument(
        "--problem",
        default="ackley",
        choices=sorted(BENCHMARKS) + ["uphes"],
        help="objective: a benchmark function or the UPHES simulator",
    )
    parser.add_argument(
        "--algorithm",
        default="turbo",
        help="one of: " + ", ".join(sorted({c.name for c in ALGORITHMS.values()})),
    )
    parser.add_argument("--n-batch", type=int, default=4,
                        help="batch size = parallel workers (default 4)")
    parser.add_argument("--budget", type=float, default=1200.0,
                        help="virtual seconds of optimization budget")
    parser.add_argument("--sim-time", type=float, default=10.0,
                        help="virtual seconds per simulation (paper: 10)")
    parser.add_argument("--dim", type=int, default=12,
                        help="benchmark dimension (ignored for uphes)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--time-scale", type=float, default=1.0,
                        help="multiplier on measured fit/acquisition time")
    parser.add_argument("--n-initial", type=int, default=None,
                        help="initial design size (default 16·n_batch)")
    parser.add_argument("--json", default=None, metavar="PATH",
                        help="write the full run record as JSON")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress the cycle table")
    return parser


def make_problem(args):
    """Build the problem named on the command line."""
    if args.problem == "uphes":
        return UPHESSimulator(seed=0, sim_time=args.sim_time)
    from repro.problems import get_benchmark

    return get_benchmark(args.problem, dim=args.dim, sim_time=args.sim_time)


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    problem = make_problem(args)
    optimizer = make_optimizer(
        args.algorithm, problem, args.n_batch, seed=args.seed
    )
    result = run_optimization(
        problem,
        optimizer,
        args.budget,
        n_initial=args.n_initial,
        time_scale=args.time_scale,
        seed=args.seed,
    )

    direction = "profit" if problem.maximize else "cost"
    print(f"problem      : {result.problem} (d={problem.dim}, "
          f"sim={problem.sim_time:g}s)")
    print(f"algorithm    : {result.algorithm}, n_batch={result.n_batch}, "
          f"seed={args.seed}")
    print(f"initial      : {result.n_initial} points, best {direction} "
          f"{result.initial_best:.3f}")
    print(f"cycles/sims  : {result.n_cycles} / {result.n_simulations} "
          f"in {result.elapsed:.0f}/{result.budget:.0f} virtual s")
    print(f"final best   : {result.best_value:.3f}")
    if not args.quiet:
        print("\ncycle  t_start  fit[s]  acq[s]  best")
        step = max(1, len(result.history) // 12)
        for rec in result.history[::step]:
            print(f"{rec.cycle:5d}  {rec.t_start:7.1f}  {rec.fit_time:6.3f}"
                  f"  {rec.acq_time:6.3f}  {rec.best_value:10.3f}")

    if args.json:
        record = RunRecord.from_result(result, seed=args.seed, preset="cli")
        with open(args.json, "w") as fh:
            json.dump(record.to_dict(), fh, indent=2)
        print(f"\nrun record written to {args.json}")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via module
    sys.exit(main())
