"""Experimental protocol presets.

``PAPER`` mirrors the paper's Table 2 exactly: 20-minute budget, 10 s
simulations, initial design of 16·n_batch, batch sizes 1–16, 10
repetitions, measured overheads charged 1:1 (``time_scale = 1``) — the
right preset when your hardware is comparable to the paper's Xeon node
and you can afford cluster-scale wall time.

``QUICK`` is the laptop-sized protocol used by the benchmark harness in
this repository: the same code path with a shorter virtual budget,
fewer repetitions, and measured overheads scaled up so that the
overhead-to-simulation ratio (the quantity the paper studies) lands in
the same regime despite the smaller data sets.

``SMOKE`` is for CI: minutes of budget, 2 seeds, 3 batch sizes.

The ``*-refit4`` variants surface ``gp_options={"refit_every": 4}``
(PR 9's carried-hyperparameter refits) at the protocol level: the same
campaigns with hyperparameters re-optimized only every 4th cycle. Their
convergence cost on a paper benchmark is recorded in EXPERIMENTS.md
("Refit cadence: the cost of carried hyperparameters").
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.util import ConfigurationError


@dataclass(frozen=True)
class Preset:
    """One experimental protocol (see module docstring)."""

    name: str
    budget: float  # virtual seconds, initial sampling excluded
    sim_time: float  # virtual seconds per simulation
    n_seeds: int
    batch_sizes: tuple[int, ...]
    time_scale: float  # measured overhead -> virtual seconds
    initial_per_batch: int = 16  # initial design = this · n_batch
    algorithms: tuple[str, ...] = (
        "KB-q-EGO",
        "mic-q-EGO",
        "MC-based q-EGO",
        "BSP-EGO",
        "TuRBO",
    )
    benchmarks: tuple[str, ...] = ("rosenbrock", "ackley", "schwefel")
    dim: int = 12
    gp_options: dict = field(default_factory=dict)
    acq_options: dict = field(default_factory=dict)

    def __post_init__(self):
        if self.budget <= 0 or self.sim_time <= 0:
            raise ConfigurationError("budget and sim_time must be positive")
        if self.n_seeds < 1 or not self.batch_sizes:
            raise ConfigurationError("need >= 1 seed and >= 1 batch size")

    @property
    def max_cycles_per_run(self) -> int:
        """Upper bound on cycles: budget / sim_time (paper: 120)."""
        return int(self.budget // self.sim_time)


PAPER = Preset(
    name="paper",
    budget=1200.0,
    sim_time=10.0,
    n_seeds=10,
    batch_sizes=(1, 2, 4, 8, 16),
    time_scale=1.0,
)

QUICK = Preset(
    name="quick",
    budget=300.0,
    sim_time=10.0,
    n_seeds=3,
    batch_sizes=(1, 2, 4, 8, 16),
    time_scale=15.0,
)

SMOKE = Preset(
    name="smoke",
    budget=80.0,
    sim_time=10.0,
    n_seeds=2,
    batch_sizes=(1, 4),
    time_scale=10.0,
)

QUICK_REFIT4 = Preset(
    name="quick-refit4",
    budget=300.0,
    sim_time=10.0,
    n_seeds=3,
    batch_sizes=(1, 2, 4, 8, 16),
    time_scale=15.0,
    gp_options={"refit_every": 4},
)

SMOKE_REFIT4 = Preset(
    name="smoke-refit4",
    budget=80.0,
    sim_time=10.0,
    n_seeds=2,
    batch_sizes=(1, 4),
    time_scale=10.0,
    gp_options={"refit_every": 4},
)

_PRESETS = {
    p.name: p for p in (PAPER, QUICK, SMOKE, QUICK_REFIT4, SMOKE_REFIT4)
}


def get_preset(name: str) -> Preset:
    """Look up a preset by name (``paper``, ``quick``, ``smoke``,
    ``quick-refit4``, ``smoke-refit4``)."""
    key = name.strip().lower()
    if key not in _PRESETS:
        raise ConfigurationError(
            f"unknown preset {name!r}; available: {sorted(_PRESETS)}"
        )
    return _PRESETS[key]
