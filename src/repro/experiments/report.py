"""Full-evaluation report: run campaigns, render every table/figure.

Usage::

    python -m repro.experiments.report [--preset quick] [--root results]
                                       [--skip-benchmarks] [--skip-uphes]

Executes (or loads from cache) the benchmark and UPHES campaigns of the
chosen preset, prints every table and figure of the paper, and writes
the renderings under ``<root>/<preset>/report/``.
"""

from __future__ import annotations

import argparse
from pathlib import Path

from repro.experiments.campaign import Campaign
from repro.experiments.figures import (
    figure_1_description,
    figure_2,
    figure_3_to_7,
    figure_8,
    figure_9,
)
from repro.experiments.presets import get_preset
from repro.experiments.profiling import profiling_table
from repro.experiments.tables import (
    table_1,
    table_2,
    table_3,
    table_4,
    table_5,
    table_6,
    table_7,
)


def build_report(
    preset_name: str = "quick",
    root: str | Path = "results",
    include_benchmarks: bool = True,
    include_uphes: bool = True,
    verbose: bool = True,
) -> dict[str, str]:
    """Run/load both campaigns and render all artefacts.

    Returns a mapping from artefact name (``table4``, ``figure9``, ...)
    to its text rendering.
    """
    preset = get_preset(preset_name)
    artefacts: dict[str, str] = {
        "table1": table_1(preset.dim),
        "table2": table_2(preset),
        "table3": table_3(preset),
        "figure1": figure_1_description(),
    }

    if include_benchmarks:
        bench = Campaign(preset, root=root, verbose=verbose).ensure()
        artefacts["table4"] = table_4(bench)
        artefacts["table5"] = table_5(bench)
        artefacts["table6"] = table_6(bench)
        artefacts["profiling_benchmarks"] = profiling_table(bench)
        for problem in preset.benchmarks:
            _, text = figure_2(bench, problem)
            artefacts[f"figure2_{problem}"] = text

    if include_uphes:
        uphes = Campaign(preset, problems=["uphes"], root=root,
                         verbose=verbose).ensure()
        artefacts["table7"] = table_7(uphes)
        artefacts["profiling_uphes"] = profiling_table(uphes, problem="uphes")
        for q in preset.batch_sizes:
            fig_no = {1: 3, 2: 4, 4: 5, 8: 6, 16: 7}.get(q, f"conv_q{q}")
            _, text = figure_3_to_7(uphes, q)
            artefacts[f"figure{fig_no}"] = text
        for q in preset.batch_sizes:
            _, text = figure_8(uphes, n_batch=q)
            artefacts[f"figure8_q{q}"] = text
        _, text = figure_9(uphes)
        artefacts["figure9"] = text

    out_dir = Path(root) / preset.name / "report"
    out_dir.mkdir(parents=True, exist_ok=True)
    for name, text in artefacts.items():
        (out_dir / f"{name}.txt").write_text(text + "\n")
    return artefacts


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--preset", default="quick",
                        choices=["paper", "quick", "smoke"])
    parser.add_argument("--root", default="results")
    parser.add_argument("--skip-benchmarks", action="store_true")
    parser.add_argument("--skip-uphes", action="store_true")
    args = parser.parse_args(argv)

    artefacts = build_report(
        args.preset,
        args.root,
        include_benchmarks=not args.skip_benchmarks,
        include_uphes=not args.skip_uphes,
    )
    for name in sorted(artefacts):
        print(f"\n===== {name} =====")
        print(artefacts[name])
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
