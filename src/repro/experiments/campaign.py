"""Campaign management: sweeps with a JSON disk cache.

A campaign is the full (problem × algorithm × n_batch × seed) sweep of
one preset. Results are cached one JSON file per run under
``<root>/results/<preset>/``, so the table and figure benches share a
single sweep and interrupted campaigns resume where they stopped.
"""

from __future__ import annotations

import json
import sys
import time
import warnings
from pathlib import Path

from repro.experiments.presets import Preset
from repro.experiments.records import RunRecord, run_key
from repro.experiments.runner import run_single
from repro.util import ConfigurationError

#: Default cache root: ``results/`` next to the current working dir.
DEFAULT_ROOT = Path("results")


class Campaign:
    """A cached sweep over problems × algorithms × batch sizes × seeds.

    Parameters
    ----------
    preset:
        The protocol (budgets, seeds, batch sizes, algorithms).
    problems:
        Problem names; defaults to the preset's three benchmarks.
        Use ``["uphes"]`` for the application campaign.
    root:
        Cache directory root (``results/`` by default).
    verbose:
        Print one progress line per executed run.
    journal:
        Journal every executed run under ``<root>/<preset>/journals/``
        and, when a cell's cache entry is missing but its journal shows
        an interrupted run, continue that run from its checkpoint
        instead of restarting it — a killed sweep loses at most the
        in-flight cycle.
    """

    def __init__(
        self,
        preset: Preset,
        problems=None,
        root: str | Path = DEFAULT_ROOT,
        verbose: bool = True,
        journal: bool = False,
    ):
        self.preset = preset
        self.problems = (
            preset.benchmarks if problems is None else tuple(problems)
        )
        if not self.problems:
            raise ConfigurationError("campaign needs at least one problem")
        self.root = Path(root) / preset.name
        self.verbose = verbose
        self.journal = journal
        self._cache: dict[str, RunRecord] = {}

    # -- cache ------------------------------------------------------------
    def _path(self, key: str) -> Path:
        return self.root / f"{key}.json"

    def _journal_path(self, key: str) -> Path:
        return self.root / "journals" / f"{key}.jsonl"

    def _load(self, key: str) -> RunRecord | None:
        if key in self._cache:
            return self._cache[key]
        path = self._path(key)
        if path.exists():
            try:
                record = RunRecord.from_dict(json.loads(path.read_text()))
            except (json.JSONDecodeError, KeyError, TypeError, ValueError):
                # Pre-atomic caches could be torn by a kill mid-write;
                # treat the cell as missing and re-run it.
                warnings.warn(
                    f"discarding corrupt campaign cache entry {path}",
                    RuntimeWarning,
                    stacklevel=2,
                )
                path.unlink()
                return None
            self._cache[key] = record
            return record
        return None

    def _store(self, record: RunRecord) -> None:
        from repro.resilience import atomic_write_json

        self.root.mkdir(parents=True, exist_ok=True)
        atomic_write_json(self._path(record.key), record.to_dict())
        self._cache[record.key] = record

    # -- execution ----------------------------------------------------------
    def cells(self) -> list[tuple[str, str, int, int]]:
        """Every (problem, algorithm, n_batch, seed) cell of the sweep."""
        return [
            (prob, algo, q, seed)
            for prob in self.problems
            for algo in self.preset.algorithms
            for q in self.preset.batch_sizes
            for seed in range(self.preset.n_seeds)
        ]

    def missing(self) -> list[tuple[str, str, int, int]]:
        return [
            cell for cell in self.cells() if self._load(run_key(*cell)) is None
        ]

    def _resume_cell(self, key: str, seed: int) -> RunRecord | None:
        """Continue an interrupted journaled run, if one exists."""
        jpath = self._journal_path(key)
        if not jpath.exists():
            return None
        from repro.resilience import resume_run

        try:
            result = resume_run(
                jpath,
                optimizer_kwargs={
                    "gp_options": dict(self.preset.gp_options) or None,
                    "acq_options": dict(self.preset.acq_options) or None,
                },
            )
        except ConfigurationError as exc:
            warnings.warn(
                f"could not resume {jpath} ({exc}); restarting the run",
                RuntimeWarning,
                stacklevel=2,
            )
            return None
        if self.verbose:
            print(
                f"[campaign {self.preset.name}] {key}: resumed from journal",
                file=sys.stderr,
            )
        return RunRecord.from_result(result, seed=seed, preset=self.preset.name)

    def get(self, problem: str, algorithm: str, n_batch: int, seed: int) -> RunRecord:
        """Fetch one cell, running it if not cached."""
        key = run_key(problem, algorithm, n_batch, seed)
        record = self._load(key)
        if record is None:
            t0 = time.perf_counter()
            if self.journal:
                record = self._resume_cell(key, seed)
                if record is None:
                    record = run_single(
                        problem,
                        algorithm,
                        n_batch,
                        seed,
                        self.preset,
                        journal=self._journal_path(key),
                    )
            else:
                record = run_single(problem, algorithm, n_batch, seed, self.preset)
            self._store(record)
            if self.verbose:
                print(
                    f"[campaign {self.preset.name}] {key}: "
                    f"best={record.best_value:.3f} cycles={record.n_cycles} "
                    f"sims={record.n_simulations} "
                    f"({time.perf_counter() - t0:.1f}s wall)",
                    file=sys.stderr,
                )
        return record

    def ensure(self) -> "Campaign":
        """Run every missing cell; returns self for chaining."""
        todo = self.missing()
        if todo and self.verbose:
            print(
                f"[campaign {self.preset.name}] {len(todo)} runs to execute "
                f"({len(self.cells()) - len(todo)} cached)",
                file=sys.stderr,
            )
        for cell in todo:
            self.get(*cell)
        return self

    # -- queries --------------------------------------------------------------
    def runs(
        self,
        problem: str | None = None,
        algorithm: str | None = None,
        n_batch: int | None = None,
    ) -> list[RunRecord]:
        """All (cached-or-run) records matching the filters."""
        out = []
        for prob, algo, q, seed in self.cells():
            if problem is not None and prob != problem:
                continue
            if algorithm is not None and algo != algorithm:
                continue
            if n_batch is not None and q != n_batch:
                continue
            out.append(self.get(prob, algo, q, seed))
        return out

    def cached_runs(
        self,
        problem: str | None = None,
        algorithm: str | None = None,
        n_batch: int | None = None,
    ) -> list[RunRecord]:
        """Like :meth:`runs`, but never executes a missing cell.

        Read-only consumers (the profiling tables) use this so that
        rendering a partially-cached campaign stays side-effect free.
        """
        out = []
        for prob, algo, q, seed in self.cells():
            if problem is not None and prob != problem:
                continue
            if algorithm is not None and algo != algorithm:
                continue
            if n_batch is not None and q != n_batch:
                continue
            record = self._load(run_key(prob, algo, q, seed))
            if record is not None:
                out.append(record)
        return out

    def final_values(
        self, problem: str, algorithm: str, n_batch: int
    ) -> list[float]:
        """Final outcomes of the repetition set of one cell group."""
        return [
            r.best_value for r in self.runs(problem, algorithm, n_batch)
        ]
