"""Per-phase time-breakdown tables for campaigns and traced runs.

The paper's central argument is about *where the time goes*: as the
batch size grows, the master's fit/acquisition overhead catches up
with the simulation time until the breaking point. These renderers
make that breakdown explicit:

- :func:`record_breakdown` — the per-phase totals of one cached
  :class:`~repro.experiments.records.RunRecord`;
- :func:`profiling_table` — the campaign-level table: per algorithm
  and batch size, median per-cycle fit/acquisition seconds and the
  share of the virtual budget spent on master overhead;
- :func:`trace_breakdown_text` — the per-cycle phase table of one
  JSONL trace produced with ``--trace`` (see :mod:`repro.obs.export`).
"""

from __future__ import annotations

import numpy as np

from repro.experiments.campaign import Campaign
from repro.experiments.tables import _fmt_table
from repro.obs.export import CYCLE_PHASES, cycle_breakdown, read_trace


def record_breakdown(record) -> dict[str, float]:
    """Per-phase totals (charged virtual seconds) of one run record.

    ``fit_s`` / ``acq_s`` are the measured master seconds summed over
    cycles; ``charged_s`` is what the virtual clock was actually
    charged for fit **plus** acquisition together (the driver's
    ``acq_charged`` covers both; BSP-EGO's parallel acquisition
    charges the LPT makespan, so its ``charged_s`` undercuts the
    serial sum); ``sim_s`` is the remainder of the elapsed budget,
    i.e. simulation + parallel-call overhead; ``overhead_frac`` is
    charged master time over the total elapsed.
    """
    fit_s = float(np.sum(record.fit_times))
    acq_s = float(np.sum(record.acq_times))
    charged = float(np.sum(record.acq_charged))
    elapsed = float(record.elapsed)
    return {
        "fit_s": fit_s,
        "acq_s": acq_s,
        "charged_s": charged,
        "sim_s": max(0.0, elapsed - charged),
        "overhead_frac": charged / elapsed if elapsed > 0 else 0.0,
    }


def profiling_table(campaign: Campaign, problem: str | None = None) -> str:
    """Per algorithm × batch size: where the virtual budget went.

    Aggregates every cached seed of the campaign (restricted to one
    problem when given): median per-cycle fit and acquisition seconds,
    mean charged master-overhead share of the elapsed budget. Reads
    the cache only — a partially-run campaign renders its cached
    cells without triggering the missing ones.
    """
    preset = campaign.preset
    problems = (problem,) if problem is not None else campaign.problems
    rows = []
    for algo in preset.algorithms:
        for q in preset.batch_sizes:
            records = []
            for prob in problems:
                records.extend(
                    campaign.cached_runs(problem=prob, algorithm=algo,
                                         n_batch=q)
                )
            if not records:
                continue
            fit = np.concatenate(
                [np.asarray(r.fit_times, dtype=float) for r in records]
            ) if any(r.fit_times for r in records) else np.zeros(1)
            acq = np.concatenate(
                [np.asarray(r.acq_times, dtype=float) for r in records]
            ) if any(r.acq_times for r in records) else np.zeros(1)
            frac = np.mean([record_breakdown(r)["overhead_frac"]
                            for r in records])
            rows.append([
                algo,
                str(q),
                str(len(records)),
                f"{np.median(fit):.3f}",
                f"{np.median(acq):.3f}",
                f"{100.0 * frac:.1f}%",
            ])
    title = "Per-phase time breakdown"
    if problem is not None:
        title += f" — {problem}"
    title += f" ({preset.name} preset)"
    if not rows:
        return title + "\n(no cached runs)"
    return _fmt_table(
        ["Algorithm", "n_batch", "runs", "fit med [s/cycle]",
         "acq med [s/cycle]", "overhead share"],
        rows,
        title,
    )


def trace_breakdown_text(trace_path, phases=CYCLE_PHASES) -> str:
    """Per-cycle wall-second phase table of one ``--trace`` JSONL file."""
    rows = cycle_breakdown(read_trace(trace_path), phases=phases)
    if not rows:
        return "trace contains no cycle-correlated phase spans"
    header = ["cycle"] + [f"{p} [s]" for p in phases]
    body = [
        [str(row["cycle"])] + [f"{row.get(f'{p}_s', 0.0):.4f}" for p in phases]
        for row in rows
    ]
    return _fmt_table(header, body, "Per-cycle phase breakdown (wall seconds)")
