"""Data series for every figure of the paper's evaluation.

Matplotlib is not assumed: each ``figure_N`` function returns the
numeric series the figure plots plus a text rendering (CSV-ish rows and
an ASCII sparkline for the curves), which the benchmark harness prints
and writes under ``results/``. The series are what you would feed to
any plotting tool.

- Figure 2a–c — number of evaluations vs batch size per benchmark;
- Figures 3–7 — UPHES convergence curves (best profit vs cycles), one
  figure per batch size;
- Figure 8 — pairwise t-test p-value heat map;
- Figure 9a/b — number of simulations / cycles vs batch size (UPHES).
"""

from __future__ import annotations

import numpy as np

from repro.experiments.campaign import Campaign
from repro.experiments.stats import mean_and_sd_by_batch, pairwise_ttests

_BLOCKS = "▁▂▃▄▅▆▇█"


def sparkline(values) -> str:
    """ASCII sparkline of a numeric series (empty-safe)."""
    arr = np.asarray(values, dtype=np.float64)
    if arr.size == 0:
        return ""
    lo, hi = float(arr.min()), float(arr.max())
    if hi - lo < 1e-12:
        return _BLOCKS[0] * arr.size
    idx = ((arr - lo) / (hi - lo) * (len(_BLOCKS) - 1)).astype(int)
    return "".join(_BLOCKS[i] for i in idx)


def _series_text(title: str, per_algo: dict[str, dict[int, tuple[float, float]]]) -> str:
    lines = [title, "n_batch: " + "  ".join(f"{q:>8d}" for q in
                                            next(iter(per_algo.values())).keys())]
    for algo, by_q in per_algo.items():
        means = "  ".join(f"{mu:8.1f}" for mu, _ in by_q.values())
        sds = "  ".join(f"{sd:8.1f}" for _, sd in by_q.values())
        lines.append(f"{algo:>16s} mean: {means}")
        lines.append(f"{'':>16s}   sd: {sds}")
    return "\n".join(lines)


def figure_2(campaign: Campaign, problem: str) -> tuple[dict, str]:
    """Fig. 2: evaluations performed in the budget vs batch size.

    Returns ``({algo: {q: (mean, sd)}}, text)`` for one benchmark
    (the paper has one panel per benchmark function).
    """
    data = mean_and_sd_by_batch(campaign, problem, metric="n_simulations")
    text = _series_text(
        f"Figure 2 ({problem}) — number of evaluations vs n_batch", data
    )
    return data, text


def figure_3_to_7(campaign: Campaign, n_batch: int) -> tuple[dict, str]:
    """Figs. 3–7: UPHES convergence curves for one batch size.

    Returns ``({algo: {"mean": [...], "sd": [...]}}, text)`` — the
    running best profit after each cycle, averaged over the seeds and
    truncated (as in the paper) to the shortest run so every point
    averages the full repetition set.
    """
    series: dict[str, dict[str, list[float]]] = {}
    lines = [
        f"Figure {2 + int(np.log2(n_batch)) + 1} — UPHES convergence, "
        f"n_batch = {n_batch} (best profit vs cycle)"
    ]
    for algo in campaign.preset.algorithms:
        runs = campaign.runs("uphes", algo, n_batch)
        n_common = min(len(r.trajectory) for r in runs)
        if n_common == 0:
            series[algo] = {"mean": [], "sd": []}
            continue
        traj = np.asarray([r.trajectory[:n_common] for r in runs])
        mean = traj.mean(axis=0)
        sd = traj.std(axis=0, ddof=1) if traj.shape[0] > 1 else np.zeros(n_common)
        series[algo] = {"mean": mean.tolist(), "sd": sd.tolist()}
        lines.append(
            f"{algo:>16s}: start={mean[0]:8.1f} end={mean[-1]:8.1f} "
            f"({n_common:3d} cycles)  {sparkline(mean)}"
        )
    return series, "\n".join(lines)


def figure_8(campaign: Campaign, n_batch: int = 4) -> tuple[dict, str]:
    """Fig. 8: pairwise Student's t-test p-values on UPHES outcomes.

    The paper reports the matrix per batch size; ``n_batch=4`` is the
    panel it discusses most (mic-q-EGO's significant advantage).
    """
    groups = {
        algo: campaign.final_values("uphes", algo, n_batch)
        for algo in campaign.preset.algorithms
    }
    labels, p = pairwise_ttests(groups)
    lines = [f"Figure 8 — pairwise t-test p-values, UPHES, n_batch = {n_batch}"]
    header = " " * 16 + "  ".join(f"{l[:10]:>10s}" for l in labels)
    lines.append(header)
    for i, label in enumerate(labels):
        row = "  ".join(f"{p[i, j]:10.3f}" for j in range(len(labels)))
        lines.append(f"{label[:16]:>16s}{row}")
    return {"labels": labels, "p": p.tolist()}, "\n".join(lines)


def figure_9(campaign: Campaign) -> tuple[dict, str]:
    """Fig. 9a/b: UPHES simulations and cycles vs batch size."""
    sims = mean_and_sd_by_batch(campaign, "uphes", metric="n_simulations")
    cycles = mean_and_sd_by_batch(campaign, "uphes", metric="n_cycles")
    text = (
        _series_text("Figure 9a — UPHES simulations vs n_batch", sims)
        + "\n\n"
        + _series_text("Figure 9b — UPHES cycles vs n_batch", cycles)
    )
    return {"simulations": sims, "cycles": cycles}, text


def figure_1_description() -> str:
    """Fig. 1: the plant topology (static; rendered as ASCII art)."""
    return "\n".join(
        [
            "Figure 1 — topology of the modelled UPHES unit (Maizeret-like)",
            "",
            "      ~ upper reservoir (surface) ~        z ≈ +8..+22 m",
            "      ====================________",
            "                 |penstock|                net head H ≈ 65..120 m",
            "                 | (pump/ |",
            "                 | turbine|   <- variable-speed unit:",
            "                 |  unit)  |      turbine [4, 8] MW, pump [6, 8] MW",
            "      ___________|________|____",
            "     ( lower reservoir: former )   z ≈ -100..-68 m",
            "     (  underground open-pit   )   <-> groundwater exchange",
            "     (        mine             )       with the water table (~ -80 m)",
            "      -------------------------",
            "",
            "  Energy capacity ≈ 80 MWh; decisions: 8 day-ahead energy blocks",
            "  (3 h each, signed MW) + 4 upward-reserve blocks (6 h each, MW).",
        ]
    )
