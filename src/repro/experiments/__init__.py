"""Experiment harness: campaigns, statistics, tables and figures.

Maps one-to-one onto the paper's evaluation (§3):

- :mod:`repro.experiments.presets` — the experimental protocol
  (Table 2 budgets, batch sizes, repetition counts) at paper scale and
  at a laptop-sized ``quick`` scale;
- :mod:`repro.experiments.runner` / :mod:`~repro.experiments.campaign`
  — run and cache the (algorithm × batch × seed × problem) sweeps;
- :mod:`repro.experiments.stats` — summaries and the pairwise
  Student's t-tests of Figure 8;
- :mod:`repro.experiments.tables` — Tables 1–7;
- :mod:`repro.experiments.figures` — the data series of Figures 2–9.
"""

from repro.experiments.campaign import Campaign
from repro.experiments.presets import (
    PAPER,
    QUICK,
    QUICK_REFIT4,
    SMOKE,
    SMOKE_REFIT4,
    Preset,
    get_preset,
)
from repro.experiments.records import RunRecord
from repro.experiments.runner import run_single
from repro.experiments.stats import pairwise_ttests, summarize

__all__ = [
    "Campaign",
    "PAPER",
    "Preset",
    "QUICK",
    "QUICK_REFIT4",
    "RunRecord",
    "SMOKE",
    "SMOKE_REFIT4",
    "get_preset",
    "pairwise_ttests",
    "run_single",
    "summarize",
]
