"""Renderers for every table of the paper.

Each ``table_N`` function returns the table as a formatted string (and
the underlying data), printing the same rows the paper reports:

- Table 1 — benchmark definitions;
- Table 2 — budget allocation per batch size;
- Table 3 — acquisition function per algorithm × batch size;
- Tables 4–6 — final average cost ± sd per algorithm × batch size on
  Rosenbrock / Ackley / Schwefel;
- Table 7 — min/mean/max/sd of the UPHES profit per batch size.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.campaign import Campaign
from repro.experiments.presets import Preset
from repro.experiments.stats import summarize
from repro.problems.benchmarks import BENCHMARKS, PAPER_BENCHMARKS


def _fmt_table(header: list[str], rows: list[list[str]], title: str) -> str:
    widths = [
        max(len(str(header[c])), *(len(str(r[c])) for r in rows))
        for c in range(len(header))
    ]
    lines = [title]
    lines.append("  ".join(str(h).ljust(w) for h, w in zip(header, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(str(v).ljust(w) for v, w in zip(row, widths)))
    return "\n".join(lines)


def table_1(dim: int = 12) -> str:
    """Table 1: the benchmark functions and their domains."""
    rows = []
    for name in PAPER_BENCHMARKS:
        _, (lo, hi), fmin = BENCHMARKS[name]
        rows.append(
            [name.capitalize(), f"[{lo:g}; {hi:g}]^{dim}", f"{fmin:g}"]
        )
    return _fmt_table(
        ["Name", "Domain", "f_min"],
        rows,
        "Table 1 — benchmark functions",
    )


def table_2(preset: Preset) -> str:
    """Table 2: budget allocation per batch size."""
    rows = [
        [
            str(q),
            str(preset.initial_per_batch * q),
            f"{preset.budget / 60.0:g}",
        ]
        for q in preset.batch_sizes
    ]
    return _fmt_table(
        ["n_batch", "Initial sample (simulations)", "Simulation budget (minutes)"],
        rows,
        f"Table 2 — budget allocation ({preset.name} preset)",
    )


def table_3(preset: Preset) -> str:
    """Table 3: acquisition function per algorithm and batch size."""
    rows = []
    for q in preset.batch_sizes:
        multi = "qEI" if q > 1 else "EI"
        mic = "EI/UCB (50%)" if q > 1 else "EI"
        rows.append([str(q), multi, multi, "EI", mic, "EI"])
    return _fmt_table(
        ["n_batch", "TuRBO", "MC-based q-EGO", "KB-q-EGO", "mic-q-EGO", "BSP-EGO"],
        rows,
        "Table 3 — acquisition function per algorithm",
    )


def _benchmark_table(campaign: Campaign, problem: str, number: int) -> str:
    header = ["n_batch"]
    for algo in campaign.preset.algorithms:
        header += [f"{algo} mu", f"{algo} sd"]
    rows = []
    for q in campaign.preset.batch_sizes:
        row = [str(q)]
        best_mu = None
        cells = []
        for algo in campaign.preset.algorithms:
            s = summarize(campaign.final_values(problem, algo, q))
            cells.append(s)
            if best_mu is None or s.mean < best_mu:
                best_mu = s.mean
        for s in cells:
            star = "*" if np.isclose(s.mean, best_mu) else ""
            row += [f"{s.mean:.3f}{star}", f"{s.sd:.3f}"]
        rows.append(row)
    return _fmt_table(
        header,
        rows,
        f"Table {number} — final cost on {problem} "
        f"(mean/sd over {campaign.preset.n_seeds} runs; * = row best)",
    )


def table_4(campaign: Campaign) -> str:
    """Table 4: Rosenbrock final average cost per algorithm × batch."""
    return _benchmark_table(campaign, "rosenbrock", 4)


def table_5(campaign: Campaign) -> str:
    """Table 5: Ackley final average cost per algorithm × batch."""
    return _benchmark_table(campaign, "ackley", 5)


def table_6(campaign: Campaign) -> str:
    """Table 6: Schwefel final average cost per algorithm × batch."""
    return _benchmark_table(campaign, "schwefel", 6)


def table_7(campaign: Campaign) -> str:
    """Table 7: UPHES profit min/mean/max/sd per algorithm × batch."""
    blocks = []
    for q in campaign.preset.batch_sizes:
        rows = []
        for algo in campaign.preset.algorithms:
            s = summarize(campaign.final_values("uphes", algo, q))
            rows.append(
                [
                    algo,
                    f"{s.minimum:.0f}",
                    f"{s.mean:.0f}",
                    f"{s.maximum:.0f}",
                    f"{s.sd:.0f}",
                ]
            )
        blocks.append(
            _fmt_table(
                ["algorithm", "min", "mean", "max", "sd"],
                rows,
                f"n_batch = {q}",
            )
        )
    title = (
        "Table 7 — UPHES expected profit (EUR) over "
        f"{campaign.preset.n_seeds} runs"
    )
    return title + "\n\n" + "\n\n".join(blocks)
