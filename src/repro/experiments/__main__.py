"""``python -m repro.experiments`` — alias of the report CLI."""

from repro.experiments.report import main

if __name__ == "__main__":
    raise SystemExit(main())
