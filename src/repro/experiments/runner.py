"""Single-run execution under a preset's protocol."""

from __future__ import annotations

import numpy as np

from repro.core import make_optimizer, run_optimization
from repro.doe import latin_hypercube
from repro.experiments.presets import Preset
from repro.experiments.records import RunRecord
from repro.problems import get_benchmark
from repro.uphes import UPHESSimulator
from repro.util import ConfigurationError


def make_problem(problem_name: str, preset: Preset):
    """Instantiate a problem by name under the preset's protocol.

    ``"uphes"`` builds the simulator (with its own fixed scenario seed,
    shared by every run, like the paper's single plant); anything else
    is looked up in the benchmark registry at the preset's dimension.
    """
    if problem_name.strip().lower() == "uphes":
        return UPHESSimulator(seed=0, sim_time=preset.sim_time)
    return get_benchmark(problem_name, dim=preset.dim, sim_time=preset.sim_time)


def initial_design_for(problem, n_batch: int, seed: int, preset: Preset) -> np.ndarray:
    """The shared initial design of one (seed, n_batch) repetition.

    The paper evaluates all algorithms on the *same* 10 initial sets
    ("10 distinct initial sets used for all approaches"), so the design
    depends on the seed (and the size on n_batch), not the algorithm.
    """
    return latin_hypercube(
        preset.initial_per_batch * n_batch, problem.bounds, seed=seed
    )


def run_single(
    problem_name: str,
    algorithm: str,
    n_batch: int,
    seed: int,
    preset: Preset,
    *,
    journal=None,
    faults=None,
    retry=None,
) -> RunRecord:
    """Run one (problem, algorithm, n_batch, seed) cell of the sweep.

    ``journal`` (a path or a :class:`~repro.resilience.RunJournal`),
    ``faults`` and ``retry`` are passed through to
    :func:`~repro.core.run_optimization` — a journaled cell that dies
    mid-run can be continued with :func:`repro.resilience.resume_run`.
    """
    if n_batch < 1:
        raise ConfigurationError(f"n_batch must be >= 1, got {n_batch}")
    if journal is not None and not hasattr(journal, "record"):
        from repro.resilience import RunJournal

        journal = RunJournal(journal)
    problem = make_problem(problem_name, preset)
    optimizer = make_optimizer(
        algorithm,
        problem,
        n_batch,
        seed=seed,
        gp_options=dict(preset.gp_options) or None,
        acq_options=dict(preset.acq_options) or None,
    )
    result = run_optimization(
        problem,
        optimizer,
        preset.budget,
        initial_design=initial_design_for(problem, n_batch, seed, preset),
        time_scale=preset.time_scale,
        seed=seed,
        journal=journal,
        faults=faults,
        retry=retry,
    )
    return RunRecord.from_result(result, seed=seed, preset=preset.name)
