"""JSON-serializable run records for campaign caching."""

from __future__ import annotations

from dataclasses import asdict, dataclass, field

import numpy as np

from repro.core.driver import OptimizationResult


@dataclass
class RunRecord:
    """The disk-cacheable essence of one optimization run.

    Keeps everything the tables and figures need — final outcomes,
    cycle/simulation counts, and the best-so-far trajectory with its
    timing breakdown — while dropping bulky internals (no design
    matrices beyond the best point).
    """

    problem: str
    algorithm: str
    n_batch: int
    seed: int
    preset: str
    maximize: bool
    best_value: float
    initial_best: float
    best_x: list[float]
    n_initial: int
    n_cycles: int
    n_simulations: int
    elapsed: float
    budget: float
    sim_time: float
    time_scale: float
    trajectory: list[float] = field(default_factory=list)
    fit_times: list[float] = field(default_factory=list)
    acq_times: list[float] = field(default_factory=list)
    acq_charged: list[float] = field(default_factory=list)
    evals_after_cycle: list[int] = field(default_factory=list)

    @classmethod
    def from_result(
        cls, result: OptimizationResult, seed: int, preset: str
    ) -> "RunRecord":
        return cls(
            problem=result.problem,
            algorithm=result.algorithm,
            n_batch=result.n_batch,
            seed=int(seed),
            preset=preset,
            maximize=result.maximize,
            best_value=float(result.best_value),
            initial_best=float(result.initial_best),
            best_x=[float(v) for v in np.asarray(result.best_x).ravel()],
            n_initial=int(result.n_initial),
            n_cycles=int(result.n_cycles),
            n_simulations=int(result.n_simulations),
            elapsed=float(result.elapsed),
            budget=float(result.budget),
            sim_time=float(result.sim_time),
            time_scale=float(result.time_scale),
            trajectory=[float(r.best_value) for r in result.history],
            fit_times=[float(r.fit_time) for r in result.history],
            acq_times=[float(r.acq_time) for r in result.history],
            acq_charged=[float(r.acq_charged) for r in result.history],
            evals_after_cycle=[int(r.n_evaluations) for r in result.history],
        )

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "RunRecord":
        return cls(**data)

    @property
    def key(self) -> str:
        """Unique cache key of this run within a preset."""
        return run_key(self.problem, self.algorithm, self.n_batch, self.seed)


def run_key(problem: str, algorithm: str, n_batch: int, seed: int) -> str:
    """Filename-safe identifier for a (problem, algo, q, seed) cell."""
    algo = algorithm.lower().replace(" ", "_").replace("/", "-")
    return f"{problem}__{algo}__q{n_batch}__s{seed}"
