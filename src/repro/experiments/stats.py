"""Statistics for the evaluation: summaries and pairwise t-tests.

The paper compares algorithms with pairwise Student's t-tests on the
final outcomes of the 10 repetitions (Figure 8 shows the p-value
heatmap); :func:`pairwise_ttests` reproduces that matrix.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats as sps

from repro.util import ConfigurationError


@dataclass(frozen=True)
class Summary:
    """min / mean / max / sd of one repetition set (Table 7 row)."""

    n: int
    minimum: float
    mean: float
    maximum: float
    sd: float


def summarize(values) -> Summary:
    """Summary statistics of a repetition set."""
    arr = np.asarray(values, dtype=np.float64).ravel()
    if arr.size == 0:
        raise ConfigurationError("cannot summarize an empty set")
    return Summary(
        n=int(arr.size),
        minimum=float(arr.min()),
        mean=float(arr.mean()),
        maximum=float(arr.max()),
        sd=float(arr.std(ddof=1)) if arr.size > 1 else 0.0,
    )


def pairwise_ttests(
    groups: dict[str, list[float]], equal_var: bool = True
) -> tuple[list[str], np.ndarray]:
    """Pairwise two-sided Student's t-test p-values.

    Parameters
    ----------
    groups:
        Mapping from group label (algorithm name) to its repetition
        outcomes.
    equal_var:
        ``True`` for the classic Student's test (the paper's choice),
        ``False`` for Welch's.

    Returns
    -------
    (labels, p):
        ``p[i, j]`` is the p-value between groups i and j; the diagonal
        is 1 by convention.
    """
    labels = list(groups)
    if len(labels) < 2:
        raise ConfigurationError("need at least two groups to compare")
    k = len(labels)
    p = np.ones((k, k), dtype=np.float64)
    for i in range(k):
        for j in range(i + 1, k):
            a = np.asarray(groups[labels[i]], dtype=np.float64)
            b = np.asarray(groups[labels[j]], dtype=np.float64)
            if a.size < 2 or b.size < 2:
                raise ConfigurationError(
                    "each group needs >= 2 observations for a t-test"
                )
            if np.allclose(a.std(), 0.0) and np.allclose(b.std(), 0.0):
                value = 1.0 if np.allclose(a.mean(), b.mean()) else 0.0
            else:
                value = float(
                    sps.ttest_ind(a, b, equal_var=equal_var).pvalue
                )
            p[i, j] = p[j, i] = value
    return labels, p


def mean_and_sd_by_batch(
    campaign, problem: str, metric: str = "best_value"
) -> dict[str, dict[int, tuple[float, float]]]:
    """``{algorithm: {n_batch: (mean, sd)}}`` of a per-run metric.

    ``metric`` is any scalar :class:`RunRecord` attribute
    (``best_value``, ``n_simulations``, ``n_cycles``...).
    """
    out: dict[str, dict[int, tuple[float, float]]] = {}
    for algo in campaign.preset.algorithms:
        out[algo] = {}
        for q in campaign.preset.batch_sizes:
            vals = np.asarray(
                [getattr(r, metric) for r in campaign.runs(problem, algo, q)],
                dtype=np.float64,
            )
            sd = float(vals.std(ddof=1)) if vals.size > 1 else 0.0
            out[algo][q] = (float(vals.mean()), sd)
    return out
