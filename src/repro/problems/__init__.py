"""Optimization problems: abstraction, benchmark functions, wrappers."""

from repro.problems.benchmarks import (
    BENCHMARKS,
    ackley,
    get_benchmark,
    griewank,
    levy,
    rastrigin,
    rosenbrock,
    schwefel,
    sphere,
)
from repro.problems.problem import FunctionProblem, Problem
from repro.problems.wrappers import CountingProblem, NoisyProblem, ShiftedProblem

__all__ = [
    "BENCHMARKS",
    "CountingProblem",
    "FunctionProblem",
    "NoisyProblem",
    "Problem",
    "ShiftedProblem",
    "ackley",
    "get_benchmark",
    "griewank",
    "levy",
    "rastrigin",
    "rosenbrock",
    "schwefel",
    "sphere",
]
