"""Synthetic benchmark functions (paper Table 1 plus extras).

The paper validates the five PBO algorithms on Rosenbrock, Ackley and
Schwefel in 12 dimensions, on the domains of its Table 1:

=========== ================= ======
function    domain            f_min
=========== ================= ======
Rosenbrock  [-5, 10]^12       0
Ackley      [-5, 10]^12       0
Schwefel    [-500, 500]^12    0
=========== ================= ======

All functions are vectorized over an ``(n, d)`` batch and are written in
minimization convention. Extras (sphere, Rastrigin, Griewank, Levy) are
included for wider testing and for the ablation benches.
"""

from __future__ import annotations

import numpy as np

from repro.problems.problem import FunctionProblem, Problem
from repro.util import ConfigurationError, check_matrix


def rosenbrock(X) -> np.ndarray:
    r"""Rosenbrock valley: :math:`\sum 100(x_i^2-x_{i+1})^2 + (x_i-1)^2`.

    Global minimum 0 at the all-ones vector. Note the paper's Table 1
    writes the banana term as :math:`(x_i^2 - x_{i+1})^2`, the classical
    form, which this follows.
    """
    X = check_matrix(X, "X")
    a = X[:, :-1]
    b = X[:, 1:]
    return np.sum(100.0 * (a**2 - b) ** 2 + (a - 1.0) ** 2, axis=1)


def ackley(X, a: float = 20.0, b: float = 0.2, c: float = 2.0 * np.pi) -> np.ndarray:
    """Ackley function; global minimum 0 at the origin."""
    X = check_matrix(X, "X")
    d = X.shape[1]
    s1 = np.sqrt(np.sum(X**2, axis=1) / d)
    s2 = np.sum(np.cos(c * X), axis=1) / d
    return -a * np.exp(-b * s1) - np.exp(s2) + a + np.e


#: Offset making the d-dimensional Schwefel minimum exactly zero
#: (418.9828872724338 per dimension, at x_i = 420.9687...).
_SCHWEFEL_OFFSET = 418.9828872724338


def schwefel(X) -> np.ndarray:
    r"""Schwefel function: :math:`418.98\,d - \sum x_i \sin\sqrt{|x_i|}`.

    Highly multi-modal with the global minimum (0) near the domain
    corner at :math:`x_i \approx 420.97` — outside the paper's
    ``[-500, 500]`` domain clipping never occurs, but note the best
    value inside the domain is attained close to the boundary.
    """
    X = check_matrix(X, "X")
    d = X.shape[1]
    return _SCHWEFEL_OFFSET * d - np.sum(X * np.sin(np.sqrt(np.abs(X))), axis=1)


def sphere(X) -> np.ndarray:
    """Sphere function; global minimum 0 at the origin."""
    X = check_matrix(X, "X")
    return np.sum(X**2, axis=1)


def rastrigin(X, a: float = 10.0) -> np.ndarray:
    """Rastrigin function; global minimum 0 at the origin."""
    X = check_matrix(X, "X")
    d = X.shape[1]
    return a * d + np.sum(X**2 - a * np.cos(2.0 * np.pi * X), axis=1)


def griewank(X) -> np.ndarray:
    """Griewank function; global minimum 0 at the origin."""
    X = check_matrix(X, "X")
    d = X.shape[1]
    i = np.arange(1, d + 1, dtype=np.float64)
    return 1.0 + np.sum(X**2, axis=1) / 4000.0 - np.prod(
        np.cos(X / np.sqrt(i)), axis=1
    )


def levy(X) -> np.ndarray:
    """Levy function; global minimum 0 at the all-ones vector."""
    X = check_matrix(X, "X")
    w = 1.0 + (X - 1.0) / 4.0
    term1 = np.sin(np.pi * w[:, 0]) ** 2
    term3 = (w[:, -1] - 1.0) ** 2 * (1.0 + np.sin(2.0 * np.pi * w[:, -1]) ** 2)
    wi = w[:, :-1]
    middle = np.sum(
        (wi - 1.0) ** 2 * (1.0 + 10.0 * np.sin(np.pi * wi + 1.0) ** 2), axis=1
    )
    return term1 + middle + term3


#: Registry: name -> (function, per-dimension (lo, hi), known optimum).
BENCHMARKS: dict[str, tuple] = {
    "rosenbrock": (rosenbrock, (-5.0, 10.0), 0.0),
    "ackley": (ackley, (-5.0, 10.0), 0.0),
    "schwefel": (schwefel, (-500.0, 500.0), 0.0),
    "sphere": (sphere, (-5.12, 5.12), 0.0),
    "rastrigin": (rastrigin, (-5.12, 5.12), 0.0),
    "griewank": (griewank, (-600.0, 600.0), 0.0),
    "levy": (levy, (-10.0, 10.0), 0.0),
}

#: The three functions of the paper's Table 1, in its order.
PAPER_BENCHMARKS = ("rosenbrock", "ackley", "schwefel")


def get_benchmark(name: str, dim: int = 12, sim_time: float = 0.0) -> Problem:
    """Instantiate a named benchmark as a :class:`Problem`.

    ``dim`` defaults to 12 to match the paper (all benchmarks are run in
    the UPHES problem's dimension). ``sim_time`` sets the virtual cost
    per evaluation; the paper charges an artificial 10 s.
    """
    key = name.strip().lower()
    if key not in BENCHMARKS:
        raise ConfigurationError(
            f"unknown benchmark {name!r}; available: {sorted(BENCHMARKS)}"
        )
    if dim < 2:
        raise ConfigurationError(f"benchmarks require dim >= 2, got {dim}")
    func, (lo, hi), optimum = BENCHMARKS[key]
    bounds = np.tile([lo, hi], (dim, 1))
    return FunctionProblem(
        func, bounds, name=key, maximize=False, sim_time=sim_time, optimum=optimum
    )
