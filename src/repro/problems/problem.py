"""The :class:`Problem` abstraction shared by every optimizer.

A problem is a box-constrained black-box objective. The library works
internally in *minimization* convention; maximization problems (like the
UPHES profit) set ``maximize=True`` and the driver handles negation, so
user-facing results always carry the problem's native orientation.

Problems also expose ``sim_time``: the *virtual* cost of one evaluation
in seconds, used by the virtual-clock executors to reproduce the paper's
wall-time-budgeted experiments (simulations last ~10 s there).
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.util import ValidationError, check_bounds, check_matrix


class Problem:
    """Box-constrained black-box optimization problem.

    Subclasses implement :meth:`evaluate` taking a ``(n, d)`` batch and
    returning ``(n,)`` objective values. The default :meth:`__call__`
    accepts single points or batches.

    Parameters
    ----------
    bounds:
        ``(d, 2)`` array of per-dimension ``(lower, upper)`` box bounds.
    name:
        Human-readable identifier used in reports.
    maximize:
        Native orientation of the objective. ``False`` (default) means
        smaller is better.
    sim_time:
        Virtual duration of one evaluation in seconds (default 0: free).
    optimum:
        Known optimal objective value, if any (for gap reporting).
    """

    def __init__(
        self,
        bounds,
        name: str = "problem",
        maximize: bool = False,
        sim_time: float = 0.0,
        optimum: float | None = None,
    ):
        self.bounds = check_bounds(bounds)
        self.name = str(name)
        self.maximize = bool(maximize)
        if sim_time < 0:
            raise ValidationError(f"sim_time must be >= 0, got {sim_time}")
        self.sim_time = float(sim_time)
        self.optimum = None if optimum is None else float(optimum)

    @property
    def dim(self) -> int:
        """Number of decision variables."""
        return self.bounds.shape[0]

    @property
    def lower(self) -> np.ndarray:
        """Vector of lower bounds, shape ``(d,)``."""
        return self.bounds[:, 0]

    @property
    def upper(self) -> np.ndarray:
        """Vector of upper bounds, shape ``(d,)``."""
        return self.bounds[:, 1]

    def evaluate(self, X: np.ndarray) -> np.ndarray:
        """Evaluate a validated ``(n, d)`` batch; returns ``(n,)`` values."""
        raise NotImplementedError

    def __call__(self, X) -> np.ndarray:
        X = check_matrix(X, "X", cols=self.dim)
        y = np.asarray(self.evaluate(X), dtype=np.float64)
        if y.shape != (X.shape[0],):
            raise ValidationError(
                f"{self.name}.evaluate returned shape {y.shape}, "
                f"expected ({X.shape[0]},)"
            )
        return y

    def clip(self, X) -> np.ndarray:
        """Project points onto the box, returning a new array."""
        X = check_matrix(X, "X", cols=self.dim)
        return np.clip(X, self.lower, self.upper)

    def contains(self, X) -> np.ndarray:
        """Boolean mask of rows lying inside the box (inclusive)."""
        X = check_matrix(X, "X", cols=self.dim)
        return np.all((X >= self.lower) & (X <= self.upper), axis=1)

    def normalize(self, X) -> np.ndarray:
        """Map points from the box to the unit cube ``[0, 1]^d``."""
        X = check_matrix(X, "X", cols=self.dim)
        return (X - self.lower) / (self.upper - self.lower)

    def denormalize(self, U) -> np.ndarray:
        """Map points from the unit cube back to the box."""
        U = check_matrix(U, "U", cols=self.dim)
        return self.lower + U * (self.upper - self.lower)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        direction = "max" if self.maximize else "min"
        return f"{type(self).__name__}({self.name!r}, d={self.dim}, {direction})"


class FunctionProblem(Problem):
    """Wrap a plain callable ``f(X) -> y`` as a :class:`Problem`.

    The callable must accept an ``(n, d)`` array and return ``(n,)``
    values (vectorized evaluation — the cheap path for synthetic
    benchmarks, per the NumPy vectorization guideline).
    """

    def __init__(
        self,
        func: Callable[[np.ndarray], np.ndarray],
        bounds,
        name: str | None = None,
        maximize: bool = False,
        sim_time: float = 0.0,
        optimum: float | None = None,
    ):
        super().__init__(
            bounds,
            name=name or getattr(func, "__name__", "function"),
            maximize=maximize,
            sim_time=sim_time,
            optimum=optimum,
        )
        self._func = func

    def evaluate(self, X: np.ndarray) -> np.ndarray:
        # Flatten (n, 1)-shaped returns; __call__ validates the length.
        return np.asarray(self._func(X), dtype=np.float64).reshape(-1)
