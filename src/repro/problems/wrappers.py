"""Problem decorators: evaluation counting, observation noise, shifts.

These compose around any :class:`~repro.problems.Problem` without
changing its interface, so optimizers and executors treat wrapped and
bare problems identically.
"""

from __future__ import annotations

import numpy as np

from repro.problems.problem import Problem
from repro.util import RandomState, as_generator, check_positive


class _DelegatingProblem(Problem):
    """Base for wrappers that forward metadata to an inner problem."""

    def __init__(self, inner: Problem, name_suffix: str):
        self.inner = inner
        super().__init__(
            inner.bounds,
            name=f"{inner.name}{name_suffix}",
            maximize=inner.maximize,
            sim_time=inner.sim_time,
            optimum=inner.optimum,
        )


class CountingProblem(_DelegatingProblem):
    """Count evaluations flowing through the wrapped problem.

    ``n_calls`` counts batched calls, ``n_evals`` counts individual
    points; ``history`` optionally records every (X, y) pair.
    """

    def __init__(self, inner: Problem, record: bool = False):
        super().__init__(inner, name_suffix="")
        self.n_calls = 0
        self.n_evals = 0
        self.record = bool(record)
        self.history: list[tuple[np.ndarray, np.ndarray]] = []

    def evaluate(self, X: np.ndarray) -> np.ndarray:
        y = self.inner(X)
        self.n_calls += 1
        self.n_evals += X.shape[0]
        if self.record:
            self.history.append((X.copy(), y.copy()))
        return y

    def reset(self) -> None:
        """Zero the counters and clear the recorded history."""
        self.n_calls = 0
        self.n_evals = 0
        self.history.clear()


class NoisyProblem(_DelegatingProblem):
    """Add i.i.d. Gaussian observation noise to the wrapped objective."""

    def __init__(self, inner: Problem, noise_std: float, seed: RandomState = None):
        super().__init__(inner, name_suffix="+noise")
        self.noise_std = check_positive(noise_std, "noise_std")
        self._rng = as_generator(seed)

    def evaluate(self, X: np.ndarray) -> np.ndarray:
        y = self.inner(X)
        return y + self._rng.normal(0.0, self.noise_std, size=y.shape)


class ShiftedProblem(_DelegatingProblem):
    """Evaluate the inner problem at ``x - shift`` (optimum relocation).

    Useful to de-bias benchmarks whose optimum sits at a special point
    (origin / all-ones) that initial designs can hit by accident.
    """

    def __init__(self, inner: Problem, shift):
        super().__init__(inner, name_suffix="+shift")
        shift = np.asarray(shift, dtype=np.float64).reshape(-1)
        if shift.shape[0] != inner.dim:
            raise ValueError(
                f"shift must have length {inner.dim}, got {shift.shape[0]}"
            )
        self.shift = shift

    def evaluate(self, X: np.ndarray) -> np.ndarray:
        return self.inner(np.clip(X - self.shift, self.inner.lower, self.inner.upper))
