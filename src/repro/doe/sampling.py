"""Initial designs: Latin hypercube, Sobol, uniform.

The paper allocates ``16 · n_batch`` initial simulations per run
(Table 2) drawn once per seed and shared by every algorithm, so all
samplers here are deterministic given a seed. Designs are generated in
the unit cube and affinely mapped onto the problem box.
"""

from __future__ import annotations

from typing import Callable

import numpy as np
from scipy.stats import qmc

from repro.util import ConfigurationError, RandomState, as_generator, check_bounds


def _scale(unit: np.ndarray, bounds: np.ndarray) -> np.ndarray:
    return bounds[:, 0] + unit * (bounds[:, 1] - bounds[:, 0])


def uniform_random(n: int, bounds, seed: RandomState = None) -> np.ndarray:
    """``n`` i.i.d. uniform points in the box; shape ``(n, d)``."""
    bounds = check_bounds(bounds)
    if n <= 0:
        raise ConfigurationError(f"n must be positive, got {n}")
    rng = as_generator(seed)
    return _scale(rng.random((n, bounds.shape[0])), bounds)


def latin_hypercube(n: int, bounds, seed: RandomState = None) -> np.ndarray:
    """Maximin-free Latin hypercube design of ``n`` points in the box.

    Each of the ``d`` margins is stratified into ``n`` equal slices with
    one point per slice — the standard initial design in the EGO
    literature and the one used for the paper's initial sets.
    """
    bounds = check_bounds(bounds)
    if n <= 0:
        raise ConfigurationError(f"n must be positive, got {n}")
    rng = as_generator(seed)
    sampler = qmc.LatinHypercube(d=bounds.shape[0], seed=rng)
    return _scale(sampler.random(n), bounds)


def sobol(n: int, bounds, seed: RandomState = None, scramble: bool = True) -> np.ndarray:
    """Scrambled Sobol design of ``n`` points in the box.

    ``n`` need not be a power of two; the sequence is simply truncated
    (a balance warning from SciPy is suppressed since truncation is
    intentional here).
    """
    bounds = check_bounds(bounds)
    if n <= 0:
        raise ConfigurationError(f"n must be positive, got {n}")
    rng = as_generator(seed)
    sampler = qmc.Sobol(d=bounds.shape[0], scramble=scramble, seed=rng)
    import warnings

    with warnings.catch_warnings():
        warnings.simplefilter("ignore", UserWarning)
        unit = sampler.random(n)
    return _scale(unit, bounds)


_SAMPLERS: dict[str, Callable] = {
    "lhs": latin_hypercube,
    "latin_hypercube": latin_hypercube,
    "sobol": sobol,
    "uniform": uniform_random,
    "random": uniform_random,
}


def make_sampler(name: str) -> Callable:
    """Look up a sampler by name (``lhs``, ``sobol``, ``uniform``)."""
    key = name.strip().lower()
    if key not in _SAMPLERS:
        raise ConfigurationError(
            f"unknown sampler {name!r}; available: {sorted(set(_SAMPLERS))}"
        )
    return _SAMPLERS[key]
