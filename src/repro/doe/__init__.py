"""Design of experiments: initial sampling plans."""

from repro.doe.sampling import (
    latin_hypercube,
    make_sampler,
    sobol,
    uniform_random,
)

__all__ = ["latin_hypercube", "make_sampler", "sobol", "uniform_random"]
