"""The finding model shared by the invariant checker's layers.

A :class:`Finding` is one rule violation at one source location. The
engine (:mod:`repro.analysis.engine`) produces them, the baseline
(:mod:`repro.analysis.baseline`) grandfathers them, and the CLI
(``repro lint``) renders them. Findings are frozen and hashable so the
baseline diff is plain set arithmetic over :meth:`Finding.key`.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Sort key shared everywhere a finding list is rendered or persisted,
#: so output and baseline files are byte-deterministic.
def sort_key(finding: "Finding") -> tuple:
    return (finding.path, finding.line, finding.col, finding.rule)


@dataclass(frozen=True)
class Finding:
    """One rule violation: ``rule`` at ``path:line:col`` with a message."""

    rule: str
    path: str
    line: int
    col: int
    message: str
    snippet: str = ""

    def key(self) -> tuple[str, str, int]:
        """Identity used for baseline matching: ``(rule, path, line)``.

        The column and message are deliberately excluded: re-wording a
        message or shifting a statement within its line must not
        invalidate a grandfathered entry.
        """
        return (self.rule, self.path, self.line)

    def to_dict(self) -> dict:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "snippet": self.snippet,
        }

    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.col}"
