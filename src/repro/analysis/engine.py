"""File walker, suppression handling, and reporting for ``repro lint``.

The engine parses each Python file once, runs every rule whose path
allowlist does not exempt the file, and splits raw findings three ways:

- **suppressed** — the finding's line (or a comment-only line directly
  above it) carries ``# repro-lint: disable=RULE[,RULE...]``;
- **baselined** — the finding matches an entry of the checked-in
  baseline (``analysis/baseline.json``), grandfathered deliberately;
- **new** — everything else; any of these makes ``repro lint`` exit
  nonzero, so the repo stays clean-or-explicit.

Suppressions are for sites whose justification belongs next to the
code (e.g. the ``WallClock`` class *is* the wall-clock read); the
baseline is for deliberate legacy sites audited once, in bulk.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.findings import Finding, sort_key
from repro.analysis.rules import RULES, ModuleContext, Rule

#: Inline suppression: a ``repro-lint: disable=CLK-001,RNG-001`` (or
#: ``disable=all``) comment on the finding's line or the line above it.
SUPPRESS_RE = re.compile(r"#\s*repro-lint:\s*disable=([A-Za-z0-9_\-, ]+)")

#: Directories never scanned.
_SKIP_DIRS = frozenset({"__pycache__", ".git", ".venv", "node_modules"})


def iter_python_files(paths) -> list[Path]:
    """Every ``.py`` file under ``paths``, deterministically ordered."""
    files: list[Path] = []
    for path in paths:
        path = Path(path)
        if path.is_file() and path.suffix == ".py":
            files.append(path)
        elif path.is_dir():
            files.extend(
                p for p in sorted(path.rglob("*.py"))
                if not any(part in _SKIP_DIRS for part in p.parts)
            )
    return sorted(set(files))


def module_relative(path: Path, roots) -> str:
    """Path relative to the ``repro`` package root, for allowlists.

    ``src/repro/obs/tracer.py`` → ``obs/tracer.py``. Files outside a
    ``repro`` directory (fixtures, ad-hoc trees) fall back to the path
    relative to the scan root that contains them, so fixture tests can
    exercise allowlists by mirroring the package layout.
    """
    parts = path.parts
    if "repro" in parts:
        idx = len(parts) - 1 - parts[::-1].index("repro")
        rel = parts[idx + 1:]
        if rel:
            return "/".join(rel)
    for root in roots:
        root = Path(root)
        try:
            return path.relative_to(root).as_posix()
        except ValueError:
            continue
    return path.name


def _suppress_tokens(line: str) -> set[str]:
    match = SUPPRESS_RE.search(line)
    if not match:
        return set()
    return {t for t in re.split(r"[,\s]+", match.group(1)) if t}


def suppressed_rules(lines: list[str], lineno: int) -> set[str]:
    """Rule ids disabled for the physical line ``lineno``."""
    out: set[str] = set()
    if 1 <= lineno <= len(lines):
        out |= _suppress_tokens(lines[lineno - 1])
    above = lineno - 1
    if 1 <= above <= len(lines) and lines[above - 1].lstrip().startswith("#"):
        out |= _suppress_tokens(lines[above - 1])
    return out


@dataclass
class LintReport:
    """Everything one analysis pass produced, pre-baseline."""

    findings: list[Finding] = field(default_factory=list)
    suppressed: list[Finding] = field(default_factory=list)
    n_files: int = 0

    def sorted(self) -> "LintReport":
        self.findings.sort(key=sort_key)
        self.suppressed.sort(key=sort_key)
        return self


def analyze_file(path: Path, roots=(), rules: tuple[Rule, ...] = RULES,
                 report_path: str | None = None
                 ) -> tuple[list[Finding], list[Finding]]:
    """Run every applicable rule over one file.

    Returns ``(findings, suppressed)``. A file that does not parse
    yields a single ``PARSE-001`` finding at the syntax error — an
    unparseable file can hide anything, so it can never count as clean.
    """
    text = Path(path).read_text(encoding="utf-8")
    lines = text.splitlines()
    reported = report_path if report_path is not None else Path(path).as_posix()
    try:
        tree = ast.parse(text)
    except SyntaxError as exc:
        return [Finding(
            rule="PARSE-001",
            path=reported,
            line=int(exc.lineno or 1),
            col=int(exc.offset or 1),
            message=f"file does not parse: {exc.msg}",
        )], []
    ctx = ModuleContext(
        path=reported,
        module_rel=module_relative(Path(path), roots),
        tree=tree,
        lines=lines,
    )
    findings: list[Finding] = []
    suppressed: list[Finding] = []
    for rule in rules:
        if not rule.applies_to(ctx):
            continue
        for finding in rule.check(ctx):
            disabled = suppressed_rules(lines, finding.line)
            if finding.rule in disabled or "all" in disabled:
                suppressed.append(finding)
            else:
                findings.append(finding)
    return findings, suppressed


def analyze_paths(paths, rules: tuple[Rule, ...] = RULES) -> LintReport:
    """Run the checker over files/directories; deterministic output."""
    report = LintReport()
    roots = [Path(p) for p in paths]
    for path in iter_python_files(paths):
        findings, suppressed = analyze_file(path, roots=roots, rules=rules)
        report.findings.extend(findings)
        report.suppressed.extend(suppressed)
        report.n_files += 1
    return report.sorted()


def apply_baseline(
    findings: list[Finding], entries: list[dict]
) -> tuple[list[Finding], list[Finding], list[dict]]:
    """Split findings against baseline entries, multiset-matched.

    Returns ``(new, baselined, stale_entries)`` — stale entries match
    no current finding (the violation was fixed or moved; the entry
    should be deleted, which ``--update-baseline`` does).
    """
    budget: dict[tuple, int] = {}
    for entry in entries:
        key = (entry["rule"], entry["path"], int(entry["line"]))
        budget[key] = budget.get(key, 0) + 1
    new: list[Finding] = []
    baselined: list[Finding] = []
    for finding in findings:
        key = finding.key()
        if budget.get(key, 0) > 0:
            budget[key] -= 1
            baselined.append(finding)
        else:
            new.append(finding)
    stale = []
    for entry in entries:
        key = (entry["rule"], entry["path"], int(entry["line"]))
        if budget.get(key, 0) > 0:
            budget[key] -= 1
            stale.append(entry)
    return new, baselined, stale


# ----------------------------------------------------------------------
# Rendering
# ----------------------------------------------------------------------
def format_text(findings: list[Finding]) -> str:
    lines = []
    for f in findings:
        lines.append(f"{f.location()}: {f.rule} {f.message}")
        if f.snippet:
            lines.append(f"    {f.snippet}")
    return "\n".join(lines)


def format_github(findings: list[Finding]) -> str:
    """GitHub Actions workflow commands: one ``::error`` per finding."""
    return "\n".join(
        f"::error file={f.path},line={f.line},col={f.col},"
        f"title={f.rule}::{f.message}"
        for f in findings
    )


def format_json(findings: list[Finding], *, baselined: int = 0,
                suppressed: int = 0) -> str:
    import json

    return json.dumps(
        {
            "findings": [f.to_dict() for f in findings],
            "n_findings": len(findings),
            "n_baselined": baselined,
            "n_suppressed": suppressed,
        },
        indent=2,
        sort_keys=True,
    )
