"""The repo-specific invariant rules behind ``repro lint``.

Every guarantee this reproduction advertises — bit-identical
kill/resume, RNG-neutral supervision and tracing, zero-lost-ticket
failover — rests on coding discipline: exactly one RNG draw per
selection, no wall-clock reads on virtual-clock paths, durable state
only through :mod:`repro.resilience.atomic`, shared state only under
its lock. These rules make that discipline mechanical. Each rule has a
stable id, a rationale (its docstring, surfaced by
``repro lint --list-rules``), and an optional path allowlist of
package-relative prefixes where the pattern is legitimate by design.

DESIGN.md §14 documents each rule, the invariant it protects, and the
``# guarded-by:`` / ``# repro-lint: disable=`` conventions.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field

from repro.analysis.findings import Finding

#: Declares an attribute lock-guarded, on the line of its ``__init__``
#: assignment: ``self._sessions = {}  # guarded-by: self._lock``.
GUARDED_BY_RE = re.compile(r"#\s*guarded-by:\s*([A-Za-z_][A-Za-z0-9_.]*)")


def dotted_name(node: ast.AST) -> str | None:
    """``a.b.c`` attribute chain as a dotted string, else ``None``."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


class ImportMap:
    """Resolve local names back to canonical dotted module paths.

    ``import numpy as np`` makes ``np.random.normal`` resolve to
    ``numpy.random.normal``; ``from random import choice`` makes a bare
    ``choice(...)`` resolve to ``random.choice``. Names bound by neither
    kind of import resolve to themselves, so locals shadowing module
    names simply never match a rule's canonical pattern.
    """

    def __init__(self, tree: ast.Module):
        self.aliases: dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.asname:
                        self.aliases[alias.asname] = alias.name
                    else:
                        root = alias.name.split(".")[0]
                        self.aliases[root] = root
            elif isinstance(node, ast.ImportFrom):
                if not node.module or node.level:
                    continue  # relative imports cannot name stdlib/numpy
                for alias in node.names:
                    local = alias.asname or alias.name
                    self.aliases[local] = f"{node.module}.{alias.name}"

    def resolve(self, dotted: str | None) -> str | None:
        if dotted is None:
            return None
        parts = dotted.split(".")
        for i in range(len(parts), 0, -1):
            prefix = ".".join(parts[:i])
            if prefix in self.aliases:
                return ".".join([self.aliases[prefix], *parts[i:]])
        return dotted


@dataclass
class ModuleContext:
    """Everything a rule needs to inspect one parsed source file."""

    path: str  # as reported in findings (posix, relative to the scan cwd)
    module_rel: str  # relative to the repro package root, for allowlists
    tree: ast.Module
    lines: list[str] = field(default_factory=list)
    imports: ImportMap | None = None

    def __post_init__(self):
        if self.imports is None:
            self.imports = ImportMap(self.tree)

    def resolve_call(self, node: ast.Call) -> str | None:
        """Canonical dotted name of a call's target, if resolvable."""
        return self.imports.resolve(dotted_name(node.func))

    def snippet(self, node: ast.AST) -> str:
        line = getattr(node, "lineno", 0)
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1].strip()
        return ""

    def finding(self, rule: "Rule", node: ast.AST, message: str) -> Finding:
        return Finding(
            rule=rule.id,
            path=self.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            message=message,
            snippet=self.snippet(node),
        )


class Rule:
    """One invariant check: an id, a rationale, and a ``check`` pass."""

    id: str = ""
    title: str = ""
    #: Package-relative path prefixes where the pattern is legitimate.
    allowed_paths: tuple[str, ...] = ()

    def applies_to(self, ctx: ModuleContext) -> bool:
        return not any(ctx.module_rel.startswith(p) for p in self.allowed_paths)

    def check(self, ctx: ModuleContext) -> list[Finding]:
        raise NotImplementedError


# ----------------------------------------------------------------------
# RNG discipline
# ----------------------------------------------------------------------
#: numpy.random attributes that *construct* an isolated stream (fine)
#: rather than drawing from the hidden module-level global (not fine).
_NUMPY_RNG_CONSTRUCTORS = frozenset({
    "default_rng", "Generator", "SeedSequence", "BitGenerator",
    "PCG64", "PCG64DXSM", "Philox", "SFC64", "MT19937", "RandomState",
})

#: stdlib ``random`` attributes that construct an instance (fine).
#: ``SystemRandom`` is excluded here only because DET-001 owns it.
_STDLIB_RNG_CONSTRUCTORS = frozenset({"Random", "SystemRandom"})


class RngGlobalDrawRule(Rule):
    """No module-level RNG draws: all randomness flows through an
    injected ``numpy.random.Generator`` (see ``util.rng.as_generator``).

    A draw from ``np.random.*`` or ``random.*`` consumes hidden global
    state that no checkpoint captures and any import-order change
    perturbs — one stray draw silently breaks the bit-identical
    kill/resume guarantee of PR 1 and every golden trace since.
    Constructing an isolated stream (``np.random.default_rng``,
    ``random.Random``) is allowed; drawing from the module is not.
    """

    id = "RNG-001"
    title = "module-level RNG draw"

    def check(self, ctx: ModuleContext) -> list[Finding]:
        findings = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            resolved = ctx.resolve_call(node)
            if not resolved:
                continue
            if resolved.startswith("numpy.random."):
                tail = resolved.split(".", 2)[2]
                if "." not in tail and tail not in _NUMPY_RNG_CONSTRUCTORS:
                    findings.append(ctx.finding(
                        self, node,
                        f"module-level RNG draw `{resolved}`: route draws "
                        f"through an injected numpy Generator "
                        f"(util.rng.as_generator)",
                    ))
            elif resolved.startswith("random."):
                tail = resolved.split(".", 1)[1]
                if "." not in tail and tail not in _STDLIB_RNG_CONSTRUCTORS:
                    findings.append(ctx.finding(
                        self, node,
                        f"module-level RNG draw `{resolved}`: use an "
                        f"injected `random.Random` instance (or a numpy "
                        f"Generator) so the stream is checkpointable",
                    ))
        return findings


def _is_set_expr(node: ast.AST, ctx: ModuleContext) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        return ctx.resolve_call(node) in ("set", "frozenset")
    return False


class SetIterationOrderRule(Rule):
    """No direct iteration over ``set``/``frozenset`` values.

    Set iteration order depends on hash seeds and insertion history, so
    any set-ordered loop that feeds RNG draws, dispatch order, or
    journal writes is run-to-run nondeterministic even under a fixed
    seed. Wrap the set in ``sorted(...)`` (or keep a list) before
    iterating. Dicts are insertion-ordered and are not flagged.
    """

    id = "RNG-002"
    title = "iteration over hash-ordered set"

    _MATERIALIZERS = ("list", "tuple", "enumerate")

    def check(self, ctx: ModuleContext) -> list[Finding]:
        findings = []
        message = (
            "iteration order over a set is hash-randomized; sort it "
            "(`sorted(...)`) before it feeds RNG-consuming or "
            "dispatch-order-sensitive code"
        )
        for node in ast.walk(ctx.tree):
            iters: list[ast.AST] = []
            if isinstance(node, (ast.For, ast.AsyncFor)):
                iters.append(node.iter)
            elif isinstance(node, (ast.ListComp, ast.SetComp,
                                   ast.DictComp, ast.GeneratorExp)):
                iters.extend(gen.iter for gen in node.generators)
            elif isinstance(node, ast.Call):
                if (ctx.resolve_call(node) in self._MATERIALIZERS
                        and node.args):
                    iters.append(node.args[0])
            for it in iters:
                if _is_set_expr(it, ctx):
                    findings.append(ctx.finding(self, it, message))
        return findings


# ----------------------------------------------------------------------
# Clock discipline
# ----------------------------------------------------------------------
_WALL_CLOCK_CALLS = frozenset({
    "time.time", "time.time_ns",
    "time.perf_counter", "time.perf_counter_ns",
    "time.monotonic", "time.monotonic_ns",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
})


class WallClockRule(Rule):
    """No wall-clock reads outside the transport/observability layers.

    The paper's time model charges fit/acquisition/evaluation cost to a
    *virtual* clock so runs replay bit-identically at any wall speed.
    A stray ``time.time()`` on an algorithm path leaks real time into
    decisions (timeouts, budgets, tie-breaks) and breaks replay.
    Transport code (``service/``), observability (``obs/``), and shared
    utilities (``util/``) legitimately read wall time; everywhere else
    a clock must be injected (``parallel.clock``) or the read must be
    explicitly suppressed/baselined as a deliberate measured-time site.
    """

    id = "CLK-001"
    title = "wall-clock read on a virtual-clock path"
    allowed_paths = ("obs/", "service/", "util/")

    def check(self, ctx: ModuleContext) -> list[Finding]:
        findings = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            resolved = ctx.resolve_call(node)
            if resolved in _WALL_CLOCK_CALLS:
                findings.append(ctx.finding(
                    self, node,
                    f"wall-clock read `{resolved}()` outside the "
                    f"obs/service/util allowlist: inject a clock "
                    f"(parallel.clock) or mark the site deliberate",
                ))
        return findings


# ----------------------------------------------------------------------
# Atomicity discipline
# ----------------------------------------------------------------------
_SERIALIZE_CALLS = frozenset({
    "json.dump", "json.dumps", "pickle.dump", "pickle.dumps",
    "numpy.save", "numpy.savez", "numpy.savez_compressed",
})


def _open_write_mode(call: ast.Call, ctx: ModuleContext) -> bool:
    """True when ``call`` is an ``open``/``.open`` with a write mode."""
    resolved = ctx.resolve_call(call)
    if resolved is None or not (
        resolved == "open" or resolved.endswith(".open")
    ):
        return False
    mode = None
    if len(call.args) >= 2:
        mode = call.args[1]
    elif resolved != "open" and len(call.args) >= 1:
        mode = call.args[0]  # Path(...).open("w")
    for kw in call.keywords:
        if kw.arg == "mode":
            mode = kw.value
    if not isinstance(mode, ast.Constant) or not isinstance(mode.value, str):
        return False
    return any(c in mode.value for c in "wx")


class NonAtomicPersistRule(Rule):
    """Durable state goes through ``repro.resilience.atomic`` only.

    A plain ``open(path, "w")`` + ``json.dump``/``pickle.dump`` leaves
    a truncated hybrid on disk when the process dies mid-write — the
    exact corruption the checkpoint/journal/store layers exist to
    prevent. Use ``atomic_write_json`` / ``atomic_write_text`` (write
    to a temp sibling, fsync, ``os.replace``) for anything a restart
    might read back.
    """

    id = "ATM-001"
    title = "non-atomic serialized write"
    allowed_paths = ("resilience/",)

    def check(self, ctx: ModuleContext) -> list[Finding]:
        findings = []
        message = (
            "serialized write through bare `open(..., 'w')`: persist "
            "via repro.resilience.atomic (atomic_write_json/text) so a "
            "mid-write crash cannot leave a truncated file"
        )
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.With):
                opens = [
                    item.context_expr for item in node.items
                    if isinstance(item.context_expr, ast.Call)
                    and _open_write_mode(item.context_expr, ctx)
                ]
                if not opens:
                    continue
                body_calls = {
                    ctx.resolve_call(sub)
                    for stmt in node.body
                    for sub in ast.walk(stmt)
                    if isinstance(sub, ast.Call)
                }
                if body_calls & _SERIALIZE_CALLS:
                    findings.extend(
                        ctx.finding(self, o, message) for o in opens
                    )
            elif isinstance(node, ast.Call):
                # json.dump(obj, open(path, "w")) without a with-block.
                if ctx.resolve_call(node) in _SERIALIZE_CALLS and any(
                    isinstance(arg, ast.Call)
                    and _open_write_mode(arg, ctx)
                    for arg in node.args
                ):
                    findings.append(ctx.finding(self, node, message))
        return findings


# ----------------------------------------------------------------------
# Locking discipline
# ----------------------------------------------------------------------
#: Method names that mutate their receiver in place.
_MUTATOR_METHODS = frozenset({
    "append", "extend", "insert", "add", "discard", "remove", "pop",
    "popitem", "clear", "update", "setdefault", "sort", "reverse",
    "appendleft", "popleft",
})


def _self_attr(node: ast.AST) -> str | None:
    """``X`` when ``node`` is exactly ``self.X``, else ``None``."""
    if (isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"):
        return node.attr
    return None


def _mutated_self_attr(target: ast.AST) -> str | None:
    """The ``self.X`` a statement target mutates, unwrapping ``self.X[k]``."""
    attr = _self_attr(target)
    if attr is not None:
        return attr
    if isinstance(target, ast.Subscript):
        return _self_attr(target.value)
    return None


class _GuardedMutationVisitor(ast.NodeVisitor):
    """Walk one method, tracking which lock expressions are held."""

    def __init__(self, rule: "GuardedFieldRule", ctx: ModuleContext,
                 guards: dict[str, str], method: str):
        self.rule = rule
        self.ctx = ctx
        self.guards = guards
        self.method = method
        self.held: list[str] = []
        self.findings: list[Finding] = []

    def _flag(self, node: ast.AST, attr: str) -> None:
        lock = self.guards[attr]
        if lock in self.held:
            return
        self.findings.append(self.ctx.finding(
            self.rule, node,
            f"`self.{attr}` is declared guarded-by `{lock}` but is "
            f"mutated in `{self.method}` outside `with {lock}:` (and "
            f"the method name does not end in `_locked`)",
        ))

    def visit_With(self, node: ast.With) -> None:
        entered = [ast.unparse(item.context_expr) for item in node.items]
        self.held.extend(entered)
        for stmt in node.body:
            self.visit(stmt)
        del self.held[len(self.held) - len(entered):]

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            attr = _mutated_self_attr(target)
            if attr in self.guards:
                self._flag(node, attr)
        self.visit(node.value)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        attr = _mutated_self_attr(node.target)
        if attr in self.guards:
            self._flag(node, attr)
        self.visit(node.value)

    def visit_Delete(self, node: ast.Delete) -> None:
        for target in node.targets:
            attr = _mutated_self_attr(target)
            if attr in self.guards:
                self._flag(node, attr)

    def visit_Call(self, node: ast.Call) -> None:
        if (isinstance(node.func, ast.Attribute)
                and node.func.attr in _MUTATOR_METHODS):
            attr = _self_attr(node.func.value)
            if attr in self.guards:
                self._flag(node, attr)
        self.generic_visit(node)


class GuardedFieldRule(Rule):
    """Attributes annotated ``# guarded-by: <lock>`` mutate under it.

    The service and observability layers share state across request
    threads; the convention is one annotation on the attribute's
    ``__init__`` assignment, e.g.
    ``self._sessions = {}  # guarded-by: self._lock``. Every later
    rebind, item write, ``del``, or in-place mutator call of that
    attribute must be lexically inside ``with <lock>:`` — or inside a
    method whose name ends in ``_locked`` (the repo's marker for
    "caller already holds the lock"). ``__init__`` itself is exempt:
    construction happens-before sharing.
    """

    id = "LOCK-001"
    title = "guarded attribute mutated off-lock"

    def check(self, ctx: ModuleContext) -> list[Finding]:
        findings = []
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ClassDef):
                findings.extend(self._check_class(ctx, node))
        return findings

    def _declared_guards(self, ctx: ModuleContext,
                         cls: ast.ClassDef) -> dict[str, str]:
        guards: dict[str, str] = {}
        for node in ast.walk(cls):
            if not isinstance(node, (ast.Assign, ast.AnnAssign)):
                continue
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            line = getattr(node, "lineno", 0)
            if not (1 <= line <= len(ctx.lines)):
                continue
            match = GUARDED_BY_RE.search(ctx.lines[line - 1])
            if not match:
                continue
            for target in targets:
                attr = _self_attr(target)
                if attr is not None:
                    guards[attr] = match.group(1)
        return guards

    def _check_class(self, ctx: ModuleContext,
                     cls: ast.ClassDef) -> list[Finding]:
        guards = self._declared_guards(ctx, cls)
        if not guards:
            return []
        findings = []
        for node in cls.body:
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if node.name == "__init__" or node.name.endswith("_locked"):
                continue
            visitor = _GuardedMutationVisitor(self, ctx, guards, node.name)
            for stmt in node.body:
                visitor.visit(stmt)
            findings.extend(visitor.findings)
        return findings


# ----------------------------------------------------------------------
# Exception discipline
# ----------------------------------------------------------------------
def _exception_names(node: ast.AST | None,
                     ctx: ModuleContext) -> list[str]:
    if node is None:
        return []
    if isinstance(node, ast.Tuple):
        names = []
        for elt in node.elts:
            names.extend(_exception_names(elt, ctx))
        return names
    resolved = ctx.imports.resolve(dotted_name(node))
    return [resolved] if resolved else []


def _is_silent_body(body: list[ast.stmt]) -> bool:
    """True when a handler body only passes/continues (pure swallow)."""
    for stmt in body:
        if isinstance(stmt, (ast.Pass, ast.Continue)):
            continue
        if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Constant):
            continue  # docstring / `...`
        return False
    return True


class SilentExceptRule(Rule):
    """No bare ``except:`` and no pure-swallow ``except Exception:``.

    A bare ``except:`` also catches ``SystemExit``/``KeyboardInterrupt``
    — it can turn a clean SIGINT drain into a hung worker. A handler
    for ``Exception`` whose body is only ``pass``/``continue`` hides
    degradations the supervision layers are built to surface: either
    re-raise a typed ``util.errors`` exception or record the
    degradation (journal event, ``obs`` metric) before continuing.
    Handlers that perform fallback work are fine — the rule only flags
    swallows that leave no trace at all.
    """

    id = "EXC-001"
    title = "bare or silent exception swallow"

    def check(self, ctx: ModuleContext) -> list[Finding]:
        findings = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                findings.append(ctx.finding(
                    self, node,
                    "bare `except:` also swallows SystemExit/"
                    "KeyboardInterrupt: catch a typed exception and "
                    "journal the degradation or re-raise (util.errors)",
                ))
                continue
            names = _exception_names(node.type, ctx)
            if any(n in ("Exception", "BaseException") for n in names):
                if _is_silent_body(node.body):
                    findings.append(ctx.finding(
                        self, node,
                        "silent `except Exception: pass`: journal a "
                        "degradation (run journal / obs metric) or "
                        "re-raise a typed util.errors error",
                    ))
        return findings


# ----------------------------------------------------------------------
# Determinism of journaled state
# ----------------------------------------------------------------------
_NONDET_SOURCE_CALLS = frozenset({
    "uuid.uuid1", "uuid.uuid4", "os.urandom", "random.SystemRandom",
})


class NondeterministicSourceRule(Rule):
    """No OS-entropy identifiers anywhere near replayable state.

    ``uuid4()``/``os.urandom()``/``secrets.*`` values differ on every
    run, so any that reach a journal, checkpoint, or trace make
    bit-equivalence checks impossible and resumed runs diverge from
    their originals. Ids must derive from the run's seed lineage
    (``SeedSequence`` spawns) or from deterministic counters (cycle,
    ticket, span ids).
    """

    id = "DET-001"
    title = "OS-entropy source in deterministic code"

    def check(self, ctx: ModuleContext) -> list[Finding]:
        findings = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            resolved = ctx.resolve_call(node)
            if resolved is None:
                continue
            if (resolved in _NONDET_SOURCE_CALLS
                    or resolved.startswith("secrets.")):
                findings.append(ctx.finding(
                    self, node,
                    f"nondeterministic entropy source `{resolved}()`: "
                    f"derive ids from the run's SeedSequence lineage or "
                    f"deterministic counters so journaled state replays",
                ))
        return findings


#: Every shipped rule, in documentation order.
RULES: tuple[Rule, ...] = (
    RngGlobalDrawRule(),
    SetIterationOrderRule(),
    WallClockRule(),
    NonAtomicPersistRule(),
    GuardedFieldRule(),
    SilentExceptRule(),
    NondeterministicSourceRule(),
)


def get_rule(rule_id: str) -> Rule:
    for rule in RULES:
        if rule.id == rule_id:
            return rule
    raise KeyError(rule_id)
