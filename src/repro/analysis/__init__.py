"""Static invariant analysis (``repro lint``).

An stdlib-``ast`` checker enforcing the coding discipline the system's
reproducibility guarantees rest on: RNG draws only through injected
Generators (RNG-001/002), wall-clock reads only in transport and
observability code (CLK-001), durable writes only through
``resilience.atomic`` (ATM-001), lock-guarded shared state mutated
only under its lock (LOCK-001), no silent exception swallows
(EXC-001), no OS entropy in replayable state (DET-001).

See DESIGN.md §14 for the rules, conventions, and how to add one.
"""

from repro.analysis.baseline import (
    DEFAULT_BASELINE,
    load_baseline,
    render_baseline,
    save_baseline,
)
from repro.analysis.engine import (
    LintReport,
    analyze_file,
    analyze_paths,
    apply_baseline,
    format_github,
    format_json,
    format_text,
    iter_python_files,
)
from repro.analysis.findings import Finding
from repro.analysis.rules import RULES, Rule, get_rule

__all__ = [
    "DEFAULT_BASELINE",
    "Finding",
    "LintReport",
    "RULES",
    "Rule",
    "analyze_file",
    "analyze_paths",
    "apply_baseline",
    "format_github",
    "format_json",
    "format_text",
    "get_rule",
    "iter_python_files",
    "load_baseline",
    "render_baseline",
    "save_baseline",
]
