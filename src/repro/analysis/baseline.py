"""The grandfathered-findings baseline for ``repro lint``.

``analysis/baseline.json`` records every finding audited once and
deemed deliberate (e.g. the measured fit/acquisition wall-time reads
that the paper's time model charges to the virtual clock). The file is
byte-deterministic — entries sorted by ``(path, line, rule)``, no
timestamps, no environment — so regenerating it on an unchanged tree
is a no-op diff, and it is written through the same atomic machinery
it helps enforce (eating our own ATM-001 cooking).
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.analysis.findings import Finding
from repro.resilience.atomic import atomic_write_text
from repro.util.errors import ConfigurationError

#: Default location, relative to the repository root.
DEFAULT_BASELINE = "analysis/baseline.json"

BASELINE_VERSION = 1


def entry_for(finding: Finding) -> dict:
    """The persisted form of one grandfathered finding."""
    return {
        "rule": finding.rule,
        "path": finding.path,
        "line": finding.line,
        "message": finding.message,
    }


def render_baseline(findings: list[Finding]) -> str:
    """The baseline file's exact text for ``findings``."""
    entries = sorted(
        (entry_for(f) for f in findings),
        key=lambda e: (e["path"], e["line"], e["rule"]),
    )
    payload = {"version": BASELINE_VERSION, "findings": entries}
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


def save_baseline(path: str | Path, findings: list[Finding]) -> Path:
    """Atomically (re)write the baseline; returns the path."""
    path = Path(path)
    atomic_write_text(path, render_baseline(findings), fsync=False)
    return path


def load_baseline(path: str | Path) -> list[dict]:
    """Baseline entries from ``path``; raises on a malformed file."""
    try:
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise ConfigurationError(f"baseline {path} is not valid JSON: {exc}") from exc
    if not isinstance(payload, dict) or payload.get("version") != BASELINE_VERSION:
        raise ConfigurationError(
            f"baseline {path} has unsupported version "
            f"{payload.get('version') if isinstance(payload, dict) else None!r}"
        )
    entries = payload.get("findings", [])
    for entry in entries:
        if not {"rule", "path", "line"} <= set(entry):
            raise ConfigurationError(
                f"baseline {path} entry missing rule/path/line: {entry}"
            )
    return entries
