"""JSON-friendly state serialization for checkpoints and journals.

The resilience subsystem persists mid-run optimizer state to
human-readable JSON (journals, checkpoints). These helpers convert the
two state kinds that plain ``json`` cannot carry — NumPy arrays and
``numpy.random.Generator`` streams — to and from plain dictionaries,
losslessly:

- arrays become ``{"__ndarray__": <shape>, "data": <flat list>}`` so
  even empty ``(0, d)`` arrays round-trip with their shape;
- generator state is the ``bit_generator.state`` dict (arbitrary-size
  ints, which Python's ``json`` handles exactly) plus the seed-sequence
  lineage. The lineage matters: SciPy's scrambled QMC engines seeded
  with a ``Generator`` *spawn* from its ``SeedSequence``, and the spawn
  counter lives outside ``bit_generator.state`` — restoring the state
  alone would replay a different scramble stream.
"""

from __future__ import annotations

import numpy as np

from repro.util.errors import ValidationError

_ND_KEY = "__ndarray__"


def to_jsonable(value):
    """Recursively convert ``value`` into plain JSON-serializable data.

    Supports the types optimizer state is made of: ``None``, bools,
    ints, floats, strings, NumPy scalars/arrays, and (possibly nested)
    lists / tuples / dicts thereof.
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (np.bool_,)):
        return bool(value)
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, np.ndarray):
        return {_ND_KEY: list(value.shape), "data": value.ravel().tolist()}
    if isinstance(value, (list, tuple)):
        return [to_jsonable(v) for v in value]
    if isinstance(value, dict):
        return {str(k): to_jsonable(v) for k, v in value.items()}
    raise ValidationError(
        f"cannot serialize {type(value).__name__} to JSON state"
    )


def from_jsonable(value):
    """Inverse of :func:`to_jsonable` (arrays are restored as float64)."""
    if isinstance(value, dict):
        if _ND_KEY in value:
            shape = tuple(value[_ND_KEY])
            return np.asarray(value["data"], dtype=np.float64).reshape(shape)
        return {k: from_jsonable(v) for k, v in value.items()}
    if isinstance(value, list):
        return [from_jsonable(v) for v in value]
    return value


def capture_rng(rng: np.random.Generator) -> dict:
    """Snapshot a generator's full stream state (JSON-serializable)."""
    snapshot = {
        "bit_generator": type(rng.bit_generator).__name__,
        "state": rng.bit_generator.state,
    }
    seed_seq = getattr(rng.bit_generator, "seed_seq", None)
    if isinstance(seed_seq, np.random.SeedSequence):
        snapshot["seed_seq"] = {
            "entropy": to_jsonable(seed_seq.entropy),
            "spawn_key": to_jsonable(list(seed_seq.spawn_key)),
            "pool_size": int(seed_seq.pool_size),
            "n_children_spawned": int(seed_seq.n_children_spawned),
        }
    return snapshot


def restore_rng(
    rng: np.random.Generator, snapshot: dict
) -> np.random.Generator:
    """Restore a stream snapshot taken by :func:`capture_rng`.

    Returns the restored generator; callers must use the return value,
    because restoring the seed-sequence lineage (spawn counter included)
    requires rebuilding the bit generator rather than mutating ``rng``.
    """
    expected = type(rng.bit_generator).__name__
    recorded = snapshot.get("bit_generator", expected)
    if recorded != expected:
        raise ValidationError(
            f"cannot restore {recorded} state into a {expected} generator"
        )
    info = snapshot.get("seed_seq")
    if info is None:
        rng.bit_generator.state = snapshot["state"]
        return rng
    entropy = info["entropy"]
    seed_seq = np.random.SeedSequence(
        entropy=entropy if isinstance(entropy, int) else list(entropy),
        spawn_key=tuple(int(k) for k in info["spawn_key"]),
        pool_size=int(info["pool_size"]),
    )
    if int(info["n_children_spawned"]) > 0:
        # n_children_spawned is read-only; spawning (and discarding)
        # that many children advances the counter to the captured value.
        seed_seq.spawn(int(info["n_children_spawned"]))
    bit_generator = getattr(np.random, recorded)(seed_seq)
    bit_generator.state = snapshot["state"]
    return np.random.Generator(bit_generator)
