"""Array-argument validation helpers.

These keep validation messages uniform across the package and convert
inputs to float64 C-contiguous arrays once, at API boundaries, so inner
numerical code can assume clean arrays (a guideline for HPC Python:
validate at the edges, run assumption-free in the hot loops).
"""

from __future__ import annotations

import numpy as np

from repro.util.errors import ValidationError


def check_vector(x, name: str = "x", dim: int | None = None) -> np.ndarray:
    """Validate and return ``x`` as a 1-D float64 array.

    ``dim``, when given, pins the required length.
    """
    arr = np.ascontiguousarray(x, dtype=np.float64)
    if arr.ndim != 1:
        raise ValidationError(f"{name} must be 1-D, got shape {arr.shape}")
    if dim is not None and arr.shape[0] != dim:
        raise ValidationError(f"{name} must have length {dim}, got {arr.shape[0]}")
    return arr


def check_matrix(
    x,
    name: str = "X",
    cols: int | None = None,
    allow_empty: bool = False,
) -> np.ndarray:
    """Validate and return ``x`` as a 2-D float64 array.

    ``cols``, when given, pins the required number of columns.
    """
    arr = np.ascontiguousarray(x, dtype=np.float64)
    if arr.ndim == 1:
        arr = arr.reshape(1, -1)
    if arr.ndim != 2:
        raise ValidationError(f"{name} must be 2-D, got shape {arr.shape}")
    if not allow_empty and arr.shape[0] == 0:
        raise ValidationError(f"{name} must contain at least one row")
    if cols is not None and arr.shape[1] != cols:
        raise ValidationError(f"{name} must have {cols} columns, got {arr.shape[1]}")
    return arr


def check_finite(x, name: str = "array") -> np.ndarray:
    """Raise :class:`ValidationError` if ``x`` contains NaN or Inf."""
    arr = np.asarray(x, dtype=np.float64)
    if not np.all(np.isfinite(arr)):
        raise ValidationError(f"{name} contains non-finite values")
    return arr


def check_positive(value: float, name: str = "value") -> float:
    """Raise :class:`ValidationError` unless ``value`` is finite and > 0."""
    v = float(value)
    if not np.isfinite(v) or v <= 0.0:
        raise ValidationError(f"{name} must be a finite positive number, got {value!r}")
    return v


def check_bounds(bounds, dim: int | None = None) -> np.ndarray:
    """Validate box bounds and return them as a ``(d, 2)`` float64 array.

    Accepts ``(d, 2)`` arrays, ``(lower, upper)`` pairs of vectors, or a
    list of ``(lo, hi)`` tuples. Every lower bound must be strictly below
    its upper bound.
    """
    arr = np.asarray(bounds, dtype=np.float64)
    if arr.ndim == 2 and arr.shape[0] == 2 and arr.shape[1] != 2:
        arr = arr.T  # accept (2, d) convention as well
    if arr.ndim != 2 or arr.shape[1] != 2:
        raise ValidationError(f"bounds must have shape (d, 2), got {arr.shape}")
    if dim is not None and arr.shape[0] != dim:
        raise ValidationError(f"bounds must have {dim} rows, got {arr.shape[0]}")
    if not np.all(np.isfinite(arr)):
        raise ValidationError("bounds must be finite")
    if not np.all(arr[:, 0] < arr[:, 1]):
        raise ValidationError("every lower bound must be strictly below its upper bound")
    return np.ascontiguousarray(arr)
