"""Random-number-generator plumbing.

Every stochastic component in the library accepts a ``seed`` argument
that may be ``None``, an ``int``, a :class:`numpy.random.SeedSequence`,
or a :class:`numpy.random.Generator`. :func:`as_generator` normalises
it; :func:`spawn_generators` derives independent child streams for
parallel components, following NumPy's ``SeedSequence.spawn``
discipline so that results are reproducible regardless of execution
order. The scenario layer (:mod:`repro.scenarios`) passes spawned
``SeedSequence`` children directly, so each plant/regime stream has a
stable lineage independent of construction order.
"""

from __future__ import annotations

from typing import Union

import numpy as np

RandomState = Union[None, int, np.random.SeedSequence, np.random.Generator]


def as_generator(seed: RandomState = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    Passing a ``Generator`` returns it unchanged (shared stream); an
    ``int`` gives a fresh deterministic stream; a ``SeedSequence``
    gives the stream of its spawn lineage (``default_rng(SeedSequence(k))``
    is bit-identical to ``default_rng(k)``); ``None`` gives a fresh
    OS-entropy stream.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if seed is None or isinstance(seed, (int, np.integer)):
        return np.random.default_rng(seed)
    if isinstance(seed, np.random.SeedSequence):
        return np.random.default_rng(seed)
    raise TypeError(
        "seed must be None, int, numpy.random.SeedSequence, or "
        f"numpy.random.Generator, got {type(seed).__name__}"
    )


def spawn_generators(seed: RandomState, n: int) -> list[np.random.Generator]:
    """Derive ``n`` statistically independent generators from ``seed``.

    Unlike calling :func:`as_generator` repeatedly (which would alias a
    shared stream), each returned generator has its own jumped seed
    sequence, so work distributed across parallel components draws
    non-overlapping streams.
    """
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    if isinstance(seed, np.random.Generator):
        # Derive children by drawing entropy from the parent stream.
        seeds = seed.integers(0, 2**63 - 1, size=n)
        return [np.random.default_rng(int(s)) for s in seeds]
    sequence = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in sequence.spawn(n)]
