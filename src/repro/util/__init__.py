"""Shared utilities: errors, RNG handling, validation helpers."""

from repro.util.errors import (
    AcquisitionError,
    BackpressureError,
    BudgetExhausted,
    ConfigurationError,
    EvaluationError,
    FitFailedError,
    ModelError,
    NumericalError,
    ReproError,
    ServiceError,
    SurrogateUnavailableError,
    UnknownSessionError,
    UnknownTicketError,
    UnproposedPointError,
    ValidationError,
)
from repro.util.rng import RandomState, as_generator, spawn_generators
from repro.util.serial import capture_rng, from_jsonable, restore_rng, to_jsonable
from repro.util.validation import (
    check_bounds,
    check_finite,
    check_matrix,
    check_positive,
    check_vector,
)

__all__ = [
    "AcquisitionError",
    "BackpressureError",
    "BudgetExhausted",
    "ConfigurationError",
    "EvaluationError",
    "FitFailedError",
    "ModelError",
    "NumericalError",
    "ServiceError",
    "SurrogateUnavailableError",
    "RandomState",
    "ReproError",
    "UnknownSessionError",
    "UnknownTicketError",
    "UnproposedPointError",
    "ValidationError",
    "as_generator",
    "capture_rng",
    "check_bounds",
    "check_finite",
    "check_matrix",
    "check_positive",
    "check_vector",
    "from_jsonable",
    "restore_rng",
    "spawn_generators",
    "to_jsonable",
]
