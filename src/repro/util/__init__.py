"""Shared utilities: errors, RNG handling, validation helpers."""

from repro.util.errors import (
    BudgetExhausted,
    ConfigurationError,
    NumericalError,
    ReproError,
    ValidationError,
)
from repro.util.rng import RandomState, as_generator, spawn_generators
from repro.util.validation import (
    check_bounds,
    check_finite,
    check_matrix,
    check_positive,
    check_vector,
)

__all__ = [
    "BudgetExhausted",
    "ConfigurationError",
    "NumericalError",
    "RandomState",
    "ReproError",
    "ValidationError",
    "as_generator",
    "check_bounds",
    "check_finite",
    "check_matrix",
    "check_positive",
    "check_vector",
    "spawn_generators",
]
