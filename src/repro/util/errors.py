"""Exception hierarchy for the :mod:`repro` package.

All library-raised exceptions derive from :class:`ReproError` so that
callers can catch everything coming from this package with one clause
while still distinguishing configuration mistakes from numerical
failures.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every exception raised by :mod:`repro`."""


class ConfigurationError(ReproError, ValueError):
    """An object was constructed with inconsistent or invalid options."""


class ValidationError(ReproError, ValueError):
    """An array argument failed shape / dtype / range validation."""


class ModelError(ReproError):
    """The surrogate/acquisition layer failed for the current data.

    Base of the model-side failure taxonomy. Everything below it is
    *recoverable in principle*: the self-healing ladder
    (:func:`repro.gp.safe_fit.safe_fit`) and the driver supervisor
    catch these, degrade gracefully (reuse hyperparameters, refit on
    repaired data, fall back to random proposals) and journal the
    degradation instead of crashing the run.
    """


class NumericalError(ModelError, ArithmeticError):
    """A numerical routine failed beyond recovery.

    Raised e.g. when a kernel matrix stays indefinite after the maximum
    jitter has been added to its diagonal.
    """


class FitFailedError(ModelError):
    """Hyperparameter fitting found no usable point.

    Raised by :func:`repro.gp.fit.fit_hyperparameters` when *every*
    L-BFGS-B start — the warm-started incumbent included — evaluates to
    a non-finite marginal likelihood. The kernel is restored to its
    incoming hyperparameters before raising, so callers can retry with
    ``optimize=False`` (the first rung of the self-healing ladder).
    """


class SurrogateUnavailableError(ModelError):
    """Every rung of the surrogate self-healing ladder failed.

    The model layer cannot produce any usable posterior for the current
    training data; the driver supervisor answers with random-search
    proposals until the surrogate heals.
    """


class AcquisitionError(ModelError):
    """The acquisition optimization produced nothing usable.

    Raised only when even the random-candidate fallback of
    :func:`repro.acquisition.optimize.optimize_acqf` cannot return a
    finite in-bounds point (e.g. unusable bounds).
    """


class UnproposedPointError(ValidationError):
    """A strict-mode :meth:`~repro.core.base.BatchOptimizer.update`
    received a point the optimizer never proposed.

    Strict updates are opt-in (``optimizer.strict_updates = True``) and
    are used by the ask/tell service layer: every point fed back through
    ``tell`` must match an outstanding proposal recorded with
    :meth:`~repro.core.base.BatchOptimizer.note_proposed`, so a buggy or
    malicious worker cannot poison the surrogate with fabricated
    coordinates.
    """


class ServiceError(ReproError):
    """Base class for failures of the ask/tell serving layer.

    Everything below it maps to a well-defined HTTP status in
    :mod:`repro.service.server`; the engine and session manager raise
    these so in-process callers get the same typed taxonomy the HTTP
    surface exposes.
    """


class UnknownSessionError(ServiceError):
    """A request named a session that does not exist (HTTP 404)."""


class UnknownTicketError(ServiceError):
    """A ``tell`` referenced a ticket this engine never issued (HTTP 404).

    Distinct from duplicate or expired tells, which are *expected*
    distributed-system noise and are answered with a status rather than
    an error: an unknown ticket means the caller is talking to the wrong
    session or fabricating ids.
    """


class BackpressureError(ServiceError):
    """The service is at capacity and refuses new work (HTTP 429).

    Raised when a session already has the maximum number of in-flight
    asks outstanding, when the session manager cannot admit another
    session without an on-disk store to spill to, or when the fleet
    router's admission queue / token bucket sheds load. May carry a
    ``retry_after`` hint (seconds) surfaced as the HTTP ``Retry-After``
    header.
    """

    def __init__(self, message: str, retry_after: float | None = None):
        super().__init__(message)
        self.retry_after = retry_after


class DeadlineExceededError(ServiceError):
    """The caller's propagated deadline expired before completion (504).

    Requests may carry an absolute deadline (``X-Repro-Deadline``, unix
    seconds); the router and the shard servers refuse to start — or
    relay a timeout for — work whose deadline has already passed, so a
    slow shard sheds exactly the requests whose answers nobody is still
    waiting for.
    """


class EvaluationError(ReproError, RuntimeError):
    """A black-box evaluation failed beyond what the run can absorb.

    Raised when a simulation crashes (or keeps crashing past the retry
    budget) and the configured fallback is ``"raise"``, or when every
    value of a batch / initial design is non-finite so nothing usable
    can be imputed.
    """


class BudgetExhausted(ReproError, RuntimeError):
    """The optimization time budget ran out mid-operation.

    The driver uses this internally to unwind from an acquisition step
    that would overrun the virtual wall-clock budget.
    """
