"""Exception hierarchy for the :mod:`repro` package.

All library-raised exceptions derive from :class:`ReproError` so that
callers can catch everything coming from this package with one clause
while still distinguishing configuration mistakes from numerical
failures.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every exception raised by :mod:`repro`."""


class ConfigurationError(ReproError, ValueError):
    """An object was constructed with inconsistent or invalid options."""


class ValidationError(ReproError, ValueError):
    """An array argument failed shape / dtype / range validation."""


class NumericalError(ReproError, ArithmeticError):
    """A numerical routine failed beyond recovery.

    Raised e.g. when a kernel matrix stays indefinite after the maximum
    jitter has been added to its diagonal.
    """


class EvaluationError(ReproError, RuntimeError):
    """A black-box evaluation failed beyond what the run can absorb.

    Raised when a simulation crashes (or keeps crashing past the retry
    budget) and the configured fallback is ``"raise"``, or when every
    value of a batch / initial design is non-finite so nothing usable
    can be imputed.
    """


class BudgetExhausted(ReproError, RuntimeError):
    """The optimization time budget ran out mid-operation.

    The driver uses this internally to unwind from an acquisition step
    that would overrun the virtual wall-clock budget.
    """
