"""Reconstructing a mid-run driver state from a journal.

:func:`load_checkpoint` parses the JSONL event stream written by
:func:`repro.core.run_optimization` into a :class:`RunCheckpoint`: the
run's full configuration, the observation history actually fed to the
optimizer, the last embedded optimizer state snapshot, and the
driver-level :class:`~repro.core.driver.ResumeState` that lets the run
continue under its remaining virtual budget.

Resume semantics: the run restarts from the *last cycle carrying a
state snapshot* (``checkpoint_every`` controls their cadence). Cycles
journaled after that snapshot are discarded and re-run — which is
exact, because the snapshot contains the optimizer's RNG stream and
every run-state variable, so the re-run reproduces them. A journal may
also contain several generations of cycles (a run resumed more than
once); later generations supersede earlier ones.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.driver import CycleRecord, ResumeState
from repro.resilience.journal import read_events
from repro.util import ConfigurationError, from_jsonable


@dataclass
class RunCheckpoint:
    """Everything a journal says about one (possibly unfinished) run."""

    config: dict  # the run_started payload
    X: np.ndarray  # observation history at the checkpoint (design matrix)
    y_internal: np.ndarray  # matching values, minimization orientation
    state: dict | None  # optimizer snapshot at the checkpoint cycle
    resume: ResumeState  # driver-level state at the checkpoint cycle
    cycles: list[dict]  # every superseding cycle event, in order
    completed: bool
    final: dict | None  # the run_completed payload, if any

    @property
    def remaining_budget(self) -> float:
        return max(0.0, float(self.config["budget"]) - self.resume.clock_start)


def _cycle_record(ev: dict) -> CycleRecord:
    return CycleRecord(
        cycle=int(ev["cycle"]),
        t_start=float(ev["t_start"]),
        fit_time=float(ev["fit_time"]),
        acq_time=float(ev["acq_time"]),
        acq_charged=float(ev["acq_charged"]),
        sim_charged=float(ev["sim_charged"]),
        batch_size=int(np.asarray(from_jsonable(ev["X"])).shape[0]),
        best_value=float(ev["best_value"]),
        n_evaluations=int(ev["n_evaluations"]),
    )


def load_checkpoint(path) -> RunCheckpoint:
    """Parse a run journal into its latest resumable state."""
    events = read_events(path)
    if not events or events[0]["event"] != "run_started":
        raise ConfigurationError(
            f"{path}: journal does not start with a run_started event"
        )
    config = events[0]["config"]
    if config.get("mode") == "async":
        raise ConfigurationError(
            f"{path}: asynchronous run journals are observability-only; "
            "resume supports the synchronous driver"
        )

    initial = None
    cycles: list[dict] = []
    final = None
    for ev in events[1:]:
        kind = ev["event"]
        if kind == "initial_design":
            initial = ev
        elif kind == "cycle":
            # A later generation (after a resume) supersedes any
            # previously journaled cycle with the same or higher index.
            c = int(ev["cycle"])
            while cycles and int(cycles[-1]["cycle"]) >= c:
                cycles.pop()
            cycles.append(ev)
        elif kind == "resumed":
            c = int(ev["from_cycle"])
            while cycles and int(cycles[-1]["cycle"]) > c:
                cycles.pop()
        elif kind == "run_completed":
            final = ev
    if initial is None:
        raise ConfigurationError(
            f"{path}: the run crashed during the initial design — "
            "nothing to resume; start a fresh run"
        )
    completed = final is not None

    maximize = bool(config["maximize"])
    sign = -1.0 if maximize else 1.0
    X0 = np.asarray(from_jsonable(initial["X_used"]), dtype=np.float64)
    y0_native = np.asarray(
        from_jsonable(initial["y_used"]), dtype=np.float64
    ).reshape(-1)

    # The checkpoint cycle: last cycle carrying a state snapshot.
    ckpt_idx = None
    for i in range(len(cycles) - 1, -1, -1):
        if cycles[i].get("state") is not None:
            ckpt_idx = i
            break
    kept = cycles[: ckpt_idx + 1] if ckpt_idx is not None else []
    state = kept[-1]["state"] if kept else None

    X_parts = [X0] + [
        np.asarray(from_jsonable(ev["X_used"]), dtype=np.float64) for ev in kept
    ]
    y_parts = [sign * y0_native] + [
        sign * np.asarray(from_jsonable(ev["y_used"]), dtype=np.float64).reshape(-1)
        for ev in kept
    ]
    X = np.vstack(X_parts)
    y_internal = np.concatenate(y_parts)

    n_initial = int(config["n_initial"])
    initial_best = float(np.max(y0_native) if maximize else np.min(y0_native))
    if kept:
        last = kept[-1]
        resume = ResumeState(
            clock_start=float(last["clock"]),
            cycle_start=int(last["cycle"]),
            n_initial=n_initial,
            initial_best=initial_best,
            n_evaluations=int(last["n_evaluations"]) - n_initial,
            n_batches=int(last["n_batches"]),
            history=[_cycle_record(ev) for ev in kept],
            supervisor=last.get("supervisor"),
        )
    else:
        resume = ResumeState(
            clock_start=0.0,
            cycle_start=0,
            n_initial=n_initial,
            initial_best=initial_best,
            n_evaluations=0,
            n_batches=0,
            history=[],
        )
    return RunCheckpoint(
        config=config,
        X=X,
        y_internal=y_internal,
        state=state,
        resume=resume,
        cycles=cycles,
        completed=completed,
        final=final,
    )
