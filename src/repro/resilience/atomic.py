"""Atomic file-write primitives for crash-safe persistence.

Every durable artifact of this package — campaign cache entries, run
checkpoints, journal lines — goes through one of these helpers so that
a process killed at any instant leaves either the old content or the
new content on disk, never a truncated hybrid:

- whole files are written to a temporary sibling, flushed, fsynced, and
  moved into place with :func:`os.replace` (atomic on POSIX and NT);
- journal lines are appended as one ``write`` call ending in a newline
  and fsynced, so a reader sees only whole lines (a torn final line,
  possible only on a mid-``write`` power cut, is detected and skipped
  by the journal reader).
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path

from repro.util.errors import ValidationError


def fsync_directory(path: Path) -> None:
    """Best-effort fsync of a directory entry (no-op where unsupported)."""
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform without dir-open
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - e.g. network filesystems
        pass
    finally:
        os.close(fd)


def atomic_write_text(path: str | Path, text: str, *, fsync: bool = True) -> None:
    """Replace ``path``'s content with ``text`` atomically.

    The text is written to a temporary file in the same directory (so
    the final :func:`os.replace` never crosses filesystems), flushed
    and optionally fsynced, then moved over ``path``.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(
        prefix=f".{path.name}.", suffix=".tmp", dir=path.parent
    )
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as fh:
            fh.write(text)
            fh.flush()
            if fsync:
                os.fsync(fh.fileno())
        os.replace(tmp_name, path)
        if fsync:
            fsync_directory(path.parent)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


def atomic_write_json(
    path: str | Path,
    obj,
    *,
    fsync: bool = True,
    backup: bool = False,
    **dumps_kwargs,
) -> None:
    """Serialize ``obj`` as JSON and atomically write it to ``path``.

    With ``backup`` the previous generation of the file (if any) is
    preserved as ``<path>.bak`` before the replace, giving readers a
    one-generation recovery path (:func:`load_json_with_backup`) when
    the primary is destroyed by something *outside* the atomic-write
    protocol — a bad disk, an operator truncation, a torn filesystem.
    """
    path = Path(path)
    if backup and path.exists():
        # os.replace keeps the backup write atomic too: the .bak file
        # is either the whole previous generation or the one before.
        try:
            backup_copy = path.read_bytes()
        except OSError:
            backup_copy = None
        if backup_copy is not None:
            fd, tmp_name = tempfile.mkstemp(
                prefix=f".{path.name}.", suffix=".bak.tmp", dir=path.parent
            )
            try:
                with os.fdopen(fd, "wb") as fh:
                    fh.write(backup_copy)
                    fh.flush()
                    if fsync:
                        os.fsync(fh.fileno())
                os.replace(tmp_name, backup_path(path))
            except BaseException:
                try:
                    os.unlink(tmp_name)
                except OSError:
                    pass
                raise
    atomic_write_text(path, json.dumps(obj, **dumps_kwargs), fsync=fsync)


def backup_path(path: str | Path) -> Path:
    """The sibling ``.bak`` path of a backed-up JSON artifact."""
    path = Path(path)
    return path.with_name(path.name + ".bak")


def load_json_with_backup(path: str | Path) -> tuple[dict, bool]:
    """Read a JSON checkpoint, falling back to its ``.bak`` generation.

    Returns ``(data, recovered)`` where ``recovered`` is True when the
    primary was unreadable or corrupt and the previous generation was
    served instead. Raises the primary's error when neither generation
    is readable — callers keep their typed-error translation.
    """
    path = Path(path)
    try:
        return json.loads(path.read_text(encoding="utf-8")), False
    except (OSError, json.JSONDecodeError) as primary_error:
        bak = backup_path(path)
        try:
            return json.loads(bak.read_text(encoding="utf-8")), True
        except (OSError, json.JSONDecodeError):
            raise primary_error from None


def append_line(path: str | Path, line: str, *, fsync: bool = True) -> None:
    """Append one newline-terminated line to ``path`` durably.

    The line is emitted as a single ``write`` call; with ``fsync`` the
    data is forced to stable storage before returning, which is what
    makes the run journal a trustworthy crash record.
    """
    if "\n" in line:
        raise ValidationError("journal lines must not contain newlines")
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "a", encoding="utf-8") as fh:
        fh.write(line + "\n")
        fh.flush()
        if fsync:
            os.fsync(fh.fileno())
