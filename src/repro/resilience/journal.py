"""Append-only JSONL run journal.

One optimization run writes one journal file: a sequence of JSON
objects, one per line, each describing an event of the run in the
order it happened. The format is deliberately human-readable (à la
PA-Maliboo's on-disk campaign state): ``grep``-able during a live run,
and sufficient on its own to reconstruct the run mid-flight — see
:mod:`repro.resilience.resume`.

Event vocabulary (``"event"`` field):

``run_started``
    Full run configuration: problem name / dim / sim_time, algorithm,
    ``n_batch``, budget, ``time_scale``, overhead and analytic-time
    models, seed, orientation. Always the first line.
``initial_design``
    The initial design ``X`` with raw (``y_raw``) and guarded
    (``y_used``) native objective values.
``cycle``
    One fit/acquire/evaluate cycle: virtual-clock interval, charged
    durations, the proposed batch, raw and guarded values, the running
    incumbent, and (every ``checkpoint_every`` cycles) the complete
    optimizer state snapshot — RNG stream included — that resume
    restarts from.
``fault``
    One injected or observed evaluation failure with the retry action
    taken and the virtual seconds it cost.
``degradation``
    One self-healing fallback of the model/acquisition layer or the
    executor: the surrogate ladder rung taken (``reuse_hypers`` /
    ``dedupe_refit`` / ``reset_priors``), a passive health flag
    (``near_duplicate_rows``, ``flat_targets``, ``variance_collapse``,
    ``pinned_hyperparameters``), a failed ``propose()`` replaced by a
    random batch, quarantine entry/progress, or an elastic batch
    shrink after permanent worker deaths. Fields: ``cycle`` (or
    ``index`` for asynchronous runs), ``stage``
    (``surrogate`` / ``model`` / ``executor``), ``kind``, ``action``,
    plus kind-specific details.
``worker_death``
    Permanent loss of one or more simulation slots (fault injection
    with ``death_rate > 0``): the number of deaths and the surviving
    ``alive`` count.
``run_completed``
    Final summary (best point/value, cycle and simulation counts).
    Its absence marks an interrupted run.

Lines are appended atomically with fsync (:mod:`repro.resilience.atomic`),
so a crash can at worst tear the final line — which the reader skips.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.resilience.atomic import append_line
from repro.util import ConfigurationError

#: Journal schema version, bumped on incompatible format changes.
SCHEMA_VERSION = 1


class RunJournal:
    """Append-only event log of one optimization run.

    Parameters
    ----------
    path:
        The journal file (conventionally ``*.jsonl``).
    overwrite:
        Start a fresh journal, truncating an existing file. A fresh run
        must pass ``True`` (the default); resume opens with ``False``
        to keep appending to the interrupted run's history.
    fsync:
        Force every event to stable storage (default). Disable only
        for tests or throwaway runs where durability doesn't matter.
    """

    def __init__(
        self,
        path: str | Path,
        *,
        overwrite: bool = True,
        fsync: bool = True,
    ):
        self.path = Path(path)
        self.fsync = fsync
        if overwrite and self.path.exists():
            self.path.unlink()
        self.path.parent.mkdir(parents=True, exist_ok=True)

    def record(self, event: str, **payload) -> dict:
        """Append one event; returns the full record written."""
        if not event or not isinstance(event, str):
            raise ConfigurationError(f"event must be a non-empty str, got {event!r}")
        record = {"event": event, "schema": SCHEMA_VERSION, **payload}
        append_line(self.path, json.dumps(record), fsync=self.fsync)
        return record

    def events(self) -> list[dict]:
        """Read back every intact event in order (torn tail skipped)."""
        return read_events(self.path)


def read_events(path: str | Path) -> list[dict]:
    """Parse a journal file into its event dictionaries.

    A truncated final line (the one crash artifact the append protocol
    permits) is silently dropped; a malformed line anywhere *else*
    means the file is not a journal and raises.
    """
    path = Path(path)
    if not path.exists():
        raise ConfigurationError(f"journal not found: {path}")
    lines = path.read_text(encoding="utf-8").splitlines()
    events: list[dict] = []
    for i, line in enumerate(lines):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            if i == len(lines) - 1:
                break  # torn tail from a mid-write crash
            raise ConfigurationError(
                f"{path}: line {i + 1} is not valid JSON — not a run journal?"
            )
        if not isinstance(record, dict) or "event" not in record:
            raise ConfigurationError(
                f"{path}: line {i + 1} lacks an 'event' field — not a run journal?"
            )
        events.append(record)
    return events
