"""Resuming an interrupted optimization run from its journal.

The contract: a run started with ``journal=RunJournal(path)`` and
killed at any instant can be continued with ``resume_run(path)`` — the
optimizer's observation history, algorithm state, RNG stream, and the
virtual clock are all restored from the last journaled checkpoint, so
the continued run spends only the *remaining* budget and (for a
deterministic time model) reaches exactly the incumbent an
uninterrupted run would have reached.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.resilience.checkpoint import RunCheckpoint, load_checkpoint
from repro.resilience.faults import FaultSpec, RetryPolicy
from repro.resilience.journal import RunJournal
from repro.util import ConfigurationError, from_jsonable


def rebuild_problem(config: dict):
    """Instantiate the journaled problem (spec, benchmark, or uphes).

    A journaled ``problem_spec`` (scenario runs) takes precedence: the
    declarative spec rebuilds the exact fleet/regime/event workload —
    including its SeedSequence lineage — so scenario-bundle objectives
    are kill-and-resume bit-stable. Everything else resolves by name.
    """
    spec = config.get("problem_spec")
    if spec is not None:
        from repro.scenarios import build_problem

        return build_problem(spec)
    name = str(config["problem"]).strip().lower()
    sim_time = float(config["sim_time"])
    if name == "uphes":
        from repro.uphes import UPHESSimulator

        return UPHESSimulator(seed=0, sim_time=sim_time)
    from repro.problems import get_benchmark

    return get_benchmark(name, dim=int(config["dim"]), sim_time=sim_time)


def rebuild_optimizer(config: dict, problem, ckpt: RunCheckpoint, **kwargs):
    """Reconstruct the optimizer at the journal's checkpoint cycle."""
    from repro.core.registry import make_optimizer

    optimizer = make_optimizer(
        config["algorithm"],
        problem,
        int(config["n_batch"]),
        seed=config.get("seed"),
        **kwargs,
    )
    optimizer.initialize(ckpt.X, ckpt.y_internal)
    if ckpt.state is not None:
        optimizer.set_state(ckpt.state)
    return optimizer


def _completed_result(ckpt: RunCheckpoint):
    """Rebuild the final OptimizationResult of an already-finished run."""
    from repro.core.driver import OptimizationResult
    from repro.resilience.checkpoint import _cycle_record

    config, final = ckpt.config, ckpt.final
    return OptimizationResult(
        problem=config["problem"],
        algorithm=config["algorithm"],
        n_batch=int(config["n_batch"]),
        budget=float(config["budget"]),
        sim_time=float(config["sim_time"]),
        time_scale=float(config["time_scale"]),
        seed=config.get("seed"),
        maximize=bool(config["maximize"]),
        best_x=np.asarray(from_jsonable(final["best_x"]), dtype=np.float64),
        best_value=float(final["best_value"]),
        initial_best=ckpt.resume.initial_best,
        n_initial=int(config["n_initial"]),
        n_cycles=int(final["n_cycles"]),
        n_simulations=int(final["n_simulations"]),
        elapsed=float(final["elapsed"]),
        history=[_cycle_record(ev) for ev in ckpt.cycles],
    )


def resume_run(
    journal_path,
    *,
    problem=None,
    optimizer=None,
    journal: bool = True,
    fsync: bool = True,
    max_cycles: int = 100_000,
    optimizer_kwargs: dict | None = None,
):
    """Continue an interrupted run; returns its OptimizationResult.

    Parameters
    ----------
    journal_path:
        The JSONL journal of the interrupted run.
    problem:
        Override the journaled problem (required for custom problem
        objects that cannot be rebuilt by name; must match the
        journaled dimension and orientation).
    optimizer:
        Override the reconstructed optimizer (advanced use; must
        already hold the checkpoint history and state).
    journal:
        Keep appending to the same journal while continuing (default),
        so a resumed run can itself be killed and resumed again.
    fsync:
        Durability of the continued journal's appends.
    optimizer_kwargs:
        Extra constructor arguments for the rebuilt algorithm (the
        journal does not record non-default constructor options).

    A journal that already ends in ``run_completed`` is not re-run:
    its recorded final result is reconstructed and returned, making
    resume idempotent.
    """
    from repro.core.driver import AnalyticTimeModel, run_optimization
    from repro.core.supervision import SupervisorConfig
    from repro.parallel import OverheadModel

    journal_path = Path(journal_path)
    ckpt = load_checkpoint(journal_path)
    config = ckpt.config
    if ckpt.completed:
        return _completed_result(ckpt)

    if problem is None:
        problem = rebuild_problem(config)
    if bool(problem.maximize) != bool(config["maximize"]) or int(
        problem.dim
    ) != int(config["dim"]):
        raise ConfigurationError(
            "the provided problem does not match the journaled run "
            f"(dim {problem.dim} vs {config['dim']}, "
            f"maximize {problem.maximize} vs {config['maximize']})"
        )
    if optimizer is None:
        optimizer = rebuild_optimizer(
            config, problem, ckpt, **(optimizer_kwargs or {})
        )

    run_journal = None
    if journal:
        run_journal = RunJournal(journal_path, overwrite=False, fsync=fsync)
        run_journal.record(
            "resumed",
            from_cycle=ckpt.resume.cycle_start,
            clock=ckpt.resume.clock_start,
        )

    overhead = (
        OverheadModel(**config["overhead"]) if config.get("overhead") else None
    )
    time_model = (
        AnalyticTimeModel(**config["time_model"])
        if config.get("time_model")
        else None
    )
    faults = FaultSpec(**config["faults"]) if config.get("faults") else None
    retry = RetryPolicy(**config["retry"]) if config.get("retry") else None
    supervisor = (
        SupervisorConfig(**config["supervisor"])
        if config.get("supervisor")
        else None
    )

    return run_optimization(
        problem,
        optimizer,
        float(config["budget"]),
        time_scale=float(config["time_scale"]),
        overhead=overhead,
        seed=config.get("seed"),
        max_cycles=max_cycles,
        time_model=time_model,
        journal=run_journal,
        faults=faults,
        retry=retry,
        checkpoint_every=int(config.get("checkpoint_every", 1)),
        on_nonfinite=config.get("on_nonfinite", "impute"),
        supervisor=supervisor,
        resume_state=ckpt.resume,
    )
