"""Crash safety: run journal, checkpoint/resume, fault injection.

The paper's regime — a hard 20-minute budget over expensive parallel
simulations — is exactly where a crashed worker or a killed master
wastes an unrecoverable budget. This package makes every run
crash-safe and failure-tolerant:

- :mod:`repro.resilience.atomic` — write-temp-then-``os.replace`` and
  fsynced-append primitives shared by every durable artifact;
- :mod:`repro.resilience.journal` — the append-only JSONL run journal
  (:class:`RunJournal`) recording every event of a run;
- :mod:`repro.resilience.checkpoint` / :mod:`repro.resilience.resume`
  — reconstruct a mid-run driver + optimizer state from the journal
  and continue under the remaining virtual budget
  (:func:`resume_run`);
- :mod:`repro.resilience.faults` — crash / timeout / NaN-result
  injection (:class:`FaultSpec`) with retries and backoff charged to
  the virtual clock (:class:`RetryPolicy`,
  :class:`FaultySimulatedCluster`, :class:`FaultyExecutor`).
"""

from repro.resilience.atomic import (
    append_line,
    atomic_write_json,
    atomic_write_text,
    backup_path,
    load_json_with_backup,
)
from repro.resilience.checkpoint import RunCheckpoint, load_checkpoint
from repro.resilience.faults import (
    FaultSpec,
    FaultyExecutor,
    FaultySimulatedCluster,
    RetryPolicy,
)
from repro.resilience.journal import RunJournal, read_events
from repro.resilience.resume import rebuild_optimizer, rebuild_problem, resume_run

__all__ = [
    "FaultSpec",
    "FaultyExecutor",
    "FaultySimulatedCluster",
    "RetryPolicy",
    "RunCheckpoint",
    "RunJournal",
    "append_line",
    "atomic_write_json",
    "atomic_write_text",
    "backup_path",
    "load_checkpoint",
    "load_json_with_backup",
    "read_events",
    "rebuild_optimizer",
    "rebuild_problem",
    "resume_run",
]
