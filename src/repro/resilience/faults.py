"""Fault injection and retry for black-box evaluation.

Massively parallel BO deployments treat evaluation failure as the norm:
on a real cluster a 10-second simulation can crash, hang past its
scheduler limit, or return garbage. This module makes those failure
modes first-class in both evaluation paths of the package:

- :class:`FaultySimulatedCluster` wraps the virtual-clock batch
  evaluator with configurable crash / timeout / NaN-result injection
  and a :class:`RetryPolicy` whose waiting (exponential backoff, hung
  simulations held until their timeout) is *charged to the virtual
  clock* — so fault-tolerance experiments measure the true budget cost
  of failures, reproducibly;
- :class:`FaultyExecutor` applies the same injection and retry to the
  real (serial / thread / process) executors, sleeping real delays.

Both return NaN for points that remain failed after the retry budget;
the driver's non-finite guard then applies the policy's fallback
(impute the worst observed value, fantasy-impute from the surrogate,
drop the point, or raise).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.parallel.simcluster import SimulatedCluster
from repro.util import (
    ConfigurationError,
    EvaluationError,
    RandomState,
    as_generator,
    check_matrix,
)

#: Fallback actions once the retry budget is exhausted.
FALLBACKS = ("impute", "fantasy", "drop", "raise")


@dataclass(frozen=True)
class FaultSpec:
    """Failure-injection configuration for one evaluation path.

    Per simulation attempt, mutually exclusive outcomes are drawn from
    an independent fault stream (``seed``): crash with probability
    ``crash_rate``, hang until ``timeout`` virtual seconds with
    probability ``timeout_rate``, return NaN with probability
    ``nan_rate``, complete normally otherwise.

    Two supervision-oriented failure modes ride on the same stream:

    - ``death_rate`` — per batch, each currently-alive worker dies
      *permanently* with this probability (at least one always
      survives). The cluster's ``alive_workers`` shrinks and the
      driver-level supervisor elastically shrinks the batch size to
      match.
    - ``adaptive_timeout`` — replace the static ``timeout`` limit by a
      learned one (``RuntimeQuantiles``: a multiple of a high quantile
      of observed runtimes, never above the static limit), so hung
      simulations are cut off sooner once the runtime distribution is
      known.
    """

    crash_rate: float = 0.0
    timeout_rate: float = 0.0
    nan_rate: float = 0.0
    timeout: float = 60.0  # virtual seconds a hung simulation wastes
    seed: RandomState = 0
    death_rate: float = 0.0
    adaptive_timeout: bool = False

    def __post_init__(self):
        for name in ("crash_rate", "timeout_rate", "nan_rate", "death_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ConfigurationError(f"{name} must be in [0, 1], got {rate}")
        if self.crash_rate + self.timeout_rate + self.nan_rate > 1.0:
            raise ConfigurationError("fault rates must sum to <= 1")
        if self.timeout < 0:
            raise ConfigurationError(f"timeout must be >= 0, got {self.timeout}")

    @property
    def total_rate(self) -> float:
        return self.crash_rate + self.timeout_rate + self.nan_rate

    def draw(self, rng: np.random.Generator) -> str | None:
        """One attempt's outcome: 'crash' | 'timeout' | 'nan' | None (ok)."""
        u = float(rng.random())
        if u < self.crash_rate:
            return "crash"
        if u < self.crash_rate + self.timeout_rate:
            return "timeout"
        if u < self.total_rate:
            return "nan"
        return None


@dataclass(frozen=True)
class RetryPolicy:
    """What to do when an evaluation attempt fails.

    Each point gets ``max_attempts`` tries in total; before retry round
    ``k`` (1-based) the evaluator waits ``base_delay · backoff^(k-1)``
    seconds — virtual seconds on the simulated cluster, real sleep on
    the executors. Points still failed afterwards fall back to:

    - ``"impute"`` — replace with the worst objective value observed so
      far (pessimistic, keeps the GP away from the failing region);
    - ``"fantasy"`` — replace with the surrogate's posterior mean at
      the failed point (falls back to ``"impute"`` with no surrogate);
    - ``"drop"`` — discard the point entirely;
    - ``"raise"`` — abort the run with :class:`EvaluationError`.
    """

    max_attempts: int = 3
    base_delay: float = 1.0
    backoff: float = 2.0
    fallback: str = "impute"

    def __post_init__(self):
        if self.max_attempts < 1:
            raise ConfigurationError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.base_delay < 0 or self.backoff < 1.0:
            raise ConfigurationError("need base_delay >= 0 and backoff >= 1")
        if self.fallback not in FALLBACKS:
            raise ConfigurationError(
                f"fallback must be one of {FALLBACKS}, got {self.fallback!r}"
            )

    def delay(self, retry_round: int) -> float:
        """Backoff before 1-based retry round ``retry_round``."""
        if retry_round < 1:
            raise ConfigurationError(f"retry_round must be >= 1, got {retry_round}")
        return self.base_delay * self.backoff ** (retry_round - 1)


class FaultySimulatedCluster(SimulatedCluster):
    """A :class:`SimulatedCluster` whose simulations can fail.

    Evaluation proceeds in rounds: the full batch is attempted in
    parallel; failed points are resubmitted together after the policy's
    backoff, up to ``retry.max_attempts`` attempts per point. Every
    wasted second — hung simulations held to ``spec.timeout``, backoff
    waits, resubmitted waves — is charged to the virtual clock, so a
    faulty run consumes its budget exactly as a real faulty campaign
    would. Points failed for good come back as NaN (the driver's
    non-finite guard applies the fallback).
    """

    def __init__(
        self,
        n_workers: int,
        clock=None,
        overhead=None,
        *,
        spec: FaultSpec,
        retry: RetryPolicy | None = None,
        journal=None,
    ):
        super().__init__(n_workers, clock=clock, overhead=overhead)
        self.spec = spec
        self.retry = retry if retry is not None else RetryPolicy()
        self.journal = journal
        self.fault_rng = as_generator(spec.seed)
        self.n_faults = 0
        self.n_retried = 0
        self.n_worker_deaths = 0
        self.time_wasted = 0.0
        if spec.adaptive_timeout:
            from repro.parallel.supervision import RuntimeQuantiles

            self.timeouts = RuntimeQuantiles()
        else:
            self.timeouts = None

    def effective_timeout(self) -> float:
        """Current hung-simulation limit (learned if adaptive)."""
        if self.timeouts is None:
            return float(self.spec.timeout)
        return self.timeouts.timeout(self.spec.timeout)

    def _round_duration(self, k: int, sim_time: float, timed_out: bool) -> float:
        """Virtual seconds one attempt round of ``k`` points occupies."""
        duration = self.batch_duration(k, sim_time)
        if timed_out:
            # The synchronous master waits for the slowest slot, which
            # is a simulation hung until its timeout limit.
            duration += max(0.0, self.effective_timeout() - float(sim_time))
        return duration

    def _kill_workers(self) -> None:
        """Permanent worker deaths, drawn once per batch.

        Only touches the fault stream when ``death_rate > 0``, so
        death-free configurations reproduce their exact pre-existing
        fault sequences. The last worker never dies — a cluster with
        zero slots is an aborted campaign, not a degraded one.
        """
        if self.spec.death_rate <= 0.0:
            return
        deaths = 0
        for _ in range(self.alive_workers):
            if self.alive_workers - deaths <= 1:
                break
            if float(self.fault_rng.random()) < self.spec.death_rate:
                deaths += 1
        if deaths:
            self.alive_workers -= deaths
            self.n_worker_deaths += deaths
            if self.journal is not None:
                self.journal.record(
                    "worker_death",
                    n=deaths,
                    alive=int(self.alive_workers),
                    t=float(self.clock.now),
                )

    def _record_fault(self, kind: str, index: int, attempt: int, action: str) -> None:
        self.n_faults += 1
        if self.journal is not None:
            self.journal.record(
                "fault",
                kind=kind,
                index=int(index),
                attempt=int(attempt),
                action=action,
                t=float(self.clock.now),
            )

    def evaluate(self, problem, X) -> np.ndarray:
        X = check_matrix(X, "X", cols=problem.dim)
        y_true = np.asarray(problem(X), dtype=np.float64).reshape(-1)
        n = X.shape[0]
        y_out = np.full(n, np.nan)
        self._kill_workers()
        pending = list(range(n))
        attempt = 0
        while pending and attempt < self.retry.max_attempts:
            attempt += 1
            if attempt > 1:
                wait = self.retry.delay(attempt - 1)
                self.clock.advance(wait)
                self.time_wasted += wait
                self.n_retried += len(pending)
            failed: list[int] = []
            timed_out = False
            for i in pending:
                kind = self.spec.draw(self.fault_rng)
                if kind is None:
                    y_out[i] = y_true[i]
                    continue
                if kind == "timeout":
                    timed_out = True
                exhausted = attempt >= self.retry.max_attempts
                action = self.retry.fallback if exhausted else "resubmit"
                self._record_fault(kind, i, attempt, action)
                failed.append(i)
            duration = self._round_duration(
                len(pending), problem.sim_time, timed_out
            )
            if self.timeouts is not None:
                for i in pending:
                    if i not in failed:
                        self.timeouts.observe(float(problem.sim_time))
            self.clock.advance(duration)
            if attempt > 1:
                self.time_wasted += duration
            self.time_simulating += duration
            self.n_evaluations += len(pending)
            pending = failed
        self.n_batches += 1
        if pending and self.retry.fallback == "raise":
            raise EvaluationError(
                f"{len(pending)} evaluation(s) still failed after "
                f"{self.retry.max_attempts} attempts"
            )
        return y_out


class FaultyExecutor:
    """Fault injection + retry around a real executor.

    Wraps any object with the executor protocol (``n_workers``,
    ``evaluate``, ``shutdown``, context management) — typically
    :class:`~repro.parallel.SerialExecutor` or the pool executors. The
    same :class:`FaultSpec` outcomes are drawn per point and attempt;
    backoff waits call ``sleep`` (injectable for tests). Permanently
    failed points return NaN, or raise under ``fallback="raise"``.
    """

    def __init__(
        self,
        inner,
        spec: FaultSpec,
        retry: RetryPolicy | None = None,
        sleep=None,
    ):
        import time

        self.inner = inner
        self.spec = spec
        self.retry = retry if retry is not None else RetryPolicy()
        self.sleep = sleep if sleep is not None else time.sleep
        self.fault_rng = as_generator(spec.seed)
        self.n_faults = 0

    @property
    def n_workers(self) -> int:
        return self.inner.n_workers

    def evaluate(self, problem, X) -> np.ndarray:
        X = check_matrix(X, "X", cols=problem.dim)
        n = X.shape[0]
        y_out = np.full(n, np.nan)
        pending = list(range(n))
        attempt = 0
        while pending and attempt < self.retry.max_attempts:
            attempt += 1
            if attempt > 1:
                self.sleep(self.retry.delay(attempt - 1))
            y_round = np.asarray(
                self.inner.evaluate(problem, X[pending]), dtype=np.float64
            ).reshape(-1)
            failed: list[int] = []
            for j, i in enumerate(pending):
                if self.spec.draw(self.fault_rng) is None:
                    y_out[i] = y_round[j]
                else:
                    self.n_faults += 1
                    failed.append(i)
            pending = failed
        if pending and self.retry.fallback == "raise":
            raise EvaluationError(
                f"{len(pending)} evaluation(s) still failed after "
                f"{self.retry.max_attempts} attempts"
            )
        return y_out

    def shutdown(self) -> None:
        self.inner.shutdown()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.shutdown()
        return False
