"""Log marginal likelihood and its analytic gradient.

The GP hyperparameters are the kernel's log-space vector plus the log
noise variance. The constant trend (paper: "constant trend") is
*profiled out* by generalized least squares at every evaluation: at the
GLS optimum the partial derivative of the likelihood w.r.t. the mean is
zero, so by the envelope theorem the gradient w.r.t. the kernel / noise
parameters at fixed profiled mean is the exact gradient of the
concentrated likelihood.
"""

from __future__ import annotations

import math

import numpy as np

from repro.gp.kernels import Kernel
from repro.gp.linalg import jittered_cholesky, solve_cholesky

_LOG_2PI = math.log(2.0 * math.pi)


def profiled_mean(L: np.ndarray, z: np.ndarray, mode: str) -> float:
    """GLS estimate of the constant trend, or 0 for a zero mean."""
    if mode == "zero":
        return 0.0
    ones = np.ones_like(z)
    kinv_ones = solve_cholesky(L, ones)
    denom = float(ones @ kinv_ones)
    if denom <= 0.0:
        return float(np.mean(z))
    return float(z @ kinv_ones) / denom


def mll_value(
    kernel: Kernel,
    log_noise: float,
    X: np.ndarray,
    z: np.ndarray,
    mean_mode: str = "constant",
) -> float:
    """Concentrated log marginal likelihood (no gradient)."""
    value, _ = _mll(kernel, log_noise, X, z, mean_mode, with_grad=False)
    return value


def mll_value_and_grad(
    kernel: Kernel,
    log_noise: float,
    X: np.ndarray,
    z: np.ndarray,
    mean_mode: str = "constant",
) -> tuple[float, np.ndarray]:
    """Concentrated log marginal likelihood and its gradient.

    The gradient is ordered ``[kernel.theta..., log_noise]`` and each
    entry is ``½ tr((ααᵀ − K⁻¹)·∂K/∂θⱼ)``.
    """
    value, grad = _mll(kernel, log_noise, X, z, mean_mode, with_grad=True)
    assert grad is not None
    return value, grad


def _mll(
    kernel: Kernel,
    log_noise: float,
    X: np.ndarray,
    z: np.ndarray,
    mean_mode: str,
    with_grad: bool,
) -> tuple[float, np.ndarray | None]:
    n = X.shape[0]
    noise_var = math.exp(log_noise)
    K = kernel(X)
    K[np.diag_indices_from(K)] += noise_var
    L, _ = jittered_cholesky(K)

    m = profiled_mean(L, z, mean_mode)
    resid = z - m
    alpha = solve_cholesky(L, resid)
    log_det = 2.0 * float(np.sum(np.log(np.diag(L))))
    value = -0.5 * float(resid @ alpha) - 0.5 * log_det - 0.5 * n * _LOG_2PI

    if not with_grad:
        return value, None

    # M = ααᵀ − K⁻¹; formed explicitly once (O(n³) like the Cholesky).
    K_inv = solve_cholesky(L, np.eye(n))
    M = np.outer(alpha, alpha) - K_inv

    grads = np.empty(kernel.n_params + 1, dtype=np.float64)
    for j, dK in enumerate(kernel.iter_param_gradients(X)):
        grads[j] = 0.5 * float(np.sum(M * dK))
    # ∂K/∂log σₙ² = σₙ²·I
    grads[-1] = 0.5 * noise_var * float(np.trace(M))
    return value, grads
