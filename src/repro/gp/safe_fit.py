"""Self-healing surrogate fitting: health checks plus a fallback ladder.

Under the paper's hard wall-clock budget a single unhandled model
failure forfeits the whole run, so the surrogate fit is guarded the way
BoTorch/TuRBO deployments guard theirs: diagnose the training data and
the fitted model, and when the straight fit fails walk a ladder of
increasingly drastic fallbacks instead of raising —

rung 0
    the normal multi-start MLL fit (identical to calling ``gp.fit``);
rung 1
    reuse the last good hyperparameters (``optimize=False``) — the
    warm-started incumbent survived earlier cycles, so its posterior is
    usually still usable even when re-optimization diverges;
rung 2
    repair the data — drop near-duplicate training rows (the classic
    cause of indefinite kernel matrices), or jitter the inputs when no
    duplicates are found — and refit;
rung 3
    reset every hyperparameter to its prior midpoint and rebuild the
    posterior without optimization.

Only when rung 3 also fails does :func:`safe_fit` raise
(:class:`~repro.util.SurrogateUnavailableError`); the driver-level
supervisor then degrades the run to random-search proposals.

Every rung taken and every passive health flag (near-duplicate rows,
flat targets, variance collapse, hyperparameters pinned at their
bounds) is reported through :class:`SafeFitReport`, which the driver
turns into journal ``degradation`` events.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.obs.tracer import trace_span
from repro.util import (
    ModelError,
    RandomState,
    SurrogateUnavailableError,
    as_generator,
)

#: Span-normalized max-norm distance under which two training rows
#: count as near-duplicates.
DUPLICATE_TOL = 1e-8

#: Relative target range under which the objective counts as flat.
FLAT_TOL = 1e-12

#: Log-space margin within which a hyperparameter counts as pinned.
PINNED_TOL = 1e-6

#: Ladder rung -> the action it takes.
LADDER_ACTIONS = ("fit", "reuse_hypers", "dedupe_refit", "reset_priors")


@dataclass
class SafeFitReport:
    """What :func:`safe_fit` did and what it observed.

    ``level`` is the ladder rung that produced the returned model
    (0 = the straight fit succeeded); ``issues`` are passive health
    flags that do not change the fit but deserve journaling;
    ``errors`` records the stringified exception of every failed rung.
    """

    level: int = 0
    issues: list[str] = field(default_factory=list)
    errors: list[str] = field(default_factory=list)
    n_dropped: int = 0

    @property
    def action(self) -> str:
        """Name of the ladder rung that produced the model."""
        return LADDER_ACTIONS[self.level]

    @property
    def degraded(self) -> bool:
        """True when a fallback rung (not the straight fit) was used."""
        return self.level > 0

    def events(self) -> list[dict]:
        """Journal ``degradation`` payloads for this fit."""
        out = [
            {"stage": "surrogate", "kind": kind, "action": "monitor"}
            for kind in self.issues
        ]
        if self.degraded:
            out.append(
                {
                    "stage": "surrogate",
                    "kind": "fit_failed",
                    "action": self.action,
                    "level": self.level,
                    "errors": self.errors,
                    "n_dropped": self.n_dropped,
                }
            )
        return out


# ----------------------------------------------------------------------
# Health checks
# ----------------------------------------------------------------------
def _span(gp, X: np.ndarray) -> np.ndarray:
    """Per-dimension scale used to normalize row distances."""
    bounds = getattr(gp, "input_bounds", None)
    if bounds is not None:
        return np.maximum(bounds[:, 1] - bounds[:, 0], 1e-300)
    ptp = np.ptp(X, axis=0)
    return np.where(ptp > 0, ptp, 1.0)


def duplicate_row_groups(X: np.ndarray, span, tol: float = DUPLICATE_TOL):
    """Indices of rows that near-duplicate an earlier row.

    Returns ``(keep, drop)`` index arrays: ``keep`` holds the first
    occurrence of every distinct row, ``drop`` the near-duplicates of
    an earlier row (span-normalized max-norm distance below ``tol``).
    """
    U = np.asarray(X, dtype=np.float64) / np.asarray(span, dtype=np.float64)
    n = U.shape[0]
    keep: list[int] = []
    drop: list[int] = []
    for i in range(n):
        dup = False
        for j in keep:
            if np.max(np.abs(U[i] - U[j])) < tol:
                dup = True
                break
        if dup:
            drop.append(i)
        else:
            keep.append(i)
    return np.asarray(keep, dtype=int), np.asarray(drop, dtype=int)


def data_health_issues(gp, X: np.ndarray, y: np.ndarray) -> list[str]:
    """Passive pre-fit flags: near-duplicate rows, flat targets."""
    issues: list[str] = []
    X = np.asarray(X, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64).reshape(-1)
    _, dropped = duplicate_row_groups(X, _span(gp, X))
    if dropped.size:
        issues.append("near_duplicate_rows")
    if y.size >= 2 and float(np.ptp(y)) <= FLAT_TOL * max(
        1.0, float(np.max(np.abs(y)))
    ):
        issues.append("flat_targets")
    return issues


def model_health_issues(gp, X: np.ndarray, y: np.ndarray) -> list[str]:
    """Passive post-fit flags: pinned hyperparameters, variance collapse."""
    issues: list[str] = []
    kernel = getattr(gp, "kernel", None)
    if kernel is not None:
        theta = np.asarray(kernel.theta, dtype=np.float64)
        bounds = np.asarray(kernel.theta_bounds, dtype=np.float64)
        if theta.size and bool(
            np.any(theta <= bounds[:, 0] + PINNED_TOL)
            or np.any(theta >= bounds[:, 1] - PINNED_TOL)
        ):
            issues.append("pinned_hyperparameters")
    try:
        X = np.asarray(X, dtype=np.float64)
        bounds = getattr(gp, "input_bounds", None)
        # Deterministic off-data probes (no RNG: resume equivalence):
        # the box centre plus midpoints of consecutive training rows.
        # At these points a sane posterior keeps meaningful variance;
        # sigma ~ 0 everywhere means the acquisition landscape is dead.
        center = (
            0.5 * (bounds[:, 0] + bounds[:, 1])
            if bounds is not None
            else np.mean(X, axis=0)
        )
        mids = 0.5 * (X[:-1] + X[1:])[: min(len(X) - 1, 7)]
        probe = np.vstack([center[None, :], mids]) if len(mids) else center[None, :]
        _, sigma = gp.predict(probe)
        scale = max(float(np.std(np.asarray(y, dtype=np.float64))), 1e-12)
        if float(np.max(sigma)) <= 1e-9 * scale:
            issues.append("variance_collapse")
    except Exception:
        # The probe is advisory only; a model that cannot even predict
        # will fail loudly at acquisition time, where it is handled.
        issues.append("predict_failed")
    return issues


# ----------------------------------------------------------------------
# Fallback ladder
# ----------------------------------------------------------------------
def _dedupe_or_jitter(
    gp, X: np.ndarray, y: np.ndarray, rng: np.random.Generator
) -> tuple[np.ndarray, np.ndarray, int]:
    """Rung-2 data repair: drop near-duplicates, else jitter inputs.

    For each group of near-identical rows the first occurrence is kept
    with the *best* (smallest) target among the group, so the repaired
    data keeps the incumbent. When no duplicates exist the degeneracy
    must come from elsewhere — a tiny input jitter breaks it.
    """
    X = np.asarray(X, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64).reshape(-1)
    span = _span(gp, X)
    keep, drop = duplicate_row_groups(X, span)
    if drop.size:
        U = X / span
        y_kept = y[keep].copy()
        for i in drop:
            dists = np.max(np.abs(U[keep] - U[i]), axis=1)
            j = int(np.argmin(dists))
            y_kept[j] = min(y_kept[j], y[i])
        return X[keep], y_kept, int(drop.size)
    jitter = rng.normal(0.0, 1e-6, size=X.shape) * span
    return X + jitter, y, 0


def _reset_to_priors(gp) -> None:
    """Rung-3: push every hyperparameter back to its prior midpoint."""
    kernel = getattr(gp, "kernel", None)
    if kernel is not None:
        bounds = np.asarray(kernel.theta_bounds, dtype=np.float64)
        kernel.theta = 0.5 * (bounds[:, 0] + bounds[:, 1])
    elif hasattr(gp, "log_lengthscale"):  # RFF surrogate
        gp.log_lengthscale = np.zeros_like(np.asarray(gp.log_lengthscale))
        gp.log_outputscale = 0.0
    lo, hi = gp.noise_bounds
    gp.log_noise = float(np.log(np.clip(1e-2, lo, hi)))


def safe_fit(
    gp,
    X,
    y,
    *,
    n_restarts: int = 1,
    maxiter: int = 50,
    seed: RandomState = None,
    optimize: bool = True,
    cache_split: int | None = None,
) -> tuple[object, SafeFitReport]:
    """Fit ``gp`` on ``(X, y)`` with the self-healing ladder.

    Returns ``(gp, report)``. On the healthy path this is exactly
    ``gp.fit(X, y, n_restarts=..., maxiter=..., seed=...)`` — same
    call, same RNG consumption — plus passive health checks, so
    wrapping an existing fit with :func:`safe_fit` changes nothing
    until something actually goes wrong.

    ``optimize=False`` keeps the incumbent hyperparameters (the
    ``refit_every`` carry-over path); ``cache_split`` is forwarded to
    the factor cache for models that support one (see
    ``GaussianProcess.supports_factor_cache``) and silently dropped for
    other backends.

    Raises :class:`~repro.util.SurrogateUnavailableError` only when
    every rung of the ladder fails.
    """
    X = np.asarray(X, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64).reshape(-1)
    cache_kwargs = (
        {"cache_split": cache_split}
        if getattr(gp, "supports_factor_cache", False)
        else {}
    )
    with trace_span("safe_fit", n_train=X.shape[0]) as sp:
        report = SafeFitReport(issues=data_health_issues(gp, X, y))

        try:
            gp.fit(X, y, optimize=optimize, n_restarts=n_restarts,
                   maxiter=maxiter, seed=seed, **cache_kwargs)
        except ModelError as exc:
            report.errors.append(f"{type(exc).__name__}: {exc}")
            _ladder(gp, X, y, report, seed)
        report.issues.extend(model_health_issues(gp, X, y))
        sp.set(level=report.level, action=report.action,
               issues=list(report.issues))
    return gp, report


def _ladder(gp, X, y, report: SafeFitReport, seed: RandomState) -> None:
    """Rungs 1-3, mutating ``gp`` and ``report`` in place."""
    # Rung 1: the incumbent hyperparameters (restored by the failed
    # fit) were good enough last cycle — rebuild the posterior there.
    try:
        gp.fit(X, y, optimize=False)
        report.level = 1
        return
    except ModelError as exc:
        report.errors.append(f"{type(exc).__name__}: {exc}")

    # Rung 2: repair the data and retry the full fit. Repaired rows
    # invalidate any factor cache — its stored inputs no longer
    # correspond to data the optimizer will ever fit again, and a
    # poisoned prefix match after a repair would be hard to debug.
    cache = getattr(gp, "factor_cache", None)
    if cache is not None:
        cache.invalidate()
    rng = as_generator(seed)
    X_rep, y_rep, n_dropped = _dedupe_or_jitter(gp, X, y, rng)
    report.n_dropped = n_dropped
    try:
        gp.fit(X_rep, y_rep, n_restarts=0, maxiter=30, seed=rng)
        report.level = 2
        return
    except ModelError as exc:
        report.errors.append(f"{type(exc).__name__}: {exc}")

    # Rung 3: prior midpoints, no optimization.
    _reset_to_priors(gp)
    try:
        gp.fit(X_rep, y_rep, optimize=False)
        report.level = 3
        return
    except ModelError as exc:
        report.errors.append(f"{type(exc).__name__}: {exc}")
        raise SurrogateUnavailableError(
            "surrogate self-healing ladder exhausted: "
            + "; ".join(report.errors)
        ) from exc
