"""Hyperparameter fitting: multi-start L-BFGS-B on the concentrated MLL.

The paper fits the GP by maximum marginal likelihood at the start of
every cycle (full fit) and uses *reduced-budget* intermediate fits — or
none at all — inside the Kriging Believer loop. ``maxiter`` and
``n_restarts`` expose exactly that knob.
"""

from __future__ import annotations

import numpy as np
from scipy.optimize import minimize

from repro.gp.kernels import Kernel
from repro.gp.mll import mll_value_and_grad
from repro.util import FitFailedError, RandomState, as_generator

#: Sentinel objective value standing in for a non-finite / failed MLL
#: evaluation. A "best" value that never improves on this means every
#: start was pathological — the fit failed, it did not converge.
_FAILED_MLL = 1e25


def fit_hyperparameters(
    kernel: Kernel,
    log_noise: float,
    noise_bounds: tuple[float, float],
    X: np.ndarray,
    z: np.ndarray,
    mean_mode: str = "constant",
    n_restarts: int = 2,
    maxiter: int = 100,
    seed: RandomState = None,
) -> tuple[float, float]:
    """Maximize the MLL in place; returns ``(log_noise, best_mll)``.

    The incumbent hyperparameters are always used as the first start
    (warm start across BO cycles); ``n_restarts`` additional random
    starts are drawn uniformly in the log-space box. The kernel is
    mutated to the best parameters found.

    Raises :class:`~repro.util.FitFailedError` when *every* start —
    the warm-started incumbent included — evaluates to a non-finite
    MLL; the kernel is restored to its incoming hyperparameters first,
    so the caller can retry at the last good point (``optimize=False``).
    """
    rng = as_generator(seed)
    theta_in = kernel.theta
    bounds = np.vstack([kernel.theta_bounds, np.log(np.asarray([noise_bounds]))])
    p0 = np.concatenate([theta_in, [log_noise]])
    p0 = np.clip(p0, bounds[:, 0], bounds[:, 1])

    def objective(p: np.ndarray) -> tuple[float, np.ndarray]:
        kernel.theta = p[:-1]
        try:
            value, grad = mll_value_and_grad(kernel, p[-1], X, z, mean_mode)
        except Exception:
            # A pathological point (e.g. Cholesky failure at extreme
            # hyperparameters): report a very bad value, zero gradient.
            return _FAILED_MLL, np.zeros_like(p)
        if not np.isfinite(value):
            return _FAILED_MLL, np.zeros_like(p)
        return -value, -grad

    starts = [p0]
    for _ in range(max(0, n_restarts)):
        starts.append(rng.uniform(bounds[:, 0], bounds[:, 1]))

    best_p = p0
    best_val = np.inf
    for start in starts:
        result = minimize(
            objective,
            start,
            jac=True,
            method="L-BFGS-B",
            bounds=bounds,
            options={"maxiter": maxiter},
        )
        if np.isfinite(result.fun) and result.fun < best_val:
            best_val = float(result.fun)
            best_p = np.asarray(result.x, dtype=np.float64)

    if not np.isfinite(best_val) or best_val >= _FAILED_MLL:
        # Every start (incumbent included) was pathological. The
        # objective mutated the kernel while probing; put the incoming
        # hyperparameters back and make the failure explicit instead of
        # silently installing the clipped incumbent as if it had won.
        kernel.theta = theta_in
        raise FitFailedError(
            f"all {len(starts)} hyperparameter starts evaluated to a "
            "non-finite marginal likelihood"
        )
    kernel.theta = best_p[:-1]
    return float(best_p[-1]), -best_val
