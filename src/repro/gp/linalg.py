"""Cholesky-centric linear algebra for exact GP inference.

Everything here operates on lower-triangular factors. The two
performance-critical pieces are:

- :func:`jittered_cholesky` — robust factorization with escalating
  diagonal jitter (kernel matrices are often numerically semidefinite);
- :func:`cholesky_append` — O(n²·m) extension of an existing factor
  when m rows/columns are appended, which is what makes the Kriging
  Believer fantasy updates cheap (no O(n³) refactorization per fantasy
  point).
"""

from __future__ import annotations

import math

import numpy as np
from scipy.linalg import LinAlgError, cho_solve, cholesky, solve_triangular

from repro.util import NumericalError

#: Jitter ladder tried in order by :func:`jittered_cholesky`.
JITTERS = (0.0, 1e-10, 1e-8, 1e-6, 1e-4, 1e-2)


def jittered_cholesky(K: np.ndarray, jitters=JITTERS) -> tuple[np.ndarray, float]:
    """Lower Cholesky factor of ``K + jitter·I``, with escalating jitter.

    Returns ``(L, jitter_used)``. Raises :class:`NumericalError` if the
    matrix stays indefinite at the largest jitter — that signals a real
    modelling problem (e.g. duplicated inputs with zero noise), not a
    round-off issue.
    """
    K = np.asarray(K, dtype=np.float64)
    n = K.shape[0]
    diag_scale = max(float(np.mean(np.diag(K))), 1.0)
    last_error: Exception | None = None
    for jitter in jitters:
        try:
            L = cholesky(K + (jitter * diag_scale) * np.eye(n), lower=True)
            return L, jitter * diag_scale
        except (LinAlgError, ValueError) as exc:
            # scipy raises LinAlgError (= numpy's) for indefinite
            # matrices and ValueError for NaN/inf entries.
            last_error = exc
    raise NumericalError(
        f"Cholesky failed for {n}x{n} matrix even with jitter "
        f"{jitters[-1] * diag_scale:g}: {last_error}"
    )


def solve_lower(L: np.ndarray, B: np.ndarray) -> np.ndarray:
    """Solve ``L x = B`` for lower-triangular ``L``."""
    return solve_triangular(L, B, lower=True, check_finite=False)


def solve_cholesky(L: np.ndarray, B: np.ndarray) -> np.ndarray:
    """Solve ``(L Lᵀ) x = B`` given the lower factor ``L``."""
    return cho_solve((L, True), B, check_finite=False)


def cholesky_append(
    L: np.ndarray, K_cross: np.ndarray, K_new: np.ndarray
) -> np.ndarray:
    """Extend a Cholesky factor after appending rows to the matrix.

    Given ``L`` with ``L Lᵀ = K`` (n×n), the cross-covariance block
    ``K_cross`` (n×m) and the new diagonal block ``K_new`` (m×m), return
    the (n+m)×(n+m) lower factor of::

        [[K,        K_cross],
         [K_crossᵀ, K_new  ]]

    Cost is O(n²·m + m³) instead of O((n+m)³). The Schur complement is
    factorized with :func:`jittered_cholesky` so appending a point that
    duplicates an existing one (zero predictive variance) still succeeds.
    """
    L = np.asarray(L, dtype=np.float64)
    n = L.shape[0]
    K_cross = np.asarray(K_cross, dtype=np.float64).reshape(n, -1)
    m = K_cross.shape[1]
    K_new = np.asarray(K_new, dtype=np.float64).reshape(m, m)

    B = solve_lower(L, K_cross)  # n×m, so that K_cross = L B
    schur = K_new - B.T @ B
    C, _ = jittered_cholesky(schur)

    out = np.zeros((n + m, n + m), dtype=np.float64)
    out[:n, :n] = L
    out[n:, :n] = B.T
    out[n:, n:] = C
    return out


def cholesky_update(L: np.ndarray, v: np.ndarray) -> np.ndarray:
    """Rank-1 *update* of a lower Cholesky factor: factor of ``LLᵀ + vvᵀ``.

    Classic O(n²) sequence of Givens-style rotations (Golub & Van Loan
    §6.5.4). The update direction (adding ``vvᵀ``) is unconditionally
    stable — unlike the subtraction direction, it cannot leave the
    positive-definite cone. This is the primitive behind
    :func:`cholesky_downdate`: deleting a row/column of ``K`` *adds*
    the deleted column's outer product back into the trailing Schur
    block, so row removal is a rank-1 update of the trailing factor.
    """
    L = np.array(L, dtype=np.float64)  # copied; mutated in place below
    v = np.array(v, dtype=np.float64).ravel()
    n = L.shape[0]
    if v.shape[0] != n:
        raise NumericalError(
            f"cholesky_update: v has length {v.shape[0]}, factor is {n}x{n}"
        )
    for k in range(n):
        Lkk = L[k, k]
        if not Lkk > 0.0:
            raise NumericalError(
                f"cholesky_update: nonpositive pivot {Lkk:g} at index {k}"
            )
        r = math.hypot(Lkk, v[k])
        c = r / Lkk
        s = v[k] / Lkk
        L[k, k] = r
        if k + 1 < n:
            L[k + 1 :, k] = (L[k + 1 :, k] + s * v[k + 1 :]) / c
            v[k + 1 :] = c * v[k + 1 :] - s * L[k + 1 :, k]
    return L


def cholesky_downdate(L: np.ndarray, indices) -> np.ndarray:
    """Shrink a Cholesky factor after *removing* rows/columns of ``K``.

    Given ``L`` with ``LLᵀ = K`` (n×n) and a set of row indices, return
    the lower factor of ``K`` with those rows *and* columns deleted.

    Two regimes, both far below O(n³):

    - removing a trailing contiguous block (the fantasy-rollback and
      ticket-requeue case) is a pure truncation: ``L[:k, :k]`` already
      factors the leading submatrix exactly, so the result is bitwise
      identical to the factor the original prefix had;
    - removing an interior row ``k`` keeps ``L[:k, :k]`` and the rows
      below it intact and rank-1-updates the trailing block: with
      ``d = L[k+1:, k]`` and ``E = L[k+1:, k+1:]``, the new trailing
      factor is ``cholesky_update(E, d)`` — O((n−k)²) per removal.

    Indices are processed in descending order so earlier removals never
    shift the meaning of later ones. Always returns a fresh array (the
    input factor is never aliased), so callers may mutate the result.
    """
    L = np.asarray(L, dtype=np.float64)
    n = L.shape[0]
    idx = sorted({int(i) for i in np.atleast_1d(np.asarray(indices, dtype=int))})
    if not idx:
        return L.copy()
    if idx[0] < 0 or idx[-1] >= n:
        raise NumericalError(
            f"cholesky_downdate: indices {idx} out of range for {n}x{n} factor"
        )
    m = len(idx)
    if idx == list(range(n - m, n)):
        # Trailing block: exact truncation, bit-identical to the factor
        # of the prefix (Cholesky is computed left-to-right).
        return L[: n - m, : n - m].copy()
    out = L.copy()
    for k in reversed(idx):
        nn = out.shape[0]
        if k == nn - 1:
            out = out[:k, :k].copy()
            continue
        d = out[k + 1 :, k].copy()
        F = cholesky_update(out[k + 1 :, k + 1 :], d)
        new = np.zeros((nn - 1, nn - 1), dtype=np.float64)
        new[:k, :k] = out[:k, :k]
        new[k:, :k] = out[k + 1 :, :k]
        new[k:, k:] = np.tril(F)
        out = new
    return out


def log_det_from_cholesky(L: np.ndarray) -> float:
    """``log |K|`` from the lower factor of ``K``."""
    return 2.0 * float(np.sum(np.log(np.diag(L))))


def cholesky_adjoint(C: np.ndarray, C_bar: np.ndarray) -> np.ndarray:
    """Reverse-mode derivative of the Cholesky decomposition.

    Given the lower factor ``C`` of ``Σ`` and the gradient ``C_bar`` of
    some scalar loss w.r.t. ``C``, return the (symmetrized) gradient
    w.r.t. ``Σ``. Follows Murray (2016), "Differentiation of the
    Cholesky decomposition":

        Σ̄ = sym( C⁻ᵀ · Φ(Cᵀ C̄) · C⁻¹ ),

    where Φ keeps the lower triangle and halves the diagonal, and
    ``sym(A) = (A + Aᵀ)/2``. This is the piece that lets Monte-Carlo
    qEI have an analytic spatial gradient without autodiff.
    """
    C = np.asarray(C, dtype=np.float64)
    C_bar = np.asarray(C_bar, dtype=np.float64)
    phi = np.tril(C.T @ C_bar)
    phi[np.diag_indices_from(phi)] *= 0.5
    # Y = C⁻ᵀ Φ, then Σ̄ = Y C⁻¹, via two triangular solves.
    Y = solve_triangular(C, phi, lower=True, trans="T", check_finite=False)
    sigma_bar = solve_triangular(C, Y.T, lower=True, trans="T", check_finite=False).T
    return 0.5 * (sigma_bar + sigma_bar.T)
