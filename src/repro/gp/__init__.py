"""Gaussian-process regression substrate (paper §2.2.1).

Exact GP inference with Cholesky factorization, ARD Matérn / RBF
kernels with analytic hyperparameter *and* spatial gradients, constant
trend estimated by generalized least squares, homoskedastic noise, and
rank-1 Cholesky extensions for the Kriging Believer "fantasy" updates.
"""

from repro.gp.gp import GaussianProcess, GPPosterior
from repro.gp.kernels import (
    RBF,
    Kernel,
    Matern12,
    Matern32,
    Matern52,
    ProductKernel,
    ScaledKernel,
    SumKernel,
    make_kernel,
)
from repro.gp.linalg import (
    cholesky_append,
    jittered_cholesky,
    solve_cholesky,
    solve_lower,
)
from repro.gp.rff import RFFGaussianProcess
from repro.gp.safe_fit import SafeFitReport, safe_fit

__all__ = [
    "GPPosterior",
    "GaussianProcess",
    "Kernel",
    "SafeFitReport",
    "safe_fit",
    "Matern12",
    "Matern32",
    "Matern52",
    "ProductKernel",
    "RBF",
    "RFFGaussianProcess",
    "ScaledKernel",
    "SumKernel",
    "cholesky_append",
    "jittered_cholesky",
    "make_kernel",
    "solve_cholesky",
    "solve_lower",
]
