"""Gaussian-process regression substrate (paper §2.2.1).

Exact GP inference with Cholesky factorization, ARD Matérn / RBF
kernels with analytic hyperparameter *and* spatial gradients, constant
trend estimated by generalized least squares, homoskedastic noise, and
rank-1 Cholesky extensions for the Kriging Believer "fantasy" updates.
"""

from repro.gp.factor_cache import FactorCache, kernel_fingerprint
from repro.gp.gp import GaussianProcess, GPBatchPosterior, GPPosterior
from repro.gp.kernels import (
    RBF,
    Kernel,
    Matern12,
    Matern32,
    Matern52,
    ProductKernel,
    ScaledKernel,
    SumKernel,
    make_kernel,
)
from repro.gp.linalg import (
    cholesky_append,
    cholesky_downdate,
    cholesky_update,
    jittered_cholesky,
    solve_cholesky,
    solve_lower,
)
from repro.gp.rff import RFFGaussianProcess
from repro.gp.safe_fit import SafeFitReport, safe_fit

__all__ = [
    "FactorCache",
    "GPBatchPosterior",
    "GPPosterior",
    "GaussianProcess",
    "Kernel",
    "kernel_fingerprint",
    "SafeFitReport",
    "safe_fit",
    "Matern12",
    "Matern32",
    "Matern52",
    "ProductKernel",
    "RBF",
    "RFFGaussianProcess",
    "ScaledKernel",
    "SumKernel",
    "cholesky_append",
    "cholesky_downdate",
    "cholesky_update",
    "jittered_cholesky",
    "make_kernel",
    "solve_cholesky",
    "solve_lower",
]
