"""Exact Gaussian-process regression with fantasy updates.

The :class:`GaussianProcess` here is the model used by every algorithm
in :mod:`repro.core`:

- inputs are affinely mapped to the unit cube when ``input_bounds`` is
  given (the standard normalization in the EGO literature — lengthscale
  priors/bounds then transfer across problems);
- targets are standardized to zero mean / unit variance internally;
  every public prediction is returned in original units;
- a constant trend is profiled out by GLS (paper: "constant trend");
- observation noise is homoskedastic and learned (paper:
  "homoskedastic noise level");
- :meth:`fantasize` implements the Kriging Believer "partial model
  update": append pseudo-observations *without* hyperparameter
  re-estimation, extending the Cholesky factor in O(n²) instead of
  refactorizing in O(n³).

For the acquisition layer it additionally exposes analytic gradients:
:meth:`mean_std_grad` (single-point, for EI/UCB/PI) and the
:meth:`joint_posterior` / :meth:`joint_posterior_backward` pair (batch,
for reverse-mode Monte-Carlo qEI).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.gp.fit import fit_hyperparameters
from repro.gp.kernels import Kernel, make_kernel
from repro.gp.linalg import (
    cholesky_append,
    cholesky_downdate,
    jittered_cholesky,
    solve_cholesky,
    solve_lower,
)
from repro.gp.mll import mll_value, profiled_mean
from repro.obs.tracer import trace_span
from repro.util import (
    ConfigurationError,
    RandomState,
    check_bounds,
    check_finite,
    check_matrix,
    check_vector,
)

#: Floor on the target standard deviation used for standardization.
_MIN_Y_STD = 1e-12


@dataclass
class GPPosterior:
    """Joint posterior over a batch of points, with backward cache.

    ``mean`` (q,) and ``cov`` (q, q) are in original target units.
    The remaining fields cache the normalized-space intermediates that
    :meth:`GaussianProcess.joint_posterior_backward` needs.
    """

    mean: np.ndarray
    cov: np.ndarray
    U: np.ndarray  # query points in normalized input space, (q, d)
    V: np.ndarray  # L⁻¹ k(X_train, U), (n, q)


@dataclass
class GPBatchPosterior:
    """Joint posteriors over ``r`` independent q-batches at once.

    The stacked analogue of :class:`GPPosterior` used by batched
    multi-start acquisition optimization: one posterior call covers all
    restart candidates, so the O(n²) triangular solves run as a single
    BLAS-3 operation instead of ``r`` BLAS-2 ones.
    """

    mean: np.ndarray  # (r, q)
    cov: np.ndarray  # (r, q, q)
    U: np.ndarray  # (r, q, d) normalized query points
    V: np.ndarray  # (n, r, q)


class GaussianProcess:
    """Exact GP regression model.

    Parameters
    ----------
    kernel:
        A :class:`~repro.gp.kernels.Kernel`; defaults to scaled ARD
        Matérn-5/2 (requires ``dim`` or ``input_bounds``).
    dim:
        Input dimension (only needed to build the default kernel when
        ``input_bounds`` is not given).
    input_bounds:
        ``(d, 2)`` box; inputs are normalized to the unit cube.
    noise:
        Initial noise *variance* in standardized target units.
    noise_bounds:
        Box for the learned noise variance.
    mean:
        ``"constant"`` (GLS-profiled trend, the paper's setting) or
        ``"zero"``.
    standardize_y:
        Standardize targets internally (recommended; default).
    """

    def __init__(
        self,
        kernel: Kernel | None = None,
        dim: int | None = None,
        input_bounds=None,
        noise: float = 1e-2,
        noise_bounds: tuple[float, float] = (1e-6, 1.0),
        mean: str = "constant",
        standardize_y: bool = True,
    ):
        if input_bounds is not None:
            input_bounds = check_bounds(input_bounds)
            if dim is None:
                dim = input_bounds.shape[0]
            elif dim != input_bounds.shape[0]:
                raise ConfigurationError("dim disagrees with input_bounds")
        self.input_bounds = input_bounds
        self._dim = dim
        if kernel is None:
            if dim is None:
                raise ConfigurationError(
                    "provide kernel, dim, or input_bounds to build the default kernel"
                )
            kernel = make_kernel("matern52", dim=dim)
        self.kernel = kernel
        if mean not in ("constant", "zero"):
            raise ConfigurationError(f"mean must be 'constant' or 'zero', got {mean!r}")
        self.mean_mode = mean
        lo, hi = noise_bounds
        if not (0 < lo < hi):
            raise ConfigurationError("invalid noise_bounds")
        if not (lo <= noise <= hi):
            raise ConfigurationError("initial noise outside noise_bounds")
        self.noise_bounds = (float(lo), float(hi))
        self.log_noise = math.log(float(noise))
        self.standardize_y = bool(standardize_y)

        # Fitted state (normalized/standardized space).
        self.X_: np.ndarray | None = None  # normalized inputs (n, d)
        self.y_: np.ndarray | None = None  # raw targets (n,)
        self._z: np.ndarray | None = None  # standardized targets
        self._y_mean = 0.0
        self._y_std = 1.0
        self.L_: np.ndarray | None = None
        self.alpha_: np.ndarray | None = None
        self._gls_mean = 0.0
        self.last_mll_: float | None = None

        # Factor-cache plumbing (see repro.gp.factor_cache). The cache
        # is attached by the owning optimizer, not created here — one
        # cache must outlive the per-cycle surrogate instances.
        self.factor_cache = None
        self._cache_split: int | None = None
        # Ownership flag for L_: False while L_ aliases an array owned
        # by the cache (or a parent model), True once this instance
        # holds a freshly allocated factor. Operations that rebind L_
        # (fantasize_, defantasize_) always allocate, so aliased
        # factors are never written through — this is the
        # copy-on-write guard for fantasy clones.
        self._owns_factor = True
        self._n_fantasy = 0

    #: Class marker checked by safe_fit before passing cache kwargs
    #: (the RFF backend has a different fit signature and no L_).
    supports_factor_cache = True

    # ------------------------------------------------------------------
    @property
    def dim(self) -> int:
        if self._dim is not None:
            return self._dim
        if self.X_ is not None:
            return self.X_.shape[1]
        raise ConfigurationError("GP dimension unknown before fitting")

    @property
    def n_train(self) -> int:
        """Number of (real + fantasy) training points."""
        return 0 if self.X_ is None else self.X_.shape[0]

    @property
    def n_fantasy(self) -> int:
        """Number of trailing fantasy rows (removable by defantasize_)."""
        return self._n_fantasy

    @property
    def noise(self) -> float:
        """Learned noise variance (standardized target units)."""
        return math.exp(self.log_noise)

    def _normalize_x(self, X: np.ndarray) -> np.ndarray:
        if self.input_bounds is None:
            return X
        lo = self.input_bounds[:, 0]
        hi = self.input_bounds[:, 1]
        return (X - lo) / (hi - lo)

    def _x_scale(self) -> np.ndarray:
        """du/dx diagonal for the input normalization chain rule."""
        if self.input_bounds is None:
            return np.ones(self.dim)
        return 1.0 / (self.input_bounds[:, 1] - self.input_bounds[:, 0])

    # ------------------------------------------------------------------
    def fit(
        self,
        X,
        y,
        optimize: bool = True,
        n_restarts: int = 2,
        maxiter: int = 100,
        seed: RandomState = None,
        cache_split: int | None = None,
    ) -> "GaussianProcess":
        """Set training data and (optionally) fit hyperparameters.

        Returns ``self`` for chaining. With ``optimize=False`` the
        current hyperparameters are kept and only the posterior cache
        is rebuilt — the cheap path for intermediate updates.
        ``cache_split`` marks a block boundary for the factor cache
        (the engine's real/fantasy seam); it is ignored when no cache
        is attached.
        """
        X = check_finite(check_matrix(X, "X", cols=self._dim), "X")
        self._dim = X.shape[1]
        y = check_finite(check_vector(y, "y", dim=X.shape[0]), "y")
        with trace_span(
            "gp_fit", n_train=X.shape[0], optimize=bool(optimize)
        ) as sp:
            self._cache_split = cache_split
            self._n_fantasy = 0
            self.X_ = self._normalize_x(X)
            self.y_ = y.copy()
            if self.standardize_y:
                self._y_mean = float(np.mean(y))
                self._y_std = max(float(np.std(y)), _MIN_Y_STD)
            else:
                self._y_mean, self._y_std = 0.0, 1.0
            self._z = (y - self._y_mean) / self._y_std

            if optimize:
                self.log_noise, self.last_mll_ = fit_hyperparameters(
                    self.kernel,
                    self.log_noise,
                    self.noise_bounds,
                    self.X_,
                    self._z,
                    mean_mode=self.mean_mode,
                    n_restarts=n_restarts,
                    maxiter=maxiter,
                    seed=seed,
                )
                sp.set(mll=self.last_mll_)
            self._rebuild_cache()
        return self

    def _rebuild_cache(self) -> None:
        assert self.X_ is not None and self._z is not None
        if self.factor_cache is not None:
            self.L_ = self.factor_cache.factor_for(
                self.kernel, self.log_noise, self.X_, split=self._cache_split
            )
            self._owns_factor = False
        else:
            K = self.kernel(self.X_)
            K[np.diag_indices_from(K)] += self.noise
            self.L_, _ = jittered_cholesky(K)
            self._owns_factor = True
        self._gls_mean = profiled_mean(self.L_, self._z, self.mean_mode)
        self.alpha_ = solve_cholesky(self.L_, self._z - self._gls_mean)

    def log_marginal_likelihood(self) -> float:
        """Concentrated MLL at the current hyperparameters."""
        self._require_fitted()
        return mll_value(
            self.kernel, self.log_noise, self.X_, self._z, self.mean_mode
        )

    def _require_fitted(self) -> None:
        if self.L_ is None:
            raise ConfigurationError("GP is not fitted; call fit(X, y) first")

    # ------------------------------------------------------------------
    def predict(self, X, return_std: bool = True):
        """Posterior mean (and latent std) at ``X``, original units."""
        self._require_fitted()
        X = check_matrix(X, "X", cols=self.dim)
        U = self._normalize_x(X)
        k_star = self.kernel(U, self.X_)  # (m, n)
        mu_z = self._gls_mean + k_star @ self.alpha_
        mu = self._y_mean + self._y_std * mu_z
        if not return_std:
            return mu
        V = solve_lower(self.L_, k_star.T)  # (n, m)
        var_z = self.kernel.diag(U) - np.sum(V * V, axis=0)
        np.maximum(var_z, 0.0, out=var_z)
        sigma = self._y_std * np.sqrt(var_z)
        return mu, sigma

    def mean_std_grad(self, x):
        """``(mu, sigma, dmu/dx, dsigma/dx)`` at a single point.

        All in original units/coordinates — the analytic path for the
        single-point acquisition gradients.
        """
        self._require_fitted()
        x = check_vector(x, "x", dim=self.dim)
        u = self._normalize_x(x[None, :])[0]
        k_star = self.kernel(u[None, :], self.X_)[0]  # (n,)
        v = solve_lower(self.L_, k_star)  # (n,)
        mu = self._y_mean + self._y_std * (self._gls_mean + float(k_star @ self.alpha_))
        var_z = float(self.kernel.diag(u[None, :])[0] - v @ v)
        var_z = max(var_z, 0.0)
        sigma = self._y_std * math.sqrt(var_z)

        G = self.kernel.grad_x(u, self.X_)  # (n, d): ∂k(u, Xᵢ)/∂u
        scale = self._x_scale()
        dmu = self._y_std * (G.T @ self.alpha_) * scale
        # ∂σ²_z/∂u = -2 (L⁻¹G)ᵀ v ; σ = y_std √var_z
        A = solve_lower(self.L_, G)  # (n, d)
        dvar_z = -2.0 * (A.T @ v)
        if var_z > 1e-16:
            dsigma = self._y_std * dvar_z / (2.0 * math.sqrt(var_z)) * scale
        else:
            dsigma = np.zeros_like(dmu)
        return mu, sigma, dmu, dsigma

    def mean_std_grad_batch(self, X):
        """Batched :meth:`mean_std_grad` over the ``m`` rows of ``X``.

        Returns ``(mu (m,), sigma (m,), dmu (m, d), dsigma (m, d))``,
        all in original units. One kernel evaluation and one stacked
        triangular solve replace ``m`` separate BLAS-2 calls — the hot
        path of batched multi-start acquisition optimization.
        """
        self._require_fitted()
        X = check_matrix(X, "X", cols=self.dim)
        U = self._normalize_x(X)
        m, d = U.shape
        n = self.X_.shape[0]
        k_star = self.kernel(U, self.X_)  # (m, n)
        V = solve_lower(self.L_, k_star.T)  # (n, m)
        mu = self._y_mean + self._y_std * (self._gls_mean + k_star @ self.alpha_)
        var_z = self.kernel.diag(U) - np.sum(V * V, axis=0)
        np.maximum(var_z, 0.0, out=var_z)
        sigma = self._y_std * np.sqrt(var_z)

        scale = self._x_scale()
        G = self.kernel.grad_x_batch(U, self.X_)  # (m, n, d)
        dmu = self._y_std * (G.transpose(0, 2, 1) @ self.alpha_) * scale
        # One stacked solve for all m·d right-hand sides.
        A = solve_lower(self.L_, G.transpose(1, 0, 2).reshape(n, m * d))
        A = A.reshape(n, m, d)
        dvar_z = -2.0 * np.einsum("nm,nmd->md", V, A)
        dsigma = np.zeros_like(dmu)
        safe = var_z > 1e-16
        if np.any(safe):
            dsigma[safe] = (
                self._y_std
                * dvar_z[safe]
                / (2.0 * np.sqrt(var_z[safe]))[:, None]
            ) * scale
        return mu, sigma, dmu, dsigma

    def joint_posterior(self, Xq) -> GPPosterior:
        """Joint posterior over a batch, with the backward cache."""
        self._require_fitted()
        Xq = check_matrix(Xq, "Xq", cols=self.dim)
        U = self._normalize_x(Xq)
        k_star = self.kernel(U, self.X_)  # (q, n)
        mu_z = self._gls_mean + k_star @ self.alpha_
        V = solve_lower(self.L_, k_star.T)  # (n, q)
        cov_z = self.kernel(U) - V.T @ V
        cov_z = 0.5 * (cov_z + cov_z.T)
        mean = self._y_mean + self._y_std * mu_z
        cov = (self._y_std**2) * cov_z
        return GPPosterior(mean=mean, cov=cov, U=U, V=V)

    def joint_posterior_backward(
        self, post: GPPosterior, mean_bar: np.ndarray, cov_bar: np.ndarray
    ) -> np.ndarray:
        """Pull gradients w.r.t. (mean, cov) back to the query points.

        Given ∂loss/∂mean (q,) and the *symmetric* ∂loss/∂cov (q, q)
        in original units, returns ∂loss/∂Xq of shape (q, d) in
        original coordinates. Together with
        :func:`repro.gp.linalg.cholesky_adjoint` this provides the full
        reverse-mode path through the reparameterized qEI estimator.
        """
        self._require_fitted()
        q = post.U.shape[0]
        scale = self._x_scale()
        grad = np.empty((q, self.dim), dtype=np.float64)
        VSb = post.V @ cov_bar  # (n, q): V Σ̄ (columns indexed by k)
        for k in range(q):
            u_k = post.U[k]
            G_k = self.kernel.grad_x(u_k, self.X_)  # (n, d)
            A_k = solve_lower(self.L_, G_k)  # (n, d)
            H_k = self.kernel.grad_x(u_k, post.U)  # (q, d); row k is 0
            term_mu = mean_bar[k] * (G_k.T @ self.alpha_)
            term_cov = 2.0 * (H_k.T @ cov_bar[k]) - 2.0 * (A_k.T @ VSb[:, k])
            grad[k] = (
                self._y_std * term_mu + (self._y_std**2) * term_cov
            ) * scale
        return grad

    def joint_posterior_batch(self, Xb) -> GPBatchPosterior:
        """Joint posteriors over ``r`` stacked q-batches, ``Xb (r, q, d)``.

        The stacked analogue of :meth:`joint_posterior`: the kernel
        cross-covariances and triangular solves for all ``r`` restart
        candidates run as single BLAS-3 calls; only the (q, q) batch
        covariances are per-block.
        """
        self._require_fitted()
        Xb = np.asarray(Xb, dtype=np.float64)
        if Xb.ndim != 3 or Xb.shape[2] != self.dim:
            raise ConfigurationError(
                f"Xb must be (r, q, {self.dim}), got {Xb.shape}"
            )
        r, q, d = Xb.shape
        U = self._normalize_x(Xb.reshape(r * q, d)).reshape(r, q, d)
        flat = U.reshape(r * q, d)
        k_star = self.kernel(flat, self.X_)  # (rq, n)
        mu_z = self._gls_mean + k_star @ self.alpha_
        V = solve_lower(self.L_, k_star.T).reshape(-1, r, q)  # (n, r, q)
        cov_z = np.empty((r, q, q), dtype=np.float64)
        for i in range(r):
            cov_z[i] = self.kernel(U[i]) - V[:, i, :].T @ V[:, i, :]
        cov_z = 0.5 * (cov_z + cov_z.transpose(0, 2, 1))
        mean = self._y_mean + self._y_std * mu_z.reshape(r, q)
        cov = (self._y_std**2) * cov_z
        return GPBatchPosterior(mean=mean, cov=cov, U=U, V=V)

    def joint_posterior_batch_backward(
        self, post: GPBatchPosterior, mean_bar: np.ndarray, cov_bar: np.ndarray
    ) -> np.ndarray:
        """Stacked :meth:`joint_posterior_backward`: ``(r, q, d)`` grads.

        ``mean_bar (r, q)`` and symmetric ``cov_bar (r, q, q)`` in
        original units. The expensive L⁻¹-solve against all kernel
        gradients is one stacked triangular solve across every restart.
        """
        self._require_fitted()
        r, q, d = post.U.shape
        n = self.X_.shape[0]
        scale = self._x_scale()
        flat = post.U.reshape(r * q, d)
        G = self.kernel.grad_x_batch(flat, self.X_)  # (rq, n, d)
        A = solve_lower(self.L_, G.transpose(1, 0, 2).reshape(n, r * q * d))
        A = A.reshape(n, r, q, d)
        term_mu = (G.transpose(0, 2, 1) @ self.alpha_).reshape(r, q, d)
        VSb = np.einsum("nrq,rqk->nrk", post.V, cov_bar)  # (n, r, q)
        grad = np.empty((r, q, d), dtype=np.float64)
        for i in range(r):
            H = self.kernel.grad_x_batch(post.U[i], post.U[i])  # (q, q, d)
            term_cov = 2.0 * np.einsum("kqd,kq->kd", H, cov_bar[i])
            term_cov -= 2.0 * np.einsum("nkd,nk->kd", A[:, i], VSb[:, i])
            grad[i] = (
                self._y_std * mean_bar[i][:, None] * term_mu[i]
                + (self._y_std**2) * term_cov
            ) * scale
        return grad

    def sample_f(self, X, n_samples: int = 1, seed: RandomState = None):
        """Draw joint posterior samples of the latent function.

        Returns an ``(n_samples, m)`` array of function values at the
        ``m`` rows of ``X`` (original units). The joint covariance is
        used, so samples are coherent across the query points — the
        primitive behind Thompson sampling.
        """
        from repro.gp.linalg import jittered_cholesky as _chol
        from repro.util import as_generator as _as_gen

        post = self.joint_posterior(X)
        C, _ = _chol(post.cov)
        rng = _as_gen(seed)
        Z = rng.standard_normal((int(n_samples), post.mean.shape[0]))
        return post.mean[None, :] + Z @ C.T

    # ------------------------------------------------------------------
    def fantasize(self, X_new, y_new=None) -> "GaussianProcess":
        """Kriging Believer partial update: returns an *augmented copy*.

        ``y_new`` defaults to the current posterior mean at ``X_new``
        (the KB heuristic: "trust the surrogate"). Hyperparameters are
        shared and *not* re-estimated; the Cholesky factor is extended
        in O(n²·m). The returned GP references this GP's kernel — it is
        meant to live only within one acquisition cycle.
        """
        clone = object.__new__(GaussianProcess)
        clone.__dict__.update(self.__dict__)
        # fantasize_ rebinds (never mutates) the fitted-state arrays,
        # so the shallow copy leaves this GP untouched. Two guards make
        # that a hard invariant rather than a convention: the clone
        # does not own the shared factor (so nothing may write through
        # it), and it drops the factor cache — a clone storing its
        # fantasy-polluted factor into the parent's cache would
        # corrupt every later cache lookup.
        clone.factor_cache = None
        clone._owns_factor = False
        return clone.fantasize_(X_new, y_new)

    def fantasize_(self, X_new, y_new=None) -> "GaussianProcess":
        """In-place :meth:`fantasize`: extends this GP, returns ``self``.

        Appends the fantasy block directly to the fitted state — the
        only factorization work is the O(m³) Schur complement inside
        :func:`~repro.gp.linalg.cholesky_append`; no (n+m)×(n+m)
        Cholesky is ever formed from scratch and no intermediate model
        copy is allocated (the test suite pins both).
        """
        self._require_fitted()
        X_new = check_matrix(X_new, "X_new", cols=self.dim)
        if y_new is None:
            y_new = self.predict(X_new, return_std=False)
        y_new = check_vector(np.atleast_1d(y_new), "y_new", dim=X_new.shape[0])

        with trace_span("fantasy_update", n_train=self.n_train,
                        m=X_new.shape[0]):
            U_new = self._normalize_x(X_new)
            z_new = (y_new - self._y_mean) / self._y_std

            K_cross = self.kernel(self.X_, U_new)  # (n, m)
            K_new = self.kernel(U_new)
            K_new[np.diag_indices_from(K_new)] += self.noise
            self.L_ = cholesky_append(self.L_, K_cross, K_new)
            self._owns_factor = True  # cholesky_append allocates fresh
            self._n_fantasy += U_new.shape[0]
            self.X_ = np.vstack([self.X_, U_new])
            self.y_ = np.concatenate([self.y_, y_new])
            self._z = np.concatenate([self._z, z_new])
            # Keep the trend frozen (no re-estimation inside a cycle).
            self.alpha_ = solve_cholesky(self.L_, self._z - self._gls_mean)
        return self

    def defantasize_(self, m: int | None = None) -> "GaussianProcess":
        """Roll back the last ``m`` fantasy rows in place (default: all).

        The inverse of :meth:`fantasize_`: because fantasies always sit
        at the trailing end of the training set, the factor downdate is
        the bit-exact truncation fast path of
        :func:`~repro.gp.linalg.cholesky_downdate` — a
        fantasize_/defantasize_ round trip restores ``L_`` (and hence
        every posterior quantity) to the exact bytes it had before.
        This is what ticket-expiry requeues in the ask/tell engine use
        to drop a stale fantasy without refitting.
        """
        self._require_fitted()
        if m is None:
            m = self._n_fantasy
        m = int(m)
        if not 0 <= m <= self._n_fantasy:
            raise ConfigurationError(
                f"cannot remove {m} fantasies; model has {self._n_fantasy}"
            )
        if m == 0:
            return self
        n = self.n_train - m
        with trace_span("fantasy_downdate", n_train=self.n_train, m=m):
            self.L_ = cholesky_downdate(self.L_, range(n, self.n_train))
            self._owns_factor = True  # cholesky_downdate always copies
            self._n_fantasy -= m
            self.X_ = self.X_[:n].copy()
            self.y_ = self.y_[:n].copy()
            self._z = self._z[:n].copy()
            self.alpha_ = solve_cholesky(self.L_, self._z - self._gls_mean)
        return self

    def partial_fit(
        self, X_new, y_new, reoptimize: bool = False, maxiter: int = 15
    ) -> "GaussianProcess":
        """Append *real* observations between cycles.

        With ``reoptimize=False`` this re-standardizes and rebuilds the
        cache at the current hyperparameters; with ``reoptimize=True``
        a reduced-budget hyperparameter fit is run (the paper's
        "reduced budget ... compared to a full update").
        """
        self._require_fitted()
        X_new = check_matrix(X_new, "X_new", cols=self.dim)
        y_new = check_vector(np.atleast_1d(y_new), "y_new", dim=X_new.shape[0])
        if self.input_bounds is None:
            X_all = np.vstack([self.X_, self._normalize_x(X_new)])
        else:
            lo = self.input_bounds[:, 0]
            hi = self.input_bounds[:, 1]
            X_all = np.vstack([self.X_ * (hi - lo) + lo, X_new])
            # fit() re-normalizes, so hand it original coordinates.
        y_all = np.concatenate([self.y_, y_new])
        return self.fit(
            X_all, y_all, optimize=reoptimize, n_restarts=0, maxiter=maxiter
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"GaussianProcess(n={self.n_train}, kernel={type(self.kernel).__name__}, "
            f"noise={self.noise:.3g})"
        )
