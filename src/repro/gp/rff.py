"""Random-Fourier-features GP: the paper's "fast-to-fit surrogate" lead.

The Discussion (§4) recommends, against the breaking point, surrogates
that "remain fast to train even with a large data set", citing sparse
GPs and low-rank approximations. This module implements the classic
low-rank route (Rahimi & Recht, 2007): approximate a stationary kernel
by D random cosine features

    φ(x) = sqrt(2·σ²/D) · cos(Wᵀx + b),     k(x, x') ≈ φ(x)ᵀφ(x'),

with W drawn from the kernel's spectral density (Gaussian for RBF,
multivariate-t for Matérn) and b ~ U[0, 2π]. Inference is then exact
Bayesian linear regression in the D-dimensional feature space: fitting
costs O(n·D² + D³) instead of O(n³) — *linear* in the data-set size.

The public surface mirrors :class:`~repro.gp.GaussianProcess` where the
single-point acquisition processes need it (``fit`` / ``predict`` /
``mean_std_grad`` / ``fantasize``), so KB-q-EGO, mic-q-EGO and BSP-EGO
can run on this backend unchanged (``gp_options={"backend": "rff"}``).
Joint multi-point posteriors (MC-qEI) are out of scope for this
approximation and raise a clear error.
"""

from __future__ import annotations

import math

import numpy as np
from scipy.linalg import cho_solve, solve_triangular
from scipy.optimize import minimize

from repro.gp.linalg import jittered_cholesky
from repro.util import (
    ConfigurationError,
    RandomState,
    as_generator,
    check_bounds,
    check_finite,
    check_matrix,
    check_vector,
)

_MIN_Y_STD = 1e-12
_LOG_2PI = math.log(2.0 * math.pi)

#: Matérn smoothness per kernel name (None = RBF / Gaussian spectrum).
_NU = {"rbf": None, "matern12": 0.5, "matern32": 1.5, "matern52": 2.5}


class RFFGaussianProcess:
    """Low-rank GP regression via random Fourier features.

    Parameters
    ----------
    dim:
        Input dimension.
    n_features:
        Number of random features D (the rank of the approximation).
    kernel:
        ``"rbf"`` / ``"matern12"`` / ``"matern32"`` / ``"matern52"``.
    input_bounds:
        Optional ``(d, 2)`` box; inputs are normalized to the unit cube.
    noise / noise_bounds:
        Initial and box-constrained noise variance (standardized units).
    seed:
        Seed for the feature draw (frozen per model instance, so the
        approximate kernel is deterministic across refits).
    """

    def __init__(
        self,
        dim: int,
        n_features: int = 256,
        kernel: str = "matern52",
        input_bounds=None,
        noise: float = 1e-2,
        noise_bounds: tuple[float, float] = (1e-6, 1.0),
        lengthscale: float = 0.3,
        outputscale: float = 1.0,
        standardize_y: bool = True,
        seed: RandomState = 0,
    ):
        if dim < 1:
            raise ConfigurationError(f"dim must be >= 1, got {dim}")
        if n_features < 2:
            raise ConfigurationError(f"n_features must be >= 2, got {n_features}")
        kernel = kernel.strip().lower()
        if kernel not in _NU:
            raise ConfigurationError(
                f"unknown kernel {kernel!r}; available: {sorted(_NU)}"
            )
        lo, hi = noise_bounds
        if not (0 < lo <= noise <= hi):
            raise ConfigurationError("need noise_bounds[0] <= noise <= [1]")
        self.dim = int(dim)
        self.n_features = int(n_features)
        self.kernel_name = kernel
        self.input_bounds = (
            None if input_bounds is None else check_bounds(input_bounds, dim)
        )
        self.noise_bounds = (float(lo), float(hi))
        self.log_noise = math.log(float(noise))
        self.standardize_y = bool(standardize_y)

        # Log-space hyperparameters: ARD lengthscales + output scale.
        self.log_lengthscale = np.full(dim, math.log(lengthscale))
        self.log_outputscale = math.log(outputscale)

        rng = as_generator(seed)
        nu = _NU[kernel]
        if nu is None:
            self._W_base = rng.standard_normal((self.dim, self.n_features))
        else:
            # Matérn spectral density: ω ~ t_{2ν}(0, 1/ℓ²) per dim;
            # a multivariate t is a Gaussian scaled by sqrt(2ν/χ²_{2ν}).
            g = rng.standard_normal((self.dim, self.n_features))
            chi2 = rng.chisquare(2.0 * nu, size=self.n_features)
            self._W_base = g * np.sqrt(2.0 * nu / chi2)[None, :]
        self._b = rng.uniform(0.0, 2.0 * math.pi, self.n_features)

        # Fitted state.
        self.X_: np.ndarray | None = None
        self.y_: np.ndarray | None = None
        self._y_mean = 0.0
        self._y_std = 1.0
        self._L: np.ndarray | None = None  # chol of A = ΦᵀΦ/σₙ² + I
        self._w_mean: np.ndarray | None = None  # posterior weight mean
        self.last_mll_: float | None = None

    # ------------------------------------------------------------------
    @property
    def n_train(self) -> int:
        return 0 if self.X_ is None else self.X_.shape[0]

    @property
    def noise(self) -> float:
        return math.exp(self.log_noise)

    def _normalize_x(self, X: np.ndarray) -> np.ndarray:
        if self.input_bounds is None:
            return X
        lo = self.input_bounds[:, 0]
        hi = self.input_bounds[:, 1]
        return (X - lo) / (hi - lo)

    def _x_scale(self) -> np.ndarray:
        if self.input_bounds is None:
            return np.ones(self.dim)
        return 1.0 / (self.input_bounds[:, 1] - self.input_bounds[:, 0])

    def _features(self, U: np.ndarray) -> np.ndarray:
        """φ(U): (n, D) feature matrix (normalized inputs)."""
        W = self._W_base / np.exp(self.log_lengthscale)[:, None]
        amp = math.sqrt(2.0 * math.exp(self.log_outputscale) / self.n_features)
        return amp * np.cos(U @ W + self._b[None, :])

    def _features_and_grad(self, u: np.ndarray):
        """φ(u) and ∂φ/∂u (D, d) at one normalized point."""
        W = self._W_base / np.exp(self.log_lengthscale)[:, None]
        amp = math.sqrt(2.0 * math.exp(self.log_outputscale) / self.n_features)
        arg = u @ W + self._b
        phi = amp * np.cos(arg)
        dphi = -amp * np.sin(arg)[:, None] * W.T  # (D, d)
        return phi, dphi

    # ------------------------------------------------------------------
    def _weight_posterior(self, Phi: np.ndarray, z: np.ndarray):
        """Posterior over weights: N(m, A⁻¹), A = ΦᵀΦ/σₙ² + I."""
        noise = self.noise
        A = Phi.T @ Phi / noise + np.eye(self.n_features)
        L, _ = jittered_cholesky(A)
        m = cho_solve((L, True), Phi.T @ z, check_finite=False) / noise
        return L, m

    def _mll(self, Phi: np.ndarray, z: np.ndarray) -> float:
        """Exact MLL of the low-rank model via the determinant lemma."""
        n = z.shape[0]
        noise = self.noise
        L, m = self._weight_posterior(Phi, z)
        # log|K + σ²I| = log|A| + n log σ²  (matrix determinant lemma)
        log_det = 2.0 * float(np.sum(np.log(np.diag(L)))) + n * math.log(noise)
        # quadratic form via the fitted weights: zᵀ(K+σ²I)⁻¹z
        quad = (float(z @ z) - float((Phi @ m) @ z)) / noise
        return -0.5 * (quad + log_det + n * _LOG_2PI)

    def fit(
        self,
        X,
        y,
        optimize: bool = True,
        n_restarts: int = 1,
        maxiter: int = 60,
        seed: RandomState = None,
    ) -> "RFFGaussianProcess":
        """Set data; optionally maximize the low-rank MLL.

        Hyperparameter gradients use finite differences — each MLL
        evaluation is only O(n·D² + D³), so the fit stays cheap and,
        crucially, *linear* in n.
        """
        X = check_finite(check_matrix(X, "X", cols=self.dim), "X")
        y = check_finite(check_vector(y, "y", dim=X.shape[0]), "y")
        self.X_ = self._normalize_x(X)
        self.y_ = y.copy()
        if self.standardize_y:
            self._y_mean = float(np.mean(y))
            self._y_std = max(float(np.std(y)), _MIN_Y_STD)
        else:
            self._y_mean, self._y_std = 0.0, 1.0
        z = (y - self._y_mean) / self._y_std

        if optimize:
            rng = as_generator(seed)
            bounds = [(math.log(5e-3), math.log(20.0))] * self.dim
            bounds += [(math.log(1e-3), math.log(1e3))]
            bounds += [np.log(self.noise_bounds).tolist()]
            p0 = np.concatenate(
                [self.log_lengthscale, [self.log_outputscale, self.log_noise]]
            )
            lo = np.array([b[0] for b in bounds])
            hi = np.array([b[1] for b in bounds])
            p0 = np.clip(p0, lo, hi)

            def negative_mll(p):
                self.log_lengthscale = p[: self.dim]
                self.log_outputscale = float(p[self.dim])
                self.log_noise = float(p[self.dim + 1])
                try:
                    value = self._mll(self._features(self.X_), z)
                except Exception:
                    return 1e25
                return -value if np.isfinite(value) else 1e25

            starts = [p0] + [
                rng.uniform(lo, hi) for _ in range(max(0, n_restarts))
            ]
            best_p, best_val = p0, np.inf
            for start in starts:
                res = minimize(
                    negative_mll, start, method="L-BFGS-B", bounds=bounds,
                    options={"maxiter": maxiter},
                )
                if np.isfinite(res.fun) and res.fun < best_val:
                    best_val, best_p = float(res.fun), np.asarray(res.x)
            self.log_lengthscale = best_p[: self.dim]
            self.log_outputscale = float(best_p[self.dim])
            self.log_noise = float(best_p[self.dim + 1])
            self.last_mll_ = -best_val

        Phi = self._features(self.X_)
        self._L, self._w_mean = self._weight_posterior(Phi, z)
        return self

    def _require_fitted(self):
        if self._L is None:
            raise ConfigurationError("RFF GP is not fitted; call fit() first")

    # ------------------------------------------------------------------
    def predict(self, X, return_std: bool = True):
        """Posterior mean (and latent std) at ``X``, original units."""
        self._require_fitted()
        X = check_matrix(X, "X", cols=self.dim)
        Phi = self._features(self._normalize_x(X))  # (m, D)
        mu = self._y_mean + self._y_std * (Phi @ self._w_mean)
        if not return_std:
            return mu
        V = solve_triangular(self._L, Phi.T, lower=True, check_finite=False)
        var = np.sum(V * V, axis=0)
        np.maximum(var, 0.0, out=var)
        return mu, self._y_std * np.sqrt(var)

    def mean_std_grad(self, x):
        """``(mu, sigma, dmu/dx, dsigma/dx)`` — the EI/UCB gradient path."""
        self._require_fitted()
        x = check_vector(x, "x", dim=self.dim)
        u = self._normalize_x(x[None, :])[0]
        phi, dphi = self._features_and_grad(u)  # (D,), (D, d)
        scale = self._x_scale()
        mu = self._y_mean + self._y_std * float(phi @ self._w_mean)
        dmu = self._y_std * (dphi.T @ self._w_mean) * scale

        v = solve_triangular(self._L, phi, lower=True, check_finite=False)
        var = max(float(v @ v), 0.0)
        sigma = self._y_std * math.sqrt(var)
        A_inv_phi = solve_triangular(
            self._L, v, lower=True, trans="T", check_finite=False
        )
        dvar = 2.0 * (dphi.T @ A_inv_phi)
        if var > 1e-16:
            dsigma = self._y_std * dvar / (2.0 * math.sqrt(var)) * scale
        else:
            dsigma = np.zeros_like(dmu)
        return mu, sigma, dmu, dsigma

    def fantasize(self, X_new, y_new=None) -> "RFFGaussianProcess":
        """Kriging-Believer update: O(D²) per point, data-size-free."""
        self._require_fitted()
        X_new = check_matrix(X_new, "X_new", cols=self.dim)
        if y_new is None:
            y_new = self.predict(X_new, return_std=False)
        y_new = check_vector(np.atleast_1d(y_new), "y_new", dim=X_new.shape[0])

        clone = object.__new__(RFFGaussianProcess)
        clone.__dict__.update(self.__dict__)
        U_new = self._normalize_x(X_new)
        clone.X_ = np.vstack([self.X_, U_new])
        clone.y_ = np.concatenate([self.y_, y_new])
        z_all = (clone.y_ - self._y_mean) / self._y_std
        # Refresh the weight posterior; A grows by ΦₙᵀΦₙ/σₙ² (still D×D).
        Phi = self._features(clone.X_)
        clone._L, clone._w_mean = self._weight_posterior(Phi, z_all)
        return clone

    def joint_posterior(self, Xq):  # pragma: no cover - guard only
        raise ConfigurationError(
            "RFFGaussianProcess does not provide joint multi-point "
            "posteriors; use the exact GaussianProcess for MC-qEI / TuRBO"
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"RFFGaussianProcess(n={self.n_train}, D={self.n_features}, "
            f"kernel={self.kernel_name!r})"
        )
