"""Covariance kernels with analytic gradients.

Each kernel exposes three evaluation surfaces:

- ``__call__(X1, X2)`` — the covariance matrix (and ``diag(X)``);
- ``param_gradients(X)`` — ∂K/∂θⱼ for every *log-space* hyperparameter
  θⱼ, used by the marginal-likelihood gradient during fitting;
- ``grad_x(x, X2)`` — ∂k(x, ·)/∂x, used by the analytic acquisition
  gradients (EI/UCB spatial derivatives and the reverse-mode qEI).

Hyperparameters live in log space throughout (positivity for free, and
L-BFGS-B behaves much better on log-scaled lengthscales). Stationary
kernels support ARD: one lengthscale per input dimension, as in the
paper's Matérn-5/2 "with automatic relevance discovery".
"""

from __future__ import annotations

import math

import numpy as np

from repro.util import ConfigurationError

_SQRT3 = math.sqrt(3.0)
_SQRT5 = math.sqrt(5.0)


def _as_2d(X: np.ndarray) -> np.ndarray:
    X = np.asarray(X, dtype=np.float64)
    if X.ndim == 1:
        X = X.reshape(1, -1)
    return X


class Kernel:
    """Base class for covariance kernels.

    The log-space hyperparameter vector is read/written through
    :attr:`theta`; :attr:`theta_bounds` gives box bounds in the same
    space for the fitter.
    """

    # -- hyperparameter plumbing -------------------------------------
    @property
    def theta(self) -> np.ndarray:
        """Log-space hyperparameter vector (copy)."""
        return self._get_theta()

    @theta.setter
    def theta(self, value) -> None:
        self._set_theta(np.asarray(value, dtype=np.float64))

    def _get_theta(self) -> np.ndarray:
        raise NotImplementedError

    def _set_theta(self, value: np.ndarray) -> None:
        raise NotImplementedError

    @property
    def n_params(self) -> int:
        return self.theta.shape[0]

    @property
    def theta_bounds(self) -> np.ndarray:
        """``(n_params, 2)`` log-space bounds."""
        raise NotImplementedError

    # -- evaluation ----------------------------------------------------
    def __call__(self, X1, X2=None) -> np.ndarray:
        """Covariance matrix ``k(X1, X2)``; ``X2=None`` means ``X1``."""
        raise NotImplementedError

    def diag(self, X) -> np.ndarray:
        """Diagonal of ``k(X, X)`` without forming the full matrix."""
        raise NotImplementedError

    def param_gradients(self, X) -> np.ndarray:
        """``(n_params, n, n)`` stack of ∂K(X,X)/∂θⱼ."""
        raise NotImplementedError

    def iter_param_gradients(self, X):
        """Yield ∂K(X,X)/∂θⱼ one matrix at a time.

        The marginal-likelihood gradient only needs one ∂K/∂θⱼ at a
        time; iterating keeps peak memory at O(n²) instead of the
        O(n_params·n²) of the stacked :meth:`param_gradients`.
        Subclasses with many parameters override this lazily.
        """
        yield from self.param_gradients(X)

    def grad_x(self, x, X2) -> np.ndarray:
        """``(n2, d)`` array of ∂k(x, X2ᵢ)/∂x for a single point ``x``."""
        raise NotImplementedError

    def grad_x_batch(self, X1, X2) -> np.ndarray:
        """``(m, n2, d)`` stack of :meth:`grad_x` over the rows of ``X1``.

        The base implementation loops; stationary kernels and the
        compositional wrappers override it with one vectorized
        evaluation — the primitive behind batched multi-start
        acquisition optimization.
        """
        X1 = _as_2d(X1)
        X2 = _as_2d(X2)
        return np.stack([self.grad_x(x, X2) for x in X1], axis=0)

    # -- composition ----------------------------------------------------
    def __add__(self, other: "Kernel") -> "SumKernel":
        return SumKernel(self, other)

    def __mul__(self, other: "Kernel") -> "ProductKernel":
        return ProductKernel(self, other)

    def clone(self) -> "Kernel":
        """Deep copy (hyperparameters included)."""
        import copy

        return copy.deepcopy(self)


class _Stationary(Kernel):
    """Shared machinery for ARD stationary kernels.

    Subclasses provide the radial profile through ``_k_of_r2`` (kernel
    value as a function of the squared scaled distance r²) and
    ``_dk_dr2`` (its derivative, finite at r² = 0 except for Matérn-1/2
    which overrides the gradient paths).
    """

    def __init__(self, lengthscale=1.0, ard_dims: int | None = None,
                 lengthscale_bounds=(1e-3, 1e3)):
        ls = np.atleast_1d(np.asarray(lengthscale, dtype=np.float64))
        if ard_dims is not None:
            if ls.shape[0] == 1:
                ls = np.full(ard_dims, ls[0])
            elif ls.shape[0] != ard_dims:
                raise ConfigurationError(
                    f"lengthscale has {ls.shape[0]} entries, expected {ard_dims}"
                )
        if np.any(ls <= 0):
            raise ConfigurationError("lengthscales must be positive")
        lo, hi = lengthscale_bounds
        if not (0 < lo < hi):
            raise ConfigurationError("invalid lengthscale bounds")
        self.lengthscale = ls
        self._ls_bounds = (float(lo), float(hi))

    @property
    def ard(self) -> bool:
        return self.lengthscale.shape[0] > 1

    def _get_theta(self) -> np.ndarray:
        return np.log(self.lengthscale.copy())

    def _set_theta(self, value: np.ndarray) -> None:
        if value.shape[0] != self.lengthscale.shape[0]:
            raise ConfigurationError(
                f"theta has {value.shape[0]} entries, expected "
                f"{self.lengthscale.shape[0]}"
            )
        self.lengthscale = np.exp(value)

    @property
    def theta_bounds(self) -> np.ndarray:
        lo, hi = self._ls_bounds
        return np.tile(np.log([lo, hi]), (self.lengthscale.shape[0], 1))

    # -- radial profile hooks -----------------------------------------
    def _k_of_r2(self, r2: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def _dk_dr2(self, r2: np.ndarray) -> np.ndarray:
        """d k / d(r²); must be finite at r² = 0 (or overridden)."""
        raise NotImplementedError

    # -- shared evaluation ---------------------------------------------
    def _scaled_sqdist(self, X1: np.ndarray, X2: np.ndarray) -> np.ndarray:
        """Squared scaled distance matrix r²ᵢⱼ = Σ_d ((x1-x2)/ℓ)²."""
        A = X1 / self.lengthscale
        B = X2 / self.lengthscale
        # ||a-b||² = ||a||² + ||b||² - 2ab ; clamp round-off negatives.
        sq = (
            np.sum(A * A, axis=1)[:, None]
            + np.sum(B * B, axis=1)[None, :]
            - 2.0 * (A @ B.T)
        )
        np.maximum(sq, 0.0, out=sq)
        return sq

    def __call__(self, X1, X2=None) -> np.ndarray:
        X1 = _as_2d(X1)
        X2 = X1 if X2 is None else _as_2d(X2)
        return self._k_of_r2(self._scaled_sqdist(X1, X2))

    def diag(self, X) -> np.ndarray:
        X = _as_2d(X)
        return np.ones(X.shape[0], dtype=np.float64)

    def param_gradients(self, X) -> np.ndarray:
        X = _as_2d(X)
        n, d = X.shape
        r2 = self._scaled_sqdist(X, X)
        dk = self._dk_dr2(r2)  # (n, n)
        if self.ard:
            grads = np.empty((d, n, n), dtype=np.float64)
            for j in range(d):
                diff = (X[:, j][:, None] - X[:, j][None, :]) / self.lengthscale[j]
                # d r² / d log ℓⱼ = -2·Dⱼ with Dⱼ = diff²
                grads[j] = dk * (-2.0 * diff * diff)
            return grads
        # isotropic: d r² / d log ℓ = -2 r²
        return (dk * (-2.0 * r2))[None, :, :]

    def iter_param_gradients(self, X):
        X = _as_2d(X)
        r2 = self._scaled_sqdist(X, X)
        dk = self._dk_dr2(r2)
        if self.ard:
            for j in range(X.shape[1]):
                diff = (X[:, j][:, None] - X[:, j][None, :]) / self.lengthscale[j]
                yield dk * (-2.0 * diff * diff)
        else:
            yield dk * (-2.0 * r2)

    def grad_x(self, x, X2) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64).reshape(-1)
        X2 = _as_2d(X2)
        diff = (x[None, :] - X2) / (self.lengthscale**2)  # (n2, d)
        r2 = self._scaled_sqdist(x.reshape(1, -1), X2)[0]  # (n2,)
        dk = self._dk_dr2(r2)  # (n2,)
        # d r² / dx = 2 (x - x2) / ℓ² , chain rule through the profile.
        return 2.0 * dk[:, None] * diff

    def grad_x_batch(self, X1, X2) -> np.ndarray:
        X1 = _as_2d(X1)
        X2 = _as_2d(X2)
        diff = (X1[:, None, :] - X2[None, :, :]) / (self.lengthscale**2)
        dk = self._dk_dr2(self._scaled_sqdist(X1, X2))  # (m, n2)
        return 2.0 * dk[:, :, None] * diff


class RBF(_Stationary):
    """Squared-exponential kernel ``exp(-r²/2)`` with optional ARD."""

    def _k_of_r2(self, r2):
        return np.exp(-0.5 * r2)

    def _dk_dr2(self, r2):
        return -0.5 * np.exp(-0.5 * r2)


class Matern52(_Stationary):
    """Matérn ν=5/2 kernel — the paper's choice (with ARD)."""

    def _k_of_r2(self, r2):
        r = np.sqrt(r2)
        return (1.0 + _SQRT5 * r + (5.0 / 3.0) * r2) * np.exp(-_SQRT5 * r)

    def _dk_dr2(self, r2):
        r = np.sqrt(r2)
        return -(5.0 / 6.0) * (1.0 + _SQRT5 * r) * np.exp(-_SQRT5 * r)


class Matern32(_Stationary):
    """Matérn ν=3/2 kernel."""

    def _k_of_r2(self, r2):
        r = np.sqrt(r2)
        return (1.0 + _SQRT3 * r) * np.exp(-_SQRT3 * r)

    def _dk_dr2(self, r2):
        return -1.5 * np.exp(-_SQRT3 * np.sqrt(r2))


class Matern12(_Stationary):
    """Matérn ν=1/2 (exponential) kernel.

    Its derivative w.r.t. r² is singular at r = 0, so the gradient
    paths special-case coincident points (the correct limit of the
    ARD/spatial gradient there is 0 along every off-singular direction,
    and the kernel is not differentiable at r = 0 anyway — we return
    the subgradient 0, which is what an optimizer wants).
    """

    def _k_of_r2(self, r2):
        return np.exp(-np.sqrt(r2))

    def _dk_dr2(self, r2):
        r = np.sqrt(r2)
        with np.errstate(divide="ignore", invalid="ignore"):
            out = np.where(r > 0.0, -np.exp(-r) / (2.0 * r), 0.0)
        return out


class ScaledKernel(Kernel):
    """Output-scale wrapper: ``σ² · k_inner`` with log-σ² trainable."""

    def __init__(self, inner: Kernel, outputscale: float = 1.0,
                 outputscale_bounds=(1e-4, 1e4)):
        if outputscale <= 0:
            raise ConfigurationError("outputscale must be positive")
        lo, hi = outputscale_bounds
        if not (0 < lo < hi):
            raise ConfigurationError("invalid outputscale bounds")
        self.inner = inner
        self.outputscale = float(outputscale)
        self._os_bounds = (float(lo), float(hi))

    def _get_theta(self) -> np.ndarray:
        return np.concatenate([[math.log(self.outputscale)], self.inner.theta])

    def _set_theta(self, value: np.ndarray) -> None:
        self.outputscale = float(np.exp(value[0]))
        self.inner.theta = value[1:]

    @property
    def theta_bounds(self) -> np.ndarray:
        own = np.log(np.asarray([self._os_bounds], dtype=np.float64))
        return np.vstack([own, self.inner.theta_bounds])

    def __call__(self, X1, X2=None) -> np.ndarray:
        return self.outputscale * self.inner(X1, X2)

    def diag(self, X) -> np.ndarray:
        return self.outputscale * self.inner.diag(X)

    def param_gradients(self, X) -> np.ndarray:
        K = self.inner(X)
        inner_grads = self.inner.param_gradients(X)
        return np.concatenate(
            [(self.outputscale * K)[None], self.outputscale * inner_grads], axis=0
        )

    def iter_param_gradients(self, X):
        yield self.outputscale * self.inner(X)
        for g in self.inner.iter_param_gradients(X):
            yield self.outputscale * g

    def grad_x(self, x, X2) -> np.ndarray:
        return self.outputscale * self.inner.grad_x(x, X2)

    def grad_x_batch(self, X1, X2) -> np.ndarray:
        return self.outputscale * self.inner.grad_x_batch(X1, X2)


class SumKernel(Kernel):
    """Sum of two kernels; hyperparameters are concatenated."""

    def __init__(self, left: Kernel, right: Kernel):
        self.left = left
        self.right = right

    def _get_theta(self) -> np.ndarray:
        return np.concatenate([self.left.theta, self.right.theta])

    def _set_theta(self, value: np.ndarray) -> None:
        nl = self.left.n_params
        self.left.theta = value[:nl]
        self.right.theta = value[nl:]

    @property
    def theta_bounds(self) -> np.ndarray:
        return np.vstack([self.left.theta_bounds, self.right.theta_bounds])

    def __call__(self, X1, X2=None) -> np.ndarray:
        return self.left(X1, X2) + self.right(X1, X2)

    def diag(self, X) -> np.ndarray:
        return self.left.diag(X) + self.right.diag(X)

    def param_gradients(self, X) -> np.ndarray:
        return np.concatenate(
            [self.left.param_gradients(X), self.right.param_gradients(X)], axis=0
        )

    def grad_x(self, x, X2) -> np.ndarray:
        return self.left.grad_x(x, X2) + self.right.grad_x(x, X2)

    def grad_x_batch(self, X1, X2) -> np.ndarray:
        return self.left.grad_x_batch(X1, X2) + self.right.grad_x_batch(X1, X2)


class ProductKernel(Kernel):
    """Product of two kernels; hyperparameters are concatenated."""

    def __init__(self, left: Kernel, right: Kernel):
        self.left = left
        self.right = right

    def _get_theta(self) -> np.ndarray:
        return np.concatenate([self.left.theta, self.right.theta])

    def _set_theta(self, value: np.ndarray) -> None:
        nl = self.left.n_params
        self.left.theta = value[:nl]
        self.right.theta = value[nl:]

    @property
    def theta_bounds(self) -> np.ndarray:
        return np.vstack([self.left.theta_bounds, self.right.theta_bounds])

    def __call__(self, X1, X2=None) -> np.ndarray:
        return self.left(X1, X2) * self.right(X1, X2)

    def diag(self, X) -> np.ndarray:
        return self.left.diag(X) * self.right.diag(X)

    def param_gradients(self, X) -> np.ndarray:
        KL = self.left(X)
        KR = self.right(X)
        return np.concatenate(
            [
                self.left.param_gradients(X) * KR[None],
                KL[None] * self.right.param_gradients(X),
            ],
            axis=0,
        )

    def grad_x(self, x, X2) -> np.ndarray:
        kl = self.left(np.asarray(x).reshape(1, -1), X2)[0][:, None]
        kr = self.right(np.asarray(x).reshape(1, -1), X2)[0][:, None]
        return self.left.grad_x(x, X2) * kr + self.right.grad_x(x, X2) * kl

    def grad_x_batch(self, X1, X2) -> np.ndarray:
        kl = self.left(X1, X2)[:, :, None]
        kr = self.right(X1, X2)[:, :, None]
        return self.left.grad_x_batch(X1, X2) * kr + self.right.grad_x_batch(X1, X2) * kl


_KERNELS = {
    "rbf": RBF,
    "matern12": Matern12,
    "matern32": Matern32,
    "matern52": Matern52,
}


def make_kernel(
    name: str = "matern52",
    dim: int | None = None,
    ard: bool = True,
    lengthscale: float = 0.3,
    outputscale: float = 1.0,
) -> Kernel:
    """Build a scaled stationary kernel by name.

    Defaults match the paper's setup: Matérn-5/2 with ARD (one
    lengthscale per dimension), wrapped in an output scale. The default
    lengthscale assumes inputs normalized to the unit cube (which
    :class:`~repro.gp.GaussianProcess` does when given input bounds).
    """
    key = name.strip().lower()
    if key not in _KERNELS:
        raise ConfigurationError(
            f"unknown kernel {name!r}; available: {sorted(_KERNELS)}"
        )
    if ard and dim is None:
        raise ConfigurationError("ard=True requires dim")
    base = _KERNELS[key](
        lengthscale=lengthscale, ard_dims=dim if ard else None
    )
    return ScaledKernel(base, outputscale=outputscale)
