"""Hyperparameter-fingerprinted Cholesky factor cache.

The profiler (BENCH_pr4) showed the fit→acquire→fantasize cycle
dominated by full O(n³) refactorizations, most of which rebuild a
kernel matrix whose leading block is unchanged: theta-frozen refits,
fantasies over in-flight asks, and ticket-expiry requeues all touch
only a suffix of the training set. :class:`FactorCache` exploits that
structure. It lives on the *optimizer* (one cache outlives the
per-cycle surrogates) and is consulted by
:meth:`repro.gp.GaussianProcess._rebuild_cache`.

Matching is keyed by a hyperparameter **fingerprint** — kernel class,
exact theta bytes, and log-noise — plus a bitwise prefix comparison of
the normalized training inputs:

- same fingerprint, identical inputs → **hit**: the cached factor is
  returned as-is (bit-identical to what a fresh factorization produced
  when it was stored);
- same fingerprint, cached inputs are a prefix → **append**: the new
  rows are folded in with :func:`repro.gp.linalg.cholesky_append` in
  O(n²·m);
- same fingerprint, inputs share a prefix up to a *block boundary* →
  **truncate** (+ append): the factor is sliced back to the boundary —
  a bit-exact operation, see :func:`repro.gp.linalg.cholesky_downdate`
  — and re-extended;
- anything else → **miss**: a full factorization, which then seeds the
  cache.

Truncation is only attempted at block boundaries (the sizes recorded in
``_blocks``) because a factor rebuilt by *replaying* the block sequence
is bit-identical to the original only if every truncation point is also
a replay point. That property is what makes kill/resume safe: the
serialized state (:meth:`get_state`) stores the block structure and the
cached inputs, and :meth:`set_state` replays chol(block₀) + appends
lazily on the first matching lookup, reproducing the exact bytes the
pre-kill factor had. Single-block caches serialize to ``None`` so
default-configuration run journals are byte-for-byte unchanged by this
feature.

Observability: every lookup increments exactly one of the
``gp.refit.cache_hit`` / ``cache_append`` / ``cache_truncate`` /
``cache_miss`` counters (append-after-truncate counts as truncate).

Not thread-safe: a cache belongs to one optimizer, and every caller
(sync drivers, :class:`~repro.service.engine.AskTellEngine`, portfolio
arms) already serializes proposals per optimizer.
"""

from __future__ import annotations

import math

import numpy as np

from repro.gp.linalg import cholesky_append, jittered_cholesky
from repro.obs.metrics import get_metrics

#: Version tag for the serialized cache state.
STATE_SCHEMA = 1


def kernel_fingerprint(kernel, log_noise: float) -> tuple:
    """Exact hyperparameter identity: class name, theta bytes, noise.

    Theta is compared by its float64 byte representation — the cache
    must never treat "close" hyperparameters as equal, because a hit
    returns the cached factor verbatim and any drift would break the
    bit-identity guarantee of golden traces.
    """
    theta = np.ascontiguousarray(np.asarray(kernel.theta, dtype=np.float64))
    return (type(kernel).__name__, theta.tobytes(), float(log_noise))


class FactorCache:
    """Reusable Cholesky factor keyed by hyperparameters + input prefix."""

    def __init__(self):
        self._fp: tuple | None = None
        self._X: np.ndarray | None = None  # normalized inputs backing _L
        self._L: np.ndarray | None = None
        self._blocks: list[int] = []  # sizes; cumsum = truncation points
        self._pending: dict | None = None  # deserialized state, not replayed

    # -- lookup --------------------------------------------------------
    def factor_for(self, kernel, log_noise: float, X: np.ndarray,
                   split: int | None = None) -> np.ndarray:
        """Return the lower factor of ``k(X, X) + noise·I``.

        ``X`` is in the GP's normalized input space. ``split`` marks a
        known block boundary (the engine's real/fantasy seam): on a
        miss the factorization is built as two blocks so later lookups
        can truncate back to the seam instead of missing.
        """
        X = np.ascontiguousarray(np.asarray(X, dtype=np.float64))
        fp = kernel_fingerprint(kernel, log_noise)
        if self._pending is not None:
            self._replay_pending(kernel, fp)
        # math.exp to match GaussianProcess.noise bit-for-bit (np.exp on
        # scalars may differ in the last ulp, which would poison the
        # "cache-on is bit-identical" guarantee).
        noise = math.exp(float(log_noise))
        n = X.shape[0]
        metrics = get_metrics()

        if self._fp == fp and self._L is not None:
            p = self._longest_boundary_prefix(X)
            if p == n == self._X.shape[0]:
                metrics.counter("gp.refit.cache_hit").inc()
                return self._L
            if p > 0:
                truncated = p < self._X.shape[0]
                if truncated:
                    self._truncate_to(p)
                if n > p:
                    self._append(kernel, noise, X[p:])
                metrics.counter(
                    "gp.refit.cache_truncate" if truncated
                    else "gp.refit.cache_append"
                ).inc()
                return self._L

        metrics.counter("gp.refit.cache_miss").inc()
        self._fp = fp
        if split is not None and 0 < split < n:
            self._X = X[:split].copy()
            K = kernel(self._X)
            K[np.diag_indices_from(K)] += noise
            self._L, _ = jittered_cholesky(K)
            self._blocks = [int(split)]
            self._append(kernel, noise, X[split:])
        else:
            self._X = X.copy()
            K = kernel(self._X)
            K[np.diag_indices_from(K)] += noise
            self._L, _ = jittered_cholesky(K)
            self._blocks = [n]
        return self._L

    def invalidate(self) -> None:
        """Drop all cached state (hyperparameter reset, data repair)."""
        self._fp = None
        self._X = None
        self._L = None
        self._blocks = []
        self._pending = None

    # -- internals -----------------------------------------------------
    def _longest_boundary_prefix(self, X: np.ndarray) -> int:
        """Largest block boundary p with ``X[:p] == cached[:p]``, else 0."""
        n = X.shape[0]
        if self._X is None or X.shape[1] != self._X.shape[1]:
            return 0
        for p in reversed(np.cumsum(self._blocks).tolist()):
            if p <= n and np.array_equal(X[:p], self._X[:p]):
                return int(p)
        return 0

    def _truncate_to(self, p: int) -> None:
        self._L = self._L[:p, :p].copy()
        self._X = self._X[:p].copy()
        kept: list[int] = []
        acc = 0
        for size in self._blocks:
            if acc >= p:
                break
            kept.append(size)
            acc += size
        self._blocks = kept

    def _append(self, kernel, noise: float, X_new: np.ndarray) -> None:
        K_cross = kernel(self._X, X_new)
        K_new = kernel(X_new)
        K_new[np.diag_indices_from(K_new)] += noise
        self._L = cholesky_append(self._L, K_cross, K_new)
        self._X = np.vstack([self._X, X_new])
        self._blocks.append(X_new.shape[0])

    # -- serialization -------------------------------------------------
    def get_state(self) -> dict | None:
        """JSON-friendly snapshot, or ``None`` when replay is trivial.

        A single-block cache rebuilds bit-identically from a cold miss,
        so serializing it would only bloat journals and make cache-off
        and cache-on checkpoints diverge; multi-block chains *must* be
        replayed in order to reproduce the same bytes, so only they are
        serialized.
        """
        if self._pending is not None:
            return dict(self._pending)
        if self._fp is None or len(self._blocks) <= 1:
            return None
        return {
            "schema": STATE_SCHEMA,
            "kernel": self._fp[0],
            "theta": np.frombuffer(self._fp[1], dtype=np.float64).tolist(),
            "log_noise": float(self._fp[2]),
            "blocks": [int(b) for b in self._blocks],
            "X": np.asarray(self._X, dtype=np.float64).tolist(),
        }

    def set_state(self, state: dict | None) -> None:
        """Restore a snapshot; the factor is replayed lazily.

        Replay needs the kernel object (the snapshot only records its
        fingerprint), so reconstruction happens on the first
        :meth:`factor_for` call whose fingerprint matches. A mismatch
        silently discards the snapshot — the caller's hyperparameters
        have moved on, so the cache would have been invalidated anyway.
        """
        self.invalidate()
        if state is None:
            return
        if state.get("schema") != STATE_SCHEMA:
            return
        self._pending = dict(state)

    def _replay_pending(self, kernel, fp: tuple) -> None:
        pending, self._pending = self._pending, None
        theta = np.asarray(pending["theta"], dtype=np.float64)
        pending_fp = (pending["kernel"], theta.tobytes(),
                      float(pending["log_noise"]))
        if pending_fp != fp:
            return
        X = np.ascontiguousarray(np.asarray(pending["X"], dtype=np.float64))
        blocks = [int(b) for b in pending["blocks"]]
        if sum(blocks) != X.shape[0] or not blocks:
            return
        noise = math.exp(pending_fp[2])
        K = kernel(X[: blocks[0]])
        K[np.diag_indices_from(K)] += noise
        L, _ = jittered_cholesky(K)
        self._fp = pending_fp
        self._X = X[: blocks[0]].copy()
        self._L = L
        self._blocks = [blocks[0]]
        offset = blocks[0]
        for size in blocks[1:]:
            self._append(kernel, noise, X[offset:offset + size])
            offset += size
