"""The multi-objective scenario mode (profit / wear / reliability).

The scalar driver loop stays untouched: a
:class:`MultiObjectiveProblem` *is* a maximization problem whose
``evaluate`` returns fleet profit, so every existing algorithm — and
the journal, resume, and golden-trace machinery — runs unchanged. The
extra objectives ride along: each evaluation caches its full objective
vector, and :meth:`mo_values` hands the ``mo_bpi`` optimizer the
``(n, 3)`` minimization-oriented matrix

    (−profit [EUR], wear [switches + MW ramped], reserve shortfall [MWh])

for Pareto bookkeeping. The cache is keyed by the exact float bytes of
each row; a miss (e.g. after resume reinstalled history the wrapper
never saw) recomputes through the deterministic simulator, so resumed
runs stay bit-stable.
"""

from __future__ import annotations

import numpy as np

from repro.problems import Problem
from repro.scenarios.fleet import FleetSimulator
from repro.scenarios.spec import ScenarioSpec

#: Objective names, minimization orientation, column order of
#: :meth:`MultiObjectiveProblem.mo_values`.
MO_OBJECTIVES = ("neg_profit", "wear", "reserve_shortfall_mwh")


class MultiObjectiveProblem(Problem):
    """Fleet scheduling with (profit, wear, reserve-shortfall) tracked."""

    n_objectives = len(MO_OBJECTIVES)
    objective_names = MO_OBJECTIVES

    def __init__(self, spec: ScenarioSpec):
        self.spec = spec
        self.fleet = FleetSimulator(spec)
        super().__init__(
            self.fleet.bounds,
            name=f"scenario-mo:{spec.name}",
            maximize=True,
            sim_time=spec.sim_time,
        )
        self.event_log = self.fleet.event_log
        self._cache: dict[bytes, np.ndarray] = {}

    def evaluate(self, X: np.ndarray) -> np.ndarray:
        F = self.mo_values(X)
        return -F[:, 0]  # profit, native maximization orientation

    def mo_values(self, X: np.ndarray) -> np.ndarray:
        """``(n, 3)`` objective matrix (smaller is better, every column)."""
        X = np.asarray(X, dtype=np.float64)
        if X.ndim == 1:
            X = X[None, :]
        F = np.empty((X.shape[0], self.n_objectives))
        misses = [
            i for i, row in enumerate(X) if row.tobytes() not in self._cache
        ]
        if misses:
            comps = self.fleet.evaluate_components(X[misses])
            fresh = np.column_stack(
                [
                    -comps["profit"],
                    comps["wear"],
                    comps["reserve_shortfall_mwh"],
                ]
            )
            for j, i in enumerate(misses):
                self._cache[X[i].tobytes()] = fresh[j]
        for i, row in enumerate(X):
            F[i] = self._cache[row.tobytes()]
        return F
