"""Declarative scenario specifications (the UPHES workload family).

A :class:`ScenarioSpec` composes the single-plant simulator of
:mod:`repro.uphes` into a *workload*: a fleet of plants bidding into a
shared price curve, a bundle of named price regimes, and a script of
outage/drought events. Specs are frozen dataclasses validated like
:class:`~repro.uphes.config.UPHESConfig`, round-trip through
JSON/dicts byte-stably, and are fully determined by ``seed`` — the
fleet builder spawns every stream from one ``SeedSequence`` lineage,
so two builds of the same spec are bit-identical functions (DESIGN
§16).
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field, fields, is_dataclass

from repro.uphes.config import UPHESConfig
from repro.util import ConfigurationError

#: Named market regimes: overrides of
#: :class:`~repro.uphes.config.MarketConfig` fields. ``base`` is the
#: paper-aligned market untouched — a one-regime bundle of ``base``
#: reduces bit-exactly to today's :class:`UPHESSimulator`.
REGIMES: dict[str, dict] = {
    "base": {},
    # Cold snap: high level, hard evening peak, shallow night valley.
    "winter-peak": {
        "price_base": 58.0,
        "price_morning_peak": 36.0,
        "price_evening_peak": 55.0,
        "price_night_valley": 14.0,
    },
    # Solar-heavy summer: depressed, flat curve — little to arbitrage.
    "summer-flat": {
        "price_base": 36.0,
        "price_morning_peak": 10.0,
        "price_evening_peak": 15.0,
        "price_night_valley": 9.0,
    },
    # Scarcity spikes: the shape is nominal but noise dominates it.
    "high-vol": {
        "price_noise_std": 18.0,
        "price_noise_rho": 0.8,
        "reserve_price_mean": 14.0,
        "reserve_price_std": 5.0,
    },
}

#: Event kinds understood by the scripting engine.
EVENT_KINDS = ("outage", "drought")


def regime_names() -> list[str]:
    """The named market regimes, sorted."""
    return sorted(REGIMES)


def apply_overrides(base, overrides: dict):
    """Recursively ``dataclasses.replace`` nested frozen-config fields.

    Unknown keys raise :class:`ConfigurationError`; the replaced
    dataclasses re-run their own ``__post_init__`` validation, so a
    degenerate override (e.g. ``upper.v_max = 0``) fails loudly here
    rather than deep inside the simulator.
    """
    if not overrides:
        return base
    valid = {f.name: f for f in fields(base)}
    changes = {}
    for key, value in overrides.items():
        if key not in valid:
            raise ConfigurationError(
                f"unknown {type(base).__name__} field {key!r}; "
                f"valid: {sorted(valid)}"
            )
        current = getattr(base, key)
        if is_dataclass(current) and isinstance(value, dict):
            changes[key] = apply_overrides(current, value)
        else:
            changes[key] = value
    return dataclasses.replace(base, **changes)


@dataclass(frozen=True)
class RegimeSpec:
    """One named market regime within a scenario bundle.

    ``market`` holds :class:`~repro.uphes.config.MarketConfig` field
    overrides (usually taken from :data:`REGIMES` by name); ``weight``
    is the regime's probability mass under ``aggregate="mean"``.
    """

    name: str
    market: dict = field(default_factory=dict)
    weight: float = 1.0

    def __post_init__(self):
        if not self.name:
            raise ConfigurationError("regime needs a non-empty name")
        if not (self.weight > 0.0):
            raise ConfigurationError(
                f"regime {self.name!r} weight must be > 0, got {self.weight}"
            )

    @classmethod
    def named(cls, name: str, weight: float = 1.0) -> RegimeSpec:
        """Build a regime from the :data:`REGIMES` registry."""
        if name not in REGIMES:
            raise ConfigurationError(
                f"unknown regime {name!r}; available: {regime_names()}"
            )
        return cls(name=name, market=dict(REGIMES[name]), weight=weight)


@dataclass(frozen=True)
class PlantSpec:
    """One plant of the fleet: a named bundle of config overrides.

    ``config`` holds nested :class:`~repro.uphes.config.UPHESConfig`
    overrides (e.g. ``{"machine": {"p_turb_max": 9.0}}``). The market
    section belongs to the regimes — overriding it per plant would
    break the shared price curve and is rejected.
    """

    name: str
    config: dict = field(default_factory=dict)

    def __post_init__(self):
        if not self.name:
            raise ConfigurationError("plant needs a non-empty name")
        if "market" in self.config:
            raise ConfigurationError(
                f"plant {self.name!r} overrides 'market'; market structure "
                "is shared and belongs to the scenario's regimes"
            )

    def resolve(self, market_overrides: dict | None = None) -> UPHESConfig:
        """The plant's full config, under one regime's market."""
        cfg = apply_overrides(UPHESConfig(), self.config)
        if market_overrides:
            cfg = dataclasses.replace(
                cfg, market=apply_overrides(cfg.market, market_overrides)
            )
        return cfg


@dataclass(frozen=True)
class EventSpec:
    """One scripted degradation event on the scheduling horizon.

    ``kind="outage"`` makes the plant's machine unavailable on
    ``[start_hour, end_hour)`` — commitments there trip and pay the
    imbalance/unsafe penalties, and reserve headroom is zero.
    ``kind="drought"`` derates the groundwater exchange by
    ``magnitude`` (1.0 = exchange fully stopped) over the window.
    ``plant`` names one plant or ``"*"`` for the whole fleet.
    Overlapping windows are legal: outages union, droughts compound.
    """

    kind: str
    plant: str = "*"
    start_hour: float = 0.0
    end_hour: float = 24.0
    magnitude: float = 1.0

    def __post_init__(self):
        if self.kind not in EVENT_KINDS:
            raise ConfigurationError(
                f"unknown event kind {self.kind!r}; valid: {EVENT_KINDS}"
            )
        if not (self.start_hour < self.end_hour):
            raise ConfigurationError(
                f"event window [{self.start_hour}, {self.end_hour}) is empty"
            )
        if self.start_hour < 0:
            raise ConfigurationError("event start_hour must be >= 0")
        if not (0.0 <= self.magnitude <= 1.0):
            raise ConfigurationError(
                f"event magnitude must be in [0, 1], got {self.magnitude}"
            )


@dataclass(frozen=True)
class ScenarioSpec:
    """A full workload: fleet × regime bundle × event script.

    Parameters
    ----------
    plants:
        The fleet (>= 1 plant; names unique). All plants must agree on
        horizon, step size, and scenario count — the shared market
        requires one ``(n_scenarios, n_steps)`` price block.
    regimes:
        The price-regime bundle (>= 1; names unique). Each regime draws
        its own market scenario set from a spawned seed child.
    events:
        Scripted outage/drought windows (see :class:`EventSpec`).
    price_impact:
        EUR/MWh of price depression per MW of *fleet* net injection:
        the market-coupling term. 0 keeps every plant a pure price
        taker (and keeps degenerate specs bit-exact with the plain
        simulator).
    aggregate:
        ``"mean"`` = weight-averaged profit over regimes; ``"worst"``
        = robust min over regimes.
    objective:
        ``"profit"`` (scalar) or ``"multi"`` (profit / wear /
        reserve-shortfall, for ``algorithm="mo_bpi"``).
    seed:
        Root of the ``SeedSequence`` lineage that every market and
        groundwater stream spawns from.
    sim_time:
        Virtual seconds one fleet evaluation is charged on the clock.
    """

    plants: tuple[PlantSpec, ...]
    regimes: tuple[RegimeSpec, ...]
    events: tuple[EventSpec, ...] = ()
    price_impact: float = 0.0
    aggregate: str = "mean"
    objective: str = "profit"
    seed: int = 0
    sim_time: float = 10.0
    name: str = "scenario"

    def __post_init__(self):
        # Tuples survive dict-built specs (lists) without breaking
        # frozen hashing or the JSON round trip.
        object.__setattr__(self, "plants", tuple(self.plants))
        object.__setattr__(self, "regimes", tuple(self.regimes))
        object.__setattr__(self, "events", tuple(self.events))
        if not self.plants:
            raise ConfigurationError(
                "a scenario needs at least one plant (zero-machine fleets "
                "have nothing to schedule)"
            )
        if not self.regimes:
            raise ConfigurationError("a scenario needs at least one regime")
        plant_names = [p.name for p in self.plants]
        if len(set(plant_names)) != len(plant_names):
            raise ConfigurationError(f"duplicate plant names: {plant_names}")
        regime_names_ = [r.name for r in self.regimes]
        if len(set(regime_names_)) != len(regime_names_):
            raise ConfigurationError(
                f"duplicate regime names: {regime_names_}"
            )
        if self.price_impact < 0:
            raise ConfigurationError("price_impact must be >= 0")
        if self.aggregate not in ("mean", "worst"):
            raise ConfigurationError(
                f"aggregate must be 'mean' or 'worst', got {self.aggregate!r}"
            )
        if self.objective not in ("profit", "multi"):
            raise ConfigurationError(
                f"objective must be 'profit' or 'multi', got {self.objective!r}"
            )
        if self.sim_time <= 0:
            raise ConfigurationError("sim_time must be > 0")

        # Resolving each plant validates its overrides (unknown keys,
        # degenerate geometry) and pins the shared-market contract.
        configs = [p.resolve() for p in self.plants]
        shapes = {
            (c.n_steps, c.dt_hours, c.n_scenarios) for c in configs
        }
        if len(shapes) != 1:
            raise ConfigurationError(
                "all plants must share horizon/step/scenario count for "
                f"the shared market; got {sorted(shapes)}"
            )
        # Regime overrides must build a valid market.
        for regime in self.regimes:
            apply_overrides(configs[0].market, regime.market)
        horizon = configs[0].horizon_hours
        for ev in self.events:
            if ev.plant != "*" and ev.plant not in plant_names:
                raise ConfigurationError(
                    f"event references unknown plant {ev.plant!r}; "
                    f"fleet: {plant_names}"
                )
            if ev.start_hour >= horizon:
                raise ConfigurationError(
                    f"event window starts at hour {ev.start_hour}, beyond "
                    f"the {horizon}-hour horizon"
                )

    # -- serialization -------------------------------------------------
    def to_dict(self) -> dict:
        """Plain-JSON representation; ``from_dict`` round-trips it."""
        return {
            "name": self.name,
            "plants": [
                {"name": p.name, "config": p.config} for p in self.plants
            ],
            "regimes": [
                {"name": r.name, "market": r.market, "weight": r.weight}
                for r in self.regimes
            ],
            "events": [
                {
                    "kind": e.kind,
                    "plant": e.plant,
                    "start_hour": e.start_hour,
                    "end_hour": e.end_hour,
                    "magnitude": e.magnitude,
                }
                for e in self.events
            ],
            "price_impact": self.price_impact,
            "aggregate": self.aggregate,
            "objective": self.objective,
            "seed": self.seed,
            "sim_time": self.sim_time,
        }

    def to_json(self) -> str:
        """Canonical JSON encoding (sorted keys — byte-stable)."""
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_dict(cls, data: dict) -> ScenarioSpec:
        """Rebuild a spec from :meth:`to_dict` output (or hand-written
        JSON with the same shape)."""
        if not isinstance(data, dict):
            raise ConfigurationError(
                f"scenario spec must be a dict, got {type(data).__name__}"
            )
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ConfigurationError(
                f"unknown scenario spec keys: {sorted(unknown)}"
            )
        return cls(
            name=str(data.get("name", "scenario")),
            plants=tuple(
                PlantSpec(**p) if isinstance(p, dict) else p
                for p in data.get("plants", ())
            ),
            regimes=tuple(
                RegimeSpec(**r) if isinstance(r, dict) else r
                for r in data.get("regimes", ())
            ),
            events=tuple(
                EventSpec(**e) if isinstance(e, dict) else e
                for e in data.get("events", ())
            ),
            price_impact=float(data.get("price_impact", 0.0)),
            aggregate=str(data.get("aggregate", "mean")),
            objective=str(data.get("objective", "profit")),
            seed=int(data.get("seed", 0)),
            sim_time=float(data.get("sim_time", 10.0)),
        )

    # -- structure queries ---------------------------------------------
    @property
    def n_plants(self) -> int:
        return len(self.plants)

    @property
    def n_regimes(self) -> int:
        return len(self.regimes)

    def is_degenerate(self) -> bool:
        """Whether this spec reduces to one plain :class:`UPHESSimulator`.

        True for a single-plant, zero-event, one-regime bundle with no
        market override, no price coupling, and the scalar objective:
        the builder then returns the exact legacy simulator, which is
        what makes the golden-trace acceptance a reduction proof rather
        than a tolerance comparison.
        """
        return (
            self.n_plants == 1
            and self.n_regimes == 1
            and not self.regimes[0].market
            and not self.events
            and self.price_impact == 0.0
            and self.objective == "profit"
        )
