"""Multi-plant fleet simulator with shared market coupling.

One :class:`FleetSimulator` evaluates a concatenated decision vector
(12 dimensions per plant) against every regime of the bundle. Within a
regime all plants see the *same* frozen price paths; with
``price_impact > 0`` the fleet's combined net injection depresses the
price it is settled at (a linear residual-demand model), which is what
couples the plants — over-committing the whole fleet into the evening
peak erodes the peak itself.

Every stream is spawned from ``SeedSequence(spec.seed)``:

- regime ``r`` gets child ``r``; from it, child 0 seeds the shared
  market and child ``1 + i`` seeds plant ``i``'s groundwater table —

so any sub-stream replays bit-identically regardless of how many
plants or regimes surround it (the checkpoint/resume stability the
scenario bundles promise).
"""

from __future__ import annotations

import numpy as np

from repro.problems import Problem
from repro.scenarios.events import compile_events, event_records
from repro.scenarios.spec import ScenarioSpec, apply_overrides
from repro.uphes.market import MarketScenarios
from repro.uphes.simulator import UPHESSimulator


class FleetSimulator(Problem):
    """Expected fleet profit over a regime bundle (maximized).

    The objective is the regime aggregate of the summed plant profits:
    the probability-weighted mean (``aggregate="mean"``) or the robust
    worst case (``"worst"``). :meth:`evaluate_components` additionally
    returns the wear and reserve-shortfall terms of the multi-objective
    mode.
    """

    def __init__(self, spec: ScenarioSpec):
        self.spec = spec
        configs = [p.resolve() for p in spec.plants]
        bounds = np.vstack([c.bounds() for c in configs])
        super().__init__(
            bounds,
            name=f"scenario:{spec.name}",
            maximize=True,
            sim_time=spec.sim_time,
        )
        self._dims = [c.dim for c in configs]
        self._offsets = np.concatenate([[0], np.cumsum(self._dims)])
        self._n_steps = configs[0].n_steps
        self._dt_hours = configs[0].dt_hours

        # Per-plant event overrides (None = untouched legacy path).
        self._avail = []
        self._inflow = []
        for plant, cfg in zip(spec.plants, configs):
            avail, inflow = compile_events(spec, plant.name, cfg)
            self._avail.append(avail)
            self._inflow.append(inflow)
        self.event_log = event_records(spec)

        # Regime × plant simulators over SeedSequence.spawn lineage.
        root = np.random.SeedSequence(spec.seed)
        regime_seeds = root.spawn(spec.n_regimes)
        self.markets: list[MarketScenarios] = []
        self._sims: list[list[UPHESSimulator]] = []
        for regime, regime_seed in zip(spec.regimes, regime_seeds):
            kids = regime_seed.spawn(1 + spec.n_plants)
            market_cfg = apply_overrides(configs[0].market, regime.market)
            market = MarketScenarios(
                market_cfg,
                self._n_steps,
                self._dt_hours,
                configs[0].n_scenarios,
                seed=kids[0],
            )
            self.markets.append(market)
            sims = [
                UPHESSimulator(
                    config=plant.resolve(regime.market),
                    seed=kids[1 + i],
                    sim_time=spec.sim_time,
                    market=market,
                )
                for i, plant in enumerate(spec.plants)
            ]
            self._sims.append(sims)
        self._weights = np.array([r.weight for r in spec.regimes])
        self._weights = self._weights / self._weights.sum()

    # ------------------------------------------------------------------
    def split(self, X: np.ndarray) -> list[np.ndarray]:
        """Per-plant ``(n, 12)`` column blocks of the fleet batch."""
        return [
            X[:, self._offsets[i] : self._offsets[i + 1]]
            for i in range(len(self._dims))
        ]

    # ------------------------------------------------------------------
    def evaluate(self, X: np.ndarray) -> np.ndarray:
        return self._evaluate(X, components=False)["profit"]

    def evaluate_components(self, X: np.ndarray) -> dict:
        """Aggregated objective components for the MO mode.

        Returns ``(n,)`` arrays: ``profit`` (EUR, aggregated like
        :meth:`evaluate`), ``wear`` (fleet mode switches plus MW ramped
        across blocks — a schedule property, regime-independent) and
        ``reserve_shortfall_mwh`` (expected undelivered reserve energy,
        aggregated like profit).
        """
        return self._evaluate(X, components=True)

    def _evaluate(self, X: np.ndarray, components: bool) -> dict:
        X = np.asarray(X, dtype=np.float64)
        parts = self.split(X)
        n = X.shape[0]
        R = self.spec.n_regimes
        profits = np.zeros((R, n))
        shortfall = np.zeros((R, n)) if components else None
        wear = np.zeros(n) if components else None

        for r, sims in enumerate(self._sims):
            prices = self._coupled_prices(parts, sims)
            for i, sim in enumerate(sims):
                kwargs = {
                    "price": None if prices is None else prices[i],
                    "avail": self._avail[i],
                    "inflow_scale": self._inflow[i],
                }
                if components:
                    p, comps = sim.evaluate_scenario(
                        parts[i], components=True, **kwargs
                    )
                    shortfall[r] += comps["reserve_shortfall_mwh"]
                    if r == 0:  # schedule-derived: identical per regime
                        wear += comps["mode_switches"] + comps["ramp_mw"]
                else:
                    p = sim.evaluate_scenario(parts[i], **kwargs)
                profits[r] += p

        out = {"profit": self._aggregate(profits)}
        if components:
            out["wear"] = wear
            out["reserve_shortfall_mwh"] = self._aggregate_cost(shortfall)
        return out

    def _aggregate(self, per_regime: np.ndarray) -> np.ndarray:
        """Regime bundle → scalar profit (mean = weighted, worst = min)."""
        if self.spec.aggregate == "worst":
            return per_regime.min(axis=0)
        return self._weights @ per_regime

    def _aggregate_cost(self, per_regime: np.ndarray) -> np.ndarray:
        """Like :meth:`_aggregate` but for a *cost* (worst = max)."""
        if self.spec.aggregate == "worst":
            return per_regime.max(axis=0)
        return self._weights @ per_regime

    def _coupled_prices(
        self, parts: list[np.ndarray], sims: list[UPHESSimulator]
    ) -> list[np.ndarray] | None:
        """Per-plant ``(n, S, T)`` price overrides, or ``None`` uncoupled.

        The linear residual-demand model: the settled price at step t
        drops by ``price_impact`` EUR/MWh per MW the whole fleet nets
        into the grid (and rises when the fleet pumps), floored at the
        market's ``min_price``. With one plant and ``price_impact = 0``
        this returns ``None`` and the plant takes the exact legacy
        price path.
        """
        impact = self.spec.price_impact
        if impact == 0.0:
            return None
        n = parts[0].shape[0]
        p_fleet = np.zeros((n, self._n_steps))
        for part, sim in zip(parts, sims):
            m = sim.config.market
            energy = part[:, : m.n_energy_blocks]
            p_fleet += np.repeat(
                energy, self._n_steps // m.n_energy_blocks, axis=1
            )
        market = sims[0].market
        base = market.energy_price[None, :, :]  # (1, S, T)
        coupled = np.maximum(
            base - impact * p_fleet[:, None, :], market.config.min_price
        )
        # All plants of the regime settle at the same coupled curve.
        return [coupled] * len(sims)
