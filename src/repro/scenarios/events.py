"""Event scripting: compile spec events into simulator overrides.

Events live on the *scheduling horizon* (the simulated day, i.e. the
same virtual timeline the schedule blocks cover), not on wall time: an
outage window masks the machine envelopes for every step it overlaps,
which in turn masks the schedule dimensions committed there — exactly
the PR-1 degradation semantics (a resource that silently stops
serving), but deterministic and declared up front. Droughts derate the
groundwater exchange the same way.

Compilation is pure: a spec compiles to one ``(T,)`` availability mask
and one ``(T,)`` inflow-scale vector per plant (or ``None`` where no
event touches the plant, keeping the no-event path bit-identical to
the plain simulator). :func:`event_records` renders the same script as
journal-ready degradation payloads.
"""

from __future__ import annotations

import numpy as np

from repro.scenarios.spec import EventSpec, ScenarioSpec
from repro.uphes.config import UPHESConfig


def _window_steps(
    event: EventSpec, n_steps: int, dt_hours: float
) -> np.ndarray:
    """Boolean ``(T,)`` mask of steps overlapping the event window.

    A step covering ``[t·dt, (t+1)·dt)`` is inside the window when the
    two intervals overlap at all — a 15-minute outage therefore always
    knocks out at least one full step (conservative, like real
    redispatch).
    """
    t0 = np.arange(n_steps) * dt_hours
    t1 = t0 + dt_hours
    return (t0 < event.end_hour) & (t1 > event.start_hour)


def compile_events(
    spec: ScenarioSpec, plant_name: str, config: UPHESConfig
) -> tuple[np.ndarray | None, np.ndarray | None]:
    """Compile the spec's script for one plant.

    Returns ``(avail, inflow_scale)`` — each ``None`` when no event of
    that kind touches the plant, so untouched plants take the exact
    legacy simulator code path.

    Overlap semantics: outage windows *union* (the machine is down if
    any outage covers the step); drought deratings *compound*
    multiplicatively (two half-deratings leave 25% of the exchange).
    """
    avail = None
    inflow = None
    for event in spec.events:
        if event.plant not in ("*", plant_name):
            continue
        steps = _window_steps(event, config.n_steps, config.dt_hours)
        if event.kind == "outage":
            if avail is None:
                avail = np.ones(config.n_steps, dtype=bool)
            avail &= ~steps
        else:  # drought
            if inflow is None:
                inflow = np.ones(config.n_steps, dtype=np.float64)
            inflow *= np.where(steps, 1.0 - event.magnitude, 1.0)
    return avail, inflow


def event_records(spec: ScenarioSpec) -> list[dict]:
    """Journal-ready degradation payloads for the spec's event script.

    The driver journals surrogate degradations under the
    ``degradation`` event; scenario runs record their scripted
    outages/droughts in the same stream (``stage="scenario_event"``)
    so one journal read reconstructs everything that degraded a run.
    """
    records = []
    for event in spec.events:
        records.append(
            {
                "stage": "scenario_event",
                "kind": event.kind,
                "plant": event.plant,
                "start_hour": float(event.start_hour),
                "end_hour": float(event.end_hour),
                "magnitude": float(event.magnitude),
            }
        )
    return records
