"""UPHES as a workload family: fleets, regimes, events, objectives.

The scenario subsystem turns the single-plant reproduction into a
parameterized workload generator (ROADMAP item 4): declarative
:class:`ScenarioSpec` documents compose multi-plant fleets bidding
into one price-coupled market, bundles of named seasonal/volatility
price regimes, scripted outage/drought events, and a multi-objective
mode (profit / wear / reserve reliability) served by the ``mo_bpi``
algorithm. Every stochastic draw descends from one
``SeedSequence(spec.seed)`` lineage, so specs are replayable and
resume-stable; degenerate specs reduce bit-exactly to the plain
:class:`~repro.uphes.UPHESSimulator`. See DESIGN.md §16.
"""

from repro.scenarios.campaign import (
    compact,
    matrix_markdown,
    run_cell,
    run_matrix,
    save_bench,
)
from repro.scenarios.events import compile_events, event_records
from repro.scenarios.fleet import FleetSimulator
from repro.scenarios.generator import (
    SCENARIOS,
    build_problem,
    get_scenario,
    scenario_names,
)
from repro.scenarios.multiobjective import MO_OBJECTIVES, MultiObjectiveProblem
from repro.scenarios.spec import (
    EVENT_KINDS,
    REGIMES,
    EventSpec,
    PlantSpec,
    RegimeSpec,
    ScenarioSpec,
    apply_overrides,
    regime_names,
)

__all__ = [
    "EVENT_KINDS",
    "MO_OBJECTIVES",
    "REGIMES",
    "SCENARIOS",
    "EventSpec",
    "FleetSimulator",
    "MultiObjectiveProblem",
    "PlantSpec",
    "RegimeSpec",
    "ScenarioSpec",
    "apply_overrides",
    "build_problem",
    "compact",
    "compile_events",
    "event_records",
    "get_scenario",
    "matrix_markdown",
    "regime_names",
    "run_cell",
    "run_matrix",
    "save_bench",
    "scenario_names",
]
