"""Building problems from specs, and the named scenario library.

:func:`build_problem` is the subsystem's front door. Its key guarantee
is the *degenerate reduction*: a single-plant, zero-event, one-regime
spec with no market override and no price coupling does not get a
fleet wrapper at all — it returns the plain
:class:`~repro.uphes.UPHESSimulator` seeded with ``spec.seed``,
bit-identical to the path every pre-scenario run took (the golden-trace
acceptance criterion). The returned problem carries the spec on a
``.spec`` attribute, which the run journal records and
:func:`repro.resilience.resume.rebuild_problem` rebuilds from.
"""

from __future__ import annotations

from repro.scenarios.fleet import FleetSimulator
from repro.scenarios.multiobjective import MultiObjectiveProblem
from repro.scenarios.spec import EventSpec, PlantSpec, RegimeSpec, ScenarioSpec
from repro.util import ConfigurationError


def build_problem(spec):
    """Instantiate the problem a spec (or its dict form) describes."""
    if isinstance(spec, dict):
        spec = ScenarioSpec.from_dict(spec)
    if not isinstance(spec, ScenarioSpec):
        raise ConfigurationError(
            f"expected a ScenarioSpec or dict, got {type(spec).__name__}"
        )
    if spec.objective == "multi":
        return MultiObjectiveProblem(spec)
    if spec.is_degenerate():
        from repro.uphes import UPHESSimulator

        problem = UPHESSimulator(
            config=spec.plants[0].resolve(),
            seed=spec.seed,
            sim_time=spec.sim_time,
        )
        problem.spec = spec
        return problem
    return FleetSimulator(spec)


# ---------------------------------------------------------------------
# Named scenario library (the axes the campaign matrix sweeps).

def _paper() -> ScenarioSpec:
    """The paper's setup as a spec: reduces to the plain simulator."""
    return ScenarioSpec(
        name="paper",
        plants=(PlantSpec(name="maizeret"),),
        regimes=(RegimeSpec.named("base"),),
    )


def _duo() -> ScenarioSpec:
    """Two coupled plants, one market: the smallest real fleet."""
    return ScenarioSpec(
        name="duo",
        plants=(
            PlantSpec(name="maizeret"),
            PlantSpec(
                name="big-sister",
                config={
                    "machine": {"p_turb_max": 10.0, "p_pump_max": 10.0},
                    "upper": {"v_max": 4.5e5},
                    "lower": {"v_max": 4.5e5},
                },
            ),
        ),
        regimes=(RegimeSpec.named("base"),),
        price_impact=0.4,
    )


def _seasonal() -> ScenarioSpec:
    """One plant across the seasonal regime bundle (mean aggregate)."""
    return ScenarioSpec(
        name="seasonal",
        plants=(PlantSpec(name="maizeret"),),
        regimes=(
            RegimeSpec.named("winter-peak", weight=1.0),
            RegimeSpec.named("summer-flat", weight=1.0),
            RegimeSpec.named("high-vol", weight=0.5),
        ),
    )


def _stress() -> ScenarioSpec:
    """Fleet + volatility + events: the resilience workload."""
    return ScenarioSpec(
        name="stress",
        plants=(
            PlantSpec(name="maizeret"),
            PlantSpec(
                name="big-sister",
                config={"machine": {"p_turb_max": 10.0, "p_pump_max": 10.0}},
            ),
        ),
        regimes=(
            RegimeSpec.named("winter-peak"),
            RegimeSpec.named("high-vol"),
        ),
        events=(
            EventSpec(
                kind="outage", plant="maizeret",
                start_hour=8.0, end_hour=12.0,
            ),
            EventSpec(
                kind="drought", plant="*",
                start_hour=0.0, end_hour=24.0, magnitude=0.6,
            ),
        ),
        price_impact=0.4,
        aggregate="worst",
    )


def _mo() -> ScenarioSpec:
    """Profit vs wear vs reserve reliability (for algorithm=mo_bpi)."""
    return ScenarioSpec(
        name="mo",
        plants=(PlantSpec(name="maizeret"),),
        regimes=(
            RegimeSpec.named("base"),
            RegimeSpec.named("high-vol", weight=0.5),
        ),
        objective="multi",
    )


#: Name -> zero-argument spec factory. Factories (not instances) so a
#: caller mutating nothing still gets a fresh spec each build.
SCENARIOS = {
    "paper": _paper,
    "duo": _duo,
    "seasonal": _seasonal,
    "stress": _stress,
    "mo": _mo,
}


def scenario_names() -> list[str]:
    """The named scenarios, sorted."""
    return sorted(SCENARIOS)


def get_scenario(name: str) -> ScenarioSpec:
    """Look up a named scenario spec."""
    key = str(name).strip().lower()
    if key not in SCENARIOS:
        raise ConfigurationError(
            f"unknown scenario {name!r}; available: {scenario_names()}"
        )
    return SCENARIOS[key]()
