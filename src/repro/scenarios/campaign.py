"""The scenario campaign matrix: sweep workload axes, emit tables.

``run_matrix`` runs every (scenario × algorithm × seed) cell under the
deterministic analytic time model, so the whole matrix is reproducible
bit-for-bit from its arguments — the same contract the experiment
presets give the paper benchmarks. ``matrix_markdown`` renders the
rows as the comparison tables EXPERIMENTS.md carries, and
``save_bench`` archives the raw rows (BENCH_scenarios.json in CI).
"""

from __future__ import annotations

import numpy as np

from repro.acquisition import pareto_front
from repro.core import AnalyticTimeModel, make_optimizer, run_optimization
from repro.scenarios.generator import build_problem, get_scenario
from repro.scenarios.spec import ScenarioSpec

#: Laptop/CI-sized inner-loop options (the golden-trace FAST settings).
FAST_OPTIONS = {
    "acq_options": {
        "n_restarts": 2, "raw_samples": 32, "maxiter": 15, "n_mc": 32,
    },
    "gp_options": {"n_restarts": 0, "maxiter": 20},
}


def compact(spec: ScenarioSpec, n_scenarios: int = 4) -> ScenarioSpec:
    """A cheaper clone of ``spec``: fewer uncertainty scenarios per
    plant (same structure, same seed lineage shape — for smoke runs)."""
    data = spec.to_dict()
    for plant in data["plants"]:
        plant["config"] = {**plant["config"], "n_scenarios": n_scenarios}
    return ScenarioSpec.from_dict(data)


def run_cell(
    spec: ScenarioSpec,
    algorithm: str,
    *,
    n_batch: int = 2,
    n_cycles: int = 3,
    seed: int = 0,
    n_initial: int | None = None,
    options: dict | None = None,
) -> dict:
    """One matrix cell: a short deterministic optimization run."""
    problem = build_problem(spec)
    opts = {**FAST_OPTIONS, **(options or {})}
    optimizer = make_optimizer(
        algorithm, problem, n_batch, seed=seed, **opts
    )
    result = run_optimization(
        problem,
        optimizer,
        budget=1e9,
        n_initial=n_initial if n_initial is not None else 4 * n_batch,
        seed=seed,
        max_cycles=n_cycles,
        time_model=AnalyticTimeModel(),
    )
    row = {
        "scenario": spec.name,
        "algorithm": algorithm,
        "seed": seed,
        "dim": int(problem.dim),
        "n_plants": spec.n_plants,
        "n_regimes": spec.n_regimes,
        "n_events": len(spec.events),
        "objective": spec.objective,
        "initial_best": float(result.initial_best),
        "best_profit": float(result.best_value),
        "n_cycles": int(result.n_cycles),
        "n_simulations": int(result.n_simulations),
    }
    hv_history = getattr(optimizer, "hv_history", None)
    if hv_history:
        row["hypervolume"] = float(hv_history[-1])
        row["front_size"] = int(np.count_nonzero(pareto_front(optimizer.F)))
    return row


def run_matrix(
    scenarios=("paper", "duo", "seasonal", "stress", "mo"),
    algorithms=("turbo",),
    *,
    n_batch: int = 2,
    n_cycles: int = 3,
    seeds=(0,),
    n_scenarios: int | None = None,
    options: dict | None = None,
) -> dict:
    """The full campaign matrix; returns ``{"rows": [...], ...}``.

    ``scenarios`` mixes names from the library and ready
    :class:`ScenarioSpec` instances; ``mo_bpi`` cells require (and are
    only valid for) multi-objective specs, so pair algorithms and
    scenarios accordingly or use the default single-algorithm sweep.
    ``n_scenarios`` (when given) compacts every spec for smoke runs.
    """
    rows = []
    for entry in scenarios:
        spec = entry if isinstance(entry, ScenarioSpec) else get_scenario(entry)
        if n_scenarios is not None:
            spec = compact(spec, n_scenarios)
        for algorithm in algorithms:
            algo = (
                "mo_bpi"
                if spec.objective == "multi" and algorithm != "mo_bpi"
                else algorithm
            )
            for seed in seeds:
                rows.append(
                    run_cell(
                        spec,
                        algo,
                        n_batch=n_batch,
                        n_cycles=n_cycles,
                        seed=seed,
                        options=options,
                    )
                )
    return {
        "preset": {
            "n_batch": n_batch,
            "n_cycles": n_cycles,
            "seeds": list(seeds),
            "n_scenarios": n_scenarios,
        },
        "rows": rows,
    }


def matrix_markdown(result: dict) -> str:
    """Render matrix rows as the EXPERIMENTS.md comparison table."""
    header = (
        "| scenario | plants×regimes | events | algorithm | seed "
        "| initial best | final best | Δ | hv |\n"
        "|---|---|---|---|---|---|---|---|---|"
    )
    lines = [header]
    for row in result["rows"]:
        delta = row["best_profit"] - row["initial_best"]
        hv = f"{row['hypervolume']:.3f}" if "hypervolume" in row else "—"
        lines.append(
            f"| {row['scenario']} "
            f"| {row['n_plants']}×{row['n_regimes']} "
            f"| {row['n_events']} "
            f"| {row['algorithm']} "
            f"| {row['seed']} "
            f"| {row['initial_best']:.0f} "
            f"| {row['best_profit']:.0f} "
            f"| {delta:+.0f} "
            f"| {hv} |"
        )
    return "\n".join(lines)


def save_bench(path, result: dict) -> None:
    """Archive the matrix rows (atomic, CI artifact friendly)."""
    from repro.resilience import atomic_write_json

    atomic_write_json(path, result, fsync=False, indent=2)
