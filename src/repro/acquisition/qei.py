"""Monte-Carlo multi-point expected improvement (qEI).

Implements the reparameterization-trick estimator of Wilson et al.
(2017) used by BoTorch's ``qExpectedImprovement`` (Balandat et al.,
2020) — the acquisition behind both MC-based q-EGO and TuRBO in the
paper:

    qEI(X_q) ≈ (1/N) Σₛ max(best_f − minⱼ Yₛⱼ, 0),
    Yₛ = μ(X_q) + C(X_q)·zₛ,    C·Cᵀ = Σ(X_q),

with quasi-MC base samples zₛ (scrambled Sobol → inverse normal CDF)
held fixed across the inner optimization (common random numbers give a
deterministic, smooth-almost-everywhere objective).

The spatial gradient is computed in closed form by reverse mode:
the per-sample subgradient w.r.t. (μ, C) is accumulated, pulled back
through the Cholesky factorization (:func:`cholesky_adjoint`) and then
through the GP posterior (:meth:`joint_posterior_backward`). This keeps
the cost per gradient at O(q·(n² + n·d)) — the same asymptotics that
make the paper's multi-point acquisition expensive for large batches.
"""

from __future__ import annotations

import numpy as np
from scipy.special import ndtri
from scipy.stats import qmc

from repro.gp.linalg import cholesky_adjoint, jittered_cholesky
from repro.util import ConfigurationError, RandomState, as_generator, check_matrix


def _sobol_normal(n: int, q: int, rng: np.random.Generator) -> np.ndarray:
    """``(n, q)`` quasi-MC standard-normal base samples."""
    import warnings

    sampler = qmc.Sobol(d=q, scramble=True, seed=rng)
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", UserWarning)
        u = sampler.random(n)
    # keep strictly inside (0, 1) for the inverse CDF
    eps = 1e-12
    return ndtri(np.clip(u, eps, 1.0 - eps))


class qExpectedImprovement:
    """Joint EI of a batch of ``q`` points, to be maximized.

    Parameters
    ----------
    gp:
        Fitted :class:`~repro.gp.GaussianProcess`.
    best_f:
        Best (smallest) objective value observed so far.
    q:
        Batch size.
    n_mc:
        Number of quasi-MC samples (default 128, as in BoTorch's
        default Sobol sampler sizing for small q).
    seed:
        Seed for the scrambled Sobol base samples.
    """

    has_analytic_grad = True
    has_batch_grad = True

    def __init__(self, gp, best_f: float, q: int, n_mc: int = 128,
                 seed: RandomState = None):
        if q < 1:
            raise ConfigurationError(f"q must be >= 1, got {q}")
        if n_mc < 2:
            raise ConfigurationError(f"n_mc must be >= 2, got {n_mc}")
        self.gp = gp
        self.best_f = float(best_f)
        self.q = int(q)
        self.n_mc = int(n_mc)
        self._Z = _sobol_normal(self.n_mc, self.q, as_generator(seed))

    # ------------------------------------------------------------------
    def _posterior_chol(self, Xq: np.ndarray):
        post = self.gp.joint_posterior(Xq)
        C, _ = jittered_cholesky(post.cov)
        return post, C

    def value(self, Xq) -> float:
        """qEI of one ``(q, d)`` batch."""
        Xq = check_matrix(Xq, "Xq", cols=self.gp.dim)
        if Xq.shape[0] != self.q:
            raise ConfigurationError(
                f"batch has {Xq.shape[0]} points, acquisition built for q={self.q}"
            )
        post, C = self._posterior_chol(Xq)
        Y = post.mean[None, :] + self._Z @ C.T  # (N, q)
        improvement = self.best_f - np.min(Y, axis=1)
        return float(np.mean(np.maximum(improvement, 0.0)))

    def value_and_grad(self, Xq) -> tuple[float, np.ndarray]:
        """qEI and its ``(q, d)`` gradient for one batch."""
        Xq = check_matrix(Xq, "Xq", cols=self.gp.dim)
        if Xq.shape[0] != self.q:
            raise ConfigurationError(
                f"batch has {Xq.shape[0]} points, acquisition built for q={self.q}"
            )
        post, C = self._posterior_chol(Xq)
        Y = post.mean[None, :] + self._Z @ C.T  # (N, q)
        j_star = np.argmin(Y, axis=1)  # (N,)
        y_min = Y[np.arange(self.n_mc), j_star]
        improvement = self.best_f - y_min
        active = improvement > 0.0
        value = float(np.mean(np.maximum(improvement, 0.0)))

        if not np.any(active):
            return value, np.zeros_like(Xq)

        # ∂qEI/∂Yₛⱼ = −1/N for the argmin entry of each active sample.
        w = -1.0 / self.n_mc
        mean_bar = np.zeros(self.q)
        C_bar = np.zeros((self.q, self.q))
        idx = np.flatnonzero(active)
        js = j_star[idx]
        np.add.at(mean_bar, js, w)
        # C_bar[j, m] accumulates w·z_{s,m} over active samples with j*=j
        np.add.at(C_bar, js, w * self._Z[idx])
        # dY/dC only touches the lower triangle actually produced by chol
        C_bar = np.tril(C_bar)

        cov_bar = cholesky_adjoint(C, C_bar)
        grad = self.gp.joint_posterior_backward(post, mean_bar, cov_bar)
        return value, grad

    def value_and_grad_batch(self, Xb) -> tuple[np.ndarray, np.ndarray]:
        """qEI values ``(r,)`` and gradients ``(r, q, d)`` for ``r`` batches.

        One stacked posterior call
        (:meth:`~repro.gp.GaussianProcess.joint_posterior_batch`)
        covers every restart candidate, so the O(n²)-per-batch
        triangular solves run once as BLAS-3; only the O(q³) batch
        Cholesky and the Monte-Carlo reduction stay per-restart. The
        same fixed base samples ``Z`` are shared across all batches
        (common random numbers, as in the single-batch path).
        """
        Xb = np.asarray(Xb, dtype=np.float64)
        if Xb.ndim != 3 or Xb.shape[1] != self.q:
            raise ConfigurationError(
                f"Xb must be (r, {self.q}, d), got {Xb.shape}"
            )
        r, q, _ = Xb.shape
        post = self.gp.joint_posterior_batch(Xb)
        vals = np.empty(r, dtype=np.float64)
        mean_bar = np.zeros((r, q))
        cov_bar = np.zeros((r, q, q))
        w = -1.0 / self.n_mc
        for i in range(r):
            C, _ = jittered_cholesky(post.cov[i])
            Y = post.mean[i][None, :] + self._Z @ C.T
            j_star = np.argmin(Y, axis=1)
            improvement = self.best_f - Y[np.arange(self.n_mc), j_star]
            active = improvement > 0.0
            vals[i] = float(np.mean(np.maximum(improvement, 0.0)))
            if not np.any(active):
                continue
            idx = np.flatnonzero(active)
            js = j_star[idx]
            C_bar = np.zeros((q, q))
            np.add.at(mean_bar[i], js, w)
            np.add.at(C_bar, js, w * self._Z[idx])
            cov_bar[i] = cholesky_adjoint(C, np.tril(C_bar))
        grads = self.gp.joint_posterior_batch_backward(post, mean_bar, cov_bar)
        return vals, grads
