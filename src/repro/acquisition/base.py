"""Acquisition-function interface.

An acquisition function scores candidate points; the inner optimizer
(:func:`repro.acquisition.optimize_acqf`) *maximizes* it. Single-point
criteria implement the batched :meth:`value` plus the analytic
:meth:`value_and_grad`; multi-point criteria (qEI) score a whole
``(q, d)`` batch jointly.
"""

from __future__ import annotations

import numpy as np

from repro.util import check_matrix, check_vector


class AcquisitionFunction:
    """Base class for single-point acquisition criteria.

    Subclasses implement :meth:`value` over an ``(n, d)`` batch and, if
    an analytic gradient is available, override :meth:`value_and_grad`.
    The default gradient is central finite differences — correct but
    slow, meant only for experimental criteria.
    """

    #: set by subclasses with an analytic gradient path
    has_analytic_grad: bool = False

    #: set by subclasses whose :meth:`value_and_grad_batch` is truly
    #: vectorized — the inner optimizer only uses the batched
    #: multi-start polish when this is True (the base fallback below
    #: just loops, which would add overhead without the BLAS-3 win)
    has_batch_grad: bool = False

    def __init__(self, gp):
        self.gp = gp

    def value(self, X) -> np.ndarray:
        """Acquisition value for each row of ``X``; larger is better."""
        raise NotImplementedError

    def __call__(self, X) -> np.ndarray:
        return self.value(check_matrix(X, "X", cols=self.gp.dim))

    def value_and_grad(self, x) -> tuple[float, np.ndarray]:
        """Value and gradient at a single point ``x``.

        Default: central finite differences on :meth:`value` with a
        per-coordinate step of 1e-6 of the input scale.
        """
        x = check_vector(x, "x", dim=self.gp.dim)
        f0 = float(self.value(x[None, :])[0])
        grad = np.zeros_like(x)
        h = 1e-6
        for j in range(x.shape[0]):
            xp = x.copy()
            xp[j] += h
            xm = x.copy()
            xm[j] -= h
            grad[j] = (
                float(self.value(xp[None, :])[0]) - float(self.value(xm[None, :])[0])
            ) / (2.0 * h)
        return f0, grad

    def value_and_grad_batch(self, X) -> tuple[np.ndarray, np.ndarray]:
        """Values ``(m,)`` and gradients ``(m, d)`` for rows of ``X``.

        Default: loop over :meth:`value_and_grad`. Criteria that set
        :attr:`has_batch_grad` override this with one stacked posterior
        evaluation.
        """
        X = check_matrix(X, "X", cols=self.gp.dim)
        vals = np.empty(X.shape[0], dtype=np.float64)
        grads = np.empty_like(X)
        for i in range(X.shape[0]):
            v, g = self.value_and_grad(X[i])
            vals[i] = v
            grads[i] = g
        return vals, grads
