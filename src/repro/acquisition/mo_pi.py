"""Multi-objective probability of improvement and hypervolume.

The batch selection rule follows Yang, Li, Chen & Li (arXiv:2208.03685,
"Batched selection of probability of improvement for multi-objective
Bayesian global optimization"): independent GP posteriors per
objective, the acquisition value of a candidate is the probability
that its sampled objective vector is *not dominated* by the current
Pareto front, estimated with common-random-number Monte-Carlo samples,
and a batch is filled greedily with a distance-diversified argmax so
the q points do not collapse onto one basin.

Everything here is minimization-oriented (smaller is better in every
objective), matching the library's internal convention.
"""

from __future__ import annotations

import numpy as np

from repro.util import check_matrix


def pareto_front(F: np.ndarray) -> np.ndarray:
    """Boolean mask of the non-dominated rows of ``(n, k)`` values.

    Row i is dominated when some row j is <= everywhere and < somewhere.
    Duplicate rows keep their first occurrence only.
    """
    F = check_matrix(F, "F")
    n = F.shape[0]
    mask = np.ones(n, dtype=bool)
    for i in range(n):
        if not mask[i]:
            continue
        dominates_i = np.all(F <= F[i], axis=1) & np.any(F < F[i], axis=1)
        if np.any(dominates_i & mask):
            mask[i] = False
            continue
        # i survives: everything i dominates (or duplicates later) drops.
        dominated = np.all(F[i] <= F, axis=1) & np.any(F[i] < F, axis=1)
        mask &= ~dominated
        dup = np.all(F == F[i], axis=1)
        dup[: i + 1] = False
        mask &= ~dup
    return mask


def hypervolume(F: np.ndarray, ref: np.ndarray) -> float:
    """Exact hypervolume dominated by ``F`` w.r.t. ``ref`` (minimization).

    Slicing recursion (HSO): sort by the first objective, sweep slabs,
    and multiply each slab's width by the (k−1)-dimensional hypervolume
    of the points extending into it. Exact for any k; intended for the
    small fronts a BO run accumulates. Points not strictly better than
    ``ref`` in every objective contribute nothing.
    """
    F = np.atleast_2d(np.asarray(F, dtype=np.float64))
    ref = np.asarray(ref, dtype=np.float64).ravel()
    if F.shape[1] != ref.shape[0]:
        raise ValueError(
            f"F has {F.shape[1]} objectives but ref has {ref.shape[0]}"
        )
    F = F[np.all(F < ref, axis=1)]
    if F.shape[0] == 0:
        return 0.0
    F = F[pareto_front(F)]
    return _hv_recursive(F[np.argsort(F[:, 0])], ref)


def _hv_recursive(F: np.ndarray, ref: np.ndarray) -> float:
    """HSO inner loop; ``F`` sorted ascending by the first objective."""
    if ref.shape[0] == 1:
        return float(ref[0] - F[:, 0].min())
    total = 0.0
    n = F.shape[0]
    for i in range(n):
        upper = F[i + 1, 0] if i + 1 < n else ref[0]
        width = float(upper - F[i, 0])
        if width <= 0.0:
            continue
        slab = F[: i + 1, 1:]
        slab = slab[pareto_front(slab)]
        total += width * _hv_recursive(
            slab[np.argsort(slab[:, 0])], ref[1:]
        )
    return total


class MultiObjectivePI:
    """Batched multi-objective probability of improvement.

    Parameters
    ----------
    gps:
        One fitted GP per objective (independent posteriors).
    front:
        ``(m, k)`` current Pareto front (minimization orientation).
    base_samples:
        ``(n_mc, k)`` standard-normal draws shared across candidates
        (common random numbers: the acquisition surface is smooth in x
        and two calls with the same samples are bit-reproducible).
    """

    def __init__(
        self, gps: list, front: np.ndarray, base_samples: np.ndarray
    ):
        self.gps = list(gps)
        self.front = np.atleast_2d(np.asarray(front, dtype=np.float64))
        self.base = np.asarray(base_samples, dtype=np.float64)
        if self.base.shape[1] != len(self.gps):
            raise ValueError(
                f"base_samples has {self.base.shape[1]} columns for "
                f"{len(self.gps)} objectives"
            )

    def value(self, X: np.ndarray) -> np.ndarray:
        """P[candidate improves the front] for each of ``(n, d)`` rows.

        A Monte-Carlo draw improves the front when no front point
        dominates-or-equals it — i.e. the sampled vector would enter
        the non-dominated set. With a single objective this estimator
        converges to the classic PI against ``min(front)``.
        """
        X = np.atleast_2d(np.asarray(X, dtype=np.float64))
        k = len(self.gps)
        mu = np.empty((X.shape[0], k))
        sigma = np.empty((X.shape[0], k))
        for j, gp in enumerate(self.gps):
            m, s = gp.predict(X)
            mu[:, j] = m
            sigma[:, j] = s
        # (n, n_mc, k) posterior samples via common base draws.
        samples = mu[:, None, :] + sigma[:, None, :] * self.base[None, :, :]
        # dominated[n, n_mc]: some front point <= sample everywhere.
        dominated = np.any(
            np.all(
                self.front[None, None, :, :] <= samples[:, :, None, :],
                axis=3,
            ),
            axis=2,
        )
        return 1.0 - dominated.mean(axis=1)


def select_batch_pi(
    acq: MultiObjectivePI,
    candidates: np.ndarray,
    q: int,
    span: np.ndarray,
    *,
    diversity: float = 0.1,
) -> np.ndarray:
    """Greedy distance-diversified batch of ``q`` candidate rows.

    The first pick is the PoI argmax; later picks score each remaining
    candidate by ``PoI · min(1, d/d₀)`` where ``d`` is its normalized
    distance to the nearest already-selected point and ``d₀ =
    diversity`` — the soft spacing of Yang et al.'s batched selection
    (a candidate on top of a chosen point scores zero; beyond ``d₀``
    the PoI is unpenalized).
    """
    candidates = np.atleast_2d(candidates)
    values = acq.value(candidates)
    chosen: list[int] = []
    for _ in range(min(q, candidates.shape[0])):
        if not chosen:
            score = values
        else:
            sel = candidates[chosen]
            dist = np.min(
                np.linalg.norm(
                    (candidates[:, None, :] - sel[None, :, :]) / span,
                    axis=2,
                ),
                axis=1,
            )
            score = values * np.minimum(dist / diversity, 1.0)
            score[chosen] = -np.inf
        chosen.append(int(np.argmax(score)))
    return candidates[chosen]
