"""Deterministic qEI by Gauss–Hermite quadrature (validation oracle).

The Monte-Carlo qEI estimator is the production path (its cost scales
the way the paper measures); this module computes the same integral

    qEI = E[max(best_f − minⱼ Yⱼ, 0)],   Y ~ N(μ, Σ)

to near machine precision on a tensor Gauss–Hermite grid, for small q.
It exists to *validate* the MC estimator and its gradient in the test
suite, and as a reference implementation for exact multi-point EI
(Ginsbourger et al. derive q = 2 in closed form; quadrature covers any
small q uniformly).

Cost is O(n_nodesᵠ), so it is only sensible for q ≤ 4.
"""

from __future__ import annotations

import itertools
import math

import numpy as np

from repro.gp.linalg import jittered_cholesky
from repro.util import ConfigurationError


def qei_quadrature(
    mean,
    cov,
    best_f: float,
    n_nodes: int = 40,
) -> float:
    """Exact-to-quadrature qEI of a joint Gaussian batch.

    Parameters
    ----------
    mean, cov:
        Joint posterior moments of the batch, shapes ``(q,)`` / ``(q, q)``.
    best_f:
        Incumbent (smallest observed) objective value.
    n_nodes:
        Gauss–Hermite nodes per dimension (error decays rapidly; 40 is
        far beyond what the MC comparison needs).
    """
    mean = np.asarray(mean, dtype=np.float64).reshape(-1)
    q = mean.shape[0]
    cov = np.asarray(cov, dtype=np.float64).reshape(q, q)
    if q > 4:
        raise ConfigurationError(
            f"tensor quadrature is intended for q <= 4, got q={q}"
        )
    if n_nodes < 2:
        raise ConfigurationError(f"n_nodes must be >= 2, got {n_nodes}")

    # Physicists' Hermite nodes: x ~ N(0, 1) after scaling by sqrt(2).
    nodes, weights = np.polynomial.hermite.hermgauss(n_nodes)
    z_nodes = nodes * math.sqrt(2.0)
    w_norm = weights / math.sqrt(math.pi)

    L, _ = jittered_cholesky(cov)

    # The last coordinate is integrated in closed form (see _inner),
    # which removes the integrand's kink along that axis; only the
    # first q-1 standard normals are handled by the tensor grid. For
    # q = 1 the result is therefore the exact analytic EI.
    from scipy.stats import norm as _norm

    def _inner(m_prime: float, a: float, c: float) -> float:
        """E[max(T − min(m', Y), 0)] for Y ~ N(a, c²), T = best_f."""
        T = best_f
        if c <= 1e-300:
            return max(T - min(m_prime, a), 0.0)
        t = min(T, m_prime)
        beta = (t - a) / c
        value = (T - a) * _norm.cdf(beta) + c * _norm.pdf(beta)
        if m_prime < T:
            value += (T - m_prime) * _norm.sf((m_prime - a) / c)
        return float(value)

    if q == 1:
        return _inner(math.inf, float(mean[0]), float(L[0, 0]))

    total = 0.0
    for idx in itertools.product(range(n_nodes), repeat=q - 1):
        z = z_nodes[list(idx)]
        w = float(np.prod(w_norm[list(idx)]))
        y_head = mean[: q - 1] + L[: q - 1, : q - 1] @ z
        m_prime = float(y_head.min())
        a = float(mean[q - 1] + L[q - 1, : q - 1] @ z)
        c = float(L[q - 1, q - 1])
        total += w * _inner(m_prime, a, c)
    return total


def qei_quadrature_from_gp(gp, Xq, best_f: float, n_nodes: int = 40) -> float:
    """Convenience wrapper evaluating the oracle at GP query points."""
    post = gp.joint_posterior(np.asarray(Xq, dtype=np.float64))
    return qei_quadrature(post.mean, post.cov, best_f, n_nodes=n_nodes)
