"""Thompson sampling on a discrete candidate set.

The original TuRBO (Eriksson et al., 2019) selects its batch by drawing
joint posterior samples over a candidate cloud and taking each sample's
argmin. The paper replaces this with MC-qEI inside the trust region
(following BoTorch); this module keeps the original rule available for
the ablation bench.
"""

from __future__ import annotations

import numpy as np

from repro.gp.linalg import jittered_cholesky
from repro.util import ConfigurationError, RandomState, as_generator, check_matrix


def thompson_sample(
    gp,
    candidates,
    q: int,
    seed: RandomState = None,
) -> np.ndarray:
    """Pick ``q`` candidates by joint posterior Thompson sampling.

    Draws ``q`` independent joint samples of the latent function over
    the candidate set and returns, for each sample, the argmin row
    (duplicates are resolved by falling back to the next-best candidate
    of the same sample, so the batch always contains ``q`` distinct
    candidate rows when possible).
    """
    candidates = check_matrix(candidates, "candidates", cols=gp.dim)
    m = candidates.shape[0]
    if q < 1:
        raise ConfigurationError(f"q must be >= 1, got {q}")
    if m < q:
        raise ConfigurationError(f"need at least q={q} candidates, got {m}")
    rng = as_generator(seed)

    post = gp.joint_posterior(candidates)
    C, _ = jittered_cholesky(post.cov)
    Z = rng.standard_normal((q, m))
    samples = post.mean[None, :] + Z @ C.T  # (q, m)

    chosen: list[int] = []
    for s in range(q):
        order = np.argsort(samples[s])
        pick = next((int(i) for i in order if int(i) not in chosen), int(order[0]))
        chosen.append(pick)
    return candidates[np.asarray(chosen)]
