"""Acquisition functions and the inner optimizer (paper §2.2.2).

Single-point criteria (EI, PI, UCB, scaled EI) carry analytic spatial
gradients through the GP posterior; the Monte-Carlo multi-point qEI
uses the reparameterization trick with quasi-MC (Sobol) base samples
and a full reverse-mode gradient (no autodiff needed — see
:func:`repro.gp.linalg.cholesky_adjoint`).

Every acquisition value is defined so that **larger is better** and the
underlying objective is assumed to be **minimized**; the driver handles
the sign of maximization problems (such as the UPHES profit).
"""

from repro.acquisition.analytic import (
    ExpectedImprovement,
    ProbabilityOfImprovement,
    ScaledExpectedImprovement,
    UpperConfidenceBound,
)
from repro.acquisition.base import AcquisitionFunction
from repro.acquisition.mes import MaxValueEntropySearch, sample_min_values
from repro.acquisition.mo_pi import (
    MultiObjectivePI,
    hypervolume,
    pareto_front,
    select_batch_pi,
)
from repro.acquisition.optimize import optimize_acqf
from repro.acquisition.qei import qExpectedImprovement
from repro.acquisition.quadrature import qei_quadrature, qei_quadrature_from_gp
from repro.acquisition.thompson import thompson_sample

__all__ = [
    "AcquisitionFunction",
    "ExpectedImprovement",
    "MaxValueEntropySearch",
    "MultiObjectivePI",
    "ProbabilityOfImprovement",
    "ScaledExpectedImprovement",
    "UpperConfidenceBound",
    "hypervolume",
    "optimize_acqf",
    "pareto_front",
    "qExpectedImprovement",
    "qei_quadrature",
    "qei_quadrature_from_gp",
    "sample_min_values",
    "select_batch_pi",
    "thompson_sample",
]
