"""Max-Value Entropy Search (Wang & Jegelka, 2017).

The paper's related work classifies acquisition functions into
optimistic / improvement-based / information-based strategies and lists
MES among the information-based ones (§2.2). This implementation
completes that taxonomy in the library (the main experiments use the
improvement/optimistic criteria, per Table 3).

For a *minimized* objective, MES scores a candidate by the expected
reduction in the entropy of the optimum's *value* y★:

    α(x) = (1/K) Σₖ [ γₖ(x)·φ(γₖ(x)) / (2·Φ(γₖ(x))) − log Φ(γₖ(x)) ],
    γₖ(x) = (μ(x) − y★ₖ) / σ(x),

with K samples y★ₖ of the minimum value drawn from a Gumbel
approximation fitted to the posterior marginals over a random candidate
grid (the standard one-dimensional shortcut that makes MES cheap).
"""

from __future__ import annotations

import numpy as np
from scipy.stats import norm

from repro.acquisition.base import AcquisitionFunction
from repro.util import ConfigurationError, RandomState, as_generator

#: Clamps for numerical stability of log Φ and the γ ratio.
_MIN_STD = 1e-12
_MIN_CDF = 1e-12


def sample_min_values(
    gp,
    bounds,
    n_samples: int = 16,
    n_grid: int = 512,
    seed: RandomState = None,
) -> np.ndarray:
    """Sample plausible minimum values y★ via the Gumbel trick.

    Fits a Gumbel (minimum) distribution to the implied CDF of
    ``min_x f(x)`` over a random grid using the posterior marginals,
    matching it at the 25%/50%/75% quantiles, then draws ``n_samples``
    values. Samples are clipped to be no larger than the best posterior
    mean minus one standard deviation, so γ stays informative.
    """
    rng = as_generator(seed)
    bounds = np.asarray(bounds, dtype=np.float64)
    grid = bounds[:, 0] + rng.random((n_grid, bounds.shape[0])) * (
        bounds[:, 1] - bounds[:, 0]
    )
    mu, sigma = gp.predict(grid)
    sigma = np.maximum(sigma, _MIN_STD)

    def prob_min_above(z: float) -> float:
        # P(min f > z) = Π P(fᵢ > z) under the marginal approximation.
        return float(np.exp(np.sum(norm.logsf((z - mu) / sigma))))

    lo = float(np.min(mu - 6.0 * sigma))
    hi = float(np.min(mu))

    def quantile(p: float) -> float:
        # Find z with P(min <= z) = p by bisection.
        a, b = lo, hi
        for _ in range(60):
            m = 0.5 * (a + b)
            if 1.0 - prob_min_above(m) < p:
                a = m
            else:
                b = m
        return 0.5 * (a + b)

    q25, q50, q75 = quantile(0.25), quantile(0.5), quantile(0.75)
    # Gumbel-min: F(z) = 1 - exp(-exp((z - a) / b))
    b_scale = (q75 - q25) / max(
        np.log(np.log(4.0)) - np.log(np.log(4.0 / 3.0)), 1e-12
    )
    b_scale = max(b_scale, 1e-9)
    a_loc = q50 + b_scale * np.log(np.log(2.0))

    u = rng.random(n_samples)
    samples = a_loc - b_scale * np.log(-np.log(u))
    cap = float(np.min(mu - sigma))
    return np.minimum(samples, cap)


class MaxValueEntropySearch(AcquisitionFunction):
    """MES for a minimized objective (to be maximized).

    Parameters
    ----------
    gp:
        Fitted surrogate.
    bounds:
        Domain box (for the min-value sampling grid).
    n_min_samples / n_grid:
        Gumbel sampling configuration.
    seed:
        Seed for the grid and the Gumbel draws (fixed per instance, so
        the criterion is deterministic during its inner optimization).
    """

    def __init__(
        self,
        gp,
        bounds,
        n_min_samples: int = 16,
        n_grid: int = 512,
        seed: RandomState = None,
    ):
        super().__init__(gp)
        if n_min_samples < 1:
            raise ConfigurationError("n_min_samples must be >= 1")
        self.min_values = sample_min_values(
            gp, bounds, n_samples=n_min_samples, n_grid=n_grid, seed=seed
        )

    def value(self, X) -> np.ndarray:
        mu, sigma = self.gp.predict(X)
        sigma = np.maximum(sigma, _MIN_STD)
        # γ has shape (n, K)
        gamma = (mu[:, None] - self.min_values[None, :]) / sigma[:, None]
        cdf = np.maximum(norm.cdf(gamma), _MIN_CDF)
        pdf = norm.pdf(gamma)
        values = gamma * pdf / (2.0 * cdf) - np.log(cdf)
        return values.mean(axis=1)
