"""Analytic single-point acquisition criteria.

All criteria assume the objective is being *minimized* and return
values to be *maximized* by the inner optimizer. ``best_f`` is the best
(smallest) objective value observed so far.

Gradients chain through the GP's analytic posterior derivatives
(:meth:`repro.gp.GaussianProcess.mean_std_grad`):

- EI:  dEI = −Φ(u)·dμ + φ(u)·dσ
- PI:  dPI = φ(u)·(−dμ − u·dσ)/σ
- UCB: dα = −dμ + √β·dσ
"""

from __future__ import annotations

import math

import numpy as np
from scipy.stats import norm

from repro.acquisition.base import AcquisitionFunction
from repro.util import check_positive, check_vector

#: Below this predictive σ the point is treated as fully known.
_MIN_STD = 1e-12


class ExpectedImprovement(AcquisitionFunction):
    """EI(x) = E[max(best_f − f(x) − ξ, 0)] under the GP posterior.

    ``xi`` (ξ ≥ 0) is the optional exploration margin; the paper uses
    plain EI (ξ = 0).
    """

    has_analytic_grad = True
    has_batch_grad = True

    def __init__(self, gp, best_f: float, xi: float = 0.0):
        super().__init__(gp)
        self.best_f = float(best_f)
        if xi < 0:
            raise ValueError(f"xi must be >= 0, got {xi}")
        self.xi = float(xi)

    def value(self, X) -> np.ndarray:
        mu, sigma = self.gp.predict(X)
        improve = self.best_f - mu - self.xi
        out = np.maximum(improve, 0.0)
        mask = sigma > _MIN_STD
        u = improve[mask] / sigma[mask]
        out[mask] = sigma[mask] * (u * norm.cdf(u) + norm.pdf(u))
        return out

    def value_and_grad(self, x) -> tuple[float, np.ndarray]:
        x = check_vector(x, "x", dim=self.gp.dim)
        mu, sigma, dmu, dsigma = self.gp.mean_std_grad(x)
        improve = self.best_f - mu - self.xi
        if sigma <= _MIN_STD:
            return max(improve, 0.0), -dmu if improve > 0 else np.zeros_like(dmu)
        u = improve / sigma
        cdf = norm.cdf(u)
        pdf = norm.pdf(u)
        value = sigma * (u * cdf + pdf)
        grad = -cdf * dmu + pdf * dsigma
        return float(value), grad

    def value_and_grad_batch(self, X) -> tuple[np.ndarray, np.ndarray]:
        mu, sigma, dmu, dsigma = self.gp.mean_std_grad_batch(X)
        improve = self.best_f - mu - self.xi
        vals = np.maximum(improve, 0.0)
        grads = np.where((improve > 0)[:, None], -dmu, 0.0)
        mask = sigma > _MIN_STD
        if np.any(mask):
            u = improve[mask] / sigma[mask]
            cdf = norm.cdf(u)
            pdf = norm.pdf(u)
            vals[mask] = sigma[mask] * (u * cdf + pdf)
            grads[mask] = -cdf[:, None] * dmu[mask] + pdf[:, None] * dsigma[mask]
        return vals, grads


class ProbabilityOfImprovement(AcquisitionFunction):
    """PI(x) = P[f(x) < best_f − ξ] under the GP posterior."""

    has_analytic_grad = True
    has_batch_grad = True

    def __init__(self, gp, best_f: float, xi: float = 0.0):
        super().__init__(gp)
        self.best_f = float(best_f)
        if xi < 0:
            raise ValueError(f"xi must be >= 0, got {xi}")
        self.xi = float(xi)

    def value(self, X) -> np.ndarray:
        mu, sigma = self.gp.predict(X)
        improve = self.best_f - mu - self.xi
        out = (improve > 0).astype(np.float64)
        mask = sigma > _MIN_STD
        out[mask] = norm.cdf(improve[mask] / sigma[mask])
        return out

    def value_and_grad(self, x) -> tuple[float, np.ndarray]:
        x = check_vector(x, "x", dim=self.gp.dim)
        mu, sigma, dmu, dsigma = self.gp.mean_std_grad(x)
        improve = self.best_f - mu - self.xi
        if sigma <= _MIN_STD:
            return float(improve > 0), np.zeros_like(dmu)
        u = improve / sigma
        pdf = norm.pdf(u)
        grad = pdf * (-dmu - u * dsigma) / sigma
        return float(norm.cdf(u)), grad

    def value_and_grad_batch(self, X) -> tuple[np.ndarray, np.ndarray]:
        mu, sigma, dmu, dsigma = self.gp.mean_std_grad_batch(X)
        improve = self.best_f - mu - self.xi
        vals = (improve > 0).astype(np.float64)
        grads = np.zeros_like(dmu)
        mask = sigma > _MIN_STD
        if np.any(mask):
            u = improve[mask] / sigma[mask]
            pdf = norm.pdf(u)
            vals[mask] = norm.cdf(u)
            grads[mask] = (
                pdf[:, None]
                * (-dmu[mask] - u[:, None] * dsigma[mask])
                / sigma[mask][:, None]
            )
        return vals, grads


class UpperConfidenceBound(AcquisitionFunction):
    """GP-UCB for a minimized objective: α(x) = −μ(x) + √β·σ(x).

    This is the minimization counterpart of the classical
    ``μ + √β·σ`` (Srinivas et al., 2010) used as the complementary
    criterion of mic-q-EGO; a larger ``beta`` explores more.
    """

    has_analytic_grad = True
    has_batch_grad = True

    def __init__(self, gp, beta: float = 2.0):
        super().__init__(gp)
        self.beta = check_positive(beta, "beta")
        self._sqrt_beta = math.sqrt(self.beta)

    def value(self, X) -> np.ndarray:
        mu, sigma = self.gp.predict(X)
        return -mu + self._sqrt_beta * sigma

    def value_and_grad(self, x) -> tuple[float, np.ndarray]:
        x = check_vector(x, "x", dim=self.gp.dim)
        mu, sigma, dmu, dsigma = self.gp.mean_std_grad(x)
        return float(-mu + self._sqrt_beta * sigma), -dmu + self._sqrt_beta * dsigma

    def value_and_grad_batch(self, X) -> tuple[np.ndarray, np.ndarray]:
        mu, sigma, dmu, dsigma = self.gp.mean_std_grad_batch(X)
        return -mu + self._sqrt_beta * sigma, -dmu + self._sqrt_beta * dsigma


class ScaledExpectedImprovement(AcquisitionFunction):
    """Scaled EI (Noè & Husmeier, 2018): EI(x) / √Var[I(x)].

    Normalizing by the standard deviation of the improvement rewards
    reliable improvements over long-shot ones. The gradient falls back
    to finite differences (this criterion is provided for the
    multi-infill ablations, not the paper's main experiments).
    """

    def __init__(self, gp, best_f: float):
        super().__init__(gp)
        self.best_f = float(best_f)

    def value(self, X) -> np.ndarray:
        mu, sigma = self.gp.predict(X)
        improve = self.best_f - mu
        out = np.zeros(mu.shape[0], dtype=np.float64)
        mask = sigma > _MIN_STD
        u = improve[mask] / sigma[mask]
        cdf = norm.cdf(u)
        pdf = norm.pdf(u)
        ei = sigma[mask] * (u * cdf + pdf)
        var_imp = sigma[mask] ** 2 * ((u**2 + 1.0) * cdf + u * pdf) - ei**2
        np.maximum(var_imp, 0.0, out=var_imp)
        good = var_imp > _MIN_STD**2
        scaled = np.zeros_like(ei)
        scaled[good] = ei[good] / np.sqrt(var_imp[good])
        out[mask] = scaled
        return out
