"""Inner optimization of acquisition functions.

The paper optimizes every acquisition with multi-start L-BFGS-B
(BoTorch's ``optimize_acqf``); this module reproduces that interface
for both single-point criteria and joint ``(q, d)`` batches:

1. score a cloud of raw uniform samples with the acquisition,
2. keep the best ``n_restarts`` as starting points,
3. polish each with L-BFGS-B (analytic gradients when the criterion
   provides them, finite differences otherwise),
4. return the best polished point/batch.

All candidates are generated and clipped inside the given box, so the
returned points always satisfy the bounds.

The optimizer never raises on a sick model: non-finite acquisition
values (or a criterion that throws) demote the affected samples, failed
polish steps fall back to the best raw sample, and — when ``avoid`` is
given — a winning candidate that near-duplicates an already-evaluated
point is replaced by the best non-duplicate raw sample, or a random
in-bounds draw as the last resort. A degenerate surrogate therefore
degrades the search toward random sampling instead of crashing the run.
"""

from __future__ import annotations

import numpy as np
from scipy.optimize import minimize

from repro.obs.metrics import get_metrics
from repro.obs.tracer import trace_span
from repro.util import (
    ConfigurationError,
    RandomState,
    as_generator,
    check_bounds,
)

#: Sentinel for a failed/non-finite objective evaluation inside L-BFGS-B.
_FAILED_VALUE = 1e25

#: Span-normalized max-norm tolerance for the ``avoid`` duplicate check.
DEDUP_TOL = 1e-9


def optimize_acqf(
    acq,
    bounds,
    q: int = 1,
    n_restarts: int = 8,
    raw_samples: int = 256,
    maxiter: int = 60,
    seed: RandomState = None,
    initial_points=None,
    avoid=None,
    dedup_tol: float = DEDUP_TOL,
    batch_starts: bool = True,
) -> tuple[np.ndarray, float]:
    """Maximize an acquisition function within a box.

    Parameters
    ----------
    acq:
        For ``q == 1``: an object with ``value(X)`` over ``(n, d)``
        batches and optionally ``value_and_grad(x)``. For ``q > 1``:
        a joint criterion with ``value(Xq)`` / ``value_and_grad(Xq)``
        over ``(q, d)`` batches (e.g. :class:`qExpectedImprovement`).
    bounds:
        ``(d, 2)`` box the candidates must lie in.
    q:
        1 for single-point criteria, else the joint batch size.
    n_restarts, raw_samples, maxiter:
        Multi-start configuration.
    initial_points:
        Extra warm-start points: ``(m, d)`` for ``q == 1``, or a list
        of ``(q, d)`` batches for joint mode. Warm starts are validated
        before use — non-finite rows (a fantasy loop gone NaN) are
        dropped and out-of-box rows are clipped into the bounds.
    avoid:
        Optional ``(m, d)`` array of already-evaluated points. A
        candidate that near-duplicates one of them (span-normalized
        max-norm distance below ``dedup_tol``) wastes a parallel
        evaluation; it is replaced by the best raw sample that is not a
        duplicate, or a random in-bounds point when every sample
        duplicates.
    dedup_tol:
        Tolerance of the ``avoid`` duplicate check.
    batch_starts:
        When True (default) and the criterion advertises
        ``has_batch_grad``, all restart candidates are polished by a
        *single* L-BFGS-B run on the sum of per-start acquisition
        values — the objective is block-separable, so every iteration
        evaluates one stacked posterior call across all starts instead
        of ``n_restarts`` independent runs of BLAS-2 evaluations. The
        polished iterates differ from the per-start loop in low-order
        bits (shared line search), but the selection guarantee is
        identical: the returned value is never below the best raw
        sample. Consumes no RNG either way. Criteria without
        ``has_batch_grad`` (ScaledEI, MES, quadrature) silently keep
        the loop path.

    Returns
    -------
    (x, value):
        ``x`` has shape ``(d,)`` for ``q == 1`` and ``(q, d)`` in joint
        mode; ``value`` is the acquisition value at ``x``. When every
        acquisition evaluation is non-finite the returned value is
        ``-inf`` and ``x`` is a random in-bounds point (batch).
    """
    bounds = check_bounds(bounds)
    if q < 1:
        raise ConfigurationError(f"q must be >= 1, got {q}")
    rng = as_generator(seed)
    if avoid is not None:
        avoid = np.asarray(avoid, dtype=np.float64).reshape(-1, bounds.shape[0])
    with trace_span(
        "acq_optimize",
        q=q,
        acq=type(acq).__name__,
        n_restarts=n_restarts,
        raw_samples=raw_samples,
    ) as sp:
        if q == 1:
            x, value = _optimize_single(
                acq, bounds, n_restarts, raw_samples, maxiter, rng,
                initial_points, avoid, dedup_tol, batch_starts,
            )
        else:
            x, value = _optimize_joint(
                acq, bounds, q, n_restarts, raw_samples, maxiter, rng,
                initial_points, avoid, dedup_tol, batch_starts,
            )
        sp.set(value=float(value))
    return x, value


def _uniform(rng: np.random.Generator, n: int, bounds: np.ndarray) -> np.ndarray:
    return bounds[:, 0] + rng.random((n, bounds.shape[0])) * (
        bounds[:, 1] - bounds[:, 0]
    )


def _sanitize_warm_starts(points, bounds: np.ndarray) -> np.ndarray:
    """Validate warm starts: drop non-finite rows, clip into the box."""
    extra = np.asarray(points, dtype=np.float64).reshape(-1, bounds.shape[0])
    extra = extra[np.all(np.isfinite(extra), axis=1)]
    return np.clip(extra, bounds[:, 0], bounds[:, 1])


def _finite_values(acq, X: np.ndarray) -> np.ndarray:
    """Acquisition values over rows of ``X``; failures become ``-inf``."""
    try:
        vals = np.asarray(acq.value(X), dtype=np.float64).reshape(-1)
        if vals.shape[0] != X.shape[0]:
            return np.full(X.shape[0], -np.inf)
    except Exception:
        return np.full(X.shape[0], -np.inf)
    return np.where(np.isfinite(vals), vals, -np.inf)


def _is_duplicate(x: np.ndarray, avoid: np.ndarray, span: np.ndarray,
                  tol: float) -> bool:
    if avoid is None or avoid.size == 0:
        return False
    return bool(
        np.any(np.max(np.abs(avoid - x) / span, axis=1) < tol)
    )


def _nonduplicate_fallback(
    raw: np.ndarray,
    raw_vals: np.ndarray,
    avoid: np.ndarray,
    bounds: np.ndarray,
    rng: np.random.Generator,
    tol: float,
) -> tuple[np.ndarray, float]:
    """Best raw sample that is not a duplicate, else a random point."""
    span = np.maximum(bounds[:, 1] - bounds[:, 0], 1e-300)
    for i in np.argsort(raw_vals)[::-1]:
        if not _is_duplicate(raw[i], avoid, span, tol):
            return raw[i].copy(), float(raw_vals[i])
    x = _uniform(rng, 1, bounds)[0]
    for _ in range(32):
        if not _is_duplicate(x, avoid, span, tol):
            break
        x = _uniform(rng, 1, bounds)[0]
    return x, float("-inf")


def _use_batched_polish(acq, batch_starts: bool, n_starts: int) -> bool:
    """Batched polish needs a vectorized gradient and >1 start to pay off."""
    return (
        batch_starts
        and n_starts > 1
        and getattr(acq, "has_analytic_grad", False)
        and getattr(acq, "has_batch_grad", False)
    )


def _polish_starts_batched(acq, starts: np.ndarray, bounds: np.ndarray,
                           maxiter: int):
    """Polish all starts with one sum-objective L-BFGS-B run.

    ``starts`` is ``(r, d)`` for single-point criteria or ``(r, q, d)``
    for joint ones. The negated sum of per-start acquisition values is
    block-separable, so its minimizers coincide with the per-start
    minimizers; every objective evaluation is one batched posterior
    call. Returns the polished stack (clipped into the box) or ``None``
    when the solver itself failed — any non-finite *evaluation* inside
    the run is handled by returning the failure sentinel with a zero
    gradient, which makes the line search back off exactly like the
    per-start loop does.
    """
    shape = starts.shape
    flat_bounds = np.tile(bounds, (starts.size // bounds.shape[0], 1))

    def negated_sum(flat: np.ndarray):
        X = flat.reshape(shape)
        try:
            vals, grads = acq.value_and_grad_batch(X)
            vals = np.asarray(vals, dtype=np.float64)
            grads = np.asarray(grads, dtype=np.float64)
        except Exception:
            return _FAILED_VALUE, np.zeros_like(flat)
        if not (np.all(np.isfinite(vals)) and np.all(np.isfinite(grads))):
            return _FAILED_VALUE, np.zeros_like(flat)
        return -float(np.sum(vals)), -grads.reshape(-1)

    try:
        result = minimize(
            negated_sum,
            starts.reshape(-1),
            jac=True,
            method="L-BFGS-B",
            bounds=flat_bounds,
            options={"maxiter": maxiter},
        )
    except Exception:
        get_metrics().counter("acq.polish_failed").inc()
        return None
    if not np.all(np.isfinite(result.x)):
        return None
    get_metrics().counter("acq.batched_polish").inc()
    return np.clip(result.x.reshape(shape), bounds[:, 0], bounds[:, 1])


def _optimize_single(
    acq, bounds, n_restarts, raw_samples, maxiter, rng,
    initial_points, avoid, dedup_tol, batch_starts=True,
) -> tuple[np.ndarray, float]:
    raw = _uniform(rng, max(raw_samples, n_restarts), bounds)
    if initial_points is not None:
        extra = _sanitize_warm_starts(initial_points, bounds)
        if extra.size:
            raw = np.vstack([extra, raw])
    raw_vals = _finite_values(acq, raw)
    if not np.any(np.isfinite(raw_vals)):
        # The acquisition is unusable everywhere (NaN posterior, dead
        # criterion): degrade to a random in-bounds candidate.
        x = _uniform(rng, 1, bounds)[0]
        if avoid is not None:
            x, _ = _nonduplicate_fallback(
                raw, raw_vals, avoid, bounds, rng, dedup_tol
            )
        return x, float("-inf")
    order = np.argsort(raw_vals)[::-1]
    starts = raw[order[:n_restarts]]

    use_grad = getattr(acq, "has_analytic_grad", False)

    def negated(x: np.ndarray):
        try:
            if use_grad:
                v, g = acq.value_and_grad(x)
                if not np.isfinite(v) or not np.all(np.isfinite(g)):
                    return _FAILED_VALUE, np.zeros_like(x)
                return -v, -g
            v = float(acq.value(x[None, :])[0])
        except Exception:
            return (_FAILED_VALUE, np.zeros_like(x)) if use_grad else _FAILED_VALUE
        return -v if np.isfinite(v) else _FAILED_VALUE

    best_x = starts[0]
    best_val = float(raw_vals[order[0]])
    if _use_batched_polish(acq, batch_starts, starts.shape[0]):
        polished = _polish_starts_batched(acq, starts, bounds, maxiter)
        if polished is not None:
            pol_vals = _finite_values(acq, polished)
            i = int(np.argmax(pol_vals))
            if np.isfinite(pol_vals[i]) and pol_vals[i] > best_val:
                best_val = float(pol_vals[i])
                best_x = polished[i]
    else:
        get_metrics().counter("acq.loop_polish").inc()
        for x0 in starts:
            try:
                result = minimize(
                    negated,
                    x0,
                    jac=use_grad,
                    method="L-BFGS-B",
                    bounds=bounds,
                    options={"maxiter": maxiter},
                )
            except Exception:
                # A failed polish falls back to the raw sample; count
                # the degradation so repeated optimizer failures are
                # visible.
                get_metrics().counter("acq.polish_failed").inc()
                continue
            if (
                np.isfinite(result.fun)
                and -result.fun > best_val
                and np.all(np.isfinite(result.x))
            ):
                best_val = float(-result.fun)
                best_x = np.clip(result.x, bounds[:, 0], bounds[:, 1])
    if avoid is not None:
        span = np.maximum(bounds[:, 1] - bounds[:, 0], 1e-300)
        if _is_duplicate(best_x, avoid, span, dedup_tol):
            best_x, best_val = _nonduplicate_fallback(
                raw, raw_vals, avoid, bounds, rng, dedup_tol
            )
    return np.asarray(best_x, dtype=np.float64), best_val


def _optimize_joint(
    acq, bounds, q, n_restarts, raw_samples, maxiter, rng,
    initial_points, avoid, dedup_tol, batch_starts=True,
) -> tuple[np.ndarray, float]:
    d = bounds.shape[0]
    # Joint raw scoring is expensive: use a modest number of raw batches.
    n_raw = max(n_restarts, raw_samples // max(q, 1) // 4, 4)
    raw_batches = [_uniform(rng, q, bounds) for _ in range(n_raw)]
    if initial_points is not None:
        for batch in initial_points:
            batch = _sanitize_warm_starts(batch, bounds)
            if batch.shape[0] == q:
                raw_batches.insert(0, batch)

    def batch_value(b: np.ndarray) -> float:
        try:
            v = float(acq.value(b))
        except Exception:
            return -np.inf
        return v if np.isfinite(v) else -np.inf

    raw_vals = np.asarray([batch_value(b) for b in raw_batches])
    if not np.any(np.isfinite(raw_vals)):
        X = _uniform(rng, q, bounds)
        return _repair_batch(X, avoid, bounds, rng, dedup_tol), float("-inf")
    order = np.argsort(raw_vals)[::-1]
    starts = [raw_batches[i] for i in order[:n_restarts]]

    use_grad = getattr(acq, "has_analytic_grad", False)
    flat_bounds = np.tile(bounds, (q, 1))

    def negated(flat: np.ndarray):
        Xq = flat.reshape(q, d)
        try:
            if use_grad:
                v, g = acq.value_and_grad(Xq)
                if not np.isfinite(v) or not np.all(np.isfinite(g)):
                    return _FAILED_VALUE, np.zeros_like(flat)
                return -v, -g.reshape(-1)
            v = float(acq.value(Xq))
        except Exception:
            return (_FAILED_VALUE, np.zeros_like(flat)) if use_grad else _FAILED_VALUE
        return -v if np.isfinite(v) else _FAILED_VALUE

    best_x = starts[0]
    best_val = float(raw_vals[order[0]])
    if _use_batched_polish(acq, batch_starts, len(starts)):
        polished = _polish_starts_batched(
            acq, np.stack(starts), bounds, maxiter
        )
        if polished is not None:
            pol_vals = np.asarray([batch_value(b) for b in polished])
            i = int(np.argmax(pol_vals))
            if np.isfinite(pol_vals[i]) and pol_vals[i] > best_val:
                best_val = float(pol_vals[i])
                best_x = polished[i]
    else:
        get_metrics().counter("acq.loop_polish").inc()
        for X0 in starts:
            try:
                result = minimize(
                    negated,
                    X0.reshape(-1),
                    jac=use_grad,
                    method="L-BFGS-B",
                    bounds=flat_bounds,
                    options={"maxiter": maxiter},
                )
            except Exception:
                get_metrics().counter("acq.polish_failed").inc()
                continue
            if (
                np.isfinite(result.fun)
                and -result.fun > best_val
                and np.all(np.isfinite(result.x))
            ):
                best_val = float(-result.fun)
                best_x = np.clip(
                    result.x.reshape(q, d), bounds[:, 0], bounds[:, 1]
                )
    best_x = _repair_batch(
        np.asarray(best_x, dtype=np.float64), avoid, bounds, rng, dedup_tol
    )
    return best_x, best_val


def _repair_batch(
    X: np.ndarray, avoid, bounds: np.ndarray, rng: np.random.Generator,
    tol: float,
) -> np.ndarray:
    """Replace batch rows that duplicate an already-evaluated point.

    The reported acquisition value is the pre-repair one; repairs only
    happen on degenerate landscapes where the value carries no ranking
    information anyway.
    """
    if avoid is None or avoid.size == 0:
        return X
    span = np.maximum(bounds[:, 1] - bounds[:, 0], 1e-300)
    X = X.copy()
    for k in range(X.shape[0]):
        if not _is_duplicate(X[k], avoid, span, tol):
            continue
        x = _uniform(rng, 1, bounds)[0]
        for _ in range(32):
            if not _is_duplicate(x, avoid, span, tol):
                break
            x = _uniform(rng, 1, bounds)[0]
        X[k] = x
    return X
