"""Inner optimization of acquisition functions.

The paper optimizes every acquisition with multi-start L-BFGS-B
(BoTorch's ``optimize_acqf``); this module reproduces that interface
for both single-point criteria and joint ``(q, d)`` batches:

1. score a cloud of raw uniform samples with the acquisition,
2. keep the best ``n_restarts`` as starting points,
3. polish each with L-BFGS-B (analytic gradients when the criterion
   provides them, finite differences otherwise),
4. return the best polished point/batch.

All candidates are generated and clipped inside the given box, so the
returned points always satisfy the bounds.
"""

from __future__ import annotations

import numpy as np
from scipy.optimize import minimize

from repro.util import (
    ConfigurationError,
    RandomState,
    as_generator,
    check_bounds,
)


def optimize_acqf(
    acq,
    bounds,
    q: int = 1,
    n_restarts: int = 8,
    raw_samples: int = 256,
    maxiter: int = 60,
    seed: RandomState = None,
    initial_points=None,
) -> tuple[np.ndarray, float]:
    """Maximize an acquisition function within a box.

    Parameters
    ----------
    acq:
        For ``q == 1``: an object with ``value(X)`` over ``(n, d)``
        batches and optionally ``value_and_grad(x)``. For ``q > 1``:
        a joint criterion with ``value(Xq)`` / ``value_and_grad(Xq)``
        over ``(q, d)`` batches (e.g. :class:`qExpectedImprovement`).
    bounds:
        ``(d, 2)`` box the candidates must lie in.
    q:
        1 for single-point criteria, else the joint batch size.
    n_restarts, raw_samples, maxiter:
        Multi-start configuration.
    initial_points:
        Extra warm-start points: ``(m, d)`` for ``q == 1``, or a list
        of ``(q, d)`` batches for joint mode.

    Returns
    -------
    (x, value):
        ``x`` has shape ``(d,)`` for ``q == 1`` and ``(q, d)`` in joint
        mode; ``value`` is the acquisition value at ``x``.
    """
    bounds = check_bounds(bounds)
    if q < 1:
        raise ConfigurationError(f"q must be >= 1, got {q}")
    rng = as_generator(seed)
    if q == 1:
        return _optimize_single(
            acq, bounds, n_restarts, raw_samples, maxiter, rng, initial_points
        )
    return _optimize_joint(
        acq, bounds, q, n_restarts, raw_samples, maxiter, rng, initial_points
    )


def _uniform(rng: np.random.Generator, n: int, bounds: np.ndarray) -> np.ndarray:
    return bounds[:, 0] + rng.random((n, bounds.shape[0])) * (
        bounds[:, 1] - bounds[:, 0]
    )


def _optimize_single(
    acq, bounds, n_restarts, raw_samples, maxiter, rng, initial_points
) -> tuple[np.ndarray, float]:
    d = bounds.shape[0]
    raw = _uniform(rng, max(raw_samples, n_restarts), bounds)
    if initial_points is not None:
        extra = np.asarray(initial_points, dtype=np.float64).reshape(-1, d)
        raw = np.vstack([np.clip(extra, bounds[:, 0], bounds[:, 1]), raw])
    raw_vals = np.asarray(acq.value(raw), dtype=np.float64)
    order = np.argsort(raw_vals)[::-1]
    starts = raw[order[:n_restarts]]

    use_grad = getattr(acq, "has_analytic_grad", False)

    def negated(x: np.ndarray):
        if use_grad:
            v, g = acq.value_and_grad(x)
            return -v, -g
        return -float(acq.value(x[None, :])[0])

    best_x = starts[0]
    best_val = float(raw_vals[order[0]])
    for x0 in starts:
        result = minimize(
            negated,
            x0,
            jac=use_grad,
            method="L-BFGS-B",
            bounds=bounds,
            options={"maxiter": maxiter},
        )
        if np.isfinite(result.fun) and -result.fun > best_val:
            best_val = float(-result.fun)
            best_x = np.clip(result.x, bounds[:, 0], bounds[:, 1])
    return np.asarray(best_x, dtype=np.float64), best_val


def _optimize_joint(
    acq, bounds, q, n_restarts, raw_samples, maxiter, rng, initial_points
) -> tuple[np.ndarray, float]:
    d = bounds.shape[0]
    # Joint raw scoring is expensive: use a modest number of raw batches.
    n_raw = max(n_restarts, raw_samples // max(q, 1) // 4, 4)
    raw_batches = [_uniform(rng, q, bounds) for _ in range(n_raw)]
    if initial_points is not None:
        for batch in initial_points:
            batch = np.asarray(batch, dtype=np.float64).reshape(q, d)
            raw_batches.insert(0, np.clip(batch, bounds[:, 0], bounds[:, 1]))
    raw_vals = np.asarray([acq.value(b) for b in raw_batches])
    order = np.argsort(raw_vals)[::-1]
    starts = [raw_batches[i] for i in order[:n_restarts]]

    use_grad = getattr(acq, "has_analytic_grad", False)
    flat_bounds = np.tile(bounds, (q, 1))

    def negated(flat: np.ndarray):
        Xq = flat.reshape(q, d)
        if use_grad:
            v, g = acq.value_and_grad(Xq)
            return -v, -g.reshape(-1)
        return -float(acq.value(Xq))

    best_x = starts[0]
    best_val = float(raw_vals[order[0]])
    for X0 in starts:
        result = minimize(
            negated,
            X0.reshape(-1),
            jac=use_grad,
            method="L-BFGS-B",
            bounds=flat_bounds,
            options={"maxiter": maxiter},
        )
        if np.isfinite(result.fun) and -result.fun > best_val:
            best_val = float(-result.fun)
            best_x = np.clip(
                result.x.reshape(q, d), bounds[:, 0], bounds[:, 1]
            )
    return np.asarray(best_x, dtype=np.float64), best_val
