"""Completion-driven asynchronous optimization over a portfolio of arms.

The batch-synchronous drivers in :mod:`repro.core` idle every worker
whenever one evaluation straggles; the async driver fixed that for a
*single* acquisition strategy. This driver goes the rest of the way
(ROADMAP open item 3): the instant any worker frees,

1. the :class:`~repro.portfolio.allocator.BanditAllocator` picks which
   **arm** proposes, based on sliding-window improvement credit;
2. the chosen arm proposes one candidate on a surrogate extended with
   **fantasies** over every in-flight evaluation
   (:mod:`repro.portfolio.fantasy`: constant-liar, Kriging Believer, or
   randomized KB);
3. the candidate is dispatched immediately — no batch barrier, ever.

Completions feed improvement credit back to the proposing arm, so
workers drift toward whichever strategy is currently producing
improvement — TuRBO on the benchmarks, mic on the plant, random when
the model layer is sick — instead of committing to one method for the
whole run (the paper's "no single winner" finding, turned into a
scheduler).

Resilience wiring: every arm decision, completion, quarantine, and
degradation is journaled; the allocator's counters plus the driver RNG
are snapshotted into periodic ``portfolio_state`` events, so a killed
run's allocation sequence replays bit-identically from the journal
(same contract as PR-1 checkpoint/resume). A persistently failing arm
is quarantined by the allocator — the
:class:`~repro.core.supervision.CycleSupervisor` policy applied per arm
— while its freed slot degrades to a random in-bounds candidate, never
an idle worker or a lost evaluation.

Observability wiring: ``portfolio.dispatch`` / ``portfolio.refit``
spans, per-arm dispatch/completion/credit counters, and per-worker
busy/idle virtual-clock accounting (the PR-4 scheme), so portfolio
speedups are attributable in ``bench_portfolio.py``.
"""

from __future__ import annotations

import heapq
import time
from dataclasses import dataclass, field
from types import SimpleNamespace

import numpy as np

from repro.doe import latin_hypercube
from repro.gp import GaussianProcess
from repro.gp.safe_fit import safe_fit
from repro.obs.metrics import get_metrics
from repro.obs.tracer import trace_span
from repro.portfolio.allocator import BanditAllocator
from repro.portfolio.arms import DEFAULT_ARMS, ArmContext, make_arm
from repro.portfolio.fantasy import check_fantasy_mode, fantasy_values
from repro.util import (
    ConfigurationError,
    ModelError,
    RandomState,
    as_generator,
    capture_rng,
)

#: Inner-optimization defaults (match the async driver).
_ACQ_DEFAULTS = {"n_restarts": 4, "raw_samples": 256, "maxiter": 50}
_GP_DEFAULTS = {"n_restarts": 1, "maxiter": 50}


@dataclass
class PortfolioDispatchRecord:
    """One arm-attributed asynchronous dispatch."""

    index: int
    arm: str
    t_dispatch: float
    t_finish: float
    worker: int
    acq_time: float
    fit_time: float
    best_value: float  # running best at dispatch time (native)


@dataclass
class PortfolioResult:
    """Outcome of one portfolio run."""

    problem: str
    n_workers: int
    budget: float
    maximize: bool
    fantasy: str
    arm_names: list[str]
    best_x: np.ndarray
    best_value: float
    initial_best: float
    n_initial: int
    n_simulations: int
    elapsed: float
    busy_virtual_s: float
    idle_virtual_s: float
    arm_stats: dict = field(default_factory=dict)
    history: list[PortfolioDispatchRecord] = field(default_factory=list)

    @property
    def trajectory(self) -> np.ndarray:
        return np.asarray([rec.best_value for rec in self.history])

    @property
    def busy_share(self) -> float:
        """Fraction of worker-seconds spent simulating (vs idling)."""
        total = self.busy_virtual_s + self.idle_virtual_s
        return self.busy_virtual_s / total if total > 0 else 0.0

    @property
    def idle_share(self) -> float:
        return 1.0 - self.busy_share

    def to_dict(self) -> dict:
        """JSON-ready summary (trajectory included, per-point x omitted)."""
        return {
            "problem": self.problem,
            "n_workers": self.n_workers,
            "budget": self.budget,
            "maximize": self.maximize,
            "fantasy": self.fantasy,
            "arm_names": list(self.arm_names),
            "best_x": np.asarray(self.best_x).tolist(),
            "best_value": self.best_value,
            "initial_best": self.initial_best,
            "n_initial": self.n_initial,
            "n_simulations": self.n_simulations,
            "elapsed": self.elapsed,
            "busy_virtual_s": self.busy_virtual_s,
            "idle_virtual_s": self.idle_virtual_s,
            "busy_share": self.busy_share,
            "idle_share": self.idle_share,
            "arm_stats": self.arm_stats,
            "trajectory": self.trajectory.tolist(),
            "dispatch_arms": [rec.arm for rec in self.history],
        }


def run_portfolio_optimization(
    problem,
    n_workers: int,
    budget: float,
    *,
    arms=DEFAULT_ARMS,
    allocator_options: dict | None = None,
    fantasy: str = "kb",
    rkb_scale: float = 1.0,
    n_initial: int | None = None,
    refit_every: int = 1,
    time_scale: float = 1.0,
    seed: RandomState = None,
    gp_options: dict | None = None,
    acq_options: dict | None = None,
    max_dispatches: int = 100_000,
    journal=None,
    on_nonfinite: str = "impute",
    sim_time_fn=None,
    checkpoint_every: int = 1,
) -> PortfolioResult:
    """Completion-driven portfolio BO under a virtual wall-clock budget.

    Parameters beyond :func:`repro.core.run_async_optimization`:

    arms:
        Arm names (see :data:`repro.portfolio.arms.ARM_TYPES`) or
        pre-built :class:`~repro.portfolio.arms.Arm` instances.
    allocator_options:
        Overrides for :class:`~repro.portfolio.allocator.BanditAllocator`
        (window, rule, temperature, exploration_floor, max_sick,
        quarantine, ...).
    fantasy:
        In-flight fantasy strategy: ``kb`` | ``randomized_kb`` |
        ``constant_liar`` (:mod:`repro.portfolio.fantasy`).
    rkb_scale:
        Perturbation scale of ``randomized_kb``.
    sim_time_fn:
        Optional ``(index, worker, rng) -> seconds`` override of the
        per-simulation virtual duration (default: ``problem.sim_time``
        jittered ±5%). The completion-order permutation tests drive
        this to force arbitrary completion interleavings.
    checkpoint_every:
        Journal an allocator+RNG ``portfolio_state`` snapshot every
        this many completions (0 disables).
    """
    from repro.core.driver import NONFINITE_ACTIONS, _guard_nonfinite

    if n_workers < 1:
        raise ConfigurationError(f"n_workers must be >= 1, got {n_workers}")
    if budget <= 0:
        raise ConfigurationError(f"budget must be positive, got {budget}")
    if refit_every < 1:
        raise ConfigurationError(f"refit_every must be >= 1, got {refit_every}")
    if on_nonfinite not in NONFINITE_ACTIONS:
        raise ConfigurationError(
            f"on_nonfinite must be one of {NONFINITE_ACTIONS}, got {on_nonfinite!r}"
        )
    fantasy = check_fantasy_mode(fantasy)
    rng = as_generator(seed)
    gp_opts = {**_GP_DEFAULTS, **(gp_options or {})}
    acq_opts = {**_ACQ_DEFAULTS, **(acq_options or {})}
    sign = -1.0 if problem.maximize else 1.0
    metrics = get_metrics()

    arm_objs = [
        a if hasattr(a, "propose") else make_arm(a, problem, acq_opts)
        for a in arms
    ]
    allocator = BanditAllocator(
        [a.name for a in arm_objs], **(allocator_options or {})
    )

    n0 = n_initial if n_initial is not None else 16 * n_workers
    if journal is not None:
        journal.record(
            "run_started",
            config={
                "mode": "portfolio",
                "problem": problem.name,
                "dim": int(problem.dim),
                "sim_time": float(problem.sim_time),
                "maximize": bool(problem.maximize),
                "n_workers": int(n_workers),
                "budget": float(budget),
                "time_scale": float(time_scale),
                "seed": seed if isinstance(seed, (int, type(None))) else None,
                "n_initial": int(n0),
                "refit_every": int(refit_every),
                "on_nonfinite": on_nonfinite,
                "arms": [a.name for a in arm_objs],
                "fantasy": fantasy,
                "rkb_scale": float(rkb_scale),
            },
        )
    X = latin_hypercube(n0, problem.bounds, seed=rng)
    y_raw = sign * np.asarray(problem(X), dtype=np.float64).reshape(-1)
    X, y = _guard_nonfinite(X, y_raw, None, on_nonfinite, journal=journal)
    if y.size == 0:
        raise ConfigurationError(
            "the entire initial design evaluated non-finite; nothing to model"
        )
    if journal is not None:
        from repro.util import to_jsonable

        journal.record(
            "initial_design",
            X=to_jsonable(X),
            y_raw=to_jsonable(sign * y_raw),
            y_used=to_jsonable(sign * y),
        )
    initial_best = float(sign * np.min(y))

    def _journal_degradations(report, index: int) -> None:
        if journal is not None:
            for ev in report.events():
                journal.record("degradation", index=index, **ev)

    gp = GaussianProcess(dim=problem.dim, input_bounds=problem.bounds)
    gp, report = safe_fit(
        gp, X, y,
        n_restarts=gp_opts["n_restarts"],
        maxiter=gp_opts["maxiter"],
        seed=rng,
    )
    _journal_degradations(report, 0)

    # Event queue of running simulations:
    # (finish_time, counter, worker, x, arm_index).
    now = 0.0
    pending: list[tuple[float, int, int, np.ndarray, int]] = []
    counter = 0
    history: list[PortfolioDispatchRecord] = []
    n_done = 0

    def sim_duration(index: int, worker: int) -> float:
        if sim_time_fn is not None:
            return max(0.0, float(sim_time_fn(index, worker, rng)))
        if problem.sim_time <= 0:
            return 0.0
        return problem.sim_time * float(rng.uniform(0.95, 1.05))

    def _fantasy_model(busy: np.ndarray):
        """The surrogate extended with fantasies over in-flight points."""
        if busy.size == 0:
            return gp
        y_fant = fantasy_values(
            gp, busy, y, mode=fantasy, rng=rng, rkb_scale=rkb_scale
        )
        return gp.fantasize(busy, y_fant)

    def dispatch(worker: int) -> None:
        nonlocal now, counter
        arm_idx = allocator.select(rng)
        arm = arm_objs[arm_idx]
        with trace_span(
            "portfolio.dispatch", index=counter + 1, worker=worker,
            arm=arm.name,
        ) as sp:
            t0 = time.perf_counter()
            degraded = None
            try:
                busy = np.asarray([x for _, _, _, x, _ in pending])
                model = _fantasy_model(busy)
                ctx = ArmContext(
                    problem=problem,
                    X=X,
                    y=y,
                    model=model,
                    gp=gp,
                    best_f=float(np.min(y)),
                    in_flight=busy,
                    rng=rng,
                    acq_options=acq_opts,
                )
                x_next = np.asarray(arm.propose(ctx), dtype=np.float64).reshape(-1)
                if x_next.shape[0] != problem.dim or not np.all(
                    np.isfinite(x_next)
                ):
                    raise ModelError(
                        f"arm {arm.name!r} proposed an invalid candidate"
                    )
                x_next = np.clip(x_next, problem.lower, problem.upper)
                allocator.report_success(arm_idx)
            except Exception as exc:
                # A sick arm must not idle the freed worker: the slot
                # degrades to a random in-bounds candidate and the arm's
                # health counters absorb the failure.
                lo, hi = problem.lower, problem.upper
                x_next = lo + rng.random(problem.dim) * (hi - lo)
                degraded = f"{type(exc).__name__}: {str(exc)[:200]}"
                newly_quarantined = allocator.report_failure(arm_idx)
                if journal is not None:
                    journal.record(
                        "degradation",
                        index=counter + 1,
                        stage="portfolio",
                        kind=f"arm_failed:{arm.name}",
                        action="random_candidate",
                        detail=degraded,
                    )
                    if newly_quarantined:
                        journal.record(
                            "arm_quarantined",
                            arm=arm.name,
                            t=now,
                            rounds=allocator.quarantine,
                        )
                if metrics.enabled:
                    metrics.counter(f"portfolio.arm.{arm.name}.failures").inc()
                    if newly_quarantined:
                        metrics.counter(
                            f"portfolio.arm.{arm.name}.quarantines"
                        ).inc()
            acq_time = (time.perf_counter() - t0) * time_scale
            now += acq_time  # the master's selection blocks the timeline
            dur = sim_duration(counter + 1, worker)
            finish = now + dur
            heapq.heappush(pending, (finish, counter, worker, x_next, arm_idx))
            counter += 1
            sp.set(acq_s=acq_time, t_dispatch=now, t_finish=finish,
                   degraded=degraded is not None)
            if metrics.enabled:
                metrics.histogram("portfolio.acq_s").observe(acq_time)
                metrics.counter("portfolio.dispatches_total").inc()
                metrics.counter(f"portfolio.arm.{arm.name}.dispatches").inc()
            history.append(
                PortfolioDispatchRecord(
                    index=counter,
                    arm=arm.name,
                    t_dispatch=now,
                    t_finish=finish,
                    worker=worker,
                    acq_time=acq_time,
                    fit_time=0.0,
                    best_value=float(sign * np.min(y)),
                )
            )
            if journal is not None:
                journal.record(
                    "dispatch",
                    index=counter,
                    worker=worker,
                    arm=arm.name,
                    t_dispatch=now,
                    t_finish=finish,
                    acq_time=acq_time,
                    degraded=degraded,
                    x=x_next.tolist(),
                )

    # Fill every worker once, then steady-state: one completion -> one
    # credit update -> one (possibly deferred) refit -> one dispatch.
    for worker in range(n_workers):
        if now >= budget or counter >= max_dispatches:
            break
        dispatch(worker)

    while pending:
        finish, _, worker, x_done, arm_idx = heapq.heappop(pending)
        arm = arm_objs[arm_idx]
        now = max(now, finish)
        y_new_raw = sign * np.asarray(
            problem(x_done[None, :]), dtype=np.float64
        ).reshape(-1)
        X_new, y_new = _guard_nonfinite(
            x_done[None, :],
            y_new_raw,
            SimpleNamespace(y=y, gp=gp),
            on_nonfinite,
            journal=journal,
        )
        n_done += 1
        best_before = float(np.min(y))
        improvement = 0.0
        improved = False
        if y_new.size:
            improvement = max(0.0, best_before - float(np.min(y_new)))
            improved = improvement > 0.0
        allocator.credit(arm_idx, improvement)
        arm.observe(x_done, float(y_new[0]) if y_new.size else np.nan, improved)
        if metrics.enabled:
            metrics.counter(f"portfolio.arm.{arm.name}.completions").inc()
            if improvement > 0:
                metrics.counter(f"portfolio.arm.{arm.name}.credit").inc(
                    improvement
                )
        if journal is not None:
            journal.record(
                "completion",
                index=n_done,
                worker=worker,
                arm=arm.name,
                t=now,
                y_raw=(sign * y_new_raw).tolist(),
                y_used=(sign * y_new).tolist(),
                improvement=improvement,
            )
        if checkpoint_every and n_done % checkpoint_every == 0 and journal is not None:
            journal.record(
                "portfolio_state",
                n_done=n_done,
                allocator=allocator.get_state(),
                rng=capture_rng(rng),
            )
        if y_new.size == 0:  # on_nonfinite="drop" discarded the point
            if now < budget and counter < max_dispatches:
                dispatch(worker)
            continue
        X = np.vstack([X, X_new])
        y = np.concatenate([y, y_new])

        t0 = time.perf_counter()
        with trace_span("portfolio.refit", index=n_done, n_train=X.shape[0]):
            if n_done % refit_every == 0:
                gp, report = safe_fit(
                    gp, X, y, n_restarts=0, maxiter=gp_opts["maxiter"], seed=rng
                )
                _journal_degradations(report, n_done)
            else:
                try:
                    gp.fit(X, y, optimize=False)
                except ModelError:
                    gp, report = safe_fit(
                        gp, X, y, n_restarts=0, maxiter=gp_opts["maxiter"], seed=rng
                    )
                    _journal_degradations(report, n_done)
        fit_time = (time.perf_counter() - t0) * time_scale
        now += fit_time
        if history:
            history[-1].fit_time += fit_time

        if now < budget and counter < max_dispatches:
            dispatch(worker)

    # Per-worker busy/idle on the virtual timeline (PR-4 accounting):
    # each dispatch occupied its worker for the simulation's duration;
    # everything else of the n_workers·elapsed worker-seconds was idle
    # (waiting on the master's selection/fit or on the drain tail).
    busy_virtual = float(
        sum(rec.t_finish - rec.t_dispatch for rec in history)
    )
    idle_virtual = max(0.0, n_workers * now - busy_virtual)
    if metrics.enabled:
        metrics.counter("portfolio.busy_virtual_s").inc(busy_virtual)
        metrics.counter("portfolio.idle_virtual_s").inc(idle_virtual)

    best_idx = int(np.argmin(y))
    stats = allocator.stats()
    if journal is not None:
        journal.record(
            "run_completed",
            best_x=X[best_idx].tolist(),
            best_value=float(sign * y[best_idx]),
            n_simulations=n_done,
            elapsed=now,
            busy_virtual_s=busy_virtual,
            idle_virtual_s=idle_virtual,
            arm_stats=stats,
        )
    return PortfolioResult(
        problem=problem.name,
        n_workers=n_workers,
        budget=float(budget),
        maximize=problem.maximize,
        fantasy=fantasy,
        arm_names=[a.name for a in arm_objs],
        best_x=X[best_idx].copy(),
        best_value=float(sign * y[best_idx]),
        initial_best=initial_best,
        n_initial=n0,
        n_simulations=n_done,
        elapsed=now,
        busy_virtual_s=busy_virtual,
        idle_virtual_s=idle_virtual,
        arm_stats=stats,
        history=history,
    )
