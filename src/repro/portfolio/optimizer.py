"""The portfolio as a registry algorithm (batch ask/tell protocol).

:func:`repro.portfolio.driver.run_portfolio_optimization` is the
completion-driven home of the portfolio; this module is its adapter to
every *existing* entry point. :class:`PortfolioOptimizer` speaks the
:class:`~repro.core.base.BatchOptimizer` protocol, so

- ``make_optimizer("portfolio", ...)`` works everywhere an algorithm
  name is accepted (CLI single runs, ``run_optimization``, campaigns);
- the ask/tell service gets a **portfolio session mode** for free: a
  session created with ``algorithm="portfolio"`` serves each ask slot
  from a bandit-selected arm, with Kriging-Believer fantasies over the
  points already chosen for the batch (the engine adds its own
  fantasies over the in-flight tickets on top).

Credit assignment across the asynchronous boundary uses a proposal
ledger: each proposed point remembers its arm; ``update()`` matches
told rows back (same tolerance rule as the strict-update ledger),
credits the owning arm with the incumbent improvement, and feeds the
arm's ``observe`` hook. Rows the portfolio never proposed (the initial
design, supervisor fallbacks) simply earn nobody credit.

All of it — allocator counters, per-arm state, the pending ledger — is
covered by :meth:`get_state` / :meth:`set_state`, so session
checkpoints and PR-1 kill/resume stay bit-exact.
"""

from __future__ import annotations

import numpy as np

from repro.core.base import BatchOptimizer, Proposal, _Stopwatch
from repro.portfolio.allocator import BanditAllocator
from repro.portfolio.arms import DEFAULT_ARMS, ArmContext, make_arm
from repro.portfolio.fantasy import check_fantasy_mode, fantasy_values
from repro.util import RandomState


class PortfolioOptimizer(BatchOptimizer):
    """Bandit portfolio of acquisition arms behind the batch protocol."""

    name = "portfolio"

    def __init__(
        self,
        problem,
        n_batch: int,
        seed: RandomState = None,
        gp_options: dict | None = None,
        acq_options: dict | None = None,
        arms=DEFAULT_ARMS,
        allocator_options: dict | None = None,
        fantasy: str = "kb",
        rkb_scale: float = 1.0,
    ):
        super().__init__(problem, n_batch, seed, gp_options, acq_options)
        self.arms = [
            a if hasattr(a, "propose") else make_arm(a, problem, self.acq_options)
            for a in arms
        ]
        self.allocator = BanditAllocator(
            [a.name for a in self.arms], **(allocator_options or {})
        )
        self.fantasy = check_fantasy_mode(fantasy)
        self.rkb_scale = float(rkb_scale)
        #: Proposed-point -> arm ledger for asynchronous credit
        #: assignment: ``[{"x": [...], "arm": index}, ...]``.
        self._arm_ledger: list[dict] = []

    # ------------------------------------------------------------------
    def propose(self) -> Proposal:
        gp, fit_time = self._fit_gp()
        sw = _Stopwatch()
        batch: list[np.ndarray] = []
        chosen: list[int] = []
        with sw:
            best_f = self.best_f
            for _ in range(self.n_batch):
                arm_idx = self.allocator.select(self.rng)
                arm = self.arms[arm_idx]
                model = gp
                if batch:
                    pend = np.asarray(batch)
                    y_fant = fantasy_values(
                        gp, pend, self.y,
                        mode=self.fantasy, rng=self.rng,
                        rkb_scale=self.rkb_scale,
                    )
                    model = gp.fantasize(pend, y_fant)
                ctx = ArmContext(
                    problem=self.problem,
                    X=self.X,
                    y=self.y,
                    model=model,
                    gp=gp,
                    best_f=best_f,
                    in_flight=np.asarray(batch) if batch else
                    np.empty((0, self.problem.dim)),
                    rng=self.rng,
                    acq_options=self.acq_options,
                )
                try:
                    x = np.asarray(
                        arm.propose(ctx), dtype=np.float64
                    ).reshape(-1)
                    if x.shape[0] != self.problem.dim or not np.all(
                        np.isfinite(x)
                    ):
                        raise ValueError(
                            f"arm {arm.name!r} proposed an invalid candidate"
                        )
                    x = np.clip(x, self.problem.lower, self.problem.upper)
                    self.allocator.report_success(arm_idx)
                except Exception as exc:
                    lo, hi = self.problem.lower, self.problem.upper
                    x = lo + self.rng.random(self.problem.dim) * (hi - lo)
                    newly = self.allocator.report_failure(arm_idx)
                    self._degradations.append(
                        {
                            "stage": "portfolio",
                            "kind": f"arm_failed:{arm.name}",
                            "action": "random_candidate",
                            "detail": f"{type(exc).__name__}: {str(exc)[:200]}",
                        }
                    )
                    if newly:
                        self._degradations.append(
                            {
                                "stage": "portfolio",
                                "kind": f"arm_quarantined:{arm.name}",
                                "action": "quarantine",
                                "rounds": self.allocator.quarantine,
                            }
                        )
                x = self._dedupe(x, batch)
                batch.append(x)
                chosen.append(arm_idx)
        X = np.asarray(batch)
        for x, arm_idx in zip(X, chosen):
            self._arm_ledger.append({"x": x.copy(), "arm": int(arm_idx)})
        # A bounded ledger: points older than a few batches were either
        # told (and consumed) or abandoned by the caller.
        cap = max(64, 16 * self.n_batch)
        if len(self._arm_ledger) > cap:
            del self._arm_ledger[: len(self._arm_ledger) - cap]
        return Proposal(
            X=X,
            fit_time=fit_time,
            acq_time=sw.total,
            info={
                "arms": [self.arms[i].name for i in chosen],
                "quarantined": self.allocator.quarantined(),
            },
        )

    # -- credit assignment ----------------------------------------------
    def _after_update(self, X_new, y_new) -> None:
        span = self.problem.upper - self.problem.lower
        tol = 1e-9 * span
        # Incumbent *before* this update: self.y already includes the
        # new rows, so strip them for the baseline.
        n_new = X_new.shape[0]
        prior = self.y[:-n_new] if self.y.size > n_new else np.empty(0)
        best_before = float(np.min(prior)) if prior.size else np.inf
        for row, val in zip(X_new, y_new):
            hit = None
            for j, rec in enumerate(self._arm_ledger):
                if np.all(np.abs(rec["x"] - row) <= tol):
                    hit = j
                    break
            val = float(val)
            improvement = max(0.0, best_before - val)
            best_before = min(best_before, val)
            if hit is None:
                continue  # not a portfolio proposal (initial design, ...)
            rec = self._arm_ledger.pop(hit)
            arm_idx = rec["arm"]
            self.allocator.credit(arm_idx, improvement)
            self.arms[arm_idx].observe(row, val, improvement > 0.0)

    # -- checkpointing ---------------------------------------------------
    def get_state(self) -> dict:
        state = super().get_state()
        state["allocator"] = self.allocator.get_state()
        state["arms"] = [arm.get_state() for arm in self.arms]
        state["arm_ledger"] = [
            {"x": rec["x"].tolist(), "arm": rec["arm"]}
            for rec in self._arm_ledger
        ]
        return state

    def set_state(self, state: dict) -> None:
        super().set_state(state)
        self.allocator.set_state(state["allocator"])
        for arm, arm_state in zip(self.arms, state["arms"]):
            arm.set_state(arm_state)
        self._arm_ledger = [
            {
                "x": np.asarray(rec["x"], dtype=np.float64),
                "arm": int(rec["arm"]),
            }
            for rec in state["arm_ledger"]
        ]
