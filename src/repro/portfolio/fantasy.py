"""Fantasy strategies for in-flight evaluations.

Asynchronous proposers must condition on points that are still being
evaluated, or every freed worker would be sent to the same optimum of
the current acquisition. The classic fixes assign *fantasy* objective
values to the in-flight points and temporarily extend the surrogate's
training set with them:

``constant_liar``
    Every in-flight point "observes" the same constant (the mean of
    the real observations) — Ginsbourger's CL(mean). Cheap, model-free,
    but flattens the posterior equally everywhere.
``kb``
    Kriging Believer: the posterior mean at each in-flight point. The
    surrogate trusts itself; at large q the fantasies collapse the
    posterior variance along the believed trajectory and consecutive
    proposals crowd together.
``randomized_kb``
    Randomized Kriging Believer (cf. arXiv:2603.01470): the posterior
    mean plus a scaled joint posterior-sample perturbation,
    ``mu + scale · (f_sample - mu)``. At ``scale = 0`` this is exactly
    KB; at ``scale = 1`` each fantasy is a coherent posterior draw, so
    repeated proposals see *different* plausible futures and the
    fantasy-collapse at large q disappears (with regret guarantees in
    the reference).

All values are in the internal **minimization** orientation, like
everything below the driver boundary. Every strategy falls back to the
constant liar wherever the model prediction is unavailable or
non-finite, so a sick surrogate degrades the fantasy, never the run.
"""

from __future__ import annotations

import numpy as np

from repro.util import ConfigurationError

#: Recognized fantasy strategies.
FANTASY_MODES = ("kb", "randomized_kb", "constant_liar")


def check_fantasy_mode(mode: str) -> str:
    """Validate and normalize a fantasy-mode name."""
    mode = str(mode).strip().lower()
    if mode not in FANTASY_MODES:
        raise ConfigurationError(
            f"fantasy mode must be one of {FANTASY_MODES}, got {mode!r}"
        )
    return mode


def fantasy_values(
    gp,
    X_pend: np.ndarray,
    y_obs: np.ndarray,
    *,
    mode: str = "kb",
    rng: np.random.Generator | None = None,
    rkb_scale: float = 1.0,
) -> np.ndarray:
    """Fantasy objective values (minimization sense) for pending points.

    Parameters
    ----------
    gp:
        The last fitted surrogate, or ``None`` (forces the liar).
    X_pend:
        ``(m, d)`` in-flight points needing fantasy values.
    y_obs:
        Real observations so far; their mean is the constant liar and
        the universal fallback.
    mode:
        One of :data:`FANTASY_MODES`.
    rng:
        Generator consumed by ``randomized_kb`` (one joint posterior
        sample per call). Required for that mode; unused otherwise, so
        enabling/disabling the other modes is RNG-neutral.
    rkb_scale:
        Perturbation scale of ``randomized_kb`` (0 = plain KB,
        1 = full posterior draw).
    """
    mode = check_fantasy_mode(mode)
    X_pend = np.asarray(X_pend, dtype=np.float64)
    liar = float(np.mean(y_obs)) if np.asarray(y_obs).size else 0.0
    m = X_pend.shape[0]
    if mode == "constant_liar" or gp is None:
        return np.full(m, liar)
    try:
        mu = np.asarray(
            gp.predict(X_pend, return_std=False), dtype=np.float64
        ).reshape(-1)
    except Exception:
        return np.full(m, liar)
    mu = np.where(np.isfinite(mu), mu, liar)
    if mode == "kb":
        return mu
    # randomized_kb: mean + scaled coherent posterior-sample perturbation.
    if rng is None:
        raise ConfigurationError("randomized_kb needs an rng")
    try:
        sample = np.asarray(
            gp.sample_f(X_pend, n_samples=1, seed=rng), dtype=np.float64
        ).reshape(-1)
    except Exception:
        return mu  # degraded: plain KB, never a dead dispatch
    perturbed = mu + float(rkb_scale) * (sample - mu)
    return np.where(np.isfinite(perturbed), perturbed, mu)
