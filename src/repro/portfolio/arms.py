"""Acquisition arms: one-point proposers behind a uniform interface.

The paper's finding — TuRBO wins the synthetic benchmarks, mic-q-EGO
wins the UPHES plant, nobody wins everywhere — means the *choice of
acquisition strategy* is itself a decision problem. Each class here
wraps one of the repo's strategies as an **arm**: a stateful,
checkpointable proposer of a single candidate given the current
surrogate and the work in flight,

    ``arm.propose(ctx) -> (d,) candidate``

where :class:`ArmContext` carries everything a strategy may look at
(real data, fantasy-extended model, bounds, RNG). Arms never evaluate,
never fit, and never own an RNG stream — the caller's generator flows
through ``ctx.rng``, so a run checkpointing that one stream replays all
arms bit-exactly.

State beyond (X, y, rng) — TuRBO's trust-region counters, BSP's
partition, mic's criterion rotation — lives in :meth:`Arm.get_state` /
:meth:`Arm.set_state` JSON snapshots, mirroring
:class:`repro.core.base.BatchOptimizer` checkpointing.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.acquisition import (
    ExpectedImprovement,
    UpperConfidenceBound,
    optimize_acqf,
)
from repro.util import ConfigurationError

#: The default portfolio: the paper's strategy families plus the
#: random-search control arm.
DEFAULT_ARMS = ("kb", "mic", "turbo", "bsp", "random")


@dataclass
class ArmContext:
    """Everything an arm may condition a single proposal on.

    ``model`` is the fantasy-extended surrogate (in-flight points
    believed at their fantasy values); ``gp`` is the surrogate fitted on
    real observations only (trust-region geometry wants the real one).
    Either may be ``None`` when the model layer is degraded — every arm
    must still return a candidate.
    """

    problem: object
    X: np.ndarray  # real observations
    y: np.ndarray  # internal (minimization) orientation
    model: object | None  # fantasy-extended GP
    gp: object | None  # real-data GP
    best_f: float
    in_flight: np.ndarray  # (m, d) points being evaluated
    rng: np.random.Generator
    acq_options: dict


class Arm:
    """One acquisition strategy wrapped as a portfolio arm."""

    name = "arm"

    #: JSON-scalar attributes snapshotted by the default state methods.
    _state_attrs: tuple[str, ...] = ()

    def __init__(self, problem, acq_options: dict | None = None):
        self.problem = problem
        self.acq_options = dict(acq_options or {})

    def propose(self, ctx: ArmContext) -> np.ndarray:
        raise NotImplementedError

    def observe(self, x: np.ndarray, y: float, improved: bool) -> None:
        """One completed evaluation credited to this arm (hook)."""

    # -- checkpointing ---------------------------------------------------
    def get_state(self) -> dict:
        return {attr: getattr(self, attr) for attr in self._state_attrs}

    def set_state(self, state: dict) -> None:
        for attr in self._state_attrs:
            if attr not in state:
                raise ConfigurationError(
                    f"arm state lacks {attr!r} for {type(self).__name__}"
                )
            setattr(self, attr, state[attr])

    # -- shared helpers --------------------------------------------------
    def _random_point(self, rng) -> np.ndarray:
        lo, hi = self.problem.lower, self.problem.upper
        return lo + rng.random(self.problem.dim) * (hi - lo)

    def _maximize(self, acq, bounds, ctx, initial_points=None) -> np.ndarray:
        opts = ctx.acq_options
        x, _ = optimize_acqf(
            acq,
            bounds,
            n_restarts=opts.get("n_restarts", 4),
            raw_samples=opts.get("raw_samples", 256),
            maxiter=opts.get("maxiter", 50),
            seed=ctx.rng,
            initial_points=initial_points,
            avoid=ctx.X,
            batch_starts=opts.get("batch_starts", True),
        )
        return np.asarray(x, dtype=np.float64).reshape(-1)


class RandomArm(Arm):
    """Uniform random search: the zero-overhead control arm."""

    name = "random"

    def propose(self, ctx: ArmContext) -> np.ndarray:
        return self._random_point(ctx.rng)


class KBArm(Arm):
    """Single-point EI on the fantasy-extended model (KB-q-EGO's AP)."""

    name = "kb"

    def propose(self, ctx: ArmContext) -> np.ndarray:
        if ctx.model is None:
            return self._random_point(ctx.rng)
        acq = ExpectedImprovement(ctx.model, ctx.best_f)
        return self._maximize(acq, self.problem.bounds, ctx)


class MicArm(Arm):
    """mic-q-EGO's multi-infill rotation: EI and UCB alternate.

    The synchronous algorithm runs both criteria per fantasy update;
    asynchronously there is one proposal per call, so the arm rotates
    through the criteria across calls — same diversity, one point at a
    time. The rotation index is checkpointed.
    """

    name = "mic"
    _state_attrs = ("k",)

    def __init__(self, problem, acq_options=None, ucb_beta: float = 2.0):
        super().__init__(problem, acq_options)
        self.ucb_beta = float(ucb_beta)
        self.k = 0

    def propose(self, ctx: ArmContext) -> np.ndarray:
        if ctx.model is None:
            return self._random_point(ctx.rng)
        use_ucb = self.k % 2 == 1
        self.k += 1
        acq = (
            UpperConfidenceBound(ctx.model, beta=self.ucb_beta)
            if use_ucb
            else ExpectedImprovement(ctx.model, ctx.best_f)
        )
        best_x = ctx.X[int(np.argmin(ctx.y))]
        return self._maximize(acq, self.problem.bounds, ctx,
                              initial_points=best_x[None, :])


class TuRBOArm(Arm):
    """EI inside a private adaptive trust region (TuRBO-1 dynamics).

    The arm keeps its own success/failure counters and base length,
    updated on the completions *credited to it* — doubling on
    ``succ_tol`` consecutive improvements, halving on ``fail_tol``
    consecutive misses, resetting below ``length_min`` (a restart,
    counted). The box geometry follows the real-data GP's ARD
    lengthscales, exactly like :class:`repro.core.turbo.TuRBO`.
    """

    name = "turbo"
    _state_attrs = ("length", "n_succ", "n_fail", "n_restarts_done")

    def __init__(
        self,
        problem,
        acq_options=None,
        length_init: float = 0.8,
        length_min: float = 2.0**-7,
        length_max: float = 1.6,
        succ_tol: int = 3,
        fail_tol: int = 8,
    ):
        super().__init__(problem, acq_options)
        if not (0 < length_min < length_init <= length_max):
            raise ConfigurationError(
                "need 0 < length_min < length_init <= length_max"
            )
        self.length_init = float(length_init)
        self.length_min = float(length_min)
        self.length_max = float(length_max)
        self.succ_tol = int(succ_tol)
        self.fail_tol = int(fail_tol)
        self.length = self.length_init
        self.n_succ = 0
        self.n_fail = 0
        self.n_restarts_done = 0

    def observe(self, x, y, improved: bool) -> None:
        if improved:
            self.n_succ += 1
            self.n_fail = 0
        else:
            self.n_fail += 1
            self.n_succ = 0
        if self.n_succ >= self.succ_tol:
            self.length = min(2.0 * self.length, self.length_max)
            self.n_succ = 0
        elif self.n_fail >= self.fail_tol:
            self.length /= 2.0
            self.n_fail = 0
        if self.length < self.length_min:
            self.length = self.length_init
            self.n_succ = 0
            self.n_fail = 0
            self.n_restarts_done += 1

    def _bounds(self, gp, center: np.ndarray) -> np.ndarray:
        if gp is None:
            ls = np.ones(self.problem.dim)
        else:
            kernel = gp.kernel
            inner = getattr(kernel, "inner", kernel)
            ls = np.atleast_1d(getattr(inner, "lengthscale", np.array([1.0])))
            if ls.shape[0] != self.problem.dim:
                ls = np.full(self.problem.dim, float(ls[0]))
        weights = ls / np.exp(np.mean(np.log(ls)))
        span = self.problem.upper - self.problem.lower
        half = 0.5 * self.length * weights * span
        lo = np.maximum(center - half, self.problem.lower)
        hi = np.minimum(center + half, self.problem.upper)
        width = np.maximum(hi - lo, 1e-9 * span)
        return np.column_stack([lo, lo + width])

    def propose(self, ctx: ArmContext) -> np.ndarray:
        center = ctx.X[int(np.argmin(ctx.y))]
        bounds = self._bounds(ctx.gp, center)
        if ctx.model is None:
            lo, hi = bounds[:, 0], bounds[:, 1]
            return lo + ctx.rng.random(self.problem.dim) * (hi - lo)
        acq = ExpectedImprovement(ctx.model, ctx.best_f)
        return self._maximize(acq, bounds, ctx,
                              initial_points=center[None, :])


class BSPArm(Arm):
    """Round-robin EI over an adaptive box partition (BSP-EGO's AP).

    The domain starts split into ``n_regions`` boxes (recursive
    longest-edge bisection); each call maximizes EI inside the next box
    in rotation, so consecutive proposals explore *different*
    sub-regions without any fantasy machinery. A completion that
    improves the incumbent splits its box (intensification where
    progress happens), capped at ``max_regions`` leaves; the boxes
    always partition the domain.
    """

    name = "bsp"

    def __init__(
        self,
        problem,
        acq_options=None,
        n_regions: int = 8,
        max_regions: int = 64,
    ):
        super().__init__(problem, acq_options)
        if n_regions < 2:
            raise ConfigurationError(f"n_regions must be >= 2, got {n_regions}")
        self.max_regions = int(max_regions)
        self.cursor = 0
        self.boxes: list[np.ndarray] = [problem.bounds.copy()]
        while len(self.boxes) < int(n_regions):
            self._split(self._largest())

    def _largest(self) -> int:
        vols = [float(np.prod(b[:, 1] - b[:, 0])) for b in self.boxes]
        return int(np.argmax(vols))

    def _split(self, idx: int) -> None:
        box = self.boxes[idx]
        span = self.problem.upper - self.problem.lower
        dim = int(np.argmax((box[:, 1] - box[:, 0]) / span))
        mid = 0.5 * (box[dim, 0] + box[dim, 1])
        left, right = box.copy(), box.copy()
        left[dim, 1] = mid
        right[dim, 0] = mid
        self.boxes[idx : idx + 1] = [left, right]

    def _box_of(self, x: np.ndarray) -> int:
        for i, b in enumerate(self.boxes):
            if np.all(x >= b[:, 0]) and np.all(x <= b[:, 1]):
                return i
        return -1

    def observe(self, x, y, improved: bool) -> None:
        if improved and len(self.boxes) < self.max_regions:
            idx = self._box_of(np.asarray(x, dtype=np.float64))
            if idx >= 0:
                self._split(idx)

    def propose(self, ctx: ArmContext) -> np.ndarray:
        box = self.boxes[self.cursor % len(self.boxes)]
        self.cursor = (self.cursor + 1) % len(self.boxes)
        if ctx.model is None:
            lo, hi = box[:, 0], box[:, 1]
            return lo + ctx.rng.random(self.problem.dim) * (hi - lo)
        acq = ExpectedImprovement(ctx.model, ctx.best_f)
        return self._maximize(acq, box, ctx)

    def get_state(self) -> dict:
        return {
            "cursor": int(self.cursor),
            "boxes": [b.tolist() for b in self.boxes],
        }

    def set_state(self, state: dict) -> None:
        self.cursor = int(state["cursor"])
        self.boxes = [
            np.asarray(b, dtype=np.float64) for b in state["boxes"]
        ]


class FailingArm(Arm):
    """An arm whose every proposal raises — chaos-testing only.

    The portfolio smoke/CI injects it to prove that a persistently sick
    arm is quarantined by the allocator while the run still converges
    with zero lost evaluations.
    """

    name = "failing"

    def propose(self, ctx: ArmContext) -> np.ndarray:
        raise RuntimeError("injected arm failure (FailingArm)")


#: Name -> class for every selectable arm.
ARM_TYPES: dict[str, type[Arm]] = {
    cls.name: cls
    for cls in (KBArm, MicArm, TuRBOArm, BSPArm, RandomArm, FailingArm)
}


def make_arm(name: str, problem, acq_options: dict | None = None, **kwargs) -> Arm:
    """Instantiate an arm by name."""
    key = str(name).strip().lower()
    if key not in ARM_TYPES:
        raise ConfigurationError(
            f"unknown arm {name!r}; available: {sorted(ARM_TYPES)}"
        )
    return ARM_TYPES[key](problem, acq_options, **kwargs)
