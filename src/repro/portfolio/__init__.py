"""Completion-driven asynchronous BO with a bandit portfolio of arms.

A decision layer above every algorithm in :mod:`repro.core`, targeting
the paper's central empirical finding — no single parallel-BO method
wins everywhere — and its batch-synchronous idle time:

- :mod:`~repro.portfolio.fantasy` — fantasy strategies for in-flight
  evaluations (constant-liar, Kriging Believer, randomized KB);
- :mod:`~repro.portfolio.arms` — the existing strategies (KB, mic,
  TuRBO trust region, BSP sub-regions, random) behind one single-point
  ``propose(ctx)`` interface;
- :mod:`~repro.portfolio.allocator` — sliding-window improvement-credit
  bandit (softmax/UCB with an exploration floor, per-arm quarantine)
  deciding which arm proposes for each freed worker;
- :mod:`~repro.portfolio.driver` — the completion-driven async driver
  (no batch barrier; journal, metrics, and busy/idle accounting wired
  through the resilience and observability layers);
- :mod:`~repro.portfolio.optimizer` — the portfolio behind the batch
  ask/tell protocol, registered as algorithm ``"portfolio"`` for the
  synchronous driver and the suggestion service.
"""

from repro.portfolio.allocator import BanditAllocator
from repro.portfolio.arms import (
    ARM_TYPES,
    DEFAULT_ARMS,
    Arm,
    ArmContext,
    make_arm,
)
from repro.portfolio.driver import (
    PortfolioDispatchRecord,
    PortfolioResult,
    run_portfolio_optimization,
)
from repro.portfolio.fantasy import (
    FANTASY_MODES,
    check_fantasy_mode,
    fantasy_values,
)
from repro.portfolio.optimizer import PortfolioOptimizer

__all__ = [
    "ARM_TYPES",
    "Arm",
    "ArmContext",
    "BanditAllocator",
    "DEFAULT_ARMS",
    "FANTASY_MODES",
    "PortfolioDispatchRecord",
    "PortfolioOptimizer",
    "PortfolioResult",
    "check_fantasy_mode",
    "fantasy_values",
    "make_arm",
    "run_portfolio_optimization",
]
