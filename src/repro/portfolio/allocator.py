"""Bandit allocation of workers to acquisition arms.

Binois et al. (arXiv:2110.09334) show that at high parallelism a
*portfolio* of acquisition strategies with adaptive worker reallocation
beats any fixed strategy. :class:`BanditAllocator` is that decision
layer: every time a worker frees, it picks which arm proposes the next
candidate, based on the **improvement credit** each arm earned
recently.

Credit
    When a completion credited to arm *a* improves the incumbent by
    ``delta`` (internal orientation, clamped at 0), ``credit(a, delta)``
    appends it to the arm's sliding window. Windowed means — not
    lifetime means — so an arm that was good early but stalled loses
    its budget share, matching the reference's non-stationary setting.
Selection
    ``softmax`` (default): sample proportionally to
    ``floor/K + (1-floor) · softmax(mean_credit / temperature)``.
    ``ucb``: with probability ``floor`` explore uniformly, else the
    deterministic UCB1-style argmax over
    ``mean_credit + c · sqrt(log(t+1)/(n_a+1))``.
    The exploration floor keeps every healthy arm alive — the paper's
    "no method wins everywhere" means yesterday's loser must keep
    getting sampled cheaply.
Quarantine
    A persistently failing arm (``max_sick`` consecutive raised
    proposals) is quarantined for ``quarantine`` selection rounds —
    the :class:`repro.core.supervision.CycleSupervisor` policy applied
    per arm instead of per run.

Determinism: selection consumes exactly one uniform draw from the
caller's generator per call (none for the deterministic UCB branch
beyond the floor draw), and the full counter state is JSON-snapshotted
by :meth:`get_state` / :meth:`set_state`, so a killed-and-resumed run
replays the identical allocation sequence bit for bit.
"""

from __future__ import annotations

import math

import numpy as np

from repro.util import ConfigurationError

#: Selection rules.
RULES = ("softmax", "ucb")


class BanditAllocator:
    """Sliding-window improvement-credit bandit over named arms."""

    def __init__(
        self,
        arm_names,
        *,
        window: int = 20,
        rule: str = "softmax",
        temperature: float = 1.0,
        ucb_c: float = 1.0,
        exploration_floor: float = 0.1,
        max_sick: int = 3,
        quarantine: int = 10,
    ):
        self.arm_names = [str(n) for n in arm_names]
        if not self.arm_names:
            raise ConfigurationError("allocator needs at least one arm")
        if len(set(self.arm_names)) != len(self.arm_names):
            raise ConfigurationError(
                f"duplicate arm names: {self.arm_names}"
            )
        if rule not in RULES:
            raise ConfigurationError(
                f"rule must be one of {RULES}, got {rule!r}"
            )
        if window < 1:
            raise ConfigurationError(f"window must be >= 1, got {window}")
        if temperature <= 0:
            raise ConfigurationError(
                f"temperature must be positive, got {temperature}"
            )
        if not 0.0 <= exploration_floor <= 1.0:
            raise ConfigurationError(
                f"exploration_floor must be in [0, 1], got {exploration_floor}"
            )
        if max_sick < 1:
            raise ConfigurationError(f"max_sick must be >= 1, got {max_sick}")
        if quarantine < 0:
            raise ConfigurationError(
                f"quarantine must be >= 0, got {quarantine}"
            )
        self.window = int(window)
        self.rule = rule
        self.temperature = float(temperature)
        self.ucb_c = float(ucb_c)
        self.exploration_floor = float(exploration_floor)
        self.max_sick = int(max_sick)
        self.quarantine = int(quarantine)

        k = len(self.arm_names)
        self._credits: list[list[float]] = [[] for _ in range(k)]
        self._selections = [0] * k
        self._completions = [0] * k
        self._failures = [0] * k
        self._fail_streak = [0] * k
        self._quarantine_left = [0] * k
        self._quarantines = [0] * k
        self._total = 0

    # ------------------------------------------------------------------
    @property
    def n_arms(self) -> int:
        return len(self.arm_names)

    def index_of(self, name: str) -> int:
        try:
            return self.arm_names.index(name)
        except ValueError:
            raise ConfigurationError(
                f"unknown arm {name!r}; have {self.arm_names}"
            ) from None

    def mean_credit(self, i: int) -> float:
        win = self._credits[i]
        return float(np.mean(win)) if win else 0.0

    def active(self) -> list[int]:
        """Arms currently eligible for selection (not quarantined)."""
        return [i for i in range(self.n_arms) if self._quarantine_left[i] == 0]

    def quarantined(self) -> list[str]:
        return [
            self.arm_names[i]
            for i in range(self.n_arms)
            if self._quarantine_left[i] > 0
        ]

    # -- credit / health feedback ---------------------------------------
    def credit(self, i: int, improvement: float) -> None:
        """Record one completion's improvement credit for arm ``i``."""
        improvement = max(0.0, float(improvement))
        win = self._credits[i]
        win.append(improvement)
        if len(win) > self.window:
            del win[: len(win) - self.window]
        self._completions[i] += 1

    def report_success(self, i: int) -> None:
        """A proposal by arm ``i`` was produced without raising."""
        self._fail_streak[i] = 0

    def report_failure(self, i: int) -> bool:
        """A proposal by arm ``i`` raised; True if newly quarantined."""
        self._failures[i] += 1
        self._fail_streak[i] += 1
        if self._fail_streak[i] >= self.max_sick:
            self._fail_streak[i] = 0
            self._quarantine_left[i] = self.quarantine
            self._quarantines[i] += 1
            return self.quarantine > 0
        return False

    # -- selection -------------------------------------------------------
    def _weights(self, active: list[int]) -> np.ndarray:
        means = np.asarray([self.mean_credit(i) for i in active])
        if self.rule == "softmax":
            z = means / self.temperature
            z -= z.max()  # shift-invariant, numerically safe
            w = np.exp(z)
            return w / w.sum()
        # ucb weights are only used for the argmax.
        bonus = self.ucb_c * np.sqrt(
            math.log(self._total + 1.0)
            / (np.asarray([self._selections[i] for i in active]) + 1.0)
        )
        return means + bonus

    def select(self, rng: np.random.Generator) -> int:
        """Pick the arm that proposes for the next freed worker.

        Consumes exactly one uniform draw from ``rng``. Quarantined
        arms tick down one round per selection and are excluded; if
        every arm is quarantined the draw falls back to uniform over
        all arms (the run must never stall).
        """
        active = self.active()
        for i in range(self.n_arms):
            if self._quarantine_left[i] > 0:
                self._quarantine_left[i] -= 1
        u = float(rng.random())
        if not active:
            pick = min(int(u * self.n_arms), self.n_arms - 1)
        elif self.rule == "ucb":
            if u < self.exploration_floor:
                # Reuse the same draw for the uniform pick: rescale the
                # sub-interval [0, floor) back to [0, 1).
                v = u / self.exploration_floor
                pick = active[min(int(v * len(active)), len(active) - 1)]
            else:
                w = self._weights(active)
                pick = active[int(np.argmax(w))]
        else:
            k = len(active)
            probs = (
                self.exploration_floor / k
                + (1.0 - self.exploration_floor) * self._weights(active)
            )
            cum = np.cumsum(probs)
            idx = int(np.searchsorted(cum, u * cum[-1], side="right"))
            pick = active[min(idx, k - 1)]
        self._selections[pick] += 1
        self._total += 1
        return pick

    # -- introspection ---------------------------------------------------
    def stats(self) -> dict:
        """Per-arm counters for journals, metrics, and reports."""
        return {
            name: {
                "selections": self._selections[i],
                "completions": self._completions[i],
                "failures": self._failures[i],
                "quarantines": self._quarantines[i],
                "quarantine_left": self._quarantine_left[i],
                "mean_credit": self.mean_credit(i),
                "total_credit": float(sum(self._credits[i])),
            }
            for i, name in enumerate(self.arm_names)
        }

    # -- checkpointing ---------------------------------------------------
    def get_state(self) -> dict:
        """JSON snapshot of every counter (bit-exact on restore)."""
        return {
            "arm_names": list(self.arm_names),
            "credits": [list(map(float, w)) for w in self._credits],
            "selections": list(self._selections),
            "completions": list(self._completions),
            "failures": list(self._failures),
            "fail_streak": list(self._fail_streak),
            "quarantine_left": list(self._quarantine_left),
            "quarantines": list(self._quarantines),
            "total": self._total,
        }

    def set_state(self, state: dict) -> None:
        if list(state["arm_names"]) != self.arm_names:
            raise ConfigurationError(
                f"allocator state is for arms {state['arm_names']}, "
                f"this allocator has {self.arm_names}"
            )
        self._credits = [list(map(float, w)) for w in state["credits"]]
        self._selections = [int(v) for v in state["selections"]]
        self._completions = [int(v) for v in state["completions"]]
        self._failures = [int(v) for v in state["failures"]]
        self._fail_streak = [int(v) for v in state["fail_streak"]]
        self._quarantine_left = [int(v) for v in state["quarantine_left"]]
        self._quarantines = [int(v) for v in state["quarantines"]]
        self._total = int(state["total"])
