"""Counters, gauges, and histograms with streaming quantiles.

The metrics layer complements :mod:`repro.obs.tracer`: spans answer
"where did *this* cycle's time go", metrics answer "what do the
distributions look like over the whole run" — degradation counts,
per-phase duration quantiles, worker busy/idle totals.

:class:`StreamingQuantiles` is the windowed quantile estimator shared
with the executor's adaptive timeouts
(:class:`repro.parallel.supervision.RuntimeQuantiles` delegates to it),
so the observability layer and the supervision layer agree on what "the
p95 runtime" means.

Like the tracer, the metrics registry defaults to a shared null object:
instrumented code calls :func:`get_metrics` unconditionally and pays
one global read plus a no-op method call when metrics are off.
"""

from __future__ import annotations

import threading

import numpy as np

from repro.util import ConfigurationError


class StreamingQuantiles:
    """Windowed streaming quantile estimator over a scalar stream.

    Keeps the ``window`` most recent observations and computes exact
    quantiles over that window with :func:`numpy.quantile` (linear
    interpolation — the property suite pins the agreement). A bounded
    window makes the estimate track drift and caps memory; with the
    default window of 4096 the cost per query is microseconds at the
    call rates of a BO loop (a handful of observations per cycle).
    """

    def __init__(self, window: int = 4096):
        if window < 1:
            raise ConfigurationError(f"window must be >= 1, got {window}")
        self.window = int(window)
        self._obs: list[float] = []
        self.n_total = 0  # observations ever seen, window included

    def __len__(self) -> int:
        return len(self._obs)

    def observe(self, value: float) -> None:
        """Add one observation (most recent end of the window)."""
        value = float(value)
        if not np.isfinite(value):
            raise ConfigurationError(f"observation must be finite, got {value}")
        self._obs.append(value)
        self.n_total += 1
        if len(self._obs) > self.window:
            del self._obs[: len(self._obs) - self.window]

    def quantile(self, q) -> float | np.ndarray | None:
        """Quantile(s) over the current window; None before any data."""
        if not self._obs:
            return None
        result = np.quantile(np.asarray(self._obs, dtype=np.float64), q)
        return float(result) if np.isscalar(q) else result

    def snapshot(self) -> dict:
        """JSON-friendly summary of the window."""
        if not self._obs:
            return {"count": 0}
        arr = np.asarray(self._obs, dtype=np.float64)
        q = np.quantile(arr, [0.5, 0.9, 0.95, 0.99])
        return {
            "count": int(self.n_total),
            "window": int(arr.size),
            "min": float(arr.min()),
            "max": float(arr.max()),
            "mean": float(arr.mean()),
            "p50": float(q[0]),
            "p90": float(q[1]),
            "p95": float(q[2]),
            "p99": float(q[3]),
        }


class Counter:
    """Monotonically increasing count (events, degradations, retries)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        amount = float(amount)
        if amount < 0:
            raise ConfigurationError(
                f"counter {self.name!r} cannot decrease (amount={amount})"
            )
        self.value += amount

    def snapshot(self) -> dict:
        return {"value": self.value}


class Gauge:
    """Last-written value (alive workers, current batch size)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value: float | None = None

    def set(self, value: float) -> None:
        self.value = float(value)

    def snapshot(self) -> dict:
        return {"value": self.value}


class Histogram:
    """Distribution of observed values with streaming quantiles.

    Tracks exact running ``count``/``sum``/``min``/``max`` over the
    whole stream plus windowed quantiles via
    :class:`StreamingQuantiles`.
    """

    __slots__ = ("name", "sum", "min", "max", "quantiles")

    def __init__(self, name: str, window: int = 4096):
        self.name = name
        self.sum = 0.0
        self.min: float | None = None
        self.max: float | None = None
        self.quantiles = StreamingQuantiles(window=window)

    @property
    def count(self) -> int:
        return self.quantiles.n_total

    def observe(self, value: float) -> None:
        value = float(value)
        self.quantiles.observe(value)  # validates finiteness
        self.sum += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)

    def quantile(self, q) -> float | np.ndarray | None:
        return self.quantiles.quantile(q)

    def snapshot(self) -> dict:
        snap = self.quantiles.snapshot()
        snap["sum"] = self.sum
        if self.min is not None:
            snap["min"] = self.min  # whole-stream extrema, not windowed
            snap["max"] = self.max
        return snap


class MetricsRegistry:
    """Named metric instruments, created on first use.

    A name is bound to one instrument kind for the registry's lifetime;
    asking for the same name with a different kind is a bug and raises.

    The registry is shared across the threaded HTTP server's request
    handlers, so instrument creation is serialized under a lock —
    without it, two threads racing ``counter(name)`` on a fresh name
    each build their own instrument and one thread's increments are
    silently lost when the dict write is overwritten.
    """

    enabled = True

    def __init__(self, histogram_window: int = 4096):
        self.histogram_window = int(histogram_window)
        self._lock = threading.Lock()
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}  # guarded-by: self._lock

    def _get(self, name: str, cls, **kwargs):
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = cls(name, **kwargs)
                self._metrics[name] = metric
            elif not isinstance(metric, cls):
                raise ConfigurationError(
                    f"metric {name!r} already exists as "
                    f"{type(metric).__name__}, not {cls.__name__}"
                )
            return metric

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get(name, Histogram, window=self.histogram_window)

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._metrics)

    def snapshot(self) -> dict:
        """JSON-friendly snapshot of every instrument."""
        with self._lock:
            instruments = sorted(self._metrics.items())
        return {
            name: {
                "kind": type(metric).__name__.lower(),
                **metric.snapshot(),
            }
            for name, metric in instruments
        }

    def clear(self) -> None:
        with self._lock:
            self._metrics = {}


def merge_snapshots(snapshots) -> dict:
    """Merge per-process registry snapshots into one fleet-level view.

    The fleet router aggregates ``GET /metrics`` across shards with
    this: counters and histogram ``count``/``sum`` add up exactly,
    extrema combine exactly, gauges add (they count resources — alive
    workers, resident sessions). Quantiles of distributed histograms
    cannot be merged exactly from summaries, so the merged ``p50`` is
    the count-weighted mean of the shard medians and the merged ``p99``
    is the worst shard's p99 — a conservative upper bound, which is the
    honest direction for a latency SLO.
    """
    merged: dict[str, dict] = {}
    for snap in snapshots:
        for name, entry in (snap or {}).items():
            kind = entry.get("kind")
            out = merged.setdefault(name, {"kind": kind, "shards": 0})
            if out["kind"] != kind:
                raise ConfigurationError(
                    f"metric {name!r} has conflicting kinds across shards: "
                    f"{out['kind']!r} vs {kind!r}"
                )
            out["shards"] += 1
            if kind == "counter":
                out["value"] = out.get("value", 0.0) + float(entry["value"])
            elif kind == "gauge":
                if entry.get("value") is not None:
                    out["value"] = out.get("value") or 0.0
                    out["value"] += float(entry["value"])
                else:
                    out.setdefault("value", None)
            elif kind == "histogram":
                n = int(entry.get("count", 0))
                out["count"] = out.get("count", 0) + n
                out["sum"] = out.get("sum", 0.0) + float(entry.get("sum", 0.0))
                for key, pick in (("min", min), ("max", max)):
                    if entry.get(key) is not None:
                        prev = out.get(key)
                        out[key] = (
                            entry[key]
                            if prev is None
                            else pick(prev, entry[key])
                        )
                if n and entry.get("p50") is not None:
                    w = out.setdefault("_w", 0)
                    p50 = out.get("p50") or 0.0
                    out["p50"] = (p50 * w + float(entry["p50"]) * n) / (w + n)
                    out["_w"] = w + n
                    out["p99"] = max(
                        out.get("p99", float(entry["p99"])), float(entry["p99"])
                    )
    for entry in merged.values():
        entry.pop("_w", None)
        if entry.get("kind") == "histogram" and entry.get("count"):
            entry["mean"] = entry["sum"] / entry["count"]
    return merged


class _NullInstrument:
    """Shared no-op counter/gauge/histogram for disabled metrics."""

    __slots__ = ()
    count = 0
    value = None

    def inc(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def quantile(self, q):
        return None

    def snapshot(self) -> dict:
        return {}


_NULL_INSTRUMENT = _NullInstrument()


class NullMetrics:
    """Disabled registry: every instrument is the shared no-op one."""

    enabled = False

    def counter(self, name: str) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def gauge(self, name: str) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def histogram(self, name: str) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def names(self) -> list:
        return []

    def snapshot(self) -> dict:
        return {}

    def clear(self) -> None:
        pass


#: The one shared disabled registry.
NULL_METRICS = NullMetrics()

_metrics: MetricsRegistry | NullMetrics = NULL_METRICS


def get_metrics() -> MetricsRegistry | NullMetrics:
    """The installed metrics registry (the shared null one by default)."""
    return _metrics


def set_metrics(
    registry: MetricsRegistry | NullMetrics | None,
) -> MetricsRegistry | NullMetrics:
    """Install a registry process-wide; ``None`` disables metrics.

    Returns the previously installed registry for restoration.
    """
    global _metrics
    previous = _metrics
    _metrics = registry if registry is not None else NULL_METRICS
    return previous
