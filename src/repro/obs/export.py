"""Trace/metrics export: JSONL traces, per-phase summaries, reports.

One traced run exports three artefacts:

- a **JSONL trace** (:func:`write_trace_jsonl`): one span per line,
  wall- and virtual-clock intervals, parent links, and the ``cycle`` /
  ``index`` attributes that correlate spans 1:1 with the run journal's
  ``cycle`` / ``dispatch`` events (PR-1 schema) — ``grep '"cycle": 7'``
  across both files reconstructs everything that happened in cycle 7;
- a **per-phase summary** (:func:`phase_summary` →
  :func:`summary_markdown` / :func:`summary_csv`): per span name, the
  count and total/mean/median/p95 wall seconds, the quantity behind the
  paper's overhead-vs-simulation breaking point;
- a **per-cycle breakdown** (:func:`cycle_breakdown`): for each cycle,
  wall seconds spent in fit / acquisition / fantasy updates /
  evaluation / checkpointing.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.obs.tracer import Span, Tracer

#: Phases reported by :func:`cycle_breakdown`, in display order.
CYCLE_PHASES = (
    "fit",
    "acq_optimize",
    "fantasy_update",
    "evaluate",
    "checkpoint",
)

#: Trace file schema version (independent of the journal's).
TRACE_SCHEMA_VERSION = 1


def span_to_dict(span: Span) -> dict:
    """One span as the JSON object written to the trace file."""
    record: dict = {
        "span": span.name,
        "id": span.id,
        "parent": span.parent_id,
        "t_wall": span.t_wall,
        "wall_s": span.wall_duration,
    }
    if span.t_virtual is not None:
        record["t_virtual"] = span.t_virtual
        if span.t_virtual_end is not None:
            record["virtual_s"] = span.t_virtual_end - span.t_virtual
    if span.attrs:
        record.update(span.attrs)
    return record


def write_trace_jsonl(tracer: Tracer, path: str | Path) -> Path:
    """Write every completed span as one JSON line; returns the path.

    The first line is a ``trace_header`` carrying the schema version
    and drop counter, so a reader can detect truncated collection. The
    file is written atomically (temp sibling + ``os.replace``), so a
    run killed mid-export leaves the previous trace intact rather than
    a torn one.
    """
    from repro.resilience.atomic import atomic_write_text

    path = Path(path)
    header = {
        "span": "trace_header",
        "schema": TRACE_SCHEMA_VERSION,
        "n_spans": len(tracer.spans),
        "n_dropped": tracer.n_dropped,
    }
    lines = [json.dumps(header)]
    lines.extend(json.dumps(span_to_dict(span)) for span in tracer.spans)
    atomic_write_text(path, "\n".join(lines) + "\n", fsync=False)
    return path


def read_trace(path: str | Path) -> list[dict]:
    """Read a JSONL trace back into span dictionaries (header dropped)."""
    records = []
    with open(path, encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return [r for r in records if r.get("span") != "trace_header"]


# ----------------------------------------------------------------------
# Aggregation
# ----------------------------------------------------------------------
def phase_summary(spans) -> dict[str, dict]:
    """Per span-name wall-clock statistics.

    Accepts :class:`Span` objects or trace dictionaries. Returns
    ``{name: {count, total_s, mean_s, median_s, p95_s, max_s}}``
    ordered by descending total.
    """
    durations: dict[str, list[float]] = {}
    for span in spans:
        if isinstance(span, dict):
            name, dur = span.get("span"), float(span.get("wall_s", 0.0))
        else:
            name, dur = span.name, span.wall_duration
        durations.setdefault(name, []).append(dur)
    summary = {}
    for name, vals in durations.items():
        arr = np.asarray(vals, dtype=np.float64)
        summary[name] = {
            "count": int(arr.size),
            "total_s": float(arr.sum()),
            "mean_s": float(arr.mean()),
            "median_s": float(np.median(arr)),
            "p95_s": float(np.quantile(arr, 0.95)),
            "max_s": float(arr.max()),
        }
    return dict(
        sorted(summary.items(), key=lambda kv: kv[1]["total_s"], reverse=True)
    )


def _span_fields(span) -> tuple[str, float, dict, int | None, int | None]:
    """``(name, wall_s, attrs, id, parent)`` for a Span or trace dict."""
    if isinstance(span, dict):
        return (
            span.get("span"),
            float(span.get("wall_s", 0.0)),
            span,
            span.get("id"),
            span.get("parent"),
        )
    return span.name, span.wall_duration, span.attrs, span.id, span.parent_id


def cycle_breakdown(spans, phases=CYCLE_PHASES) -> list[dict]:
    """Wall seconds per phase for each journal-correlated cycle.

    A phase span that does not carry a ``cycle`` attribute itself
    (``gp_fit`` nested under ``fit`` nested under ``cycle``) inherits
    it from its nearest ancestor; async traces use the ``index``
    attribute as the key instead. Spans correlatable to no cycle are
    skipped. Returns one row per cycle, sorted by cycle id, with a
    ``cycle`` key plus one ``<phase>_s`` key per requested phase.
    """
    parsed = [_span_fields(s) for s in spans]
    by_id = {sid: (attrs, parent) for _, _, attrs, sid, parent in parsed
             if sid is not None}

    def resolve_key(attrs: dict, parent: int | None):
        for _ in range(64):  # ancestry is shallow; bound it anyway
            key = attrs.get("cycle", attrs.get("index"))
            if key is not None:
                return key
            if parent is None or parent not in by_id:
                return None
            attrs, parent = by_id[parent]
        return None

    table: dict[int, dict[str, float]] = {}
    for name, dur, attrs, _, parent in parsed:
        if name not in phases:
            continue
        key = resolve_key(attrs, parent)
        if key is None:
            continue
        row = table.setdefault(int(key), {f"{p}_s": 0.0 for p in phases})
        row[f"{name}_s"] += dur
    return [
        {"cycle": cycle, **row} for cycle, row in sorted(table.items())
    ]


# ----------------------------------------------------------------------
# Renderers
# ----------------------------------------------------------------------
def summary_markdown(summary: dict[str, dict], title: str = "Per-phase wall time") -> str:
    """Render a :func:`phase_summary` as a markdown table."""
    lines = [
        f"### {title}",
        "",
        "| phase | count | total [s] | mean [s] | median [s] | p95 [s] |",
        "|---|---:|---:|---:|---:|---:|",
    ]
    for name, row in summary.items():
        lines.append(
            f"| {name} | {row['count']} | {row['total_s']:.4f} "
            f"| {row['mean_s']:.4f} | {row['median_s']:.4f} "
            f"| {row['p95_s']:.4f} |"
        )
    return "\n".join(lines)


def summary_csv(summary: dict[str, dict]) -> str:
    """Render a :func:`phase_summary` as CSV text."""
    lines = ["phase,count,total_s,mean_s,median_s,p95_s,max_s"]
    for name, row in summary.items():
        lines.append(
            f"{name},{row['count']},{row['total_s']:.9f},{row['mean_s']:.9f},"
            f"{row['median_s']:.9f},{row['p95_s']:.9f},{row['max_s']:.9f}"
        )
    return "\n".join(lines)


def breakdown_csv(rows: list[dict], phases=CYCLE_PHASES) -> str:
    """Render a :func:`cycle_breakdown` as CSV text."""
    cols = ["cycle"] + [f"{p}_s" for p in phases]
    lines = [",".join(cols)]
    for row in rows:
        lines.append(
            ",".join(
                str(row["cycle"]) if c == "cycle" else f"{row.get(c, 0.0):.9f}"
                for c in cols
            )
        )
    return "\n".join(lines)


def correlate_with_journal(spans, journal_events: list[dict]) -> dict[int, dict]:
    """Join trace spans with journal ``cycle`` events on the cycle id.

    Returns ``{cycle: {"journal": <event>, "phases": {name: wall_s}}}``
    for every cycle present in *both* sources — the cross-check that
    the trace and the journal describe the same run.
    """
    by_cycle: dict[int, dict[str, float]] = {}
    for row in cycle_breakdown(spans):
        by_cycle[row["cycle"]] = {
            k[: -len("_s")]: v for k, v in row.items() if k != "cycle"
        }
    joined = {}
    for event in journal_events:
        if event.get("event") != "cycle":
            continue
        cycle = int(event["cycle"])
        if cycle in by_cycle:
            joined[cycle] = {"journal": event, "phases": by_cycle[cycle]}
    return joined
