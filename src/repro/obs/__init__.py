"""``repro.obs`` — tracing, metrics, and per-cycle profiling.

The observability layer of the PBO stack (DESIGN §10):

- :mod:`repro.obs.tracer` — nested spans over every phase of the BO
  loop (``fit`` / ``acq_optimize`` / ``fantasy_update`` / ``evaluate``
  / ``checkpoint`` …), with wall- and virtual-clock timestamps and a
  strict no-op fast path when disabled;
- :mod:`repro.obs.metrics` — counters / gauges / histograms with
  streaming quantiles (shared with the executor's adaptive timeouts);
- :mod:`repro.obs.export` — JSONL traces correlated to the run journal
  by cycle id, plus per-phase summary tables (markdown / CSV).

Everything is off by default and costs one global read per call site;
enable with::

    from repro import obs
    obs.set_tracer(obs.Tracer())
    obs.set_metrics(obs.MetricsRegistry())

or, from the CLI, ``--trace trace.jsonl --metrics-out metrics.json``.
Instrumentation never touches any RNG stream: journals and checkpoints
are bit-identical with tracing on or off (pinned by
``tests/test_golden_traces.py``).
"""

from repro.obs.export import (
    CYCLE_PHASES,
    breakdown_csv,
    correlate_with_journal,
    cycle_breakdown,
    phase_summary,
    read_trace,
    span_to_dict,
    summary_csv,
    summary_markdown,
    write_trace_jsonl,
)
from repro.obs.metrics import (
    NULL_METRICS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullMetrics,
    StreamingQuantiles,
    get_metrics,
    merge_snapshots,
    set_metrics,
)
from repro.obs.tracer import (
    NOOP_SPAN,
    NULL_TRACER,
    SPAN_NAMES,
    NullTracer,
    Span,
    Tracer,
    get_tracer,
    set_tracer,
    trace_event,
    trace_span,
)

__all__ = [
    "CYCLE_PHASES",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NOOP_SPAN",
    "NULL_METRICS",
    "NULL_TRACER",
    "NullMetrics",
    "NullTracer",
    "SPAN_NAMES",
    "Span",
    "StreamingQuantiles",
    "Tracer",
    "breakdown_csv",
    "correlate_with_journal",
    "cycle_breakdown",
    "get_metrics",
    "get_tracer",
    "merge_snapshots",
    "phase_summary",
    "read_trace",
    "set_metrics",
    "set_tracer",
    "span_to_dict",
    "summary_csv",
    "summary_markdown",
    "trace_event",
    "trace_span",
    "write_trace_jsonl",
]
