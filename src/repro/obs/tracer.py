"""Nested-span tracing for the BO loop, with a strict no-op fast path.

The paper's breaking point is a *wall-clock* phenomenon: past a problem-
dependent scale, the master's fit + acquisition overhead outweighs what
parallel evaluation buys back (Fig. 9). Seeing that requires knowing
where each cycle's time goes — surrogate fit, acquisition optimization,
fantasy updates, batch evaluation, checkpointing, worker idle — which
is exactly what these spans record.

Design constraints, in order of importance:

1. **Disabled tracing must cost (almost) nothing and change nothing.**
   The instrumented call sites run inside every cycle of every
   algorithm; when no tracer is installed they execute one global read
   and receive a shared, allocation-free no-op span. No RNG is ever
   touched, so journals and checkpoints are bit-identical with tracing
   on, off, or absent (the golden-trace suite pins this).
2. **Dual timestamps.** Every span carries wall-clock interval(s) from
   ``time.perf_counter`` and, when a :class:`~repro.parallel.clock.Clock`
   is attached, the virtual-clock interval — so a trace can be
   correlated 1:1 with the run journal's virtual timeline.
3. **Deterministic identity.** Span ids are sequential integers, parent
   links come from an explicit stack; two traced runs of the same
   seeded experiment produce structurally identical traces (only the
   wall-clock durations differ).

Usage::

    from repro.obs import Tracer, set_tracer, trace_span

    set_tracer(Tracer())                  # enable
    with trace_span("fit", cycle=3, n_train=128) as sp:
        ...
        sp.set(mll=-12.3)                 # attach results
    spans = get_tracer().spans            # -> repro.obs.export
"""

from __future__ import annotations

import time

from repro.util import ConfigurationError

#: Span names used by the built-in instrumentation (the span taxonomy;
#: see DESIGN §10). Call sites are free to add their own names.
SPAN_NAMES = (
    "cycle",          # one fit/acquire/evaluate cycle (driver)
    "propose",        # supervised acquisition step (driver)
    "fit",            # surrogate fit, optimizer level (core.base)
    "safe_fit",       # self-healing fit ladder (gp.safe_fit)
    "gp_fit",         # one raw GP fit (gp.GaussianProcess.fit)
    "acq_optimize",   # one inner acquisition optimization
    "fantasy_update", # one Kriging-Believer fantasy extension
    "fantasy_downdate",  # one fantasy rollback (gp.defantasize_)
    "evaluate",       # batch evaluation on the (simulated) cluster
    "checkpoint",     # journal write incl. optimizer state snapshot
    "dispatch",       # async driver: one candidate selection
    "refit",          # async driver: model update on completion
    "executor",       # real-executor batch evaluation
)


class Span:
    """One traced interval; also usable as a context manager.

    Attributes are plain JSON-friendly values supplied at creation via
    keyword arguments or later via :meth:`set`. ``t_virtual`` /
    ``t_virtual_end`` stay ``None`` unless the owning tracer has a
    clock attached.
    """

    __slots__ = (
        "id",
        "name",
        "parent_id",
        "t_wall",
        "t_wall_end",
        "t_virtual",
        "t_virtual_end",
        "attrs",
        "_tracer",
    )

    def __init__(self, tracer: "Tracer", span_id: int, name: str,
                 parent_id: int | None, attrs: dict):
        self.id = span_id
        self.name = name
        self.parent_id = parent_id
        self.attrs = attrs
        self._tracer = tracer
        self.t_wall = 0.0
        self.t_wall_end: float | None = None
        self.t_virtual: float | None = None
        self.t_virtual_end: float | None = None

    @property
    def wall_duration(self) -> float:
        """Wall seconds between enter and exit (0 while open)."""
        if self.t_wall_end is None:
            return 0.0
        return self.t_wall_end - self.t_wall

    @property
    def virtual_duration(self) -> float | None:
        """Virtual seconds covered by the span, if a clock was attached."""
        if self.t_virtual is None or self.t_virtual_end is None:
            return None
        return self.t_virtual_end - self.t_virtual

    def set(self, **attrs) -> "Span":
        """Attach/overwrite attributes; chainable."""
        self.attrs.update(attrs)
        return self

    def event(self, name: str, **attrs) -> "Span":
        """Record a point-in-time child event under this span."""
        self._tracer.event(name, **attrs)
        return self

    def __enter__(self) -> "Span":
        self._tracer._enter(self)
        return self

    def __exit__(self, *exc) -> bool:
        self._tracer._exit(self)
        return False

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Span({self.name!r}, id={self.id}, parent={self.parent_id}, "
            f"wall={self.wall_duration:.6f}s)"
        )


class _NoopSpan:
    """The shared do-nothing span handed out when tracing is off.

    Every method returns ``self`` so chained calls stay no-ops; entering
    and exiting allocates nothing. A single module-level instance backs
    every disabled call site.
    """

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False

    def set(self, **attrs):
        return self

    def event(self, name, **attrs):
        return self


#: The one no-op span shared by every disabled call site.
NOOP_SPAN = _NoopSpan()


class Tracer:
    """Collects nested :class:`Span` records for one run.

    Parameters
    ----------
    clock:
        Optional :class:`~repro.parallel.clock.Clock`; when attached
        (possibly later, via :meth:`attach_clock` — the driver does so
        at run start), every span also records virtual-clock
        timestamps.
    max_spans:
        Safety cap: beyond it, new spans are still timed and returned
        (so call sites never special-case) but not retained. Prevents a
        forgotten long campaign from exhausting memory.
    """

    enabled = True

    def __init__(self, clock=None, max_spans: int = 1_000_000):
        if max_spans < 1:
            raise ConfigurationError(f"max_spans must be >= 1, got {max_spans}")
        self.clock = clock
        self.max_spans = int(max_spans)
        self.spans: list[Span] = []
        self.n_dropped = 0
        self._next_id = 0
        self._stack: list[Span] = []

    # -- plumbing -------------------------------------------------------
    def attach_clock(self, clock) -> None:
        """Install the virtual clock spans read their second timeline from."""
        self.clock = clock

    @property
    def current(self) -> Span | None:
        """The innermost open span, or None at top level."""
        return self._stack[-1] if self._stack else None

    def span(self, name: str, **attrs) -> Span:
        """Create (but not yet enter) a span; use as a context manager."""
        span = Span(
            self,
            self._next_id,
            name,
            self._stack[-1].id if self._stack else None,
            attrs,
        )
        self._next_id += 1
        return span

    def event(self, name: str, **attrs) -> None:
        """Record an instantaneous event as a zero-length span."""
        span = self.span(name, **attrs)
        self._enter(span)
        self._exit(span)

    def _enter(self, span: Span) -> None:
        span.t_wall = time.perf_counter()
        if self.clock is not None:
            span.t_virtual = self.clock.now
        self._stack.append(span)

    def _exit(self, span: Span) -> None:
        span.t_wall_end = time.perf_counter()
        if self.clock is not None:
            span.t_virtual_end = self.clock.now
        # Tolerate out-of-order exits (a call site that leaks a span
        # must not corrupt its siblings): pop down to this span.
        while self._stack:
            top = self._stack.pop()
            if top is span:
                break
        if len(self.spans) < self.max_spans:
            self.spans.append(span)
        else:
            self.n_dropped += 1

    # -- queries --------------------------------------------------------
    def by_name(self, name: str) -> list[Span]:
        """Completed spans with the given name, in completion order."""
        return [s for s in self.spans if s.name == name]

    def clear(self) -> None:
        self.spans = []
        self._stack = []
        self.n_dropped = 0


class NullTracer:
    """Disabled tracer: every operation is a no-op.

    This is the default installed tracer, so instrumented code can call
    :func:`trace_span` unconditionally — the disabled cost is one
    global read plus one method call returning the shared
    :data:`NOOP_SPAN`.
    """

    enabled = False
    clock = None
    spans: list = []
    n_dropped = 0

    def attach_clock(self, clock) -> None:
        pass

    def span(self, name: str, **attrs):
        return NOOP_SPAN

    def event(self, name: str, **attrs) -> None:
        pass

    def by_name(self, name: str) -> list:
        return []

    def clear(self) -> None:
        pass


#: The one shared disabled tracer.
NULL_TRACER = NullTracer()

_tracer: Tracer | NullTracer = NULL_TRACER


def get_tracer() -> Tracer | NullTracer:
    """The currently installed tracer (the shared null one by default)."""
    return _tracer


def set_tracer(tracer: Tracer | NullTracer | None) -> Tracer | NullTracer:
    """Install a tracer process-wide; ``None`` disables tracing.

    Returns the previously installed tracer so callers can restore it
    (tests do; the CLI installs once per process).
    """
    global _tracer
    previous = _tracer
    _tracer = tracer if tracer is not None else NULL_TRACER
    return previous


def trace_span(name: str, **attrs):
    """Open a span on the installed tracer (no-op when disabled).

    The hot-path helper used by all built-in instrumentation::

        with trace_span("gp_fit", n_train=n) as sp:
            ...

    Keep the keyword arguments cheap to build — they are evaluated even
    on the disabled path.
    """
    return _tracer.span(name, **attrs)


def trace_event(name: str, **attrs) -> None:
    """Record an instantaneous event on the installed tracer."""
    _tracer.event(name, **attrs)
