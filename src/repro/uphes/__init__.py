"""Underground Pumped Hydro-Energy Storage simulator substrate.

The paper's objective function is a licensed Matlab/RAO simulator of
the Maizeret (Belgium) plant. This package rebuilds it as an open,
physics-based synthetic simulator with the same interface (a 12-d
decision vector in, an expected daily profit in EUR out) and the same
qualitative landscape; see DESIGN.md §2 for the substitution argument.
"""

from repro.uphes.config import (
    GroundwaterConfig,
    MachineConfig,
    MarketConfig,
    ReservoirConfig,
    UPHESConfig,
)
from repro.uphes.groundwater import GroundwaterExchange
from repro.uphes.machine import PumpTurbine
from repro.uphes.market import MarketScenarios, daily_price_shape
from repro.uphes.reservoirs import Reservoir, net_head
from repro.uphes.schedule import block_hours, decode_schedule, reserve_block_index
from repro.uphes.simulator import SimulationTrace, UPHESSimulator

__all__ = [
    "GroundwaterConfig",
    "GroundwaterExchange",
    "MachineConfig",
    "MarketConfig",
    "MarketScenarios",
    "PumpTurbine",
    "Reservoir",
    "ReservoirConfig",
    "SimulationTrace",
    "UPHESConfig",
    "UPHESSimulator",
    "block_hours",
    "daily_price_shape",
    "decode_schedule",
    "net_head",
    "reserve_block_index",
]
