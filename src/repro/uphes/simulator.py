"""The UPHES profit simulator — the paper's black-box objective f.

``f : R¹² → R`` maps a day of market decisions to the expected daily
profit [EUR] of the storage plant, accounting for:

- two-settlement day-ahead energy revenue (committed energy at the
  scenario price, deviations charged at a multiple of it),
- reserve capacity revenue and headroom-shortfall penalties,
- the full hydraulic state: nonlinear reservoir geometry, head-
  dependent machine envelopes with forbidden zones, non-convex hill
  curves, groundwater exchange with the mine surroundings,
- start costs per mode transition and a terminal valuation of the
  change in stored energy.

Every property the paper attributes to its simulator is present:
discontinuous (commitments inside a forbidden zone deliver nothing),
nonlinear (head effects), mixed-integer-like (pump/turbine/idle by
sign), uncertain (expectation over frozen price/groundwater scenarios)
and constraint-handled by penalties "inside the simulator".

The time loop is fully vectorized over *batch × scenarios* — one pass
through the 96 steps evaluates an arbitrary number of decision vectors,
which is what keeps the full experiment campaigns laptop-sized.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.problems import Problem
from repro.uphes.config import RHO_G, UPHESConfig
from repro.uphes.groundwater import GroundwaterExchange
from repro.uphes.machine import PumpTurbine
from repro.uphes.market import MarketScenarios
from repro.uphes.reservoirs import Reservoir
from repro.uphes.schedule import decode_schedule
from repro.util import RandomState, as_generator

#: Joules per MWh.
_J_PER_MWH = 3.6e9


@dataclass
class SimulationTrace:
    """Step-by-step record of one evaluated schedule (scenario means).

    Produced by :meth:`UPHESSimulator.simulate_detailed`; used by the
    examples and the physical-consistency tests.
    """

    hours: np.ndarray
    committed_power: np.ndarray
    delivered_power: np.ndarray  # scenario-mean net injection [MW]
    head: np.ndarray  # scenario-mean net head [m]
    upper_volume: np.ndarray  # scenario-mean [m³]
    lower_volume: np.ndarray
    energy_price: np.ndarray  # scenario-mean [EUR/MWh]
    profit: float
    breakdown: dict = field(default_factory=dict)


class UPHESSimulator(Problem):
    """Expected-profit objective for the synthetic Maizeret-like plant.

    Parameters
    ----------
    config:
        Plant/market description (defaults to the paper-aligned plant).
    seed:
        Seed freezing the uncertainty scenarios. Two simulators built
        with the same seed are bit-identical functions.
    sim_time:
        Virtual evaluation cost in seconds (paper: ~10 s).
    market:
        Optional pre-built scenario set to share between simulators
        (the multi-plant fleet of :mod:`repro.scenarios` bids N plants
        into one price curve). When omitted the simulator draws its own
        market from ``seed`` exactly as before — the default path is
        bit-identical to historical behaviour.
    """

    def __init__(
        self,
        config: UPHESConfig | None = None,
        seed: RandomState = 0,
        sim_time: float = 10.0,
        market: MarketScenarios | None = None,
    ):
        self.config = config if config is not None else UPHESConfig()
        cfg = self.config
        super().__init__(
            cfg.bounds(), name="uphes", maximize=True, sim_time=sim_time
        )
        rng = as_generator(seed)
        self.reservoir_up = Reservoir(cfg.upper)
        self.reservoir_low = Reservoir(cfg.lower)
        self.machine = PumpTurbine(cfg.machine)
        self.groundwater = GroundwaterExchange(cfg.groundwater)
        if market is None:
            market = MarketScenarios(
                cfg.market, cfg.n_steps, cfg.dt_hours, cfg.n_scenarios, seed=rng
            )
        elif (
            market.n_steps != cfg.n_steps
            or market.n_scenarios != cfg.n_scenarios
        ):
            raise ValueError(
                "shared market shape "
                f"({market.n_scenarios} scenarios × {market.n_steps} steps) "
                f"does not match the plant ({cfg.n_scenarios} × {cfg.n_steps})"
            )
        self.market = market
        self._z_table = self.groundwater.sample_table(rng, cfg.n_scenarios)
        # Energy [MWh] per m³ of upper-basin water, at nominal conditions:
        # used for the reserve sustain check and the terminal valuation.
        self._mwh_per_m3 = (
            RHO_G * cfg.machine.head_nominal * cfg.machine.eta_turb_peak / _J_PER_MWH
        )

    # ------------------------------------------------------------------
    def evaluate(self, X: np.ndarray) -> np.ndarray:
        profit, _, _ = self._profit_batch(X, record=False)
        return profit

    def simulate_detailed(self, x) -> SimulationTrace:
        """Evaluate one schedule and return the full trajectory."""
        x = np.asarray(x, dtype=np.float64).reshape(1, -1)
        _, trace, _ = self._profit_batch(x, record=True)
        assert trace is not None
        return trace

    def evaluate_scenario(
        self,
        X: np.ndarray,
        *,
        price: np.ndarray | None = None,
        avail: np.ndarray | None = None,
        inflow_scale: np.ndarray | None = None,
        components: bool = False,
    ):
        """Evaluate under scenario overrides (see :mod:`repro.scenarios`).

        Parameters
        ----------
        X:
            ``(B, dim)`` decision batch.
        price:
            Energy-price override: ``(S, T)`` replaces the instance's
            scenario paths, ``(B, S, T)`` additionally varies per batch
            row (fleet price-impact coupling). Reserve prices stay the
            instance's own.
        avail:
            ``(T,)`` boolean machine-availability mask; ``False`` steps
            collapse both operating envelopes (an outage): committed
            power there trips, earns nothing, and pays the imbalance +
            unsafe penalties, and reserve headroom is zero.
        inflow_scale:
            ``(T,)`` multiplier on the groundwater exchange flow
            (drought derating; 1.0 everywhere = nominal).
        components:
            Also return the per-row objective components used by the
            multi-objective mode.

        Returns the ``(B,)`` expected profit, or ``(profit, comps)``
        with ``comps`` a dict of ``(B,)`` arrays when ``components``.
        With every override at its default this is exactly
        :meth:`evaluate` — bit for bit.
        """
        X = np.asarray(X, dtype=np.float64)
        profit, _, comps = self._profit_batch(
            X,
            record=False,
            price=price,
            avail=avail,
            inflow_scale=inflow_scale,
            components=components,
        )
        if components:
            return profit, comps
        return profit

    # ------------------------------------------------------------------
    def _profit_batch(
        self,
        X: np.ndarray,
        record: bool,
        *,
        price: np.ndarray | None = None,
        avail: np.ndarray | None = None,
        inflow_scale: np.ndarray | None = None,
        components: bool = False,
    ) -> tuple[np.ndarray, SimulationTrace | None, dict | None]:
        cfg = self.config
        mkt = cfg.market
        dt_h = cfg.dt_hours
        dt_s = dt_h * 3600.0
        S = cfg.n_scenarios
        B = X.shape[0]

        # (B, T) commitments, (S, T) prices — or (B, S, T) when a
        # per-row price override carries the fleet coupling.
        sched = [decode_schedule(x, cfg) for x in X]
        power_sched = np.stack([p for p, _ in sched])
        reserve_sched = np.stack([r for _, r in sched])
        if price is None:
            price = self.market.energy_price
        else:
            price = np.asarray(price, dtype=np.float64)

        v_up = np.full((B, S), cfg.upper_fill0 * cfg.upper.v_max)
        v_low = np.full((B, S), cfg.lower_fill0 * cfg.lower.v_max)
        v_up0 = v_up.copy()

        revenue = np.zeros((B, S))
        imbalance_cost = np.zeros((B, S))
        unsafe_cost = np.zeros((B, S))
        reserve_shortfall_cost = np.zeros((B, S))
        z_table = self._z_table[None, :]  # (1, S)
        if components:
            shortfall_mwh = np.zeros((B, S))

        if record:
            rec_delivered = np.zeros(cfg.n_steps)
            rec_head = np.zeros(cfg.n_steps)
            rec_vup = np.zeros(cfg.n_steps)
            rec_vlow = np.zeros(cfg.n_steps)

        for t in range(cfg.n_steps):
            head = self.reservoir_up.level(v_up) - self.reservoir_low.level(v_low)
            p_c = power_sched[:, t][:, None]  # (B, 1)
            r_c = reserve_sched[:, t][:, None]
            sell = p_c > 0.0
            buy = p_c < 0.0
            out_now = avail is not None and not avail[t]

            # An outage collapses both envelopes: nothing can run, so
            # every nonzero commitment trips (imbalance + unsafe
            # penalties follow from the unchanged settlement logic).
            if out_now:
                t_min, t_max = np.inf, 0.0
            else:
                t_min, t_max = self.machine.turbine_limits(head)

            # -- turbine side (applied where sell) ----------------------
            p_t = np.where(sell & (p_c >= t_min), np.minimum(p_c, t_max), 0.0)
            allowed_t = np.minimum(v_up, self.reservoir_low.headroom(v_low))
            need_t = self.machine.turbine_flow(p_t, head) * dt_s
            limited = (p_t > 0.0) & (need_t > allowed_t)
            if np.any(limited):
                p_water = self.machine.turbine_power_from_flow(
                    allowed_t / dt_s, head
                )
                p_t = np.where(
                    limited,
                    np.where(p_water >= t_min, np.minimum(p_t, p_water), 0.0),
                    p_t,
                )
            flow_t = np.where(
                p_t > 0.0, self.machine.turbine_flow(p_t, head), 0.0
            )

            # -- pump side (applied where buy) ---------------------------
            p_pump_req = np.where(buy, -p_c, 0.0)
            if out_now:
                pm_min, pm_max = np.inf, 0.0
            else:
                pm_min, pm_max = self.machine.pump_limits(head)
            p_p = np.where(
                buy & (p_pump_req >= pm_min) & (p_pump_req <= pm_max),
                p_pump_req,
                0.0,
            )
            allowed_p = np.minimum(v_low, self.reservoir_up.headroom(v_up))
            need_p = self.machine.pump_flow(p_p, head) * dt_s
            p_p = np.where(need_p <= allowed_p, p_p, 0.0)
            flow_p = np.where(p_p > 0.0, self.machine.pump_flow(p_p, head), 0.0)

            delivered = p_t - p_p  # net injection [MW]
            v_up = v_up + (flow_p - flow_t) * dt_s
            v_low = v_low + (flow_t - flow_p) * dt_s

            # Two-settlement: committed energy at DA price, deviation
            # charged at the imbalance multiple of the same price, plus
            # a flat unsafe-operation penalty on commitments the unit
            # could not serve at all (forbidden zone / tripped).
            # (1, S) shared paths, or (B, S) when the override is 3-d.
            step_price = price[:, :, t] if price.ndim == 3 else price[None, :, t]
            revenue += p_c * dt_h * step_price
            imbalance_cost += (
                np.abs(p_c - delivered) * dt_h * step_price * mkt.imbalance_multiplier
            )
            tripped = (p_c != 0.0) & (delivered == 0.0)
            unsafe_cost += np.where(
                tripped, np.abs(p_c) * dt_h * mkt.unsafe_penalty, 0.0
            )

            # Upward-reserve headroom at this step. A tripped unit can
            # deliver nothing, and any headroom must be backed by
            # enough stored water to sustain the activation.
            turb_cap = np.where(t_max > 0.0, t_max, 0.0)
            headroom = np.where(
                delivered > 0.0,
                np.maximum(turb_cap - delivered, 0.0),
                np.where(delivered < 0.0, -delivered, turb_cap),
            )
            headroom = np.where(tripped, 0.0, headroom)
            sustainable = (v_up * self._mwh_per_m3) / max(
                mkt.reserve_sustain_hours, 1e-9
            )
            headroom = np.minimum(headroom, np.maximum(sustainable, 0.0))
            shortfall = np.maximum(r_c - headroom, 0.0)
            reserve_shortfall_cost += shortfall * dt_h * mkt.reserve_shortfall_price
            if components:
                shortfall_mwh += shortfall * dt_h

            # Groundwater exchange with the pit (drought events derate
            # the exchange through ``inflow_scale``).
            seep = self.groundwater.flow(self.reservoir_low.level(v_low), z_table)
            if inflow_scale is not None:
                seep = seep * inflow_scale[t]
            v_low = self.reservoir_low.clamp(v_low + seep * dt_s)
            v_up = self.reservoir_up.clamp(v_up)

            if record:
                rec_delivered[t] = float(np.mean(delivered[0]))
                rec_head[t] = float(np.mean(head[0]))
                rec_vup[t] = float(np.mean(v_up[0]))
                rec_vlow[t] = float(np.mean(v_low[0]))

        # Reserve capacity revenue (paid per block, per scenario price).
        res_hours = cfg.horizon_hours / mkt.n_reserve_blocks
        offers = np.maximum(X[:, mkt.n_energy_blocks :], 0.0)  # (B, R)
        reserve_revenue = offers @ self.market.reserve_price.T * res_hours  # (B, S)

        # Start costs: committed mode transitions across energy blocks.
        modes = np.sign(X[:, : mkt.n_energy_blocks])
        n_switch = np.count_nonzero(np.diff(modes, axis=1), axis=1)  # (B,)
        start_cost = cfg.machine.start_cost * n_switch[:, None]

        # Terminal valuation of the change in stored (upper) energy.
        # Stored water is valued at the realized mean price, so a price
        # override (regime or fleet-coupled) reprices it consistently.
        if price is self.market.energy_price:
            mean_price = self.market.mean_price
        elif price.ndim == 3:
            mean_price = price.mean(axis=(1, 2))[:, None]  # (B, 1)
        else:
            mean_price = float(np.mean(price))
        de_mwh = (v_up - v_up0) * self._mwh_per_m3
        terminal = cfg.water_value_factor * mean_price * de_mwh

        profit = (
            revenue
            + reserve_revenue
            + terminal
            - imbalance_cost
            - unsafe_cost
            - reserve_shortfall_cost
            - start_cost
        )
        expected = profit.mean(axis=1)  # (B,)

        comps = None
        if components:
            # Wear proxies come from the committed schedule (mode
            # switches and MW ramped across energy blocks); reliability
            # is the expected undelivered reserve energy.
            ramp_mw = np.abs(
                np.diff(X[:, : mkt.n_energy_blocks], axis=1)
            ).sum(axis=1)
            comps = {
                "profit": expected,
                "mode_switches": n_switch.astype(np.float64),
                "ramp_mw": ramp_mw,
                "reserve_shortfall_mwh": shortfall_mwh.mean(axis=1),
            }

        trace = None
        if record:
            trace = SimulationTrace(
                hours=(np.arange(cfg.n_steps) + 0.5) * dt_h,
                committed_power=power_sched[0].copy(),
                delivered_power=rec_delivered,
                head=rec_head,
                upper_volume=rec_vup,
                lower_volume=rec_vlow,
                energy_price=price.mean(axis=0),
                profit=float(expected[0]),
                breakdown={
                    "energy_revenue": float(np.mean(revenue[0])),
                    "reserve_revenue": float(np.mean(reserve_revenue[0])),
                    "terminal_value": float(np.mean(terminal[0])),
                    "imbalance_cost": float(np.mean(imbalance_cost[0])),
                    "unsafe_cost": float(np.mean(unsafe_cost[0])),
                    "reserve_shortfall_cost": float(
                        np.mean(reserve_shortfall_cost[0])
                    ),
                    "start_cost": float(start_cost[0, 0]),
                },
            )
        return expected, trace, comps
