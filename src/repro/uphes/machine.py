"""The variable-speed pump-turbine: envelopes, hill curves, flows.

Reproduces the two machine-side effects the paper calls out:

- **head-dependent operating envelopes** — the safe power window moves
  with the net head; in turbine mode the lower limit (the edge of the
  cavitation / rough-running zone) *rises* as the head drops, and the
  whole mode disappears outside the safe head window. This is the
  source of the problem's discontinuity and its mixed-integer flavour
  (pump / turbine / idle);
- **non-convex performance (hill) curves** — efficiency is a quadratic
  bowl around a head-dependent best-efficiency point, clipped at a
  floor, so the power→flow map is neither convex nor concave.

All functions are vectorized over scenario arrays of heads.
"""

from __future__ import annotations

import numpy as np

from repro.uphes.config import RHO_G, MachineConfig


class PumpTurbine:
    """Stateless machine model; state (volumes) lives in the simulator."""

    def __init__(self, config: MachineConfig):
        self.config = config

    # -- operating envelopes --------------------------------------------
    def turbine_limits(self, head) -> tuple[np.ndarray, np.ndarray]:
        """(p_min, p_max) [MW] in turbine mode; NaN-free, 0-width when off.

        Below ``head_min_turb`` the mode is unavailable: both limits
        collapse to +inf/0 so every commitment is infeasible.
        """
        c = self.config
        head = np.asarray(head, dtype=np.float64)
        rel = (head - c.head_nominal) / c.head_nominal
        p_max = c.p_turb_max * (1.0 + c.turb_max_head_gain * rel)
        p_max = np.clip(p_max, 0.0, c.p_turb_max)
        p_min = c.p_turb_min * (1.0 - c.turb_min_head_gain * np.minimum(rel, 0.0))
        available = head >= c.head_min_turb
        p_min = np.where(available, p_min, np.inf)
        p_max = np.where(available, p_max, 0.0)
        return p_min, p_max

    def pump_limits(self, head) -> tuple[np.ndarray, np.ndarray]:
        """(p_min, p_max) [MW] in pump mode; unavailable above max lift."""
        c = self.config
        head = np.asarray(head, dtype=np.float64)
        available = head <= c.head_max_pump
        p_min = np.where(available, c.p_pump_min, np.inf)
        p_max = np.where(available, c.p_pump_max, 0.0)
        return p_min, p_max

    # -- hill curves ------------------------------------------------------
    def _hill(self, power, head, peak: float, bep_shift: float) -> np.ndarray:
        c = self.config
        power = np.asarray(power, dtype=np.float64)
        head = np.asarray(head, dtype=np.float64)
        dh = (head - c.head_nominal) / 30.0
        # Best-efficiency point drifts with head.
        p_bep = 0.5 * (c.p_turb_min + c.p_turb_max) + bep_shift * dh * 2.0
        dp = (power - p_bep) / 4.0
        eta = peak - c.hill_power_curv * dp**2 - c.hill_head_curv * dh**2
        return np.clip(eta, c.eta_floor, peak)

    def turbine_efficiency(self, power, head) -> np.ndarray:
        """Hydraulic-to-electric efficiency in turbine mode."""
        return self._hill(power, head, self.config.eta_turb_peak, bep_shift=+1.0)

    def pump_efficiency(self, power, head) -> np.ndarray:
        """Electric-to-hydraulic efficiency in pump mode."""
        return self._hill(power, head, self.config.eta_pump_peak, bep_shift=-1.0)

    # -- power ↔ flow ------------------------------------------------------
    def turbine_flow(self, power, head) -> np.ndarray:
        """Discharge [m³/s] needed to generate ``power`` MW at ``head``.

        ``P = ρ·g·Q·H·η  ⇒  Q = P / (ρ·g·H·η)``; powers in MW.
        """
        head = np.maximum(np.asarray(head, dtype=np.float64), 1.0)
        eta = self.turbine_efficiency(power, head)
        return np.asarray(power, dtype=np.float64) * 1e6 / (RHO_G * head * eta)

    def pump_flow(self, power, head) -> np.ndarray:
        """Lift flow [m³/s] produced by ``power`` MW of pumping.

        ``Q = P·η / (ρ·g·H)``; powers in MW.
        """
        head = np.maximum(np.asarray(head, dtype=np.float64), 1.0)
        eta = self.pump_efficiency(power, head)
        return np.asarray(power, dtype=np.float64) * 1e6 * eta / (RHO_G * head)

    def turbine_power_from_flow(self, flow, head) -> np.ndarray:
        """Approximate inverse of :meth:`turbine_flow` for water limits.

        Evaluated at the flow-implied power using the efficiency at
        nominal mid-power (a fixed point would be exact; one step is
        within the hill curve's flatness and keeps the simulator fast).
        """
        head = np.maximum(np.asarray(head, dtype=np.float64), 1.0)
        p0 = RHO_G * head * np.asarray(flow, dtype=np.float64) * (
            self.config.eta_turb_peak
        ) / 1e6
        eta = self.turbine_efficiency(p0, head)
        return RHO_G * head * np.asarray(flow, dtype=np.float64) * eta / 1e6
