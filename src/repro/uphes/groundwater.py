"""Groundwater exchange between the mine pit and its surroundings.

The lower basin is a former open-pit mine whose waterproofing is not
economical (paper §2.1): water seeps through the porous surroundings at
a rate proportional to the level difference with the local water table.
The table elevation itself is scenario-uncertain.
"""

from __future__ import annotations

import numpy as np

from repro.uphes.config import GroundwaterConfig


class GroundwaterExchange:
    """Darcy-like linear exchange model, vectorized over scenarios."""

    def __init__(self, config: GroundwaterConfig):
        self.config = config

    def flow(self, lower_level, z_table=None) -> np.ndarray:
        """Seepage flow [m³/s] *into* the pit (negative = leakage out).

        ``z_table`` may be a per-scenario array; defaults to the
        configured deterministic table elevation.
        """
        z = self.config.z_table if z_table is None else np.asarray(z_table)
        return self.config.conductance * (
            z - np.asarray(lower_level, dtype=np.float64)
        )

    def sample_table(self, rng: np.random.Generator, n_scenarios: int) -> np.ndarray:
        """Per-scenario water-table elevations [m]."""
        return self.config.z_table + self.config.table_noise_std * rng.standard_normal(
            n_scenarios
        )
