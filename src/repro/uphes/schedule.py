"""Decision-vector decoding: 12 numbers → a 24-hour dispatch plan.

The decision vector follows the paper (§2.1): 8 variables commit power
on the day-ahead energy market's 3-hour blocks (signed: positive sells
/ turbine, negative buys / pump) and 4 variables offer upward reserve
capacity on 6-hour blocks.
"""

from __future__ import annotations

import numpy as np

from repro.uphes.config import UPHESConfig
from repro.util import ValidationError, check_vector


def decode_schedule(x, config: UPHESConfig) -> tuple[np.ndarray, np.ndarray]:
    """Expand a decision vector to per-step commitments.

    Returns ``(power, reserve)``: two ``(n_steps,)`` arrays of the
    committed market power [MW, signed] and offered upward reserve
    capacity [MW, >= 0] at each simulation step.
    """
    m = config.market
    x = check_vector(x, "x", dim=config.dim)
    energy = x[: m.n_energy_blocks]
    reserve = x[m.n_energy_blocks :]
    if np.any(reserve < -1e-9):
        raise ValidationError("reserve offers must be non-negative")

    n = config.n_steps
    if n % m.n_energy_blocks or n % m.n_reserve_blocks:
        raise ValidationError(
            "block counts must divide the number of simulation steps"
        )
    power = np.repeat(energy, n // m.n_energy_blocks)
    res = np.repeat(np.maximum(reserve, 0.0), n // m.n_reserve_blocks)
    return power, res


def block_hours(config: UPHESConfig) -> tuple[float, float]:
    """(energy_block_hours, reserve_block_hours)."""
    m = config.market
    return (
        config.horizon_hours / m.n_energy_blocks,
        config.horizon_hours / m.n_reserve_blocks,
    )


def reserve_block_index(config: UPHESConfig) -> np.ndarray:
    """Map each simulation step to its reserve block, ``(n_steps,)``."""
    m = config.market
    return np.repeat(
        np.arange(m.n_reserve_blocks), config.n_steps // m.n_reserve_blocks
    )
