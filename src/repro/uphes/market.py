"""Energy and reserve market price scenarios.

Day-ahead prices follow the classic double-peak daily shape (morning
and evening peaks, deep night valley) with AR(1) scenario noise;
reserve capacity prices are per-block positives. Scenarios are drawn
once per simulator instance from a seeded generator, so the "expected
profit" objective is deterministic — the paper's simulator likewise
returns an expectation over its internal uncertainty model.
"""

from __future__ import annotations

import numpy as np

from repro.uphes.config import MarketConfig
from repro.util import RandomState, as_generator


def daily_price_shape(hours: np.ndarray, config: MarketConfig) -> np.ndarray:
    """Deterministic EUR/MWh day-ahead curve at the given hours."""
    c = config

    def bump(center: float, width: float) -> np.ndarray:
        return np.exp(-0.5 * ((hours - center) / width) ** 2)

    return (
        c.price_base
        + c.price_morning_peak * bump(8.0, 1.8)
        + c.price_evening_peak * bump(19.0, 2.2)
        - c.price_night_valley * bump(3.5, 2.5)
    )


class MarketScenarios:
    """Frozen scenario set for one simulator instance.

    ``seed`` accepts a :class:`numpy.random.SeedSequence` so callers
    composing several scenario sets (the regime bundles of
    :mod:`repro.scenarios`) can hand each one a ``SeedSequence.spawn``
    child: every bundle then replays bit-identically regardless of how
    many siblings were built before it, which is what makes
    checkpoint/resume over scenario bundles bit-stable.

    Attributes
    ----------
    energy_price:
        ``(n_scenarios, n_steps)`` EUR/MWh day-ahead paths.
    reserve_price:
        ``(n_scenarios, n_reserve_blocks)`` EUR/MW/h capacity prices.
    mean_price:
        Scalar mean of the energy price (terminal water valuation).
    """

    def __init__(
        self,
        config: MarketConfig,
        n_steps: int,
        dt_hours: float,
        n_scenarios: int,
        seed: RandomState = None,
    ):
        rng = as_generator(seed)
        self.config = config
        hours = (np.arange(n_steps) + 0.5) * dt_hours
        base = daily_price_shape(hours, config)

        noise = np.empty((n_scenarios, n_steps))
        innov = rng.standard_normal((n_scenarios, n_steps))
        rho = config.price_noise_rho
        scale = config.price_noise_std * np.sqrt(max(1.0 - rho**2, 1e-12))
        noise[:, 0] = config.price_noise_std * innov[:, 0]
        for t in range(1, n_steps):
            noise[:, t] = rho * noise[:, t - 1] + scale * innov[:, t]
        self.energy_price = np.maximum(base[None, :] + noise, config.min_price)

        raw = config.reserve_price_mean + config.reserve_price_std * rng.standard_normal(
            (n_scenarios, config.n_reserve_blocks)
        )
        self.reserve_price = np.maximum(raw, 0.0)

        self.mean_price = float(np.mean(self.energy_price))
        self.n_scenarios = n_scenarios
        self.n_steps = n_steps
        self.dt_hours = dt_hours
