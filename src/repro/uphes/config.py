"""Configuration of the synthetic UPHES plant and markets.

The paper's simulator (the Maizeret plant, implemented in Matlab and
the proprietary RAO language — Toubeau et al., 2019) is a licensed
black box. This configuration describes the synthetic plant rebuilt in
:mod:`repro.uphes`: the public facts from the paper are kept exactly —

- nominal pump range **[6, 8] MW**, turbine range **[4, 8] MW**,
- energy capacity **80 MWh**,
- lower basin = former underground open-pit mine with groundwater
  exchange,
- both reservoir surfaces small → strong head effects,
- 12 decision variables: 8 energy-market blocks + 4 reserve blocks —

and the remaining constants are chosen so the optimization landscape
has the paper's qualitative properties (discontinuous, nonlinear,
mostly negative under random sampling; see DESIGN.md §2).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.util import ConfigurationError

#: Water density [kg/m³] times gravity [m/s²]: pressure per metre head.
RHO_G = 1000.0 * 9.81


@dataclass(frozen=True)
class ReservoirConfig:
    """Geometry of one reservoir via a power-law level–volume curve.

    ``level(V) = z_floor + depth · (V / v_max) ** shape`` — ``shape``
    below 1 models a basin that narrows towards the bottom (the mine
    pit), above (or near) 1 a shallow regular basin.
    """

    v_max: float  # usable volume [m³]
    z_floor: float  # floor elevation [m above datum]
    depth: float  # water depth at full volume [m]
    shape: float  # curvature of the level–volume relation

    def __post_init__(self):
        if self.v_max <= 0 or self.depth <= 0 or self.shape <= 0:
            raise ConfigurationError("reservoir v_max, depth, shape must be > 0")


@dataclass(frozen=True)
class MachineConfig:
    """Variable-speed pump-turbine unit with head-dependent envelopes."""

    # Nominal operating ranges at nominal head (paper, §2.3.1).
    p_turb_min: float = 4.0  # MW
    p_turb_max: float = 8.0  # MW
    p_pump_min: float = 6.0  # MW
    p_pump_max: float = 8.0  # MW
    head_nominal: float = 90.0  # m
    # Safe head window (outside it the mode is unavailable).
    head_min_turb: float = 65.0  # cavitation limit in turbine mode
    head_max_pump: float = 115.0  # maximum lift in pump mode
    # Peak efficiencies and hill-curve curvatures.
    eta_turb_peak: float = 0.91
    eta_pump_peak: float = 0.88
    eta_floor: float = 0.55
    hill_power_curv: float = 0.10  # efficiency loss per (ΔP/4 MW)²
    hill_head_curv: float = 0.06  # efficiency loss per (ΔH/30 m)²
    # How the limits move with head (fraction of nominal per ΔH/H₀).
    turb_max_head_gain: float = 0.8
    turb_min_head_gain: float = 1.2  # forbidden zone grows as head drops
    start_cost: float = 30.0  # EUR per mode transition

    def __post_init__(self):
        if not (0 < self.p_turb_min < self.p_turb_max):
            raise ConfigurationError("need 0 < p_turb_min < p_turb_max")
        if not (0 < self.p_pump_min <= self.p_pump_max):
            raise ConfigurationError("need 0 < p_pump_min <= p_pump_max")
        if not (0 < self.head_min_turb < self.head_nominal < self.head_max_pump):
            raise ConfigurationError("inconsistent head limits")


@dataclass(frozen=True)
class GroundwaterConfig:
    """Exchange between the mine pit and the surrounding water table.

    Seepage flow is ``conductance · (z_table − z_lower_level)`` m³/s:
    water seeps *into* the pit while its level is below the surrounding
    table and leaks out above it (Pujades et al., 2017).
    """

    z_table: float = -80.0  # m, surrounding water-table elevation
    conductance: float = 0.03  # m³/s per metre of level difference
    table_noise_std: float = 2.0  # m, per-scenario uncertainty

    def __post_init__(self):
        if self.conductance < 0 or self.table_noise_std < 0:
            raise ConfigurationError("groundwater parameters must be >= 0")


@dataclass(frozen=True)
class MarketConfig:
    """Day-ahead energy and reserve markets with scenario uncertainty."""

    n_energy_blocks: int = 8  # 3-hour products
    n_reserve_blocks: int = 4  # 6-hour products
    # Deterministic daily price shape [EUR/MWh].
    price_base: float = 45.0
    price_morning_peak: float = 28.0  # centred 08:00
    price_evening_peak: float = 38.0  # centred 19:00
    price_night_valley: float = 20.0  # centred 03:30
    # AR(1) scenario noise on the energy price.
    price_noise_std: float = 7.0
    price_noise_rho: float = 0.9
    # Reserve capacity price [EUR/MW/h] and its lognormal-ish spread.
    reserve_price_mean: float = 9.0
    reserve_price_std: float = 2.5
    # Settlement and constraint penalties ("a penalty term inside the
    # simulator", paper §2.1).
    imbalance_multiplier: float = 3.5  # deviation charged at λ·price
    unsafe_penalty: float = 60.0  # EUR/MWh committed inside a forbidden zone
    reserve_shortfall_price: float = 120.0  # EUR/MWh of missing headroom
    reserve_sustain_hours: float = 0.5  # stored energy needed per MW of reserve
    min_price: float = 1.0  # price floor after noise

    def __post_init__(self):
        if self.n_energy_blocks < 1 or self.n_reserve_blocks < 1:
            raise ConfigurationError("need at least one block per market")
        if self.imbalance_multiplier < 1.0:
            raise ConfigurationError("imbalance_multiplier must be >= 1")


@dataclass(frozen=True)
class UPHESConfig:
    """Full plant + market description (defaults ≈ the Maizeret setup)."""

    # 80 MWh at ~90 m head and peak turbine efficiency ↔ ~3.6e5 m³.
    upper: ReservoirConfig = field(
        default_factory=lambda: ReservoirConfig(
            v_max=3.6e5, z_floor=8.0, depth=14.0, shape=0.95
        )
    )
    lower: ReservoirConfig = field(
        default_factory=lambda: ReservoirConfig(
            v_max=3.6e5, z_floor=-100.0, depth=32.0, shape=0.7
        )
    )
    machine: MachineConfig = field(default_factory=MachineConfig)
    groundwater: GroundwaterConfig = field(default_factory=GroundwaterConfig)
    market: MarketConfig = field(default_factory=MarketConfig)

    horizon_hours: float = 24.0
    dt_hours: float = 0.25
    n_scenarios: int = 8
    # Initial fill fractions.
    upper_fill0: float = 0.5
    lower_fill0: float = 0.5
    # Terminal valuation of the *change* in stored upper-basin energy,
    # as a fraction of the mean energy price (kept below 1 so hoarding
    # water is not a free lunch).
    water_value_factor: float = 0.55

    def __post_init__(self):
        if self.horizon_hours <= 0 or self.dt_hours <= 0:
            raise ConfigurationError("horizon and dt must be positive")
        n_steps = self.horizon_hours / self.dt_hours
        if abs(n_steps - round(n_steps)) > 1e-9:
            raise ConfigurationError("dt must divide the horizon")
        if self.n_scenarios < 1:
            raise ConfigurationError("need at least one scenario")
        for name in ("upper_fill0", "lower_fill0"):
            v = getattr(self, name)
            if not (0.0 <= v <= 1.0):
                raise ConfigurationError(f"{name} must be in [0, 1]")

    @property
    def n_steps(self) -> int:
        return int(round(self.horizon_hours / self.dt_hours))

    @property
    def dim(self) -> int:
        """Decision-vector dimension (8 energy + 4 reserve = 12)."""
        return self.market.n_energy_blocks + self.market.n_reserve_blocks

    def bounds(self) -> np.ndarray:
        """``(dim, 2)`` decision bounds: energy ±p_max, reserve [0, 4]."""
        p_hi = max(self.machine.p_turb_max, self.machine.p_pump_max)
        energy = np.tile([-p_hi, p_hi], (self.market.n_energy_blocks, 1))
        r_hi = self.machine.p_turb_max - self.machine.p_turb_min
        reserve = np.tile([0.0, r_hi], (self.market.n_reserve_blocks, 1))
        return np.vstack([energy, reserve])
