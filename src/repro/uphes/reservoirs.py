"""Reservoir geometry: nonlinear level–volume curves and head.

The paper stresses that UPHES units see *important variations of the
net hydraulic head* because both basins have limited surface area
("head effects"). These curves make the head a strongly state-dependent
quantity: the pit-shaped lower basin (shape < 1) swings its level
faster when nearly empty, the shallow upper basin almost linearly.
"""

from __future__ import annotations

import numpy as np

from repro.uphes.config import ReservoirConfig


class Reservoir:
    """State-free reservoir geometry helper (volumes live in arrays).

    All methods are vectorized over scenario arrays.
    """

    def __init__(self, config: ReservoirConfig):
        self.config = config

    @property
    def v_max(self) -> float:
        return self.config.v_max

    def clamp(self, volume: np.ndarray) -> np.ndarray:
        """Volumes clipped to the physical range ``[0, v_max]``."""
        return np.clip(volume, 0.0, self.config.v_max)

    def level(self, volume) -> np.ndarray:
        """Water surface elevation [m] for volume(s) [m³]."""
        c = self.config
        frac = np.clip(np.asarray(volume, dtype=np.float64) / c.v_max, 0.0, 1.0)
        return c.z_floor + c.depth * frac**c.shape

    def volume_from_level(self, level) -> np.ndarray:
        """Inverse of :meth:`level` (clipped to the valid range)."""
        c = self.config
        frac = np.clip(
            (np.asarray(level, dtype=np.float64) - c.z_floor) / c.depth, 0.0, 1.0
        )
        return c.v_max * frac ** (1.0 / c.shape)

    def headroom(self, volume) -> np.ndarray:
        """Remaining fillable volume [m³]."""
        return self.config.v_max - self.clamp(np.asarray(volume, dtype=np.float64))


def net_head(upper: Reservoir, v_up, lower: Reservoir, v_low) -> np.ndarray:
    """Net hydraulic head [m]: upper surface minus lower surface."""
    return upper.level(v_up) - lower.level(v_low)
