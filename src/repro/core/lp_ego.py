"""LP-EGO: batch selection by local penalization.

González, Dai, Hennig & Lawrence (2016), *Batch Bayesian Optimization
via Local Penalization* — one of the alternative batch strategies the
paper's related work surveys (§2.2: "one may choose to rely on a single
point criterion ... or trying to localize distinct local optimal values
of the AFs"). Provided here as a sixth acquisition process for the
comparison harness.

Instead of fantasy model updates (KB) or a joint criterion (qEI), the
batch is built by sequentially maximizing

    α_k(x) = EI(x) · Π_{j<k} ψ(x; x_j),

where each selected point x_j casts a *penalty shadow*

    ψ(x; x_j) = Φ( (L·‖x − x_j‖ − best + μ(x_j)) / √(2σ²(x_j)) )

— the probability that x lies outside x_j's Lipschitz exclusion ball.
L is estimated as the largest posterior-mean gradient norm over a
sample of the domain. No surrogate update happens inside the batch
loop, so the per-candidate cost is flat in q (cheaper than KB), at the
price of needing a decent Lipschitz estimate.
"""

from __future__ import annotations

import numpy as np
from scipy.stats import norm

from repro.acquisition import ExpectedImprovement, optimize_acqf
from repro.core.base import BatchOptimizer, Proposal, _Stopwatch
from repro.util import RandomState

#: Numerical floors for the penalizer.
_MIN_STD = 1e-9
_MIN_L = 1e-6


class _PenalizedEI:
    """EI multiplied by the local-penalization shadows (maximized)."""

    has_analytic_grad = False  # optimize_acqf uses gradient-free L-BFGS-B

    def __init__(self, ei: ExpectedImprovement, centers, radii_num, denom):
        self.ei = ei
        self.gp = ei.gp
        self.centers = centers  # (k, d)
        self.radii_num = radii_num  # (k,): best - mu(x_j), signed
        self.denom = denom  # (k,): sqrt(2) sigma(x_j)
        self.lipschitz = 1.0

    def value(self, X) -> np.ndarray:
        values = self.ei.value(X)
        if len(self.centers) == 0:
            return values
        X = np.asarray(X, dtype=np.float64)
        for center, num, den in zip(self.centers, self.radii_num, self.denom):
            dist = np.linalg.norm(X - center[None, :], axis=1)
            z = (self.lipschitz * dist + num) / den
            values = values * norm.cdf(z)
        return values


class LPEGO(BatchOptimizer):
    """Batch EGO with local-penalization candidate selection."""

    name = "LP-EGO"

    def __init__(
        self,
        problem,
        n_batch: int,
        seed: RandomState = None,
        gp_options: dict | None = None,
        acq_options: dict | None = None,
        n_lipschitz_samples: int = 256,
    ):
        super().__init__(problem, n_batch, seed, gp_options, acq_options)
        self.n_lipschitz_samples = int(n_lipschitz_samples)

    def _estimate_lipschitz(self, gp) -> float:
        """L ≈ max ‖∇μ(x)‖ over a random sample of the domain."""
        span = self.problem.upper - self.problem.lower
        X = self.problem.lower + self.rng.random(
            (self.n_lipschitz_samples, self.problem.dim)
        ) * span
        # Evaluate mean gradients at a thinned subset (gradients are
        # the costly part); take the max norm.
        best = _MIN_L
        step = max(1, self.n_lipschitz_samples // 64)
        for x in X[::step]:
            _, _, dmu, _ = gp.mean_std_grad(x)
            best = max(best, float(np.linalg.norm(dmu)))
        return best

    def propose(self) -> Proposal:
        gp, fit_time = self._fit_gp()
        opts = self.acq_options
        sw = _Stopwatch()
        batch: list[np.ndarray] = []
        with sw:
            best_f = self.best_f
            ei = ExpectedImprovement(gp, best_f)
            penalized = _PenalizedEI(ei, [], [], [])
            penalized.lipschitz = self._estimate_lipschitz(gp)
            centers: list[np.ndarray] = []
            nums: list[float] = []
            dens: list[float] = []
            for _ in range(self.n_batch):
                penalized.centers = np.asarray(centers) if centers else []
                penalized.radii_num = nums
                penalized.denom = dens
                x, _ = optimize_acqf(
                    penalized,
                    self.problem.bounds,
                    n_restarts=opts["n_restarts"],
                    raw_samples=opts["raw_samples"],
                    maxiter=opts["maxiter"],
                    seed=self.rng,
                    initial_points=self.best_x[None, :],
                    avoid=self.X,
                    batch_starts=opts.get("batch_starts", True),
                )
                x = self._dedupe(x, batch)
                batch.append(x)
                mu, sigma = gp.predict(x[None, :])
                centers.append(x)
                nums.append(best_f - float(mu[0]))
                dens.append(
                    max(np.sqrt(2.0) * float(sigma[0]), _MIN_STD)
                )
        return Proposal(X=np.asarray(batch), fit_time=fit_time, acq_time=sw.total)
