"""The time-budgeted optimization driver (paper Algorithm 1 + Table 2).

Runs any :class:`~repro.core.base.BatchOptimizer` against a problem
under the paper's experimental protocol:

- an initial design of ``16 · n_batch`` points (Table 2), evaluated
  *outside* the budget ("20 min, without initial sampling");
- a loop of cycles — fit / acquire / batch-evaluate — until the
  virtual wall clock passes the budget. Simulation time is charged by
  the :class:`~repro.parallel.SimulatedCluster` (``sim_time`` per wave
  plus the parallel-call overhead); the *measured* fit + acquisition
  time is charged too, scaled by ``time_scale`` so a laptop run
  reproduces the paper's overhead-to-simulation ratios;
- per-cycle records of every timing component and the running best,
  which the experiment harness turns into the paper's figures.

Maximization problems are negated at this boundary: optimizers always
minimize internally, results are reported in the problem's native
orientation.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field

import numpy as np

from repro.core.base import BatchOptimizer, Proposal
from repro.core.supervision import CycleSupervisor, SupervisorConfig
from repro.doe import latin_hypercube
from repro.obs.metrics import get_metrics
from repro.obs.tracer import get_tracer, trace_span
from repro.parallel import OverheadModel, SimulatedCluster, VirtualClock, lpt_makespan
from repro.util import (
    ConfigurationError,
    EvaluationError,
    RandomState,
    as_generator,
    to_jsonable,
)


@dataclass(frozen=True)
class AnalyticTimeModel:
    """Deterministic stand-in for the measured fit/acquisition times.

    The default driver charges *measured* wall time (scaled) — faithful
    but machine-dependent. This model replaces the measurement with an
    analytic cost so driver-level behaviour (cycle counts, breaking
    points) becomes bit-reproducible in tests and teaching material:

    - surrogate fit: ``fit_coeff · n³`` seconds for n training points
      (the exact GP's Cholesky cost),
    - acquisition: ``acq_base + acq_per_candidate · q`` seconds, or the
      same expression per region for parallel APs.
    """

    fit_coeff: float = 2e-9
    acq_base: float = 0.2
    acq_per_candidate: float = 0.1

    def fit_time(self, n_train: int) -> float:
        return self.fit_coeff * float(n_train) ** 3

    def acq_time(self, q: int) -> float:
        return self.acq_base + self.acq_per_candidate * q

    def charge(self, proposal: Proposal, n_train: int, n_workers: int) -> float:
        """Virtual seconds for one proposal under this model."""
        fit = self.fit_time(n_train)
        if proposal.acq_durations is not None:
            per_region = self.acq_time(1)
            return fit + lpt_makespan(
                [per_region] * len(proposal.acq_durations), n_workers
            )
        return fit + self.acq_time(proposal.X.shape[0])


@dataclass
class CycleRecord:
    """One fit/acquire/evaluate cycle of the BO loop."""

    cycle: int
    t_start: float  # virtual clock at cycle start [s]
    fit_time: float  # measured surrogate fit [s]
    acq_time: float  # measured acquisition (serial sum) [s]
    acq_charged: float  # virtual seconds charged for fit+acquisition
    sim_charged: float  # virtual seconds charged for the batch
    batch_size: int
    best_value: float  # running best, native orientation
    n_evaluations: int  # cumulative, initial design included


@dataclass
class OptimizationResult:
    """Everything one run produces (JSON-serializable via the harness)."""

    problem: str
    algorithm: str
    n_batch: int
    budget: float
    sim_time: float
    time_scale: float
    seed: int | None
    maximize: bool
    best_x: np.ndarray
    best_value: float  # native orientation
    initial_best: float  # best of the initial design
    n_initial: int
    n_cycles: int
    n_simulations: int  # budgeted simulations (initial design excluded)
    elapsed: float  # virtual seconds consumed by the budgeted phase
    history: list[CycleRecord] = field(default_factory=list)

    @property
    def trajectory(self) -> np.ndarray:
        """Running best after each cycle (native orientation)."""
        return np.asarray([rec.best_value for rec in self.history])


@dataclass
class ResumeState:
    """Mid-run driver state, reconstructed from a run journal.

    Built by :func:`repro.resilience.resume.load_checkpoint`; when
    passed to :func:`run_optimization` (whose ``optimizer`` must
    already hold the restored history and algorithm state), the run
    continues from the recorded virtual-clock instant under the
    *remaining* budget instead of restarting.
    """

    clock_start: float
    cycle_start: int
    n_initial: int
    initial_best: float
    n_evaluations: int
    n_batches: int
    history: list[CycleRecord] = field(default_factory=list)
    #: Supervisor counters (fail streak, quarantine, batch size, alive
    #: workers) journaled with the checkpoint cycle; None for journals
    #: written before supervision existed.
    supervisor: dict | None = None


#: Valid non-finite-objective fallbacks (see :func:`run_optimization`).
NONFINITE_ACTIONS = ("impute", "fantasy", "drop", "raise")


def _guard_nonfinite(
    X: np.ndarray,
    y_internal: np.ndarray,
    optimizer: BatchOptimizer | None,
    fallback: str,
    journal=None,
    cycle: int | None = None,
):
    """Keep NaN/inf evaluations away from the GP fit.

    Returns the ``(X_used, y_used)`` pair actually fed to the
    optimizer: non-finite entries are imputed with the worst observed
    value (``"impute"``), replaced by the surrogate's posterior mean
    (``"fantasy"``), removed (``"drop"``), or fatal (``"raise"``).
    Always warns — a silent imputation would mask a broken simulator.
    """
    y_internal = np.asarray(y_internal, dtype=np.float64).reshape(-1)
    bad = ~np.isfinite(y_internal)
    if not bad.any():
        return X, y_internal
    n_bad = int(bad.sum())
    warnings.warn(
        f"{n_bad} non-finite objective value(s) in a batch of "
        f"{y_internal.size}; applying {fallback!r}",
        RuntimeWarning,
        stacklevel=3,
    )
    if journal is not None:
        journal.record(
            "nonfinite",
            cycle=cycle,
            indices=np.flatnonzero(bad).tolist(),
            action=fallback,
        )
    if fallback == "raise":
        raise EvaluationError(
            f"{n_bad} non-finite objective value(s) and fallback='raise'"
        )
    if fallback == "drop":
        return X[~bad], y_internal[~bad]
    finite_pool = y_internal[~bad]
    if optimizer is not None and optimizer.y.size:
        finite_pool = np.concatenate([finite_pool, optimizer.y])
    if finite_pool.size == 0:
        raise EvaluationError(
            "every objective value observed so far is non-finite; "
            "nothing to impute from"
        )
    worst = float(np.max(finite_pool))
    y_used = y_internal.copy()
    gp = getattr(optimizer, "gp", None)
    y_used[bad] = worst
    if fallback == "fantasy" and gp is not None:
        try:
            mu = np.asarray(
                gp.predict(np.asarray(X)[bad])[0], dtype=np.float64
            ).reshape(-1)
            if np.all(np.isfinite(mu)):
                y_used[bad] = mu
        except Exception:
            # A sick surrogate degrades fantasy to worst-value imputation;
            # count it so the degradation is visible in metrics.
            get_metrics().counter("driver.fantasy_impute_predict_failed").inc()
    return X, y_used


def run_optimization(
    problem,
    optimizer: BatchOptimizer,
    budget: float,
    *,
    n_initial: int | None = None,
    initial_design=None,
    time_scale: float = 1.0,
    overhead: OverheadModel | None = None,
    seed: RandomState = None,
    max_cycles: int = 100_000,
    time_model: AnalyticTimeModel | None = None,
    journal=None,
    faults=None,
    retry=None,
    checkpoint_every: int = 1,
    on_nonfinite: str = "impute",
    supervisor: SupervisorConfig | None = None,
    resume_state: ResumeState | None = None,
) -> OptimizationResult:
    """Run one time-budgeted optimization; returns the full record.

    Parameters
    ----------
    problem:
        The objective (its ``sim_time`` sets the per-evaluation virtual
        cost and its ``maximize`` flag the reporting orientation).
    optimizer:
        A constructed :class:`BatchOptimizer` (its ``n_batch`` is the
        number of parallel workers).
    budget:
        Virtual seconds of optimization budget (paper: 1200 s),
        *excluding* the initial design.
    n_initial:
        Initial design size; defaults to ``16 · n_batch`` (Table 2).
        Ignored when ``initial_design`` is given.
    initial_design:
        Pre-drawn ``(n, d)`` initial points — the paper evaluates all
        algorithms on shared initial sets; the campaign runner passes
        the same design to every algorithm of a repetition.
    time_scale:
        Multiplier applied to the measured fit + acquisition durations
        before charging them to the virtual clock.
    overhead:
        Parallel-call overhead model for batch simulations.
    seed:
        Seed for the initial design (the optimizer has its own).
    max_cycles:
        Safety cap on the number of cycles.
    time_model:
        Optional :class:`AnalyticTimeModel` replacing the *measured*
        fit/acquisition durations with deterministic analytic costs
        (``time_scale`` is then ignored for the overhead charge).
    journal:
        Optional :class:`repro.resilience.RunJournal`: every event of
        the run (config, initial design, cycles with periodic optimizer
        state snapshots, faults, completion) is appended durably, so a
        killed run can be resumed via
        :func:`repro.resilience.resume.resume_run`.
    faults / retry:
        Optional :class:`repro.resilience.FaultSpec` /
        :class:`repro.resilience.RetryPolicy`: evaluations then go
        through a :class:`repro.resilience.FaultySimulatedCluster`
        which injects crash/timeout/NaN failures and charges the retry
        waiting to the virtual clock.
    checkpoint_every:
        Embed the full optimizer state snapshot in every k-th journaled
        cycle (default: every cycle). Larger values shrink the journal;
        resume restarts from the last snapshot, deterministically
        re-running at most ``k - 1`` cycles.
    on_nonfinite:
        What to do with NaN/inf objective values when no retry policy
        dictates it: ``"impute"`` (worst observed value, the default),
        ``"fantasy"`` (surrogate posterior mean), ``"drop"``, or
        ``"raise"``. Non-finite values never reach the GP fit.
    supervisor:
        Degraded-mode policy (:class:`~repro.core.supervision.SupervisorConfig`)
        of the always-on cycle supervisor; defaults to
        ``SupervisorConfig()``. The supervisor journals every model
        fallback as a ``degradation`` event, quarantines a persistently
        sick surrogate behind random-search proposals, and shrinks the
        batch when the cluster reports permanently dead workers. On a
        healthy run it consumes no randomness and changes nothing.
    resume_state:
        Internal hook used by :func:`repro.resilience.resume.resume_run`:
        a :class:`ResumeState` whose optimizer has already been
        restored. Skips the initial design and continues the journal's
        run under the remaining budget.
    """
    if budget <= 0:
        raise ConfigurationError(f"budget must be positive, got {budget}")
    if time_scale < 0:
        raise ConfigurationError(f"time_scale must be >= 0, got {time_scale}")
    if checkpoint_every < 1:
        raise ConfigurationError(
            f"checkpoint_every must be >= 1, got {checkpoint_every}"
        )
    if on_nonfinite not in NONFINITE_ACTIONS:
        raise ConfigurationError(
            f"on_nonfinite must be one of {NONFINITE_ACTIONS}, got {on_nonfinite!r}"
        )
    rng = as_generator(seed)
    q = optimizer.n_batch
    clock = VirtualClock()
    # Observability is read-only: spans/metrics never touch an RNG
    # stream or the journal, so enabling them is bit-neutral (the
    # golden-trace suite pins this).
    tracer = get_tracer()
    tracer.attach_clock(clock)
    metrics = get_metrics()
    if faults is not None:
        from repro.resilience.faults import FaultySimulatedCluster, RetryPolicy

        retry = retry if retry is not None else RetryPolicy()
        cluster = FaultySimulatedCluster(
            q,
            clock=clock,
            overhead=overhead,
            spec=faults,
            retry=retry,
            journal=journal,
        )
    else:
        cluster = SimulatedCluster(q, clock=clock, overhead=overhead)
    fallback = retry.fallback if retry is not None else on_nonfinite
    sup = CycleSupervisor(
        supervisor if supervisor is not None else SupervisorConfig(),
        problem,
        optimizer,
        journal=journal,
    )
    sign = -1.0 if problem.maximize else 1.0

    def native_best() -> float:
        return sign * optimizer.best_f

    if resume_state is None:
        # --- initial design (outside the budget, per Table 2) ---------
        if initial_design is not None:
            X0 = np.asarray(initial_design, dtype=np.float64)
        else:
            X0 = latin_hypercube(
                n_initial if n_initial is not None else 16 * q,
                problem.bounds,
                seed=rng,
            )
        y0_native = np.asarray(problem(X0), dtype=np.float64).reshape(-1)
        X0_used, y0_used = _guard_nonfinite(
            X0, sign * y0_native, None, fallback, journal=journal, cycle=0
        )
        if y0_used.size == 0:
            raise EvaluationError(
                "the entire initial design evaluated non-finite"
            )
        if journal is not None:
            journal.record("run_started", config=_run_config(
                problem, optimizer, budget, time_scale, seed, X0.shape[0],
                overhead, time_model, checkpoint_every, fallback,
                faults, retry, sup.config,
            ))
            journal.record(
                "initial_design",
                X=to_jsonable(X0),
                y_raw=to_jsonable(y0_native),
                X_used=to_jsonable(np.asarray(X0_used)),
                y_used=to_jsonable(sign * y0_used),
            )
        optimizer.initialize(X0_used, y0_used)
        clock.reset()  # the budget starts after the initial sampling
        cluster.n_evaluations = 0
        cluster.n_batches = 0
        initial_best = native_best()
        history: list[CycleRecord] = []
        cycle = 0
        n_initial_pts = X0.shape[0]
    else:
        # --- continue an interrupted run from its journal -------------
        clock.reset(resume_state.clock_start)
        cluster.n_evaluations = resume_state.n_evaluations
        cluster.n_batches = resume_state.n_batches
        initial_best = resume_state.initial_best
        history = list(resume_state.history)
        cycle = resume_state.cycle_start
        n_initial_pts = resume_state.n_initial
        if resume_state.supervisor is not None:
            sup.restore(resume_state.supervisor)
            alive = resume_state.supervisor.get("alive")
            if alive is not None:
                cluster.alive_workers = max(1, min(q, int(alive)))

    while clock.now < budget and cycle < max_cycles:
        t_start = clock.now
        with trace_span("cycle", cycle=cycle + 1,
                        algorithm=optimizer.name) as cyc_sp:
            sup.adapt_workers(cluster.alive_workers, cycle + 1)
            q_now = optimizer.n_batch
            with trace_span("propose", cycle=cycle + 1):
                proposal = sup.propose(cycle + 1)
            if time_model is not None:
                acq_charged = time_model.charge(
                    proposal, optimizer.X.shape[0], q_now
                )
            elif proposal.acq_durations is not None:
                # Parallel acquisition (BSP-EGO): charge the makespan of
                # the per-region durations spread over the workers.
                acq_wall = lpt_makespan(
                    [d * time_scale for d in proposal.acq_durations], q_now
                )
                acq_charged = proposal.fit_time * time_scale + acq_wall
            else:
                acq_charged = (
                    proposal.fit_time + proposal.acq_time
                ) * time_scale
            cluster.charge(acq_charged)

            t_before_sim = clock.now
            evals_before = cluster.n_evaluations
            with trace_span("evaluate", cycle=cycle + 1,
                            q=proposal.X.shape[0]) as ev_sp:
                y_native = np.asarray(
                    cluster.evaluate(problem, proposal.X), dtype=np.float64
                ).reshape(-1)
            sim_charged = clock.now - t_before_sim
            if tracer.enabled or metrics.enabled:
                # Per-worker busy/idle accounting on the virtual
                # timeline: the batch occupied alive_workers slots for
                # sim_charged virtual seconds; only n_evals · sim_time
                # of that capacity was spent simulating (the rest is
                # wave slack, parallel-call overhead, and retry backoff
                # under fault injection).
                n_evals = cluster.n_evaluations - evals_before
                busy = n_evals * float(problem.sim_time)
                idle = max(0.0, cluster.alive_workers * sim_charged - busy)
                ev_sp.set(n_evals=n_evals, busy_virtual_s=busy,
                          idle_virtual_s=idle)
                metrics.counter("cluster.busy_virtual_s").inc(busy)
                metrics.counter("cluster.idle_virtual_s").inc(idle)
                metrics.gauge("cluster.alive_workers").set(
                    cluster.alive_workers
                )
            X_used, y_used = _guard_nonfinite(
                proposal.X, sign * y_native, optimizer, fallback,
                journal=journal, cycle=cycle + 1,
            )
            if y_used.size > 0:
                optimizer.update(X_used, y_used)

            cycle += 1
            history.append(
                CycleRecord(
                    cycle=cycle,
                    t_start=t_start,
                    fit_time=proposal.fit_time,
                    acq_time=proposal.acq_time,
                    acq_charged=acq_charged,
                    sim_charged=sim_charged,
                    batch_size=proposal.X.shape[0],
                    best_value=native_best(),
                    n_evaluations=n_initial_pts + cluster.n_evaluations,
                )
            )
            if journal is not None:
                snapshot = (
                    optimizer.get_state()
                    if cycle % checkpoint_every == 0
                    else None
                )
                with trace_span("checkpoint", cycle=cycle,
                                snapshot=snapshot is not None):
                    journal.record(
                        "cycle",
                        cycle=cycle,
                        t_start=t_start,
                        clock=clock.now,
                        fit_time=proposal.fit_time,
                        acq_time=proposal.acq_time,
                        acq_charged=acq_charged,
                        sim_charged=sim_charged,
                        X=to_jsonable(np.asarray(proposal.X, dtype=np.float64)),
                        y_raw=to_jsonable(y_native),
                        X_used=to_jsonable(np.asarray(X_used, dtype=np.float64)),
                        y_used=to_jsonable(sign * y_used),
                        best_value=native_best(),
                        n_evaluations=n_initial_pts + cluster.n_evaluations,
                        n_batches=cluster.n_batches,
                        supervisor={**sup.state(), "alive": int(cluster.alive_workers)},
                        state=snapshot,
                    )
            if metrics.enabled:
                metrics.histogram("cycle.fit_s").observe(proposal.fit_time)
                metrics.histogram("cycle.acq_s").observe(proposal.acq_time)
                metrics.histogram("cycle.acq_charged_s").observe(acq_charged)
                metrics.histogram("cycle.sim_charged_s").observe(sim_charged)
                metrics.counter("cycles_total").inc()
            cyc_sp.set(best_value=native_best(),
                       n_evaluations=n_initial_pts + cluster.n_evaluations)

    result = OptimizationResult(
        problem=problem.name,
        algorithm=optimizer.name,
        n_batch=q,
        budget=float(budget),
        sim_time=float(problem.sim_time),
        time_scale=float(time_scale),
        seed=None if not isinstance(seed, (int, np.integer)) else int(seed),
        maximize=problem.maximize,
        best_x=optimizer.best_x,
        best_value=native_best(),
        initial_best=initial_best,
        n_initial=n_initial_pts,
        n_cycles=cycle,
        n_simulations=cluster.n_evaluations,
        elapsed=clock.now,
        history=history,
    )
    if journal is not None:
        journal.record(
            "run_completed",
            best_value=result.best_value,
            best_x=to_jsonable(np.asarray(result.best_x)),
            n_cycles=result.n_cycles,
            n_simulations=result.n_simulations,
            elapsed=result.elapsed,
        )
    return result


def _run_config(
    problem, optimizer, budget, time_scale, seed, n_initial,
    overhead, time_model, checkpoint_every, fallback, faults, retry,
    supervisor=None,
) -> dict:
    """The ``run_started`` journal payload: everything resume needs."""

    def _int_or_none(value):
        return int(value) if isinstance(value, (int, np.integer)) else None

    config = {
        "problem": problem.name,
        "dim": int(problem.dim),
        "sim_time": float(problem.sim_time),
        "maximize": bool(problem.maximize),
        "algorithm": optimizer.name,
        "n_batch": int(optimizer.n_batch),
        "budget": float(budget),
        "time_scale": float(time_scale),
        "seed": _int_or_none(seed),
        "n_initial": int(n_initial),
        "overhead": (
            None if overhead is None else {"o0": overhead.o0, "o1": overhead.o1}
        ),
        "time_model": (
            None
            if time_model is None
            else {
                "fit_coeff": time_model.fit_coeff,
                "acq_base": time_model.acq_base,
                "acq_per_candidate": time_model.acq_per_candidate,
            }
        ),
        "checkpoint_every": int(checkpoint_every),
        "on_nonfinite": fallback,
        "faults": (
            None
            if faults is None
            else {
                "crash_rate": faults.crash_rate,
                "timeout_rate": faults.timeout_rate,
                "nan_rate": faults.nan_rate,
                "timeout": faults.timeout,
                "seed": _int_or_none(faults.seed),
                "death_rate": faults.death_rate,
                "adaptive_timeout": faults.adaptive_timeout,
            }
        ),
        "supervisor": (
            None
            if supervisor is None
            else {
                "max_sick_cycles": supervisor.max_sick_cycles,
                "quarantine_cycles": supervisor.quarantine_cycles,
            }
        ),
        "retry": (
            None
            if retry is None
            else {
                "max_attempts": retry.max_attempts,
                "base_delay": retry.base_delay,
                "backoff": retry.backoff,
                "fallback": retry.fallback,
            }
        ),
    }
    # Scenario problems carry their declarative spec; journaling it is
    # what lets resume rebuild an ad-hoc fleet/regime/event workload
    # (plain problems emit the exact historical payload, key absent).
    spec = getattr(problem, "spec", None)
    if spec is not None and hasattr(spec, "to_dict"):
        config["problem_spec"] = spec.to_dict()
    return config
