"""The time-budgeted optimization driver (paper Algorithm 1 + Table 2).

Runs any :class:`~repro.core.base.BatchOptimizer` against a problem
under the paper's experimental protocol:

- an initial design of ``16 · n_batch`` points (Table 2), evaluated
  *outside* the budget ("20 min, without initial sampling");
- a loop of cycles — fit / acquire / batch-evaluate — until the
  virtual wall clock passes the budget. Simulation time is charged by
  the :class:`~repro.parallel.SimulatedCluster` (``sim_time`` per wave
  plus the parallel-call overhead); the *measured* fit + acquisition
  time is charged too, scaled by ``time_scale`` so a laptop run
  reproduces the paper's overhead-to-simulation ratios;
- per-cycle records of every timing component and the running best,
  which the experiment harness turns into the paper's figures.

Maximization problems are negated at this boundary: optimizers always
minimize internally, results are reported in the problem's native
orientation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.base import BatchOptimizer, Proposal
from repro.doe import latin_hypercube
from repro.parallel import OverheadModel, SimulatedCluster, VirtualClock, lpt_makespan
from repro.util import ConfigurationError, RandomState, as_generator


@dataclass(frozen=True)
class AnalyticTimeModel:
    """Deterministic stand-in for the measured fit/acquisition times.

    The default driver charges *measured* wall time (scaled) — faithful
    but machine-dependent. This model replaces the measurement with an
    analytic cost so driver-level behaviour (cycle counts, breaking
    points) becomes bit-reproducible in tests and teaching material:

    - surrogate fit: ``fit_coeff · n³`` seconds for n training points
      (the exact GP's Cholesky cost),
    - acquisition: ``acq_base + acq_per_candidate · q`` seconds, or the
      same expression per region for parallel APs.
    """

    fit_coeff: float = 2e-9
    acq_base: float = 0.2
    acq_per_candidate: float = 0.1

    def fit_time(self, n_train: int) -> float:
        return self.fit_coeff * float(n_train) ** 3

    def acq_time(self, q: int) -> float:
        return self.acq_base + self.acq_per_candidate * q

    def charge(self, proposal: Proposal, n_train: int, n_workers: int) -> float:
        """Virtual seconds for one proposal under this model."""
        fit = self.fit_time(n_train)
        if proposal.acq_durations is not None:
            per_region = self.acq_time(1)
            return fit + lpt_makespan(
                [per_region] * len(proposal.acq_durations), n_workers
            )
        return fit + self.acq_time(proposal.X.shape[0])


@dataclass
class CycleRecord:
    """One fit/acquire/evaluate cycle of the BO loop."""

    cycle: int
    t_start: float  # virtual clock at cycle start [s]
    fit_time: float  # measured surrogate fit [s]
    acq_time: float  # measured acquisition (serial sum) [s]
    acq_charged: float  # virtual seconds charged for fit+acquisition
    sim_charged: float  # virtual seconds charged for the batch
    batch_size: int
    best_value: float  # running best, native orientation
    n_evaluations: int  # cumulative, initial design included


@dataclass
class OptimizationResult:
    """Everything one run produces (JSON-serializable via the harness)."""

    problem: str
    algorithm: str
    n_batch: int
    budget: float
    sim_time: float
    time_scale: float
    seed: int | None
    maximize: bool
    best_x: np.ndarray
    best_value: float  # native orientation
    initial_best: float  # best of the initial design
    n_initial: int
    n_cycles: int
    n_simulations: int  # budgeted simulations (initial design excluded)
    elapsed: float  # virtual seconds consumed by the budgeted phase
    history: list[CycleRecord] = field(default_factory=list)

    @property
    def trajectory(self) -> np.ndarray:
        """Running best after each cycle (native orientation)."""
        return np.asarray([rec.best_value for rec in self.history])


def run_optimization(
    problem,
    optimizer: BatchOptimizer,
    budget: float,
    *,
    n_initial: int | None = None,
    initial_design=None,
    time_scale: float = 1.0,
    overhead: OverheadModel | None = None,
    seed: RandomState = None,
    max_cycles: int = 100_000,
    time_model: AnalyticTimeModel | None = None,
) -> OptimizationResult:
    """Run one time-budgeted optimization; returns the full record.

    Parameters
    ----------
    problem:
        The objective (its ``sim_time`` sets the per-evaluation virtual
        cost and its ``maximize`` flag the reporting orientation).
    optimizer:
        A constructed :class:`BatchOptimizer` (its ``n_batch`` is the
        number of parallel workers).
    budget:
        Virtual seconds of optimization budget (paper: 1200 s),
        *excluding* the initial design.
    n_initial:
        Initial design size; defaults to ``16 · n_batch`` (Table 2).
        Ignored when ``initial_design`` is given.
    initial_design:
        Pre-drawn ``(n, d)`` initial points — the paper evaluates all
        algorithms on shared initial sets; the campaign runner passes
        the same design to every algorithm of a repetition.
    time_scale:
        Multiplier applied to the measured fit + acquisition durations
        before charging them to the virtual clock.
    overhead:
        Parallel-call overhead model for batch simulations.
    seed:
        Seed for the initial design (the optimizer has its own).
    max_cycles:
        Safety cap on the number of cycles.
    time_model:
        Optional :class:`AnalyticTimeModel` replacing the *measured*
        fit/acquisition durations with deterministic analytic costs
        (``time_scale`` is then ignored for the overhead charge).
    """
    if budget <= 0:
        raise ConfigurationError(f"budget must be positive, got {budget}")
    if time_scale < 0:
        raise ConfigurationError(f"time_scale must be >= 0, got {time_scale}")
    rng = as_generator(seed)
    q = optimizer.n_batch
    clock = VirtualClock()
    cluster = SimulatedCluster(q, clock=clock, overhead=overhead)

    # --- initial design (outside the budget, per Table 2) -------------
    if initial_design is not None:
        X0 = np.asarray(initial_design, dtype=np.float64)
    else:
        X0 = latin_hypercube(
            n_initial if n_initial is not None else 16 * q,
            problem.bounds,
            seed=rng,
        )
    y0_native = problem(X0)
    sign = -1.0 if problem.maximize else 1.0
    optimizer.initialize(X0, sign * y0_native)
    clock.reset()  # the budget starts after the initial sampling
    cluster.n_evaluations = 0
    cluster.n_batches = 0

    def native_best() -> float:
        return sign * optimizer.best_f

    initial_best = native_best()
    history: list[CycleRecord] = []
    cycle = 0
    while clock.now < budget and cycle < max_cycles:
        t_start = clock.now
        proposal = optimizer.propose()
        if time_model is not None:
            acq_charged = time_model.charge(
                proposal, optimizer.X.shape[0], q
            )
        elif proposal.acq_durations is not None:
            # Parallel acquisition (BSP-EGO): charge the makespan of
            # the per-region durations spread over the workers.
            acq_wall = lpt_makespan(
                [d * time_scale for d in proposal.acq_durations], q
            )
            acq_charged = proposal.fit_time * time_scale + acq_wall
        else:
            acq_charged = (proposal.fit_time + proposal.acq_time) * time_scale
        cluster.charge(acq_charged)

        t_before_sim = clock.now
        y_native = cluster.evaluate(problem, proposal.X)
        sim_charged = clock.now - t_before_sim
        optimizer.update(proposal.X, sign * y_native)

        cycle += 1
        history.append(
            CycleRecord(
                cycle=cycle,
                t_start=t_start,
                fit_time=proposal.fit_time,
                acq_time=proposal.acq_time,
                acq_charged=acq_charged,
                sim_charged=sim_charged,
                batch_size=proposal.X.shape[0],
                best_value=native_best(),
                n_evaluations=X0.shape[0] + cluster.n_evaluations,
            )
        )

    return OptimizationResult(
        problem=problem.name,
        algorithm=optimizer.name,
        n_batch=q,
        budget=float(budget),
        sim_time=float(problem.sim_time),
        time_scale=float(time_scale),
        seed=None if not isinstance(seed, (int, np.integer)) else int(seed),
        maximize=problem.maximize,
        best_x=optimizer.best_x,
        best_value=native_best(),
        initial_best=initial_best,
        n_initial=X0.shape[0],
        n_cycles=cycle,
        n_simulations=cluster.n_evaluations,
        elapsed=clock.now,
        history=history,
    )
