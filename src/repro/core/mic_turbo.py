"""mic-TuRBO: multi-infill criteria inside a trust region.

The paper's Discussion closes with: *"Combining the strength of the
different approaches remains to be investigated. For example, a
multi-infill-criterion TuRBO can easily be considered and
implemented."* This module is that combination:

- the trust-region machinery (centre, ARD-scaled box, expand / shrink /
  restart) is inherited unchanged from :class:`~repro.core.TuRBO`;
- the batch inside the region is built by the mic acquisition process —
  alternating EI and UCB maximizations with Kriging-Believer fantasy
  updates — instead of joint MC-qEI.

It pairs TuRBO's cheap, local acquisition with mic-q-EGO's batch
diversity; the ablation benches compare it against both parents.
"""

from __future__ import annotations

import numpy as np

from repro.acquisition import ExpectedImprovement, UpperConfidenceBound, optimize_acqf
from repro.core.base import Proposal, _Stopwatch
from repro.core.turbo import TuRBO
from repro.util import RandomState


class MicTuRBO(TuRBO):
    """TuRBO-1 with the multi-infill (EI+UCB) acquisition process."""

    name = "mic-TuRBO"

    def __init__(
        self,
        problem,
        n_batch: int,
        seed: RandomState = None,
        gp_options: dict | None = None,
        acq_options: dict | None = None,
        ucb_beta: float = 2.0,
        **turbo_kwargs,
    ):
        super().__init__(
            problem, n_batch, seed, gp_options, acq_options, **turbo_kwargs
        )
        self.ucb_beta = float(ucb_beta)

    def propose(self) -> Proposal:
        if self._restart_pending:
            return super().propose()

        gp, fit_time = self._fit_gp(self.X_tr, self.y_tr)
        opts = self.acq_options
        best_idx = int(np.argmin(self.y_tr))
        center = self.X_tr[best_idx]
        best_f = float(self.y_tr[best_idx])
        tr_bounds = self.trust_region_bounds(gp, center)

        sw = _Stopwatch()
        batch: list[np.ndarray] = []
        with sw:
            model = gp
            while len(batch) < self.n_batch:
                round_points: list[np.ndarray] = []
                criteria = [ExpectedImprovement(model, best_f)]
                if self.n_batch > 1:
                    criteria.append(UpperConfidenceBound(model, self.ucb_beta))
                for acq in criteria:
                    if len(batch) >= self.n_batch:
                        break
                    x, _ = optimize_acqf(
                        acq,
                        tr_bounds,
                        n_restarts=opts["n_restarts"],
                        raw_samples=opts["raw_samples"],
                        maxiter=opts["maxiter"],
                        seed=self.rng,
                        initial_points=center[None, :],
                        avoid=self.X,
                        batch_starts=opts.get("batch_starts", True),
                    )
                    x = self._dedupe(x, batch)
                    batch.append(x)
                    round_points.append(x)
                if len(batch) < self.n_batch and round_points:
                    model = model.fantasize(np.asarray(round_points))
        return Proposal(
            X=np.asarray(batch),
            fit_time=fit_time,
            acq_time=sw.total,
            info={"length": self.length},
        )
