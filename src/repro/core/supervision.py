"""Driver-level supervision of the model/acquisition layer.

The synchronous driver runs fit → acquire → evaluate cycles under a
hard virtual wall-clock budget; one unhandled model failure used to
forfeit the run. :class:`CycleSupervisor` wraps the acquisition step so
the run *always* completes:

- every degradation the surrogate ladder reports
  (:meth:`~repro.core.base.BatchOptimizer.drain_degradations`) is
  recorded as a ``degradation`` event in the run journal;
- a ``propose()`` that raises is absorbed: the cycle falls back to a
  space-filling random batch (drawn from the optimizer's own RNG
  stream, so checkpoint/resume stays bit-exact) and the failure is
  journaled;
- a *persistently* sick model — ``max_sick_cycles`` consecutive
  failed/degraded cycles — is quarantined: for ``quarantine_cycles``
  cycles the model layer is skipped entirely and random-search
  proposals are dispatched, after which the surrogate gets another
  chance and the run recovers if it heals;
- when the executor reports permanently dead workers the batch size is
  elastically shrunk to the surviving slots (and journaled), so the
  run keeps its remaining parallelism instead of stalling.

The supervisor's counters are embedded in every journaled cycle and
restored on resume, keeping kill-and-resume equivalence intact with
supervision enabled.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.base import Proposal
from repro.doe import latin_hypercube
from repro.obs.metrics import get_metrics
from repro.obs.tracer import trace_event
from repro.util import BudgetExhausted, ConfigurationError


@dataclass(frozen=True)
class SupervisorConfig:
    """Degraded-mode policy of the cycle supervisor.

    ``max_sick_cycles`` consecutive sick cycles (a raised ``propose()``
    or a surrogate fit that needed a fallback rung) trigger quarantine:
    ``quarantine_cycles`` cycles of pure random-search proposals before
    the model layer is retried.
    """

    max_sick_cycles: int = 3
    quarantine_cycles: int = 5

    def __post_init__(self):
        if self.max_sick_cycles < 1:
            raise ConfigurationError(
                f"max_sick_cycles must be >= 1, got {self.max_sick_cycles}"
            )
        if self.quarantine_cycles < 0:
            raise ConfigurationError(
                f"quarantine_cycles must be >= 0, got {self.quarantine_cycles}"
            )


class CycleSupervisor:
    """Self-healing wrapper around one optimizer's propose() cycle."""

    def __init__(self, config: SupervisorConfig, problem, optimizer, journal=None):
        self.config = config
        self.problem = problem
        self.optimizer = optimizer
        self.journal = journal
        self.fail_streak = 0
        self.quarantine_remaining = 0
        self.n_degradations = 0

    # -- checkpointing --------------------------------------------------
    def state(self) -> dict:
        """Per-cycle snapshot embedded in the journal's cycle events."""
        return {
            "fail_streak": int(self.fail_streak),
            "quarantine": int(self.quarantine_remaining),
            "q": int(self.optimizer.n_batch),
        }

    def restore(self, state: dict) -> None:
        """Reinstall a snapshot taken by :meth:`state` (resume path)."""
        self.fail_streak = int(state.get("fail_streak", 0))
        self.quarantine_remaining = int(state.get("quarantine", 0))
        q = state.get("q")
        if q is not None:
            self.optimizer.n_batch = int(q)

    # -- journaling -----------------------------------------------------
    def _record(self, cycle: int, **payload) -> None:
        self.n_degradations += 1
        # Mirror every degradation into the observability layer (both
        # are no-ops unless enabled, and neither touches the journal
        # bytes or any RNG stream).
        trace_event("degradation", cycle=cycle,
                    kind=payload.get("kind"), stage=payload.get("stage"))
        metrics = get_metrics()
        if metrics.enabled:
            metrics.counter("degradations_total").inc()
            stage = payload.get("stage", "unknown")
            metrics.counter(f"degradations.{stage}").inc()
        if self.journal is not None:
            self.journal.record("degradation", cycle=cycle, **payload)

    # -- executor supervision -------------------------------------------
    def adapt_workers(self, alive: int, cycle: int) -> None:
        """Elastic batch shrink after permanent worker deaths."""
        alive = max(1, int(alive))
        if alive < self.optimizer.n_batch:
            old = int(self.optimizer.n_batch)
            self.optimizer.n_batch = alive
            self._record(
                cycle,
                stage="executor",
                kind="worker_death",
                action="shrink_batch",
                q_from=old,
                q_to=alive,
            )

    # -- model supervision ----------------------------------------------
    def _random_proposal(self, reason: str) -> Proposal:
        X = latin_hypercube(
            self.optimizer.n_batch, self.problem.bounds, seed=self.optimizer.rng
        )
        return Proposal(X=X, fit_time=0.0, acq_time=0.0, info={"fallback": reason})

    def _sanitize(self, proposal: Proposal, cycle: int) -> Proposal:
        """Clip the batch into the box; replace non-finite rows."""
        X = np.asarray(proposal.X, dtype=np.float64)
        bad = ~np.all(np.isfinite(X), axis=1)
        if bad.any():
            lo = self.problem.lower
            hi = self.problem.upper
            X = X.copy()
            X[bad] = lo + self.optimizer.rng.random(
                (int(bad.sum()), self.problem.dim)
            ) * (hi - lo)
            self._record(
                cycle,
                stage="model",
                kind="nonfinite_candidates",
                action="random_replace",
                indices=np.flatnonzero(bad).tolist(),
            )
            proposal.X = X
        bounds = self.problem.bounds
        proposal.X = np.clip(np.asarray(proposal.X), bounds[:, 0], bounds[:, 1])
        return proposal

    def _enter_quarantine_if_sick(self, cycle: int) -> None:
        if self.fail_streak >= self.config.max_sick_cycles:
            self.quarantine_remaining = self.config.quarantine_cycles
            self.fail_streak = 0
            if self.quarantine_remaining > 0:
                self._record(
                    cycle,
                    stage="model",
                    kind="quarantine_entered",
                    action="random_search",
                    cycles=self.config.quarantine_cycles,
                )

    def propose(self, cycle: int) -> Proposal:
        """One supervised acquisition step; never raises on model bugs.

        ``KeyboardInterrupt`` / ``SystemExit`` (a genuine kill) and
        :class:`~repro.util.BudgetExhausted` still propagate.
        """
        if self.quarantine_remaining > 0:
            self.quarantine_remaining -= 1
            self._record(
                cycle,
                stage="model",
                kind="quarantine",
                action="random_search",
                remaining=int(self.quarantine_remaining),
            )
            return self._random_proposal("quarantine")

        try:
            proposal = self.optimizer.propose()
        except (KeyboardInterrupt, SystemExit, BudgetExhausted):
            raise
        except Exception as exc:
            for ev in self._drain():
                self._record(cycle, **ev)
            self.fail_streak += 1
            self._record(
                cycle,
                stage="model",
                kind=f"propose_failed:{type(exc).__name__}",
                action="random_search",
                detail=str(exc)[:500],
                fail_streak=int(self.fail_streak),
            )
            self._enter_quarantine_if_sick(cycle)
            return self._random_proposal("propose_failed")

        sick = False
        for ev in self._drain():
            if ev.get("kind") == "fit_failed":
                sick = True
            self._record(cycle, **ev)
        self.fail_streak = self.fail_streak + 1 if sick else 0
        self._enter_quarantine_if_sick(cycle)
        return self._sanitize(proposal, cycle)

    def _drain(self) -> list[dict]:
        drain = getattr(self.optimizer, "drain_degradations", None)
        return drain() if drain is not None else []
