"""TuRBO: trust-region Bayesian optimization (Eriksson et al., 2019).

One trust region (the paper's configuration), as in the BoTorch
implementation: a hyper-rectangle centred at the incumbent whose side
lengths are the base length L rescaled per-dimension by the GP's ARD
lengthscales (normalized to unit geometric mean, keeping the volume at
L^d). The batch is chosen by MC-qEI *inside* the trust region — the
paper's variant; the original Thompson-sampling rule is available via
``acquisition="thompson"`` for the ablation bench.

Region dynamics: ``succ_tol`` consecutive improving cycles double L,
``fail_tol`` consecutive non-improving cycles halve it; when L falls
below L_min the region restarts from a fresh space-filling design
(which consumes evaluation budget, as in the original).
"""

from __future__ import annotations

import math

import numpy as np

from repro.acquisition import (
    ExpectedImprovement,
    optimize_acqf,
    qExpectedImprovement,
    thompson_sample,
)
from repro.core.base import BatchOptimizer, Proposal, _Stopwatch
from repro.doe import latin_hypercube
from repro.util import ConfigurationError, RandomState


class TuRBO(BatchOptimizer):
    """Trust-region batch BO with one trust region (TuRBO-1)."""

    name = "TuRBO"

    #: Trust-region dynamics snapshotted for checkpoint/resume.
    _state_attrs = (
        "length",
        "n_succ",
        "n_fail",
        "n_restarts_done",
        "X_tr",
        "y_tr",
        "_restart_pending",
        "_restart_remaining",
    )

    def __init__(
        self,
        problem,
        n_batch: int,
        seed: RandomState = None,
        gp_options: dict | None = None,
        acq_options: dict | None = None,
        length_init: float = 0.8,
        length_min: float = 2.0**-7,
        length_max: float = 1.6,
        succ_tol: int = 3,
        fail_tol: int | None = None,
        acquisition: str = "qei",
        n_thompson_candidates: int = 512,
    ):
        super().__init__(problem, n_batch, seed, gp_options, acq_options)
        if not (0 < length_min < length_init <= length_max):
            raise ConfigurationError("need 0 < length_min < length_init <= length_max")
        if acquisition not in ("qei", "thompson"):
            raise ConfigurationError("acquisition must be 'qei' or 'thompson'")
        self.length_init = float(length_init)
        self.length_min = float(length_min)
        self.length_max = float(length_max)
        self.succ_tol = int(succ_tol)
        self.fail_tol = (
            int(fail_tol)
            if fail_tol is not None
            else int(math.ceil(max(4.0, float(problem.dim)) / n_batch))
        )
        self.acquisition = acquisition
        self.n_thompson_candidates = int(n_thompson_candidates)

        # Trust-region state (reset on restart).
        self.length = self.length_init
        self.n_succ = 0
        self.n_fail = 0
        self.n_restarts_done = 0
        # Data since the last restart (the TR's own history).
        self.X_tr = np.empty((0, problem.dim))
        self.y_tr = np.empty(0)
        self._restart_pending = False
        self._restart_remaining = 0
        self._n_init = max(2 * problem.dim, 4 * n_batch)

    # ------------------------------------------------------------------
    def initialize(self, X0, y0) -> None:
        super().initialize(X0, y0)
        self.X_tr = self.X.copy()
        self.y_tr = self.y.copy()

    def _after_update(self, X_new, y_new) -> None:
        self.X_tr = np.vstack([self.X_tr, X_new])
        self.y_tr = np.concatenate([self.y_tr, y_new])
        if self._restart_pending:
            self._restart_remaining -= X_new.shape[0]
            if self._restart_remaining <= 0:
                self._restart_pending = False
            return
        best_before = float(np.min(self.y_tr[: -X_new.shape[0]]))
        improved = float(np.min(y_new)) < best_before - 1e-3 * abs(best_before)
        if improved:
            self.n_succ += 1
            self.n_fail = 0
        else:
            self.n_fail += 1
            self.n_succ = 0
        if self.n_succ >= self.succ_tol:
            self.length = min(2.0 * self.length, self.length_max)
            self.n_succ = 0
        elif self.n_fail >= self.fail_tol:
            self.length /= 2.0
            self.n_fail = 0
        if self.length < self.length_min:
            self._begin_restart()

    def _begin_restart(self) -> None:
        """Collapse detected: restart the TR from a fresh design."""
        self.length = self.length_init
        self.n_succ = 0
        self.n_fail = 0
        self.n_restarts_done += 1
        self.X_tr = np.empty((0, self.problem.dim))
        self.y_tr = np.empty(0)
        self._restart_pending = True
        self._restart_remaining = self._n_init

    # ------------------------------------------------------------------
    def trust_region_bounds(self, gp, center: np.ndarray) -> np.ndarray:
        """The TR box in original coordinates, clipped to the domain."""
        lengthscales = self._ard_lengthscales(gp)
        weights = lengthscales / np.exp(np.mean(np.log(lengthscales)))
        span = self.problem.upper - self.problem.lower
        half = 0.5 * self.length * weights * span
        lo = np.maximum(center - half, self.problem.lower)
        hi = np.minimum(center + half, self.problem.upper)
        # Guard against degenerate boxes at the domain corners.
        width = np.maximum(hi - lo, 1e-9 * span)
        return np.column_stack([lo, lo + width])

    @staticmethod
    def _ard_lengthscales(gp) -> np.ndarray:
        kernel = gp.kernel
        inner = getattr(kernel, "inner", kernel)
        ls = np.atleast_1d(getattr(inner, "lengthscale", np.array([1.0])))
        if ls.shape[0] != gp.dim:
            ls = np.full(gp.dim, float(ls[0]))
        return ls

    def propose(self) -> Proposal:
        if self._restart_pending:
            # Space-filling points to re-seed the region; negligible
            # acquisition cost, like the paper's initial sampling.
            k = min(self.n_batch, max(self._restart_remaining, 1))
            X = latin_hypercube(k, self.problem.bounds, seed=self.rng)
            if k < self.n_batch:
                X = np.vstack(
                    [
                        X,
                        latin_hypercube(
                            self.n_batch - k, self.problem.bounds, seed=self.rng
                        ),
                    ]
                )
            return Proposal(X=X, fit_time=0.0, acq_time=0.0, info={"restart": True})

        gp, fit_time = self._fit_gp(self.X_tr, self.y_tr)
        opts = self.acq_options
        best_idx = int(np.argmin(self.y_tr))
        center = self.X_tr[best_idx]
        best_f = float(self.y_tr[best_idx])
        tr_bounds = self.trust_region_bounds(gp, center)

        sw = _Stopwatch()
        with sw:
            if self.acquisition == "thompson":
                lo = tr_bounds[:, 0]
                hi = tr_bounds[:, 1]
                cand = lo + self.rng.random(
                    (self.n_thompson_candidates, self.problem.dim)
                ) * (hi - lo)
                X = thompson_sample(gp, cand, q=self.n_batch, seed=self.rng)
            elif self.n_batch == 1:
                acq = ExpectedImprovement(gp, best_f)
                x, _ = optimize_acqf(
                    acq,
                    tr_bounds,
                    n_restarts=opts["n_restarts"],
                    raw_samples=opts["raw_samples"],
                    maxiter=opts["maxiter"],
                    seed=self.rng,
                    initial_points=center[None, :],
                    avoid=self.X,
                    batch_starts=opts.get("batch_starts", True),
                )
                X = x[None, :]
            else:
                acq = qExpectedImprovement(
                    gp, best_f, q=self.n_batch, n_mc=opts["n_mc"], seed=self.rng
                )
                lo = tr_bounds[:, 0]
                hi = tr_bounds[:, 1]
                warm = np.clip(
                    center[None, :]
                    + self.rng.normal(0.0, 0.1, (self.n_batch, self.problem.dim))
                    * (hi - lo),
                    lo,
                    hi,
                )
                X, _ = optimize_acqf(
                    acq,
                    tr_bounds,
                    q=self.n_batch,
                    n_restarts=opts["n_restarts"],
                    raw_samples=opts["raw_samples"],
                    maxiter=opts["maxiter"],
                    seed=self.rng,
                    initial_points=[warm],
                    avoid=self.X,
                    batch_starts=opts.get("batch_starts", True),
                )
        return Proposal(
            X=np.asarray(X),
            fit_time=fit_time,
            acq_time=sw.total,
            info={"length": self.length},
        )
