"""mic-q-EGO: multi-infill-criteria q-EGO (the paper's Algorithm 2).

The authors' variant of KB-q-EGO: per surrogate state, *two* different
acquisition functions (EI as the primary criterion and UCB for added
exploitation, paper Table 3) are each maximized once, yielding two
candidates per fantasy update instead of one. This halves the number of
sequential model updates per cycle — the paper's main lever against the
Kriging Believer bottleneck — and adds diversity to the batch.

With ``n_batch = 1`` only EI is used (Table 3, first row).
"""

from __future__ import annotations

import numpy as np

from repro.acquisition import (
    ExpectedImprovement,
    ProbabilityOfImprovement,
    ScaledExpectedImprovement,
    UpperConfidenceBound,
    optimize_acqf,
)
from repro.core.base import BatchOptimizer, Proposal, _Stopwatch
from repro.util import ConfigurationError, RandomState

#: Criterion names accepted by ``criteria=...`` (ablation hook; the
#: paper's configuration is ("ei", "ucb")).
CRITERIA = ("ei", "ucb", "pi", "sei")


class MicQEGO(BatchOptimizer):
    """Multi-infill-criteria Kriging-Believer batch EGO (EI + UCB)."""

    name = "mic-q-EGO"

    def __init__(
        self,
        problem,
        n_batch: int,
        seed: RandomState = None,
        gp_options: dict | None = None,
        acq_options: dict | None = None,
        ucb_beta: float = 2.0,
        criteria: tuple = ("ei", "ucb"),
    ):
        super().__init__(problem, n_batch, seed, gp_options, acq_options)
        self.ucb_beta = float(ucb_beta)
        criteria = tuple(str(c).lower() for c in criteria)
        if not criteria:
            raise ConfigurationError("criteria must not be empty")
        for c in criteria:
            if c not in CRITERIA:
                raise ConfigurationError(
                    f"unknown criterion {c!r}; available: {CRITERIA}"
                )
        self.criteria_names = criteria

    def _make_criterion(self, name: str, model, best_f: float):
        if name == "ei":
            return ExpectedImprovement(model, best_f)
        if name == "ucb":
            return UpperConfidenceBound(model, beta=self.ucb_beta)
        if name == "pi":
            return ProbabilityOfImprovement(model, best_f)
        return ScaledExpectedImprovement(model, best_f)

    def _criteria(self, model, best_f: float) -> list:
        if self.n_batch == 1:
            # Table 3: the primary criterion only at q = 1.
            return [self._make_criterion(self.criteria_names[0], model, best_f)]
        return [
            self._make_criterion(name, model, best_f)
            for name in self.criteria_names
        ]

    def propose(self) -> Proposal:
        gp, fit_time = self._fit_gp()
        opts = self.acq_options
        sw = _Stopwatch()
        batch: list = []
        with sw:
            model = gp
            best_f = self.best_f
            while len(batch) < self.n_batch:
                round_points: list = []
                for acq in self._criteria(model, best_f):
                    if len(batch) >= self.n_batch:
                        break
                    x, _ = optimize_acqf(
                        acq,
                        self.problem.bounds,
                        n_restarts=opts["n_restarts"],
                        raw_samples=opts["raw_samples"],
                        maxiter=opts["maxiter"],
                        seed=self.rng,
                        initial_points=self.best_x[None, :],
                        avoid=self.X,
                        batch_starts=opts.get("batch_starts", True),
                    )
                    x = self._dedupe(x, batch)
                    batch.append(x)
                    round_points.append(x)
                if len(batch) < self.n_batch and round_points:
                    # One partial (fantasy) update per round of criteria
                    # — Algorithm 2 line 11, with the predicted values.
                    model = model.fantasize(np.asarray(round_points))
        return Proposal(X=np.asarray(batch), fit_time=fit_time, acq_time=sw.total)
