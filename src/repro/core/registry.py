"""Algorithm registry and the one-call convenience entry point."""

from __future__ import annotations

from repro.core.base import BatchOptimizer
from repro.core.bsp_ego import BSPEGO
from repro.core.driver import OptimizationResult, run_optimization
from repro.core.kb_qego import KBqEGO
from repro.core.lp_ego import LPEGO
from repro.core.mc_qego import MCqEGO
from repro.core.mic_qego import MicQEGO
from repro.core.mic_turbo import MicTuRBO
from repro.core.mo_bpi import MOBPI
from repro.core.random_search import RandomSearch
from repro.core.turbo import TuRBO
from repro.core.turbo_m import TuRBOm
from repro.util import ConfigurationError, RandomState

#: Canonical name -> class; keys are the lookup aliases.
ALGORITHMS: dict[str, type[BatchOptimizer]] = {
    "kb-q-ego": KBqEGO,
    "kb_qego": KBqEGO,
    "mic-q-ego": MicQEGO,
    "mic_qego": MicQEGO,
    "mc-based-q-ego": MCqEGO,
    "mc-q-ego": MCqEGO,
    "mc_qego": MCqEGO,
    "bsp-ego": BSPEGO,
    "bsp_ego": BSPEGO,
    "lp-ego": LPEGO,
    "lp_ego": LPEGO,
    "turbo": TuRBO,
    "turbo-m": TuRBOm,
    "turbo_m": TuRBOm,
    "mic-turbo": MicTuRBO,
    "mic_turbo": MicTuRBO,
    "mo-bpi": MOBPI,
    "mo_bpi": MOBPI,
    "random": RandomSearch,
}

#: The paper's five algorithms, in its presentation order.
PAPER_ALGORITHMS = ("KB-q-EGO", "mic-q-EGO", "MC-based q-EGO", "BSP-EGO", "TuRBO")

#: Algorithms resolved lazily at construction time. These live in
#: subsystems that themselves build on :mod:`repro.core` (the portfolio
#: layer wraps the core strategies as arms), so importing them here
#: eagerly would be an import cycle.
LAZY_ALGORITHMS = ("portfolio",)


def algorithm_names() -> list[str]:
    """Every constructible algorithm name (canonical spellings)."""
    return sorted({cls.name for cls in ALGORITHMS.values()} | set(LAZY_ALGORITHMS))


def is_known_algorithm(name: str) -> bool:
    """Whether ``make_optimizer`` accepts this (normalized) name."""
    key = str(name).strip().lower().replace(" ", "-")
    return key in ALGORITHMS or key in LAZY_ALGORITHMS


def make_optimizer(
    name: str,
    problem,
    n_batch: int,
    seed: RandomState = None,
    **kwargs,
) -> BatchOptimizer:
    """Instantiate an algorithm by (case/punctuation-insensitive) name."""
    key = name.strip().lower().replace(" ", "-")
    if key == "portfolio":
        from repro.portfolio.optimizer import PortfolioOptimizer

        return PortfolioOptimizer(problem, n_batch, seed=seed, **kwargs)
    if key not in ALGORITHMS:
        raise ConfigurationError(
            f"unknown algorithm {name!r}; available: {algorithm_names()}"
        )
    return ALGORITHMS[key](problem, n_batch, seed=seed, **kwargs)


def optimize(
    problem,
    algorithm: str = "turbo",
    n_batch: int = 4,
    budget: float = 1200.0,
    seed: RandomState = None,
    time_scale: float = 1.0,
    **kwargs,
) -> OptimizationResult:
    """One-call parallel Bayesian optimization.

    Builds the named algorithm and runs it under the time-budgeted
    driver with the paper's defaults (initial design of
    ``16 · n_batch``, 20-minute budget). Extra keyword arguments are
    forwarded to the algorithm constructor.

    Example
    -------
    >>> from repro import optimize
    >>> from repro.problems import get_benchmark
    >>> result = optimize(get_benchmark("ackley", sim_time=10.0),
    ...                   algorithm="turbo", n_batch=4,
    ...                   budget=120.0, seed=0)
    >>> result.best_value  # doctest: +SKIP
    """
    opt = make_optimizer(algorithm, problem, n_batch, seed=seed, **kwargs)
    return run_optimization(
        problem, opt, budget, seed=seed, time_scale=time_scale
    )
