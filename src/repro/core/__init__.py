"""The five parallel BO algorithms under study, plus the driver.

This is the paper's subject matter (§2.2): five batch-acquisition
processes on top of the same GP surrogate —

=================  ==================================================
KB-q-EGO           sequential Kriging-Believer fantasies, EI
mic-q-EGO          KB fantasies with two criteria per update (EI+UCB)
MC-based q-EGO     joint Monte-Carlo qEI over the whole batch
BSP-EGO            parallel per-sub-region EI on a binary partition
TuRBO              MC-qEI inside an adaptive trust region
=================  ==================================================

— all run by :func:`run_optimization` under a virtual wall-clock
budget with measured acquisition overheads, exactly the paper's
experimental protocol.
"""

from repro.core.async_driver import AsyncResult, run_async_optimization
from repro.core.base import BatchOptimizer, Proposal
from repro.core.bsp_ego import BSPEGO
from repro.core.driver import (
    AnalyticTimeModel,
    CycleRecord,
    OptimizationResult,
    run_optimization,
)
from repro.core.kb_qego import KBqEGO
from repro.core.lp_ego import LPEGO
from repro.core.mc_qego import MCqEGO
from repro.core.mic_qego import MicQEGO
from repro.core.mic_turbo import MicTuRBO
from repro.core.random_search import RandomSearch
from repro.core.registry import (
    ALGORITHMS,
    LAZY_ALGORITHMS,
    PAPER_ALGORITHMS,
    algorithm_names,
    is_known_algorithm,
    make_optimizer,
    optimize,
)
from repro.core.supervision import CycleSupervisor, SupervisorConfig
from repro.core.turbo import TuRBO
from repro.core.turbo_m import TuRBOm

__all__ = [
    "ALGORITHMS",
    "AnalyticTimeModel",
    "AsyncResult",
    "BSPEGO",
    "BatchOptimizer",
    "CycleRecord",
    "CycleSupervisor",
    "KBqEGO",
    "LAZY_ALGORITHMS",
    "LPEGO",
    "MCqEGO",
    "MicQEGO",
    "MicTuRBO",
    "OptimizationResult",
    "PAPER_ALGORITHMS",
    "Proposal",
    "RandomSearch",
    "SupervisorConfig",
    "TuRBO",
    "TuRBOm",
    "algorithm_names",
    "is_known_algorithm",
    "make_optimizer",
    "optimize",
    "run_async_optimization",
    "run_optimization",
]
