"""MC-based q-EGO: joint optimization of Monte-Carlo qEI.

The BoTorch approach (Balandat et al., 2020): the *combined* utility of
the whole batch is estimated by quasi-MC with the reparameterization
trick and maximized jointly over the ``n_batch × d`` variables — in
contrast to the sequential heuristics, every candidate is chosen aware
of the others. The price, which the paper measures, is an inner
optimization whose dimension (and per-gradient cost) grows with the
batch size, eventually dominating the cycle time.

With ``n_batch = 1`` the analytic EI is used (paper Table 3).
"""

from __future__ import annotations

import numpy as np

from repro.acquisition import ExpectedImprovement, optimize_acqf, qExpectedImprovement
from repro.core.base import BatchOptimizer, Proposal, _Stopwatch


class MCqEGO(BatchOptimizer):
    """Joint MC-qEI batch EGO (BoTorch-style)."""

    name = "MC-based q-EGO"

    def propose(self) -> Proposal:
        gp, fit_time = self._fit_gp()
        opts = self.acq_options
        sw = _Stopwatch()
        with sw:
            if self.n_batch == 1:
                acq = ExpectedImprovement(gp, self.best_f)
                x, _ = optimize_acqf(
                    acq,
                    self.problem.bounds,
                    n_restarts=opts["n_restarts"],
                    raw_samples=opts["raw_samples"],
                    maxiter=opts["maxiter"],
                    seed=self.rng,
                    initial_points=self.best_x[None, :],
                    avoid=self.X,
                    batch_starts=opts.get("batch_starts", True),
                )
                X = x[None, :]
            else:
                acq = qExpectedImprovement(
                    gp,
                    self.best_f,
                    q=self.n_batch,
                    n_mc=opts["n_mc"],
                    seed=self.rng,
                )
                # Seed one start with perturbations of the incumbent.
                span = self.problem.upper - self.problem.lower
                warm = np.clip(
                    self.best_x[None, :]
                    + self.rng.normal(0.0, 0.05, (self.n_batch, self.problem.dim))
                    * span,
                    self.problem.lower,
                    self.problem.upper,
                )
                X, _ = optimize_acqf(
                    acq,
                    self.problem.bounds,
                    q=self.n_batch,
                    n_restarts=opts["n_restarts"],
                    raw_samples=opts["raw_samples"],
                    maxiter=opts["maxiter"],
                    seed=self.rng,
                    initial_points=[warm],
                    avoid=self.X,
                    batch_starts=opts.get("batch_starts", True),
                )
        return Proposal(X=np.asarray(X), fit_time=fit_time, acq_time=sw.total)
