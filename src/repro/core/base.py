"""Common machinery of the batch Bayesian-optimization algorithms.

Every algorithm in :mod:`repro.core` implements the same three-step
protocol the paper's Algorithm 1 describes:

1. :meth:`BatchOptimizer.initialize` — receive the initial design;
2. :meth:`BatchOptimizer.propose` — fit the surrogate and return a
   batch of ``n_batch`` candidates (a :class:`Proposal`, carrying the
   *measured* fit / acquisition durations that the driver charges
   against the virtual wall clock);
3. :meth:`BatchOptimizer.update` — receive the exact evaluations.

Optimizers always *minimize*; the driver flips the sign of
maximization problems (the UPHES profit) at the boundary.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.gp import FactorCache, GaussianProcess
from repro.gp.safe_fit import safe_fit
from repro.obs.tracer import trace_span
from repro.util import (
    ConfigurationError,
    RandomState,
    UnproposedPointError,
    as_generator,
    capture_rng,
    check_finite,
    check_matrix,
    check_vector,
    from_jsonable,
    restore_rng,
    to_jsonable,
)

#: Default inner-optimization configuration (BoTorch-like multi-start).
#: ``batch_starts`` enables the vectorized multi-start polish in
#: :func:`repro.acquisition.optimize_acqf` (one stacked posterior call
#: per L-BFGS-B iteration across all restarts); it consumes no RNG and
#: is silently ignored by criteria without a batched gradient.
DEFAULT_ACQ_OPTIONS = {
    "n_restarts": 4,
    "raw_samples": 256,
    "maxiter": 50,
    "n_mc": 128,
    "batch_starts": True,
}

#: Default surrogate-fitting configuration (full fit, each cycle).
#: ``max_points`` (None = unlimited) caps the training set by keeping
#: the best plus the most recent observations — the "use subsets of
#: data" remedy the paper's Discussion recommends against the breaking
#: point.
#: ``backend`` selects the surrogate: ``"exact"`` (the paper's GP) or
#: ``"rff"`` (random-Fourier-features low-rank GP, the fast-surrogate
#: remedy of the paper's Discussion; single-point APs only).
#: ``factor_cache`` keeps one :class:`~repro.gp.FactorCache` on the
#: optimizer so surrogates rebuilt with unchanged hyperparameters reuse
#: the previous Cholesky factor (exact backend only).
#: ``refit_every`` re-optimizes hyperparameters only every k-th fit and
#: carries the incumbent theta in between (k = 1 — the default — keeps
#: the paper's fit-every-cycle behaviour and its exact RNG stream).
DEFAULT_GP_OPTIONS = {
    "n_restarts": 1,
    "maxiter": 50,
    "max_points": None,
    "backend": "exact",
    "n_features": 256,
    "factor_cache": True,
    "refit_every": 1,
}


@dataclass
class Proposal:
    """A batch of candidates plus the measured acquisition timings.

    ``acq_durations`` is set by algorithms whose acquisition process is
    itself parallel (BSP-EGO): the driver then charges the LPT makespan
    of these durations over the workers instead of the serial
    ``acq_time``.
    """

    X: np.ndarray
    fit_time: float = 0.0
    acq_time: float = 0.0
    acq_durations: list[float] | None = None
    info: dict = field(default_factory=dict)


class _Stopwatch:
    """Tiny perf_counter stopwatch: ``with sw: ...`` accumulates."""

    def __init__(self):
        self.total = 0.0

    def __enter__(self):
        # Measures real fit/acq cost that the paper's time model then
        # *charges to* the virtual clock — a deliberate wall read.
        # repro-lint: disable=CLK-001
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc):
        # repro-lint: disable=CLK-001 (see __enter__)
        self.total += time.perf_counter() - self._t0
        return False


class BatchOptimizer:
    """Base class: data management, surrogate construction, dedup.

    Parameters
    ----------
    problem:
        The :class:`~repro.problems.Problem` being optimized (used for
        bounds/dimension only; evaluation happens in the driver).
    n_batch:
        Batch size q — also the number of parallel workers.
    seed:
        Seed for every stochastic choice of the algorithm.
    gp_options / acq_options:
        Overrides of :data:`DEFAULT_GP_OPTIONS` /
        :data:`DEFAULT_ACQ_OPTIONS`.
    """

    name = "base"
    uses_surrogate = True

    #: Attribute names that make up the algorithm-specific mid-run
    #: state beyond (X, y, rng). Subclasses whose state is plain
    #: scalars/arrays list them here and inherit JSON (de)serialization
    #: through :meth:`get_state` / :meth:`set_state` for free;
    #: structured state (e.g. BSP-EGO's tree) overrides those methods.
    _state_attrs: tuple[str, ...] = ()

    def __init__(
        self,
        problem,
        n_batch: int,
        seed: RandomState = None,
        gp_options: dict | None = None,
        acq_options: dict | None = None,
    ):
        if n_batch < 1:
            raise ConfigurationError(f"n_batch must be >= 1, got {n_batch}")
        self.problem = problem
        self.n_batch = int(n_batch)
        self.rng = as_generator(seed)
        self.gp_options = {**DEFAULT_GP_OPTIONS, **(gp_options or {})}
        self.acq_options = {**DEFAULT_ACQ_OPTIONS, **(acq_options or {})}
        self.X = np.empty((0, problem.dim))
        self.y = np.empty(0)  # minimization orientation
        self.gp: GaussianProcess | None = None
        # Degradation events observed during the current propose() call
        # (surrogate ladder rungs, passive health flags); the driver
        # supervisor drains them into the run journal each cycle.
        self._degradations: list[dict] = []
        #: Opt-in strict update mode: :meth:`update` then accepts only
        #: points recorded as outstanding via :meth:`note_proposed`.
        #: The ask/tell service enables this so an external evaluator
        #: cannot feed back coordinates the optimizer never asked for.
        self.strict_updates = False
        self._outstanding = np.empty((0, problem.dim))
        # One factor cache outlives the per-cycle surrogates: a refit
        # whose hyperparameters did not move reuses the previous
        # Cholesky factor instead of paying O(n³) again. Exact backend
        # only — the RFF surrogate has no dense factor to share.
        self._factor_cache: FactorCache | None = None
        if (
            self.gp_options.get("factor_cache", True)
            and self.gp_options.get("backend", "exact") == "exact"
        ):
            self._factor_cache = FactorCache()
        # refit_every bookkeeping: the theta/log-noise carried between
        # full hyperparameter optimizations, and how many fits happened
        # since the last full one.
        self._fits_since_full = 0
        self._carried_theta: np.ndarray | None = None
        self._carried_log_noise: float | None = None
        #: Block-boundary hint for the factor cache: number of *real*
        #: observations when the training set ends in fantasy rows (set
        #: by the ask/tell engine around fantasized proposals so the
        #: real/fantasy seam becomes a truncation point).
        self.fantasy_split: int | None = None

    def drain_degradations(self) -> list[dict]:
        """Return and clear the degradations of the last propose()."""
        events = self._degradations
        self._degradations = []
        return events

    # ------------------------------------------------------------------
    @property
    def best_f(self) -> float:
        """Best (smallest) internal objective value so far."""
        if self.y.size == 0:
            raise ConfigurationError("no data yet; call initialize() first")
        return float(self.y.min())

    @property
    def best_x(self) -> np.ndarray:
        if self.y.size == 0:
            raise ConfigurationError("no data yet; call initialize() first")
        return self.X[int(np.argmin(self.y))].copy()

    def initialize(self, X0, y0) -> None:
        """Install the initial design (``y0`` in minimization sense)."""
        self.X = check_matrix(X0, "X0", cols=self.problem.dim).copy()
        self.y = check_finite(
            check_vector(y0, "y0", dim=self.X.shape[0]), "y0"
        ).copy()

    def update(self, X_new, y_new) -> None:
        """Append exact evaluations of proposed points.

        Any shape-compatible batch is accepted — it need not be the
        last proposal, nor a whole one: the ask/tell service feeds
        evaluations back one point at a time and possibly out of
        proposal order, and the per-algorithm :meth:`_after_update`
        hooks handle partial batches. With :attr:`strict_updates`
        enabled, every row must additionally match an outstanding point
        recorded via :meth:`note_proposed` (matched rows are consumed
        from the ledger); an unknown row raises
        :class:`~repro.util.errors.UnproposedPointError`.
        """
        X_new = check_matrix(X_new, "X_new", cols=self.problem.dim)
        y_new = check_finite(
            check_vector(y_new, "y_new", dim=X_new.shape[0]), "y_new"
        )
        if self.strict_updates:
            self._consume_outstanding(X_new)
        self.X = np.vstack([self.X, X_new])
        self.y = np.concatenate([self.y, y_new])
        self._after_update(X_new, y_new)

    def _after_update(self, X_new, y_new) -> None:
        """Hook for per-algorithm state (e.g. TuRBO's counters)."""

    # -- outstanding-proposal ledger (strict update mode) ---------------
    def note_proposed(self, X) -> None:
        """Record proposed points as outstanding for strict updates."""
        X = check_matrix(X, "X", cols=self.problem.dim)
        self._outstanding = np.vstack([self._outstanding, X])

    def outstanding_proposals(self) -> np.ndarray:
        """Copy of the outstanding (proposed, not yet updated) points."""
        return self._outstanding.copy()

    def _consume_outstanding(self, X_new: np.ndarray) -> None:
        """Match every update row to one ledger row, or raise.

        Matching is exact up to a tiny absolute-in-the-box tolerance
        (points survive a JSON round trip bit-exactly, but a forgiving
        epsilon keeps honest binary/decimal conversions from tripping
        strict mode). Each ledger row satisfies at most one update row.
        """
        span = self.problem.upper - self.problem.lower
        tol = 1e-9 * span
        pool = self._outstanding
        taken = np.zeros(pool.shape[0], dtype=bool)
        for i, row in enumerate(X_new):
            hit = None
            for j in range(pool.shape[0]):
                if not taken[j] and np.all(np.abs(pool[j] - row) <= tol):
                    hit = j
                    break
            if hit is None:
                raise UnproposedPointError(
                    f"strict update: row {i} of X_new matches no "
                    f"outstanding proposal ({pool.shape[0] - taken.sum()} "
                    "outstanding)"
                )
            taken[hit] = True
        self._outstanding = pool[~taken]

    def propose(self) -> Proposal:
        raise NotImplementedError

    # -- checkpointing ---------------------------------------------------
    def get_state(self) -> dict:
        """JSON-serializable snapshot of the mid-run algorithm state.

        Covers the RNG stream and every attribute in
        :attr:`_state_attrs`; the observation history (X, y) is *not*
        included — the run journal already carries it cycle by cycle,
        and resume reinstalls it separately. Together with (X, y), the
        snapshot makes :meth:`propose` deterministic again after a
        restore.
        """
        state: dict = {"rng": capture_rng(self.rng)}
        for attr in self._state_attrs:
            state[attr] = to_jsonable(getattr(self, attr))
        # Both keys are emitted only when they carry information, so
        # default-configuration snapshots are byte-for-byte what they
        # were before these features existed (golden-trace guarantee).
        if int(self.gp_options.get("refit_every", 1)) > 1:
            state["refit"] = {
                "fits_since_full": int(self._fits_since_full),
                "theta": (
                    None
                    if self._carried_theta is None
                    else self._carried_theta.tolist()
                ),
                "log_noise": self._carried_log_noise,
            }
        if self._factor_cache is not None:
            cache_state = self._factor_cache.get_state()
            if cache_state is not None:
                state["factor_cache"] = cache_state
        return state

    def set_state(self, state: dict) -> None:
        """Restore a snapshot taken by :meth:`get_state` in place.

        The optimizer must already hold the observation history the
        snapshot was taken with (see
        :func:`repro.resilience.resume.resume_run`).
        """
        self.rng = restore_rng(self.rng, state["rng"])
        for attr in self._state_attrs:
            if attr not in state:
                raise ConfigurationError(
                    f"state snapshot lacks {attr!r} for {type(self).__name__}"
                )
            setattr(self, attr, from_jsonable(state[attr]))
        refit = state.get("refit")
        if refit is not None:
            self._fits_since_full = int(refit["fits_since_full"])
            self._carried_theta = (
                None
                if refit["theta"] is None
                else np.asarray(refit["theta"], dtype=np.float64)
            )
            self._carried_log_noise = (
                None
                if refit["log_noise"] is None
                else float(refit["log_noise"])
            )
        else:
            self._fits_since_full = 0
            self._carried_theta = None
            self._carried_log_noise = None
        if self._factor_cache is not None:
            self._factor_cache.set_state(state.get("factor_cache"))

    # ------------------------------------------------------------------
    def _training_subset(self, X: np.ndarray, y: np.ndarray):
        """Apply the optional ``max_points`` training-set cap.

        Keeps the best half of the budget by objective value and fills
        the rest with the most recent observations (deduplicated),
        preserving both the incumbent region and the newest evidence.
        """
        cap = self.gp_options.get("max_points")
        if cap is None or X.shape[0] <= cap:
            return X, y
        n_best = cap // 2
        best_idx = np.argsort(y)[:n_best]
        keep = set(best_idx.tolist())
        for i in range(X.shape[0] - 1, -1, -1):
            if len(keep) >= cap:
                break
            keep.add(i)
        idx = np.fromiter(sorted(keep), dtype=int)
        return X[idx], y[idx]

    def _make_surrogate(self):
        backend = self.gp_options.get("backend", "exact")
        if backend == "exact":
            return GaussianProcess(
                dim=self.problem.dim, input_bounds=self.problem.bounds
            )
        if backend == "rff":
            from repro.gp.rff import RFFGaussianProcess

            return RFFGaussianProcess(
                dim=self.problem.dim,
                n_features=int(self.gp_options.get("n_features", 256)),
                input_bounds=self.problem.bounds,
                seed=0,  # frozen features: the same approximate kernel
            )
        raise ConfigurationError(
            f"unknown surrogate backend {backend!r}; use 'exact' or 'rff'"
        )

    def _fit_gp(self, X=None, y=None) -> tuple[GaussianProcess, float]:
        """Full surrogate fit on (X, y) (defaults: all data); timed.

        The fit goes through :func:`repro.gp.safe_fit.safe_fit`: on the
        healthy path this is the plain fit, but a degenerate design or
        a diverged hyperparameter search walks the self-healing ladder
        instead of raising, and everything observed lands in
        :meth:`drain_degradations` for the driver to journal.

        With ``refit_every`` = k > 1 only every k-th fit re-optimizes
        hyperparameters; the intermediate fits carry the incumbent
        theta (``optimize=False``), which skips the MLL search *and*
        — combined with the factor cache — turns the posterior rebuild
        into an O(n²·m) append. A degraded fit drops the carried
        hyperparameters and invalidates the cache so the next cycle
        starts clean.
        """
        full_data = X is None and y is None
        X = self.X if X is None else X
        y = self.y if y is None else y
        n_before = X.shape[0]
        X, y = self._training_subset(X, y)
        # The fantasy-seam hint only holds for the uncapped full
        # training set: a max_points cap rewrites the row order, so the
        # seam index would point at the wrong row.
        split = (
            self.fantasy_split
            if full_data and X.shape[0] == n_before
            else None
        )
        refit_every = int(self.gp_options.get("refit_every", 1))
        reuse = (
            refit_every > 1
            and self._carried_theta is not None
            and self._fits_since_full % refit_every != 0
        )
        sw = _Stopwatch()
        with trace_span(
            "fit", algorithm=self.name, n_train=X.shape[0]
        ) as sp, sw:
            surrogate = self._make_surrogate()
            if self._factor_cache is not None and getattr(
                surrogate, "supports_factor_cache", False
            ):
                surrogate.factor_cache = self._factor_cache
            if reuse:
                surrogate.kernel.theta = self._carried_theta.copy()
                surrogate.log_noise = self._carried_log_noise
            gp, report = safe_fit(
                surrogate,
                X,
                y,
                n_restarts=self.gp_options["n_restarts"],
                maxiter=self.gp_options["maxiter"],
                seed=self.rng,
                optimize=not reuse,
                cache_split=split,
            )
        sp.set(degraded=report.degraded)
        self.gp = gp
        self._degradations.extend(report.events())
        if report.degraded:
            # The ladder may have repaired data or reset hypers; both
            # poison the carried theta and any cached factor.
            self._fits_since_full = 0
            self._carried_theta = None
            self._carried_log_noise = None
            if self._factor_cache is not None:
                self._factor_cache.invalidate()
        elif refit_every > 1:
            if not reuse and getattr(gp, "kernel", None) is not None:
                self._carried_theta = np.asarray(
                    gp.kernel.theta, dtype=np.float64
                ).copy()
                self._carried_log_noise = float(gp.log_noise)
            self._fits_since_full += 1
        return gp, sw.total

    def _dedupe(self, x: np.ndarray, batch: list[np.ndarray]) -> np.ndarray:
        """Nudge ``x`` if it (near-)duplicates a batch member.

        Identical batch entries waste a parallel evaluation; a tiny
        uniform perturbation inside the box is the standard fix.
        """
        if not batch:
            return x
        span = self.problem.upper - self.problem.lower
        tol = 1e-6
        x = x.copy()
        for _ in range(10):
            dists = np.min(
                [np.max(np.abs((x - b) / span)) for b in batch]
            )
            if dists > tol:
                break
            x = np.clip(
                x + self.rng.normal(0.0, 1e-3, size=x.shape) * span,
                self.problem.lower,
                self.problem.upper,
            )
        return x
