"""MO-BPI: multi-objective BO with batched probability of improvement.

The batch selection rule of Yang et al. (arXiv:2208.03685) adapted to
the scenario workloads: one independent GP per objective, candidates
scored by the Monte-Carlo probability that their sampled objective
vector enters the current Pareto front, and the q-point batch filled
by a distance-diversified greedy argmax (see
:mod:`repro.acquisition.mo_pi`).

The optimizer plugs into the unchanged scalar driver: the problem's
scalar channel (fleet profit) flows through ``initialize``/``update``
like any other algorithm's, while the full objective matrix is pulled
from the problem's ``mo_values`` — a deterministic, cached lookup for
rows the problem has already evaluated — so journaling, checkpointing
and resume need no new machinery. The evolving front and its
(normalized) hypervolume ride in ``Proposal.info``.
"""

from __future__ import annotations

import numpy as np

from repro.acquisition.mo_pi import (
    MultiObjectivePI,
    hypervolume,
    pareto_front,
    select_batch_pi,
)
from repro.core.base import BatchOptimizer, Proposal, _Stopwatch
from repro.gp.safe_fit import safe_fit
from repro.util import ConfigurationError


class MOBPI(BatchOptimizer):
    """Batched probability-of-improvement multi-objective optimizer."""

    name = "mo-bpi"

    def __init__(self, problem, n_batch, seed=None, **kwargs):
        if not hasattr(problem, "mo_values"):
            raise ConfigurationError(
                "mo_bpi needs a multi-objective problem exposing "
                "mo_values() — build one with repro.scenarios "
                "(objective='multi'); got "
                f"{type(problem).__name__}"
            )
        super().__init__(problem, n_batch, seed=seed, **kwargs)
        self.n_objectives = int(getattr(problem, "n_objectives", 0)) or None
        self.F = np.empty((0, self.n_objectives or 0))
        #: Normalized-hypervolume trajectory, one entry per propose().
        self.hv_history: list[float] = []

    # -- data flow -------------------------------------------------------
    def initialize(self, X0, y0) -> None:
        super().initialize(X0, y0)
        self.F = self.problem.mo_values(self.X)

    def _after_update(self, X_new, y_new) -> None:
        self.F = np.vstack([self.F, self.problem.mo_values(X_new)])

    # -- front bookkeeping ----------------------------------------------
    def front(self) -> tuple[np.ndarray, np.ndarray]:
        """Current Pareto-optimal ``(X, F)`` rows (minimization)."""
        mask = pareto_front(self.F)
        return self.X[mask], self.F[mask]

    def _normalized_hv(self, front_f: np.ndarray) -> float:
        """Hypervolume with each objective min-max scaled to [0, 1]
        over the observations so far, against the (1.1, …) reference —
        scale-free progress that is comparable across scenario axes."""
        lo = self.F.min(axis=0)
        span = np.maximum(self.F.max(axis=0) - lo, 1e-12)
        ref = np.full(self.F.shape[1], 1.1)
        return hypervolume((front_f - lo) / span, ref)

    # -- proposing -------------------------------------------------------
    def propose(self) -> Proposal:
        opts = self.acq_options
        k = self.F.shape[1]
        sw_fit = _Stopwatch()
        gps = []
        with sw_fit:
            for j in range(k):
                surrogate = self._make_surrogate()
                gp, report = safe_fit(
                    surrogate,
                    self.X,
                    self.F[:, j],
                    n_restarts=self.gp_options["n_restarts"],
                    maxiter=self.gp_options["maxiter"],
                    seed=self.rng,
                )
                self._degradations.extend(report.events())
                gps.append(gp)
        self.gp = gps[0]  # scalar-channel surrogate, for the supervisor

        sw_acq = _Stopwatch()
        with sw_acq:
            front_x, front_f = self.front()
            span = self.problem.upper - self.problem.lower
            n_raw = int(opts["raw_samples"])
            pool = self.problem.lower + self.rng.uniform(
                size=(n_raw, self.problem.dim)
            ) * span
            # Exploit: jittered copies of the front's preimages.
            jitter = front_x + self.rng.normal(
                0.0, 0.02, size=front_x.shape
            ) * span
            pool = np.vstack(
                [pool, np.clip(jitter, self.problem.lower, self.problem.upper)]
            )
            base = self.rng.standard_normal((int(opts["n_mc"]), k))
            acq = MultiObjectivePI(gps, front_f, base)
            batch = select_batch_pi(acq, pool, self.n_batch, span)
            hv = self._normalized_hv(front_f)
            self.hv_history.append(hv)

        return Proposal(
            X=batch,
            fit_time=sw_fit.total,
            acq_time=sw_acq.total,
            info={
                "hypervolume": hv,
                "front_size": int(front_f.shape[0]),
            },
        )
