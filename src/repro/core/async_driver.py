"""Asynchronous (steady-state) parallel BO under the same time budget.

The paper's algorithms are *batch-synchronous*: all q workers start and
finish together, so the whole cluster idles while the master fits the
surrogate and optimizes the acquisition — the very overhead that
creates the breaking point. The classic remedy (discussed in the
parallel-SBO survey the paper cites, Haftka et al. 2016) is the
*asynchronous* scheme: whenever one worker frees, one new candidate is
selected — conditioning on the points still being evaluated through
Kriging-Believer fantasies — and dispatched immediately.

This module implements that scheme on the same virtual-clock machinery
as the synchronous driver, so the two are directly comparable under an
identical wall-clock budget (see ``bench_async_vs_sync.py``). The
acquisition for each dispatch is single-point EI on a fantasy-extended
model; its *measured* duration is charged to the master's timeline
while the busy workers keep simulating — overlap, not serialization.
"""

from __future__ import annotations

import heapq
import time
from dataclasses import dataclass, field
from types import SimpleNamespace

import numpy as np

from repro.acquisition import ExpectedImprovement, optimize_acqf
from repro.doe import latin_hypercube
from repro.gp import GaussianProcess
from repro.gp.safe_fit import safe_fit
from repro.obs.metrics import get_metrics
from repro.obs.tracer import trace_span
from repro.util import ConfigurationError, ModelError, RandomState, as_generator

#: Inner-optimization defaults (match the synchronous algorithms).
_ACQ_DEFAULTS = {"n_restarts": 4, "raw_samples": 256, "maxiter": 50}
_GP_DEFAULTS = {"n_restarts": 1, "maxiter": 50}


@dataclass
class DispatchRecord:
    """One asynchronous dispatch (candidate selection + launch)."""

    index: int
    t_dispatch: float  # virtual time the worker started simulating
    t_finish: float
    worker: int
    acq_time: float  # measured seconds for this selection
    fit_time: float
    best_value: float  # running best at dispatch time (native)


@dataclass
class AsyncResult:
    """Outcome of one asynchronous run."""

    problem: str
    n_workers: int
    budget: float
    maximize: bool
    best_x: np.ndarray
    best_value: float
    initial_best: float
    n_initial: int
    n_simulations: int
    elapsed: float
    busy_virtual_s: float = 0.0
    idle_virtual_s: float = 0.0
    history: list[DispatchRecord] = field(default_factory=list)

    @property
    def trajectory(self) -> np.ndarray:
        return np.asarray([rec.best_value for rec in self.history])

    @property
    def busy_share(self) -> float:
        """Fraction of worker-seconds spent simulating (vs idling)."""
        total = self.busy_virtual_s + self.idle_virtual_s
        return self.busy_virtual_s / total if total > 0 else 0.0

    @property
    def idle_share(self) -> float:
        return 1.0 - self.busy_share


def run_async_optimization(
    problem,
    n_workers: int,
    budget: float,
    *,
    n_initial: int | None = None,
    refit_every: int = 1,
    time_scale: float = 1.0,
    seed: RandomState = None,
    gp_options: dict | None = None,
    acq_options: dict | None = None,
    max_dispatches: int = 100_000,
    journal=None,
    on_nonfinite: str = "impute",
) -> AsyncResult:
    """Steady-state asynchronous BO under a virtual wall-clock budget.

    Parameters
    ----------
    problem:
        The objective (its ``sim_time`` is the virtual duration of one
        simulation; per-simulation durations are jittered ±5% so the
        workers genuinely desynchronize, as on the paper's platform).
    n_workers:
        Number of parallel simulation slots.
    budget:
        Virtual seconds (initial design excluded, as in Table 2).
    refit_every:
        Full hyperparameter refits happen every this many dispatches;
        in between, the new observations enter via cheap partial fits
        (the asynchronous analogue of the paper's reduced-budget
        intermediate updates).
    time_scale:
        Multiplier on the measured fit/acquisition time charged to the
        master timeline.
    journal:
        Optional :class:`~repro.resilience.RunJournal` recording the
        run's dispatch/completion events. Asynchronous journals are for
        observability (tail a live run, post-mortem a crashed one);
        resume is a synchronous-driver feature.
    on_nonfinite:
        Fallback for NaN/inf objective values (see
        :data:`repro.core.driver.NONFINITE_ACTIONS`).
    """
    from repro.core.driver import NONFINITE_ACTIONS, _guard_nonfinite

    if n_workers < 1:
        raise ConfigurationError(f"n_workers must be >= 1, got {n_workers}")
    if budget <= 0:
        raise ConfigurationError(f"budget must be positive, got {budget}")
    if refit_every < 1:
        raise ConfigurationError(f"refit_every must be >= 1, got {refit_every}")
    if on_nonfinite not in NONFINITE_ACTIONS:
        raise ConfigurationError(
            f"on_nonfinite must be one of {NONFINITE_ACTIONS}, got {on_nonfinite!r}"
        )
    rng = as_generator(seed)
    gp_opts = {**_GP_DEFAULTS, **(gp_options or {})}
    acq_opts = {**_ACQ_DEFAULTS, **(acq_options or {})}
    sign = -1.0 if problem.maximize else 1.0

    # Initial design, outside the budget.
    n0 = n_initial if n_initial is not None else 16 * n_workers
    if journal is not None:
        journal.record(
            "run_started",
            config={
                "mode": "async",
                "problem": problem.name,
                "dim": int(problem.dim),
                "sim_time": float(problem.sim_time),
                "maximize": bool(problem.maximize),
                "n_workers": int(n_workers),
                "budget": float(budget),
                "time_scale": float(time_scale),
                "seed": seed if isinstance(seed, (int, type(None))) else None,
                "n_initial": int(n0),
                "refit_every": int(refit_every),
                "on_nonfinite": on_nonfinite,
            },
        )
    X = latin_hypercube(n0, problem.bounds, seed=rng)
    y_raw = sign * np.asarray(problem(X), dtype=np.float64).reshape(-1)
    X, y = _guard_nonfinite(X, y_raw, None, on_nonfinite, journal=journal)
    if y.size == 0:
        raise ConfigurationError(
            "the entire initial design evaluated non-finite; nothing to model"
        )
    if journal is not None:
        from repro.util import to_jsonable

        journal.record(
            "initial_design",
            X=to_jsonable(X),
            y_raw=to_jsonable(sign * y_raw),
            y_used=to_jsonable(sign * y),
        )
    initial_best = float(sign * np.min(y))

    def _journal_degradations(report, index: int) -> None:
        if journal is not None:
            for ev in report.events():
                journal.record("degradation", index=index, **ev)

    gp = GaussianProcess(dim=problem.dim, input_bounds=problem.bounds)
    gp, report = safe_fit(
        gp, X, y,
        n_restarts=gp_opts["n_restarts"],
        maxiter=gp_opts["maxiter"],
        seed=rng,
    )
    _journal_degradations(report, 0)

    # Event queue of running simulations: (finish_time, counter, worker, x).
    now = 0.0
    pending: list[tuple[float, int, int, np.ndarray]] = []
    counter = 0
    history: list[DispatchRecord] = []
    n_done = 0

    def sim_duration() -> float:
        if problem.sim_time <= 0:
            return 0.0
        return problem.sim_time * float(rng.uniform(0.95, 1.05))

    def dispatch(worker: int) -> None:
        nonlocal now, counter
        with trace_span("dispatch", index=counter + 1, worker=worker) as sp:
            t0 = time.perf_counter()
            try:
                busy = np.asarray([x for _, _, _, x in pending])
                model = gp.fantasize(busy) if busy.size else gp
                best_f = float(np.min(y))
                acq = ExpectedImprovement(model, best_f)
                x_next, _ = optimize_acqf(
                    acq,
                    problem.bounds,
                    n_restarts=acq_opts["n_restarts"],
                    raw_samples=acq_opts["raw_samples"],
                    maxiter=acq_opts["maxiter"],
                    seed=rng,
                    avoid=X,
                    batch_starts=acq_opts.get("batch_starts", True),
                )
            except Exception as exc:
                # A sick fantasy model must not idle the freed worker:
                # the dispatch degrades to a random in-bounds candidate.
                lo, hi = problem.bounds[:, 0], problem.bounds[:, 1]
                x_next = lo + rng.random(problem.dim) * (hi - lo)
                if journal is not None:
                    journal.record(
                        "degradation",
                        index=counter + 1,
                        stage="model",
                        kind=f"dispatch_failed:{type(exc).__name__}",
                        action="random_candidate",
                        detail=str(exc)[:500],
                    )
            acq_time = (time.perf_counter() - t0) * time_scale
            now += acq_time  # the master's selection blocks the timeline
            finish = now + sim_duration()
            heapq.heappush(pending, (finish, counter, worker, x_next))
            counter += 1
            sp.set(acq_s=acq_time, t_dispatch=now, t_finish=finish)
            metrics = get_metrics()
            if metrics.enabled:
                metrics.histogram("async.acq_s").observe(acq_time)
                metrics.counter("async.dispatches_total").inc()
            history.append(
                DispatchRecord(
                    index=counter,
                    t_dispatch=now,
                    t_finish=finish,
                    worker=worker,
                    acq_time=acq_time,
                    fit_time=0.0,
                    best_value=float(sign * np.min(y)),
                )
            )
            if journal is not None:
                journal.record(
                    "dispatch",
                    index=counter,
                    worker=worker,
                    t_dispatch=now,
                    t_finish=finish,
                    acq_time=acq_time,
                    x=x_next.tolist(),
                )

    # Fill every worker once, then steady-state: one completion -> one
    # (possibly deferred) refit -> one dispatch.
    for worker in range(n_workers):
        if now >= budget or counter >= max_dispatches:
            break
        dispatch(worker)

    while pending:
        finish, _, worker, x_done = heapq.heappop(pending)
        now = max(now, finish)
        y_new_raw = sign * np.asarray(
            problem(x_done[None, :]), dtype=np.float64
        ).reshape(-1)
        X_new, y_new = _guard_nonfinite(
            x_done[None, :],
            y_new_raw,
            SimpleNamespace(y=y, gp=gp),
            on_nonfinite,
            journal=journal,
        )
        n_done += 1
        if journal is not None:
            journal.record(
                "completion",
                index=n_done,
                worker=worker,
                t=now,
                y_raw=(sign * y_new_raw).tolist(),
                y_used=(sign * y_new).tolist(),
            )
        if y_new.size == 0:  # on_nonfinite="drop" discarded the point
            if now < budget and counter < max_dispatches:
                dispatch(worker)
            continue
        X = np.vstack([X, X_new])
        y = np.concatenate([y, y_new])

        t0 = time.perf_counter()
        with trace_span("refit", index=n_done, n_train=X.shape[0]):
            if n_done % refit_every == 0:
                gp, report = safe_fit(
                    gp, X, y, n_restarts=0, maxiter=gp_opts["maxiter"], seed=rng
                )
                _journal_degradations(report, n_done)
            else:
                try:
                    gp.fit(X, y, optimize=False)
                except ModelError:
                    gp, report = safe_fit(
                        gp, X, y, n_restarts=0, maxiter=gp_opts["maxiter"], seed=rng
                    )
                    _journal_degradations(report, n_done)
        fit_time = (time.perf_counter() - t0) * time_scale
        now += fit_time
        if history:
            history[-1].fit_time += fit_time

        if now < budget and counter < max_dispatches:
            dispatch(worker)

    # Per-worker busy/idle on the virtual timeline (PR-4 accounting):
    # each dispatch occupied its worker for the simulation's duration;
    # the rest of the n_workers·elapsed worker-seconds was idle.
    busy_virtual = float(
        sum(rec.t_finish - rec.t_dispatch for rec in history)
    )
    idle_virtual = max(0.0, n_workers * now - busy_virtual)
    metrics = get_metrics()
    if metrics.enabled:
        metrics.counter("async.busy_virtual_s").inc(busy_virtual)
        metrics.counter("async.idle_virtual_s").inc(idle_virtual)

    best_idx = int(np.argmin(y))
    if journal is not None:
        journal.record(
            "run_completed",
            best_x=X[best_idx].tolist(),
            best_value=float(sign * y[best_idx]),
            n_simulations=n_done,
            elapsed=now,
            busy_virtual_s=busy_virtual,
            idle_virtual_s=idle_virtual,
        )
    return AsyncResult(
        problem=problem.name,
        n_workers=n_workers,
        budget=float(budget),
        maximize=problem.maximize,
        best_x=X[best_idx].copy(),
        best_value=float(sign * y[best_idx]),
        initial_best=initial_best,
        n_initial=n0,
        n_simulations=n_done,
        elapsed=now,
        busy_virtual_s=busy_virtual,
        idle_virtual_s=idle_virtual,
        history=history,
    )
