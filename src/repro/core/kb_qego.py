"""KB-q-EGO: q-EGO with the Kriging Believer heuristic.

Ginsbourger, Le Riche & Carraro (2008): approximating the multi-point
criterion by selecting candidates *sequentially* — after each
single-point EI maximization, the surrogate is updated with a "fantasy"
observation equal to its own prediction (hence *Kriging Believer*), so
the next EI maximization is pushed elsewhere. No hyperparameter
re-estimation happens inside the loop (paper §2.2.2): only the cheap
rank-1 Cholesky extension of :meth:`GaussianProcess.fantasize`.

The known cost of the heuristic — and the reason the paper finds it
scales poorly — is the q *sequential* model updates per cycle.
"""

from __future__ import annotations

import numpy as np

from repro.acquisition import ExpectedImprovement, optimize_acqf
from repro.core.base import BatchOptimizer, Proposal, _Stopwatch


class KBqEGO(BatchOptimizer):
    """Kriging-Believer batch EGO (single-point EI, fantasy updates)."""

    name = "KB-q-EGO"

    def propose(self) -> Proposal:
        gp, fit_time = self._fit_gp()
        opts = self.acq_options
        sw = _Stopwatch()
        batch: list = []
        with sw:
            model = gp
            best_f = self.best_f
            for _ in range(self.n_batch):
                acq = ExpectedImprovement(model, best_f)
                x, _ = optimize_acqf(
                    acq,
                    self.problem.bounds,
                    n_restarts=opts["n_restarts"],
                    raw_samples=opts["raw_samples"],
                    maxiter=opts["maxiter"],
                    seed=self.rng,
                    initial_points=self.best_x[None, :],
                    avoid=self.X,
                    batch_starts=opts.get("batch_starts", True),
                )
                x = self._dedupe(x, batch)
                batch.append(x)
                if len(batch) < self.n_batch:
                    # Believe the model: fantasize its own prediction.
                    model = model.fantasize(x[None, :])
        return Proposal(X=np.asarray(batch), fit_time=fit_time, acq_time=sw.total)
