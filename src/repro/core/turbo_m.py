"""TuRBO-m: several simultaneous trust regions.

The paper runs TuRBO with a single trust region ("One or several trust
regions can be maintained simultaneously. In this work, one trust
region is used", §2.2.2). This module provides the multi-region variant
of the original algorithm (Eriksson et al., 2019) for the ablation
benches: ``m`` independent trust regions, each with its own history,
local GP and expand/shrink/restart state, compete for the batch through
*joint Thompson sampling* — for every batch slot, one posterior sample
is drawn per region over its local candidate cloud and the overall
argmin wins the slot. Evaluated points feed back only into the region
that proposed them.

A region whose base length collapses restarts independently from a
fresh space-filling design (consuming its share of the budget, as in
the original).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.core.base import BatchOptimizer, Proposal, _Stopwatch
from repro.doe import latin_hypercube
from repro.gp import GaussianProcess
from repro.gp.linalg import jittered_cholesky
from repro.util import ConfigurationError, RandomState, from_jsonable, to_jsonable


@dataclass
class _Region:
    """State of one trust region."""

    index: int
    length: float
    X: np.ndarray
    y: np.ndarray
    n_succ: int = 0
    n_fail: int = 0
    restart_remaining: int = 0
    n_restarts: int = 0
    gp: GaussianProcess | None = field(default=None, repr=False)

    @property
    def restarting(self) -> bool:
        return self.restart_remaining > 0

    @property
    def best_f(self) -> float:
        return float(np.min(self.y)) if self.y.size else math.inf


class TuRBOm(BatchOptimizer):
    """Multi-trust-region TuRBO with joint Thompson-sampled batches."""

    name = "TuRBO-m"

    def __init__(
        self,
        problem,
        n_batch: int,
        seed: RandomState = None,
        gp_options: dict | None = None,
        acq_options: dict | None = None,
        n_regions: int = 3,
        length_init: float = 0.8,
        length_min: float = 2.0**-7,
        length_max: float = 1.6,
        succ_tol: int = 3,
        fail_tol: int | None = None,
        n_candidates_per_region: int = 256,
    ):
        super().__init__(problem, n_batch, seed, gp_options, acq_options)
        if n_regions < 1:
            raise ConfigurationError(f"n_regions must be >= 1, got {n_regions}")
        if not (0 < length_min < length_init <= length_max):
            raise ConfigurationError("need 0 < length_min < length_init <= length_max")
        self.n_regions = int(n_regions)
        self.length_init = float(length_init)
        self.length_min = float(length_min)
        self.length_max = float(length_max)
        self.succ_tol = int(succ_tol)
        self.fail_tol = (
            int(fail_tol)
            if fail_tol is not None
            else int(math.ceil(max(4.0, float(problem.dim)) / n_batch))
        )
        self.n_candidates_per_region = int(n_candidates_per_region)
        self._n_init = max(2 * problem.dim, 4 * n_batch) // self.n_regions + 1
        self.regions: list[_Region] = []
        self._assignment: list[int] = []  # region index per batch slot

    # ------------------------------------------------------------------
    def initialize(self, X0, y0) -> None:
        super().initialize(X0, y0)
        # Split the initial design round-robin across the regions so
        # each starts with its own history.
        self.regions = []
        for r in range(self.n_regions):
            idx = np.arange(r, self.X.shape[0], self.n_regions)
            if idx.size == 0:
                idx = np.arange(self.X.shape[0])
            self.regions.append(
                _Region(
                    index=r,
                    length=self.length_init,
                    X=self.X[idx].copy(),
                    y=self.y[idx].copy(),
                )
            )

    # -- checkpointing ---------------------------------------------------
    def get_state(self) -> dict:
        # The local GPs are rebuilt from (X, y) at every propose(), so
        # each region serializes to its plain counters and history.
        state = super().get_state()
        state["regions"] = [
            {
                "index": r.index,
                "length": r.length,
                "X": to_jsonable(r.X),
                "y": to_jsonable(r.y),
                "n_succ": r.n_succ,
                "n_fail": r.n_fail,
                "restart_remaining": r.restart_remaining,
                "n_restarts": r.n_restarts,
            }
            for r in self.regions
        ]
        state["assignment"] = list(self._assignment)
        return state

    def set_state(self, state: dict) -> None:
        super().set_state(state)
        self.regions = [
            _Region(
                index=int(r["index"]),
                length=float(r["length"]),
                X=from_jsonable(r["X"]),
                y=from_jsonable(r["y"]),
                n_succ=int(r["n_succ"]),
                n_fail=int(r["n_fail"]),
                restart_remaining=int(r["restart_remaining"]),
                n_restarts=int(r["n_restarts"]),
            )
            for r in state["regions"]
        ]
        self._assignment = [int(a) for a in state["assignment"]]

    # ------------------------------------------------------------------
    def _region_bounds(self, region: _Region) -> np.ndarray:
        gp = region.gp
        kernel = getattr(gp, "kernel", None)
        inner = getattr(kernel, "inner", kernel)
        ls = np.atleast_1d(getattr(inner, "lengthscale", np.array([1.0])))
        if ls.shape[0] != self.problem.dim:
            ls = np.full(self.problem.dim, float(ls[0]))
        weights = ls / np.exp(np.mean(np.log(ls)))
        span = self.problem.upper - self.problem.lower
        center = region.X[int(np.argmin(region.y))]
        half = 0.5 * region.length * weights * span
        lo = np.maximum(center - half, self.problem.lower)
        hi = np.minimum(center + half, self.problem.upper)
        width = np.maximum(hi - lo, 1e-9 * span)
        return np.column_stack([lo, lo + width])

    def propose(self) -> Proposal:
        fit_total = 0.0
        sw = _Stopwatch()
        with sw:
            # 1) refresh the local models of the live regions
            live: list[_Region] = []
            for region in self.regions:
                if region.restarting:
                    continue
                gp, fit_time = self._fit_gp(region.X, region.y)
                region.gp = gp
                fit_total += fit_time
                live.append(region)

            batch: list[np.ndarray] = []
            assignment: list[int] = []

            # 2) restarting regions claim slots with fresh LHS points
            for region in self.regions:
                if region.restarting and len(batch) < self.n_batch:
                    k = min(region.restart_remaining, self.n_batch - len(batch))
                    pts = latin_hypercube(k, self.problem.bounds, seed=self.rng)
                    for p in pts:
                        batch.append(self._dedupe(p, batch))
                        assignment.append(region.index)

            # 3) joint Thompson sampling across the live regions
            if live and len(batch) < self.n_batch:
                clouds, chols, means = [], [], []
                for region in live:
                    rb = self._region_bounds(region)
                    cloud = rb[:, 0] + self.rng.random(
                        (self.n_candidates_per_region, self.problem.dim)
                    ) * (rb[:, 1] - rb[:, 0])
                    post = region.gp.joint_posterior(cloud)
                    C, _ = jittered_cholesky(post.cov)
                    clouds.append(cloud)
                    chols.append(C)
                    means.append(post.mean)
                while len(batch) < self.n_batch:
                    best_val, best_point, best_region = math.inf, None, -1
                    for region, cloud, C, m in zip(live, clouds, chols, means):
                        z = self.rng.standard_normal(m.shape[0])
                        sample = m + C @ z
                        j = int(np.argmin(sample))
                        if sample[j] < best_val:
                            best_val = float(sample[j])
                            best_point = cloud[j]
                            best_region = region.index
                    batch.append(self._dedupe(best_point, batch))
                    assignment.append(best_region)

            # 4) degenerate corner: everything restarting and sated —
            # fill any leftover slots with random points for region 0
            while len(batch) < self.n_batch:
                batch.append(
                    self._dedupe(
                        self.rng.uniform(self.problem.lower, self.problem.upper),
                        batch,
                    )
                )
                assignment.append(self.regions[0].index)

        self._assignment = assignment
        acq_time = max(sw.total - fit_total, 0.0)
        return Proposal(
            X=np.asarray(batch),
            fit_time=fit_total,
            acq_time=acq_time,
            info={
                "lengths": [r.length for r in self.regions],
                "assignment": list(assignment),
            },
        )

    # ------------------------------------------------------------------
    def _after_update(self, X_new, y_new) -> None:
        if not self._assignment:
            return
        for region in self.regions:
            mask = [
                i
                for i, r in enumerate(self._assignment[: X_new.shape[0]])
                if r == region.index
            ]
            if not mask:
                continue
            best_before = region.best_f
            region.X = np.vstack([region.X, X_new[mask]])
            region.y = np.concatenate([region.y, y_new[mask]])
            if region.restarting:
                region.restart_remaining -= len(mask)
                if region.restart_remaining <= 0:
                    region.restart_remaining = 0
                continue
            improved = float(np.min(y_new[mask])) < best_before - 1e-3 * abs(
                best_before
            )
            if improved:
                region.n_succ += 1
                region.n_fail = 0
            else:
                region.n_fail += 1
                region.n_succ = 0
            if region.n_succ >= self.succ_tol:
                region.length = min(2.0 * region.length, self.length_max)
                region.n_succ = 0
            elif region.n_fail >= self.fail_tol:
                region.length /= 2.0
                region.n_fail = 0
            if region.length < self.length_min:
                region.length = self.length_init
                region.n_succ = region.n_fail = 0
                region.n_restarts += 1
                region.X = np.empty((0, self.problem.dim))
                region.y = np.empty(0)
                region.restart_remaining = self._n_init
        self._assignment = []
