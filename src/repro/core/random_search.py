"""Random search baseline.

The paper's Discussion section contrasts the BO algorithms with a
large random sample ("even considering a large random sample of almost
12,000 objective function evaluations, the best-observed profit is
around EUR −1200"). This baseline reproduces that comparison under the
same batch/driver machinery; its acquisition cost is effectively zero.
"""

from __future__ import annotations

from repro.core.base import BatchOptimizer, Proposal, _Stopwatch
from repro.doe import uniform_random


class RandomSearch(BatchOptimizer):
    """Uniform random sampling in batches of ``n_batch``."""

    name = "Random"
    uses_surrogate = False

    def propose(self) -> Proposal:
        sw = _Stopwatch()
        with sw:
            X = uniform_random(self.n_batch, self.problem.bounds, seed=self.rng)
        return Proposal(X=X, fit_time=0.0, acq_time=sw.total)
