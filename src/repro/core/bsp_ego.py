"""BSP-EGO: binary-space-partitioning EGO (Gobert et al., 2020).

A *global* GP model, but a *local, parallel* acquisition process: the
search domain is kept partitioned into ``2·n_batch`` boxes (paper:
``n_cand = 2·n_batch``); each cycle a single-point EI maximization is
run inside every box — these are independent, so on the real platform
they run one-per-core and the acquisition wall time is the slowest box,
not the sum. Candidates from all boxes are pooled, ranked by EI, and
the ``n_batch`` best are evaluated.

The partition then *evolves*: the box holding the best candidate (by
EI) is split along its longest edge, and the sibling-leaf pair with the
weakest EI scores is merged back into its parent, keeping the leaf
count constant and the boxes a partition of the full domain at all
times. Splitting the winner drives intensification as the budget fades,
exactly as described in §2.2.2.

The driver charges this algorithm's acquisition as the LPT makespan of
the per-box durations over the ``n_batch`` workers
(:class:`Proposal.acq_durations`) — the parallel-AP advantage the
paper credits BSP-EGO for.
"""

from __future__ import annotations

import itertools

import numpy as np

from repro.acquisition import ExpectedImprovement, optimize_acqf
from repro.core.base import BatchOptimizer, Proposal, _Stopwatch
from repro.util import ConfigurationError, RandomState, from_jsonable, to_jsonable


class _Node:
    """A node of the partition tree; leaves carry the active boxes."""

    _ids = itertools.count()

    def __init__(self, bounds: np.ndarray, parent: "_Node | None" = None):
        self.id = next(self._ids)
        self.bounds = bounds  # (d, 2)
        self.parent = parent
        self.children: tuple[_Node, _Node] | None = None
        self.score = -np.inf  # best EI seen in this box this cycle

    @property
    def is_leaf(self) -> bool:
        return self.children is None

    def split(self, dim: int) -> tuple["_Node", "_Node"]:
        mid = 0.5 * (self.bounds[dim, 0] + self.bounds[dim, 1])
        left = self.bounds.copy()
        left[dim, 1] = mid
        right = self.bounds.copy()
        right[dim, 0] = mid
        self.children = (_Node(left, self), _Node(right, self))
        return self.children

    def merge(self) -> None:
        self.children = None

    def longest_dim(self, span: np.ndarray) -> int:
        widths = (self.bounds[:, 1] - self.bounds[:, 0]) / span
        return int(np.argmax(widths))


class BSPEGO(BatchOptimizer):
    """Binary-space-partitioning batch EGO with a parallel AP."""

    name = "BSP-EGO"

    def __init__(
        self,
        problem,
        n_batch: int,
        seed: RandomState = None,
        gp_options: dict | None = None,
        acq_options: dict | None = None,
        regions_per_worker: int = 2,
    ):
        super().__init__(problem, n_batch, seed, gp_options, acq_options)
        if regions_per_worker < 1:
            raise ConfigurationError("regions_per_worker must be >= 1")
        self.n_regions = max(2, regions_per_worker * n_batch)
        self.root = _Node(problem.bounds.copy())
        self._grow_to(self.n_regions)

    # -- partition maintenance -------------------------------------------
    def leaves(self) -> list[_Node]:
        out: list[_Node] = []
        stack = [self.root]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                out.append(node)
            else:
                stack.extend(node.children)
        return out

    def _grow_to(self, n: int) -> None:
        span = self.problem.upper - self.problem.lower
        while len(self.leaves()) < n:
            # split the largest leaf, round-robin over dimensions
            leaf = max(
                self.leaves(),
                key=lambda nd: float(np.prod(nd.bounds[:, 1] - nd.bounds[:, 0])),
            )
            leaf.split(leaf.longest_dim(span))

    def _sibling_leaf_pairs(self) -> list[_Node]:
        """Parents whose both children are leaves (mergeable)."""
        pairs = []
        stack = [self.root]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                continue
            a, b = node.children
            if a.is_leaf and b.is_leaf:
                pairs.append(node)
            stack.extend(node.children)
        return pairs

    def _evolve(self, best_leaf: _Node) -> None:
        """Merge the weakest sibling pair, split the winning box."""
        span = self.problem.upper - self.problem.lower
        pairs = [
            p
            for p in self._sibling_leaf_pairs()
            if best_leaf not in p.children
        ]
        if pairs:
            weakest = min(
                pairs, key=lambda p: max(p.children[0].score, p.children[1].score)
            )
            weakest.merge()
            best_leaf.split(best_leaf.longest_dim(span))
        # else: the only mergeable pair contains the winner; splitting
        # after merging it would just recreate the same boxes — keep the
        # partition for this cycle (only possible at n_regions = 2).

    # -- checkpointing ----------------------------------------------------
    @staticmethod
    def _node_to_dict(node: _Node) -> dict:
        return {
            "bounds": to_jsonable(node.bounds),
            "score": None if node.score == -np.inf else float(node.score),
            "children": (
                None
                if node.is_leaf
                else [BSPEGO._node_to_dict(c) for c in node.children]
            ),
        }

    @staticmethod
    def _node_from_dict(data: dict, parent: "_Node | None" = None) -> _Node:
        node = _Node(from_jsonable(data["bounds"]), parent)
        node.score = -np.inf if data["score"] is None else float(data["score"])
        if data["children"] is not None:
            node.children = tuple(
                BSPEGO._node_from_dict(c, node) for c in data["children"]
            )
        return node

    def get_state(self) -> dict:
        state = super().get_state()
        state["tree"] = self._node_to_dict(self.root)
        return state

    def set_state(self, state: dict) -> None:
        super().set_state(state)
        self.root = self._node_from_dict(state["tree"])

    # -- proposal -----------------------------------------------------------
    def propose(self) -> Proposal:
        gp, fit_time = self._fit_gp()
        opts = self.acq_options
        leaves = self.leaves()
        best_f = self.best_f
        candidates: list[tuple[float, np.ndarray, _Node]] = []
        durations: list[float] = []

        # Per-region budgets: the paper splits the inner-optimization
        # effort across regions (each worker handles two boxes).
        region_restarts = max(2, opts["n_restarts"] // 2)
        region_raw = max(32, opts["raw_samples"] // len(leaves))

        for leaf in leaves:
            sw = _Stopwatch()
            with sw:
                acq = ExpectedImprovement(gp, best_f)
                x, val = optimize_acqf(
                    acq,
                    leaf.bounds,
                    n_restarts=region_restarts,
                    raw_samples=region_raw,
                    maxiter=opts["maxiter"],
                    seed=self.rng,
                    avoid=self.X,
                    batch_starts=opts.get("batch_starts", True),
                )
            durations.append(sw.total)
            leaf.score = float(val)
            candidates.append((float(val), x, leaf))

        candidates.sort(key=lambda c: c[0], reverse=True)
        batch: list[np.ndarray] = []
        for _, x, _leaf in candidates:
            if len(batch) >= self.n_batch:
                break
            batch.append(self._dedupe(x, batch))
        while len(batch) < self.n_batch:  # fewer regions than q (q=1)
            batch.append(
                self._dedupe(
                    self.rng.uniform(self.problem.lower, self.problem.upper), batch
                )
            )

        self._evolve(candidates[0][2])
        return Proposal(
            X=np.asarray(batch),
            fit_time=fit_time,
            acq_time=float(np.sum(durations)),
            acq_durations=durations,
        )
