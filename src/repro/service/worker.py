"""Distributed evaluation worker: pull ask → simulate → post tell.

``repro worker --url ... --session ...`` runs this loop in its own
process; N such processes against one server give real distributed
parallel BO over HTTP — the deployment shape of the paper's cluster
(one master proposing, many workers each owning a 10 s UPHES
simulation), with the master's loop inverted into the ask/tell server.

The loop is deliberately fault-tolerant in both directions:

- transient HTTP failures are retried with full-jitter backoff by the
  client, behind a shared circuit breaker that fails fast (and sleeps)
  while a shard is being restarted instead of hammering it;
- 429 (backpressure: too many asks in flight) backs off with full
  jitter, honoring the server's ``Retry-After`` hint as a floor, so a
  fleet of workers released from backpressure does not return as one
  thundering herd;
- a tell answered ``expired`` (the worker held the ticket past the
  session's ``ask_timeout`` — from the server's perspective this worker
  was dead and the point was requeued) is simply counted; the result is
  already owned by a reissued ticket;
- the worker evaluates the problem *locally*, rebuilding it from the
  session's spec echo, so no objective values ever travel except
  through ``tell``.

``hold_s`` artificially stretches each evaluation — the fault-injection
knob the service smoke test uses to kill a worker while it provably
holds a ticket.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field

from repro.service.client import (
    CircuitBreaker,
    CircuitOpenError,
    ServiceClient,
    ServiceClientError,
    full_jitter,
)
from repro.service.sessions import build_problem, validate_spec
from repro.util import ConfigurationError


@dataclass
class WorkerStats:
    """What one worker loop did, by tell status."""

    n_asked: int = 0
    n_told: int = 0
    n_expired: int = 0
    n_duplicate: int = 0
    n_dropped: int = 0
    n_backoff: int = 0
    statuses: dict = field(default_factory=dict)

    def record(self, status: str) -> None:
        self.statuses[status] = self.statuses.get(status, 0) + 1
        if status in ("accepted", "dropped"):
            self.n_told += 1
        if status == "dropped":
            self.n_dropped += 1
        elif status == "expired":
            self.n_expired += 1
        elif status == "duplicate":
            self.n_duplicate += 1


def run_worker(
    url: str,
    session: str,
    *,
    max_evals: int | None = None,
    deadline_s: float | None = None,
    backoff_s: float = 0.2,
    hold_s: float = 0.0,
    client: ServiceClient | None = None,
    evaluator=None,
    quiet: bool = True,
    sleep=time.sleep,
) -> WorkerStats:
    """Evaluate for one session until a budget or the server runs out.

    Parameters
    ----------
    url / session:
        Server root and session name.
    max_evals:
        Stop after this many completed evaluations (None: unlimited).
    deadline_s:
        Stop after this much wall time (None: unlimited).
    backoff_s:
        Sleep when the server answers 429 (doubles up to 16×).
    hold_s:
        Extra sleep between ask and tell (simulated slow simulation).
    client / evaluator:
        Injectables for tests: a pre-built client, and a callable
        ``f(x) -> float`` replacing the spec-derived problem. The
        default client carries a circuit breaker, so a dead or
        restarting server is probed gently instead of hammered.
    """
    if max_evals is None and deadline_s is None:
        raise ConfigurationError(
            "give max_evals and/or deadline_s — a worker needs a budget"
        )
    rng = random.Random()
    client = client or ServiceClient(url, breaker=CircuitBreaker())
    stats = WorkerStats()
    t0 = time.time()

    if evaluator is None:
        status = client.session_status(session)
        problem = build_problem(validate_spec(status["spec"]))
        evaluator = lambda x: float(problem(x[None, :])[0])  # noqa: E731

    attempt = 0
    backoff_cap = 16.0 * backoff_s
    while True:
        if max_evals is not None and stats.n_told >= max_evals:
            break
        if deadline_s is not None and time.time() - t0 >= deadline_s:
            break
        try:
            tickets = client.ask(session, 1)
        except CircuitOpenError as exc:
            # The breaker is protecting a sick endpoint: sleep out the
            # cooldown (plus jitter) and let the half-open probe decide.
            stats.n_backoff += 1
            sleep(full_jitter(backoff_s, 0, backoff_cap, rng,
                              retry_after=exc.retry_after))
            continue
        except ServiceClientError as exc:
            if exc.status == 429:  # backpressure: let the fleet drain
                stats.n_backoff += 1
                sleep(full_jitter(backoff_s, attempt, backoff_cap, rng,
                                  retry_after=exc.retry_after))
                attempt += 1
                continue
            if exc.status == 503:  # draining server: we are done here
                break
            raise
        attempt = 0
        ticket, x = tickets[0]
        stats.n_asked += 1
        if hold_s > 0.0:
            sleep(hold_s)
        y = evaluator(x)
        result = None
        while result is None:
            try:
                result = client.tell(session, ticket, y)
            except CircuitOpenError as exc:
                # Never abandon a computed result: the ticket would sit
                # pending until the expiry sweep requeues it. Wait the
                # breaker out and deliver.
                stats.n_backoff += 1
                sleep(full_jitter(backoff_s, 0, backoff_cap, rng,
                                  retry_after=exc.retry_after))
            except ServiceClientError as exc:
                if exc.status == 503:
                    break
                raise
        if result is None:  # draining server mid-tell
            break
        stats.record(result.get("status", "unknown"))
        if not quiet:
            print(
                f"[worker] {ticket} -> y={y:.4f} ({result.get('status')}, "
                f"told={stats.n_told})",
                flush=True,
            )
    return stats
