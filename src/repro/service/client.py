"""Thin stdlib client for the ask/tell HTTP service.

Workers and scripts talk to :mod:`repro.service.server` (or the fleet
front door of :mod:`repro.service.router`) through this ``urllib``-based
client. Transport-level failures (connection refused, resets, 5xx
responses) are retried with **full-jitter exponential backoff** — each
retry sleeps ``uniform(0, min(cap, base·2^attempt))``, so a thousand
clients bouncing off a restarting shard spread their retries instead of
stampeding it in lockstep — and any server-provided ``Retry-After``
hint is honored as an additive floor. Semantic errors (400/404/409/
422/429/504) surface immediately as :class:`ServiceClientError`
carrying the HTTP status, the server's typed error payload, and the
parsed ``Retry-After``, so callers can branch on them (the worker loop
treats 429 as "back off", 404 as fatal).

A :class:`CircuitBreaker` can be attached: after enough consecutive
transport/5xx failures the client stops hammering the sick endpoint and
fails fast (:class:`CircuitOpenError`) until a cooldown elapses, then
lets exactly one half-open probe through; a successful probe closes the
circuit, a failed one reopens it with a doubled (capped) cooldown. This
is what keeps one slow shard from dragging every worker thread of the
fleet down with it.
"""

from __future__ import annotations

import json
import random
import threading
import time
import urllib.error
import urllib.request

import numpy as np

from repro.util import ReproError

#: HTTP statuses worth retrying: the server was unable, not unwilling.
RETRYABLE_STATUSES = (500, 502, 503, 504)

#: Header carrying the caller's absolute deadline (unix seconds).
DEADLINE_HEADER = "X-Repro-Deadline"


def full_jitter(base: float, attempt: int, cap: float, rng: random.Random,
                retry_after: float | None = None) -> float:
    """One full-jitter backoff delay (AWS-style), honoring server hints.

    ``uniform(0, min(cap, base·2^attempt))``; a ``Retry-After`` hint is
    added as a floor *under* the jitter (hint + jitter, never a bare
    hint) so a fleet told "retry in 2 s" does not return as one wave at
    exactly t+2.
    """
    delay = rng.uniform(0.0, min(cap, base * (2.0 ** attempt)))
    if retry_after is not None:
        delay += max(0.0, float(retry_after))
    return delay


class ServiceClientError(ReproError):
    """A service request failed with a definitive (non-retried) answer.

    Attributes ``status`` (HTTP code, 0 for transport exhaustion),
    ``error`` (server-side exception type name), ``message``, and
    ``retry_after`` (parsed ``Retry-After`` seconds, or None).
    """

    def __init__(self, status: int, error: str, message: str,
                 retry_after: float | None = None):
        super().__init__(f"HTTP {status} {error}: {message}")
        self.status = int(status)
        self.error = error
        self.message = message
        self.retry_after = retry_after


class CircuitOpenError(ServiceClientError):
    """The client's circuit breaker is open: failing fast, not calling.

    ``retry_after`` is the time until the next half-open probe slot.
    """

    def __init__(self, base_url: str, retry_after: float):
        super().__init__(
            0,
            "CircuitOpen",
            f"circuit for {base_url} is open; retry in {retry_after:.2f}s",
            retry_after=retry_after,
        )


class CircuitBreaker:
    """Per-endpoint circuit breaker with half-open probes.

    States::

        closed ──(failures ≥ threshold)──▶ open
        open ──(cooldown elapsed)──▶ half-open (one probe admitted)
        half-open ──probe ok──▶ closed        (cooldown resets)
        half-open ──probe fails──▶ open       (cooldown doubles, capped)

    Successes in the closed state reset the consecutive-failure count.
    Thread-safe: many worker threads may share one breaker (they should
    — the point is a *collective* back-off from a sick shard).
    """

    def __init__(
        self,
        failure_threshold: int = 5,
        cooldown_s: float = 1.0,
        max_cooldown_s: float = 30.0,
        clock=time.monotonic,
        rng: random.Random | None = None,
    ):
        self.failure_threshold = int(failure_threshold)
        self.base_cooldown_s = float(cooldown_s)
        self.max_cooldown_s = float(max_cooldown_s)
        self.clock = clock
        self.rng = rng or random.Random()
        self._lock = threading.Lock()
        self.state = "closed"
        self._failures = 0
        self._cooldown = self.base_cooldown_s
        self._open_until = 0.0
        self._probing = False
        self.stats = {"opened": 0, "probes": 0, "fast_failures": 0}

    def allow(self) -> bool:
        """May a request proceed right now? (False = fail fast.)"""
        with self._lock:
            if self.state == "closed":
                return True
            now = self.clock()
            if self.state == "open":
                if now < self._open_until:
                    self.stats["fast_failures"] += 1
                    return False
                self.state = "half_open"
                self._probing = False
            # half-open: admit exactly one probe at a time
            if self._probing:
                self.stats["fast_failures"] += 1
                return False
            self._probing = True
            self.stats["probes"] += 1
            return True

    def retry_in(self) -> float:
        """Seconds until a request could next be admitted."""
        with self._lock:
            if self.state != "open":
                return 0.0
            return max(0.0, self._open_until - self.clock())

    def record_success(self) -> None:
        with self._lock:
            self.state = "closed"
            self._failures = 0
            self._probing = False
            self._cooldown = self.base_cooldown_s

    def record_failure(self) -> None:
        with self._lock:
            if self.state == "half_open":
                self._trip_locked(double=True)
                return
            self._failures += 1
            if self.state == "closed" and self._failures >= self.failure_threshold:
                self._trip_locked(double=False)

    def _trip_locked(self, double: bool) -> None:
        if double:
            self._cooldown = min(self._cooldown * 2.0, self.max_cooldown_s)
        self.state = "open"
        self._probing = False
        self._failures = 0
        # Jitter the reopen instant too: breakers tripped by the same
        # shard death should not all probe in the same millisecond.
        self._open_until = self.clock() + self._cooldown * self.rng.uniform(
            0.8, 1.2
        )
        self.stats["opened"] += 1


class ServiceClient:
    """JSON-over-HTTP client with jittered retry, breaker, deadlines.

    Parameters
    ----------
    base_url:
        Server root, e.g. ``http://127.0.0.1:8751``.
    timeout:
        Per-request socket timeout in seconds.
    max_retries:
        Transport/5xx retry attempts per request (beyond the first).
    backoff:
        Full-jitter backoff base in seconds (doubling cap per attempt).
    backoff_cap:
        Upper bound on any single backoff sleep.
    retry_backpressure:
        Also retry 429 responses (honoring ``Retry-After``) instead of
        raising them. Off by default: the worker loop owns its own 429
        policy.
    deadline_s:
        Per-request deadline budget. Each request carries an absolute
        ``X-Repro-Deadline`` header of ``now + deadline_s``; the router
        and shards refuse work past it, and the retry loop stops
        sleeping once the budget is spent.
    breaker:
        Optional :class:`CircuitBreaker` shared across clients hitting
        the same endpoint.
    sleep / rng:
        Injectable sleeper and jitter source for tests.
    """

    def __init__(
        self,
        base_url: str,
        timeout: float = 30.0,
        max_retries: int = 4,
        backoff: float = 0.2,
        backoff_cap: float = 10.0,
        retry_backpressure: bool = False,
        deadline_s: float | None = None,
        breaker: CircuitBreaker | None = None,
        sleep=time.sleep,
        rng: random.Random | None = None,
    ):
        self.base_url = base_url.rstrip("/")
        self.timeout = float(timeout)
        self.max_retries = int(max_retries)
        self.backoff = float(backoff)
        self.backoff_cap = float(backoff_cap)
        self.retry_backpressure = bool(retry_backpressure)
        self.deadline_s = None if deadline_s is None else float(deadline_s)
        self.breaker = breaker
        self.sleep = sleep
        self.rng = rng or random.Random()

    # -- transport -----------------------------------------------------
    def request(self, method: str, path: str, payload: dict | None = None) -> dict:
        """One JSON request with retry/backoff; returns the parsed body."""
        if self.breaker is not None and not self.breaker.allow():
            raise CircuitOpenError(self.base_url, self.breaker.retry_in())
        body = None if payload is None else json.dumps(payload).encode("utf-8")
        deadline = (
            None if self.deadline_s is None else time.time() + self.deadline_s
        )
        last: Exception | None = None
        last_retry_after: float | None = None
        for attempt in range(self.max_retries + 1):
            headers = {"Content-Type": "application/json"}
            timeout = self.timeout
            if deadline is not None:
                headers[DEADLINE_HEADER] = f"{deadline:.6f}"
                remaining = deadline - time.time()
                if remaining <= 0:
                    break  # budget gone: report the last failure
                timeout = min(timeout, remaining)
            req = urllib.request.Request(
                self.base_url + path, data=body, method=method, headers=headers
            )
            try:
                with urllib.request.urlopen(req, timeout=timeout) as resp:
                    self._record(success=True)
                    return json.loads(resp.read().decode("utf-8"))
            except urllib.error.HTTPError as exc:
                retry_after = self._parse_retry_after(exc)
                retryable = exc.code in RETRYABLE_STATUSES or (
                    exc.code == 429 and self.retry_backpressure
                )
                # Any well-formed HTTP answer proves the endpoint alive;
                # only transport failures and 5xx count against the
                # breaker.
                self._record(success=exc.code < 500)
                if not retryable:
                    data = self._error_payload(exc)
                    raise ServiceClientError(
                        exc.code,
                        data.get("error", "HTTPError"),
                        data.get("message", str(exc)),
                        retry_after=retry_after,
                    ) from None
                last, last_retry_after = exc, retry_after
            except (urllib.error.URLError, ConnectionError, TimeoutError) as exc:
                self._record(success=False)
                last, last_retry_after = exc, None
            if attempt < self.max_retries:
                delay = full_jitter(
                    self.backoff, attempt, self.backoff_cap, self.rng,
                    retry_after=last_retry_after,
                )
                if deadline is not None:
                    remaining = deadline - time.time()
                    if remaining <= delay:
                        break  # sleeping would blow the deadline
                self.sleep(delay)
        # Retries exhausted: surface the HTTP status if there was one
        # (a drained 503 stays recognizable), else 0 for pure transport
        # failures (connection refused, timeouts).
        raise ServiceClientError(
            getattr(last, "code", 0),
            type(last).__name__,
            f"{method} {path} failed after retries: {last}",
            retry_after=last_retry_after,
        )

    def _record(self, success: bool) -> None:
        if self.breaker is None:
            return
        if success:
            self.breaker.record_success()
        else:
            self.breaker.record_failure()

    @staticmethod
    def _parse_retry_after(exc: urllib.error.HTTPError) -> float | None:
        raw = exc.headers.get("Retry-After") if exc.headers else None
        if raw is None:
            return None
        try:
            return max(0.0, float(raw))
        except ValueError:
            return None

    @staticmethod
    def _error_payload(exc: urllib.error.HTTPError) -> dict:
        try:
            data = json.loads(exc.read().decode("utf-8"))
            return data if isinstance(data, dict) else {}
        except Exception:
            return {}

    # -- protocol verbs ------------------------------------------------
    def create_session(self, name: str, **spec) -> dict:
        """``POST /sessions``; returns the normalized spec echo."""
        return self.request("POST", "/sessions", {"name": name, **spec})

    def ask(self, session: str, n: int = 1) -> list[tuple[str, np.ndarray]]:
        """``POST /sessions/<name>/ask``; returns (ticket, x) pairs."""
        data = self.request("POST", f"/sessions/{session}/ask", {"n": n})
        return [
            (t["ticket"], np.asarray(t["x"], dtype=np.float64))
            for t in data["tickets"]
        ]

    def tell(self, session: str, ticket: str, y: float) -> dict:
        """``POST /sessions/<name>/tell``; returns the tell status."""
        return self.request(
            "POST", f"/sessions/{session}/tell", {"ticket": ticket, "y": float(y)}
        )

    def best(self, session: str) -> dict:
        """``GET /sessions/<name>/best`` (409 → ServiceClientError)."""
        return self.request("GET", f"/sessions/{session}/best")

    def session_status(self, session: str) -> dict:
        return self.request("GET", f"/sessions/{session}/status")

    def server_status(self) -> dict:
        return self.request("GET", "/status")

    def metrics(self) -> dict:
        return self.request("GET", "/metrics")

    def shutdown(self) -> dict:
        """Ask the server to begin a graceful drain."""
        return self.request("POST", "/shutdown")
