"""Thin stdlib client for the ask/tell HTTP service.

Workers and scripts talk to :mod:`repro.service.server` through this
``urllib``-based client. Transport-level failures (connection refused,
resets, 5xx/503 responses) are retried with exponential backoff — the
transient noise any distributed evaluation fleet sees — while semantic
errors (400/404/409/422/429) surface immediately as
:class:`ServiceClientError` carrying the HTTP status and the server's
typed error payload, so callers can branch on them (the worker loop
treats 429 as "back off", 404 as fatal).
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request

import numpy as np

from repro.util import ReproError

#: HTTP statuses worth retrying: the server was unable, not unwilling.
RETRYABLE_STATUSES = (500, 502, 503, 504)


class ServiceClientError(ReproError):
    """A service request failed with a definitive (non-retried) answer.

    Attributes ``status`` (HTTP code, 0 for transport exhaustion),
    ``error`` (server-side exception type name) and ``message``.
    """

    def __init__(self, status: int, error: str, message: str):
        super().__init__(f"HTTP {status} {error}: {message}")
        self.status = int(status)
        self.error = error
        self.message = message


class ServiceClient:
    """JSON-over-HTTP client with retry/backoff.

    Parameters
    ----------
    base_url:
        Server root, e.g. ``http://127.0.0.1:8751``.
    timeout:
        Per-request socket timeout in seconds.
    max_retries:
        Transport/5xx retry attempts per request (beyond the first).
    backoff:
        Initial backoff in seconds; doubles per retry.
    sleep:
        Injectable sleeper for tests.
    """

    def __init__(
        self,
        base_url: str,
        timeout: float = 30.0,
        max_retries: int = 4,
        backoff: float = 0.2,
        sleep=time.sleep,
    ):
        self.base_url = base_url.rstrip("/")
        self.timeout = float(timeout)
        self.max_retries = int(max_retries)
        self.backoff = float(backoff)
        self.sleep = sleep

    # -- transport -----------------------------------------------------
    def request(self, method: str, path: str, payload: dict | None = None) -> dict:
        """One JSON request with retry/backoff; returns the parsed body."""
        body = None if payload is None else json.dumps(payload).encode("utf-8")
        last: Exception | None = None
        for attempt in range(self.max_retries + 1):
            req = urllib.request.Request(
                self.base_url + path,
                data=body,
                method=method,
                headers={"Content-Type": "application/json"},
            )
            try:
                with urllib.request.urlopen(req, timeout=self.timeout) as resp:
                    return json.loads(resp.read().decode("utf-8"))
            except urllib.error.HTTPError as exc:
                data = self._error_payload(exc)
                if exc.code not in RETRYABLE_STATUSES:
                    raise ServiceClientError(
                        exc.code,
                        data.get("error", "HTTPError"),
                        data.get("message", str(exc)),
                    ) from None
                last = exc
            except (urllib.error.URLError, ConnectionError, TimeoutError) as exc:
                last = exc
            if attempt < self.max_retries:
                self.sleep(self.backoff * (2.0**attempt))
        # Retries exhausted: surface the HTTP status if there was one
        # (a drained 503 stays recognizable), else 0 for pure transport
        # failures (connection refused, timeouts).
        raise ServiceClientError(
            getattr(last, "code", 0),
            type(last).__name__,
            f"{method} {path} failed after retries: {last}",
        )

    @staticmethod
    def _error_payload(exc: urllib.error.HTTPError) -> dict:
        try:
            data = json.loads(exc.read().decode("utf-8"))
            return data if isinstance(data, dict) else {}
        except Exception:
            return {}

    # -- protocol verbs ------------------------------------------------
    def create_session(self, name: str, **spec) -> dict:
        """``POST /sessions``; returns the normalized spec echo."""
        return self.request("POST", "/sessions", {"name": name, **spec})

    def ask(self, session: str, n: int = 1) -> list[tuple[str, np.ndarray]]:
        """``POST /sessions/<name>/ask``; returns (ticket, x) pairs."""
        data = self.request("POST", f"/sessions/{session}/ask", {"n": n})
        return [
            (t["ticket"], np.asarray(t["x"], dtype=np.float64))
            for t in data["tickets"]
        ]

    def tell(self, session: str, ticket: str, y: float) -> dict:
        """``POST /sessions/<name>/tell``; returns the tell status."""
        return self.request(
            "POST", f"/sessions/{session}/tell", {"ticket": ticket, "y": float(y)}
        )

    def best(self, session: str) -> dict:
        """``GET /sessions/<name>/best`` (409 → ServiceClientError)."""
        return self.request("GET", f"/sessions/{session}/best")

    def session_status(self, session: str) -> dict:
        return self.request("GET", f"/sessions/{session}/status")

    def server_status(self) -> dict:
        return self.request("GET", "/status")

    def metrics(self) -> dict:
        return self.request("GET", "/metrics")

    def shutdown(self) -> dict:
        """Ask the server to begin a graceful drain."""
        return self.request("POST", "/shutdown")
