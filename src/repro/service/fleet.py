"""Shard supervision: spawn, heartbeat, restart, recover, drain.

:class:`FleetSupervisor` turns the single-process ask/tell server into
a fleet: N shard processes (each ``repro serve`` with its own store
subdirectory and checkpoint backups enabled) behind one
:class:`~repro.service.router.FleetRouter` front door. The supervisor's
monitor thread drives a per-shard health state machine::

    starting ──announce file + first heartbeat──▶ healthy
    healthy ──missed heartbeat──▶ suspect ──(max_missed)──▶ dead
    healthy/suspect ──process exited──▶ dead
    dead ──kill leftover + respawn (jittered backoff)──▶ starting

A shard declared dead is unregistered from the router (its sessions
answer 503 + ``Retry-After`` while it is down), killed if a zombie,
and respawned against the *same* store directory — the restarted
process recovers every session from its PR-5 per-session checkpoint,
including the pending-ticket ledger, so in-flight tickets either get
told by their worker against the recovered shard or expire and requeue
under fresh tickets. Zero tickets are lost; the load harness
(``scripts/service_load.py``) measures exactly that.

Shards announce themselves by writing ``{"url", "pid"}`` to an
announce file (``repro serve --announce``) once bound, which is how
the supervisor learns each ephemeral port without parsing stdout.
"""

from __future__ import annotations

import json
import os
import random
import signal
import subprocess
import sys
import threading
import time
import urllib.request
from pathlib import Path

from repro.service.router import FleetRouter, ShardTable
from repro.util import ConfigurationError

#: Per-shard health states (see module docstring state machine).
SHARD_STATES = ("starting", "healthy", "suspect", "dead")


def _repro_env() -> dict:
    """A child environment in which ``python -m repro`` is importable."""
    import repro

    env = dict(os.environ)
    src = str(Path(repro.__file__).resolve().parents[1])
    env["PYTHONPATH"] = src + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    return env


class ShardProcess:
    """One shard: a ``repro serve`` subprocess plus its announce file."""

    def __init__(
        self,
        index: int,
        store_dir: Path,
        host: str = "127.0.0.1",
        extra_args: tuple[str, ...] = (),
        quiet: bool = True,
    ):
        self.index = int(index)
        self.store_dir = Path(store_dir)
        self.host = host
        self.extra_args = tuple(extra_args)
        self.quiet = quiet
        self.announce_path = self.store_dir / "announce.json"
        self.proc: subprocess.Popen | None = None
        self._url: str | None = None

    def start(self) -> None:
        self.store_dir.mkdir(parents=True, exist_ok=True)
        try:
            self.announce_path.unlink()
        except FileNotFoundError:
            pass
        self._url = None
        cmd = [
            sys.executable, "-m", "repro", "serve",
            "--host", self.host, "--port", "0",
            "--store", str(self.store_dir / "sessions"),
            "--announce", str(self.announce_path),
            "--backup-checkpoints",
            *self.extra_args,
        ]
        if self.quiet:
            cmd.append("--quiet")
        self.proc = subprocess.Popen(
            cmd,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
            env=_repro_env(),
        )

    @property
    def alive(self) -> bool:
        return self.proc is not None and self.proc.poll() is None

    @property
    def pid(self) -> int | None:
        return None if self.proc is None else self.proc.pid

    def url(self) -> str | None:
        """The announced base URL, once the shard has bound its port."""
        if self._url is not None:
            return self._url
        try:
            data = json.loads(self.announce_path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            return None
        if self.proc is not None and data.get("pid") != self.proc.pid:
            return None  # stale announce from a previous incarnation
        self._url = data.get("url")
        return self._url

    def terminate(self) -> None:
        if self.proc is not None and self.proc.poll() is None:
            self.proc.terminate()

    def kill(self) -> None:
        if self.proc is not None and self.proc.poll() is None:
            self.proc.kill()

    def wait(self, timeout: float | None = None) -> int | None:
        if self.proc is None:
            return None
        try:
            return self.proc.wait(timeout=timeout)
        except subprocess.TimeoutExpired:
            return None

    def send_signal(self, sig: int) -> None:
        if self.proc is not None and self.proc.poll() is None:
            self.proc.send_signal(sig)


class _ShardSlot:
    """Supervisor-side bookkeeping for one shard index."""

    def __init__(self, index: int, handle):
        self.index = index
        self.handle = handle
        self.state = "starting"
        self.missed = 0
        self.restarts = 0
        self.started_at = time.monotonic()
        self.next_restart_at = 0.0
        self.last_heartbeat: float | None = None


class FleetSupervisor:
    """Own a shard fleet: spawn, heartbeat, restart, route, drain.

    Parameters
    ----------
    n_shards:
        Shard process count; sessions spread over them by consistent
        hash of the session name.
    store_dir:
        Fleet root directory. Each shard persists under
        ``<store_dir>/shard-<i>/sessions`` and announces under
        ``<store_dir>/shard-<i>/announce.json`` — restart-in-place
        recovery requires a store, so (unlike ``repro serve``) it is
        mandatory here.
    host / port:
        Router bind address (``port=0`` → ephemeral).
    heartbeat_s / heartbeat_timeout_s / max_missed:
        Probe cadence, per-probe timeout, and how many consecutive
        missed probes turn a live process from suspect to dead.
    startup_timeout_s:
        How long a starting shard may take to announce + answer before
        being declared dead and respawned.
    restart_backoff_s:
        Base of the jittered backoff between consecutive restarts of
        the same shard (doubles per restart-within-a-minute, capped at
        ×16), so a crash-looping shard does not busy-spin the host.
    max_inflight / max_queue / queue_timeout_s / rate / burst:
        Router admission knobs (see :class:`FleetRouter`).
    shard_args:
        Extra CLI args appended to every ``repro serve`` shard (e.g.
        ``("--idle-timeout", "600")``).
    shard_factory:
        Injectable ``f(index, store_dir) -> handle`` for tests; the
        handle implements the :class:`ShardProcess` protocol
        (``start``/``alive``/``url``/``kill``/``terminate``/``wait``).
    """

    def __init__(
        self,
        n_shards: int,
        store_dir: str | Path,
        host: str = "127.0.0.1",
        port: int = 0,
        heartbeat_s: float = 1.0,
        heartbeat_timeout_s: float = 2.0,
        max_missed: int = 3,
        startup_timeout_s: float = 60.0,
        restart_backoff_s: float = 0.5,
        max_inflight: int = 64,
        max_queue: int = 64,
        queue_timeout_s: float = 2.0,
        rate: float | None = None,
        burst: float | None = None,
        shard_args: tuple[str, ...] = (),
        quiet: bool = True,
        shard_factory=None,
        rng: random.Random | None = None,
    ):
        if n_shards < 1:
            raise ConfigurationError(f"n_shards must be >= 1, got {n_shards}")
        self.n_shards = int(n_shards)
        self.store_dir = Path(store_dir)
        self.heartbeat_s = float(heartbeat_s)
        self.heartbeat_timeout_s = float(heartbeat_timeout_s)
        self.max_missed = int(max_missed)
        self.startup_timeout_s = float(startup_timeout_s)
        self.restart_backoff_s = float(restart_backoff_s)
        self.rng = rng or random.Random()
        self._factory = shard_factory or (
            lambda index, store: ShardProcess(
                index, store, host="127.0.0.1",
                extra_args=shard_args, quiet=quiet,
            )
        )
        self.table = ShardTable(self.n_shards)
        self.router = FleetRouter(
            self.table,
            host=host,
            port=port,
            max_inflight=max_inflight,
            max_queue=max_queue,
            queue_timeout_s=queue_timeout_s,
            rate=rate,
            burst=burst,
            quiet=quiet,
            fleet_info=self.describe,
        )
        self.slots: list[_ShardSlot] = []
        self.events: list[dict] = []  # guarded-by: self._events_lock
        self._events_lock = threading.Lock()
        self._stop = threading.Event()
        self._monitor: threading.Thread | None = None

    # -- lifecycle -----------------------------------------------------
    @property
    def url(self) -> str:
        return self.router.url

    def start(self, wait_healthy: bool = True) -> "FleetSupervisor":
        """Spawn every shard, start the router and the monitor thread."""
        self.store_dir.mkdir(parents=True, exist_ok=True)
        for index in range(self.n_shards):
            slot = _ShardSlot(
                index, self._factory(index, self._shard_dir(index))
            )
            slot.handle.start()
            self.slots.append(slot)
            self._event("spawn", index)
        self.router.start()
        self._monitor = threading.Thread(
            target=self._monitor_loop, name="repro-fleet-monitor", daemon=True
        )
        self._monitor.start()
        if wait_healthy:
            self.wait_all_healthy(timeout=self.startup_timeout_s)
        return self

    def _shard_dir(self, index: int) -> Path:
        return self.store_dir / f"shard-{index:02d}"

    def wait_all_healthy(self, timeout: float = 60.0) -> bool:
        """Block until every shard is healthy (or the timeout passes)."""
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if all(s.state == "healthy" for s in self.slots):
                return True
            time.sleep(0.05)
        return all(s.state == "healthy" for s in self.slots)

    def stop(self) -> None:
        """Drain the fleet: stop monitoring, drain shards, stop router."""
        self._stop.set()
        if self._monitor is not None:
            self._monitor.join(timeout=10.0)
        for slot in self.slots:
            slot.handle.terminate()  # SIGTERM → graceful drain + persist
        for slot in self.slots:
            if slot.handle.wait(timeout=15.0) is None:
                slot.handle.kill()
                slot.handle.wait(timeout=5.0)
        self.router.stop()

    def __enter__(self) -> "FleetSupervisor":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # -- chaos hooks (used by the load harness and tests) --------------
    def shard_pid(self, index: int) -> int | None:
        return self.slots[index].handle.pid

    def sigkill_shard(self, index: int) -> None:
        """SIGKILL a shard process — the chaos-harness fault."""
        self.slots[index].handle.kill()
        self._event("sigkill", index)

    def pause_shard(self, index: int) -> None:
        """SIGSTOP a shard: alive but unresponsive (the slow-shard fault)."""
        self.slots[index].handle.send_signal(signal.SIGSTOP)
        self._event("sigstop", index)

    def resume_shard(self, index: int) -> None:
        self.slots[index].handle.send_signal(signal.SIGCONT)
        self._event("sigcont", index)

    # -- the heartbeat / restart state machine -------------------------
    def _monitor_loop(self) -> None:
        while not self._stop.wait(self.heartbeat_s):
            for slot in self.slots:
                try:
                    self._check(slot)
                except Exception as exc:  # pragma: no cover - must survive
                    # The monitor thread never dies with a shard; record
                    # the probe failure in the bounded event log instead.
                    self._event("monitor_error", slot.index, error=repr(exc))

    def _check(self, slot: _ShardSlot) -> None:
        if slot.state == "dead":
            self._maybe_restart(slot)
            return
        if not slot.handle.alive:
            self._declare_dead(slot, "process exited")
            return
        url = slot.handle.url()
        if url is None:
            if slot.state == "starting":
                waited = time.monotonic() - slot.started_at
                if waited > self.startup_timeout_s:
                    self._declare_dead(slot, "startup timed out")
            else:  # pragma: no cover - announce file vanished
                self._declare_dead(slot, "announce lost")
            return
        if self._probe(url):
            first = slot.state != "healthy"
            slot.state = "healthy"
            slot.missed = 0
            slot.last_heartbeat = time.monotonic()
            self.table.set_url(slot.index, url)
            self.table.set_state(slot.index, "healthy")
            if first:
                self._event("healthy", slot.index)
        elif slot.state == "starting":
            pass  # bound but not answering yet; startup timeout governs
        else:
            slot.missed += 1
            slot.state = "suspect"
            self.table.set_state(slot.index, "suspect")
            self._event("missed_heartbeat", slot.index, missed=slot.missed)
            if slot.missed >= self.max_missed:
                self._declare_dead(
                    slot, f"{slot.missed} consecutive missed heartbeats"
                )

    def _probe(self, url: str) -> bool:
        try:
            req = urllib.request.Request(url + "/status", method="GET")
            with urllib.request.urlopen(
                req, timeout=self.heartbeat_timeout_s
            ) as resp:
                return resp.status == 200
        except Exception:
            return False

    def _declare_dead(self, slot: _ShardSlot, why: str) -> None:
        slot.state = "dead"
        slot.missed = 0
        self.table.set_url(slot.index, None)
        self.table.set_state(slot.index, "dead")
        self._event("dead", slot.index, why=why)
        # Jittered, doubling backoff against crash loops: a shard that
        # died within a minute of starting waits longer each time.
        fast_death = time.monotonic() - slot.started_at < 60.0
        factor = min(2.0 ** slot.restarts, 16.0) if fast_death else 1.0
        delay = self.restart_backoff_s * factor * self.rng.uniform(0.5, 1.5)
        slot.next_restart_at = time.monotonic() + delay
        self._maybe_restart(slot)

    def _maybe_restart(self, slot: _ShardSlot) -> None:
        if time.monotonic() < slot.next_restart_at:
            return
        slot.handle.kill()  # reap any zombie before respawning
        slot.handle.wait(timeout=5.0)
        slot.handle = self._factory(slot.index, self._shard_dir(slot.index))
        slot.handle.start()
        slot.state = "starting"
        slot.missed = 0
        slot.restarts += 1
        slot.started_at = time.monotonic()
        self.table.set_state(slot.index, "starting")
        self._event("restart", slot.index, restarts=slot.restarts)

    # -- reporting -----------------------------------------------------
    def _event(self, kind: str, shard: int, **detail) -> None:
        with self._events_lock:
            self.events.append(
                {"t": time.time(), "kind": kind, "shard": shard, **detail}
            )
            if len(self.events) > 4096:
                del self.events[:2048]

    def describe(self) -> dict:
        """Supervisor summary embedded in the router's ``GET /status``."""
        with self._events_lock:
            recent = list(self.events[-32:])
        return {
            "shards": [
                {
                    "shard": s.index,
                    "state": s.state,
                    "pid": s.handle.pid,
                    "restarts": s.restarts,
                    "missed": s.missed,
                }
                for s in self.slots
            ],
            "recent_events": recent,
        }
