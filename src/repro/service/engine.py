"""Ask/tell inversion of the batch-BO loop.

Every algorithm in :mod:`repro.core` was written for a driver that owns
the loop: it calls ``propose()``, evaluates the batch itself, and calls
``update()``. :class:`AskTellEngine` inverts that control so an
*external* evaluator — the paper's expensive UPHES simulator running on
remote workers — can drive the optimization over a narrow two-verb
protocol:

``ask(n)``
    Returns up to ``n`` tickets, each a candidate point plus an opaque
    ticket id. Overlapping asks never collide: points already issued
    but not yet told are fantasized into the surrogate Kriging-Believer
    style (the model "believes" its own prediction at the outstanding
    points) before the next proposal is computed, exactly as the
    sequential KB heuristic pushes consecutive single-point
    acquisitions apart.
``tell(ticket, y)``
    Feeds one evaluation back. Tells may arrive out of proposal order,
    in any interleaving with asks, duplicated (answered idempotently),
    for expired tickets (acknowledged, not applied), or with non-finite
    objectives (routed through the driver's non-finite guards, never
    into the GP fit).

Tickets that stay outstanding past ``ask_timeout`` — a worker died
mid-simulation — are swept back into the candidate queue and reissued
under a fresh ticket, so no proposed point is ever lost.

The engine is checkpointable: :meth:`get_state` captures the optimizer
snapshot (RNG stream included, via the same machinery the resilience
layer uses for journaled runs), the observation history, the candidate
queue, and the pending-ask ledger, so a restarted engine resumes
mid-flight with identical best-so-far and outstanding tickets.

The engine itself is single-threaded by design; concurrent access is
serialized by the per-session locks of
:class:`repro.service.sessions.SessionManager`.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core import make_optimizer
from repro.core.driver import NONFINITE_ACTIONS, _guard_nonfinite
from repro.doe import latin_hypercube, uniform_random
from repro.portfolio.fantasy import check_fantasy_mode, fantasy_values
from repro.obs.metrics import get_metrics
from repro.util import (
    BackpressureError,
    ConfigurationError,
    UnknownTicketError,
    as_generator,
    capture_rng,
    check_finite,
    from_jsonable,
    restore_rng,
    to_jsonable,
)

#: Engine checkpoint schema version, bumped on incompatible changes.
STATE_SCHEMA = 1

#: Terminal ticket statuses kept in the bounded retired map.
_RETIRED_CAP = 8192


class AskTellEngine:
    """Ask/tell wrapper around any registry algorithm.

    Parameters
    ----------
    problem:
        The :class:`~repro.problems.Problem` being optimized. ``tell``
        and ``best`` speak its *native* orientation; the sign flip for
        maximization problems happens inside, like in the driver.
    algorithm:
        Registry name (``"turbo"``, ``"kb-q-ego"``, ...).
    n_batch:
        Proposal batch size: how many candidates one refill of the
        queue produces (and the surrogate's notion of parallelism).
    seed:
        Seed for the optimizer and the engine's own candidate RNG.
    n_initial:
        Initial design size (default ``16 · n_batch``, paper Table 2).
        The first ``n_initial`` accepted tells initialize the optimizer;
        until then asks are served from a Latin-hypercube design.
    ask_timeout:
        Seconds an issued ticket may stay outstanding before it is
        requeued (None: tickets never expire).
    max_pending:
        Cap on in-flight asks; an ask that would exceed it raises
        :class:`~repro.util.errors.BackpressureError` (HTTP 429 at the
        server boundary). None: unbounded.
    on_nonfinite:
        Fallback for non-finite told objectives — one of
        ``impute | fantasy | drop | raise`` (driver semantics).
    fantasize:
        Fantasies for outstanding points during proposals (default on;
        meaningless for non-surrogate algorithms, which simply skip it).
    fantasy:
        Fantasy strategy for the outstanding points — ``kb``
        (Kriging Believer, the historical behavior), ``randomized_kb``
        (mean + scaled posterior-sample perturbation; fixes KB's
        fantasy collapse at many overlapping asks), or
        ``constant_liar`` (see :mod:`repro.portfolio.fantasy`).
    rkb_scale:
        Perturbation scale of ``randomized_kb`` (0 = plain KB).
    clock:
        Injectable time source for ticket-expiry tests.
    """

    def __init__(
        self,
        problem,
        algorithm: str = "turbo",
        n_batch: int = 4,
        seed: int | None = 0,
        n_initial: int | None = None,
        ask_timeout: float | None = None,
        max_pending: int | None = None,
        on_nonfinite: str = "impute",
        fantasize: bool = True,
        fantasy: str = "kb",
        rkb_scale: float = 1.0,
        algo_options: dict | None = None,
        clock=time.time,
    ):
        if on_nonfinite not in NONFINITE_ACTIONS:
            raise ConfigurationError(
                f"on_nonfinite must be one of {NONFINITE_ACTIONS}, "
                f"got {on_nonfinite!r}"
            )
        if max_pending is not None and max_pending < 1:
            raise ConfigurationError(
                f"max_pending must be >= 1, got {max_pending}"
            )
        if ask_timeout is not None and ask_timeout <= 0:
            raise ConfigurationError(
                f"ask_timeout must be positive, got {ask_timeout}"
            )
        self.problem = problem
        self.algorithm = str(algorithm)
        self.n_batch = int(n_batch)
        self.seed = seed
        self.n_initial = (
            16 * self.n_batch if n_initial is None else int(n_initial)
        )
        if self.n_initial < 1:
            raise ConfigurationError(
                f"n_initial must be >= 1, got {self.n_initial}"
            )
        self.ask_timeout = None if ask_timeout is None else float(ask_timeout)
        self.max_pending = None if max_pending is None else int(max_pending)
        self.on_nonfinite = on_nonfinite
        self.fantasize = bool(fantasize)
        self.fantasy = check_fantasy_mode(fantasy)
        self.rkb_scale = float(rkb_scale)
        self.clock = clock
        self._sign = -1.0 if problem.maximize else 1.0

        self.optimizer = make_optimizer(
            algorithm, problem, n_batch, seed=seed, **(algo_options or {})
        )
        self.optimizer.strict_updates = True
        # Engine-owned stream for the initial design and pre-init
        # overflow candidates, separate from the optimizer's stream so
        # ask traffic does not perturb the algorithm's own RNG.
        self._rng = as_generator(None if seed is None else seed + 1)
        # Dedicated stream for randomized-KB perturbations, so choosing
        # the fantasy strategy never shifts the candidate RNG above.
        self._fantasy_rng = as_generator(None if seed is None else seed + 2)

        self._queue: list[np.ndarray] = []  # unissued candidates, FIFO
        self._pending: dict[str, dict] = {}  # ticket -> {x, issued_at, ...}
        self._retired: dict[str, str] = {}  # ticket -> "done" | "expired"
        self._seq = 0
        self._design_emitted = False
        self.initialized = False
        self.initial_best: float | None = None  # native orientation
        self._init_X: list[np.ndarray] = []  # pre-init tell buffer
        self._init_y: list[float] = []  # native values, may be non-finite
        self.counters = {
            "asks": 0,  # tickets issued (requeues included)
            "tells": 0,  # accepted tells (non-finite ones included)
            "duplicates": 0,  # tells for already-resolved tickets
            "expired_tells": 0,  # tells arriving after a requeue
            "requeues": 0,  # tickets swept back by timeout
            "nonfinite": 0,  # non-finite objectives guarded
            "dropped": 0,  # points discarded by on_nonfinite="drop"
            "proposals": 0,  # optimizer.propose() calls
        }

    # ------------------------------------------------------------------
    @property
    def n_pending(self) -> int:
        return len(self._pending)

    @property
    def n_queued(self) -> int:
        return len(self._queue)

    @property
    def n_told(self) -> int:
        return self.counters["tells"]

    def live_pending(self, now: float | None = None) -> int:
        """In-flight tickets a worker may still legitimately answer.

        A ticket past ``ask_timeout`` is dead weight — it will requeue
        on the next ask/tell sweep — so it does not count. The session
        layer uses this to define *ticket quiescence*: only sessions
        with zero live tickets are eligible for LRU/idle eviction.
        """
        if not self._pending:
            return 0
        if self.ask_timeout is None:
            return len(self._pending)
        now = float(self.clock()) if now is None else float(now)
        return sum(
            1
            for rec in self._pending.values()
            if now - rec["issued_at"] <= self.ask_timeout
        )

    @property
    def best(self) -> tuple[np.ndarray, float] | None:
        """Best (point, native value) so far, or None before any data."""
        if self.optimizer.y.size:
            return self.optimizer.best_x, self._sign * self.optimizer.best_f
        finite = [
            (x, y)
            for x, y in zip(self._init_X, self._init_y)
            if np.isfinite(y)
        ]
        if not finite:
            return None
        pick = (max if self.problem.maximize else min)(
            finite, key=lambda pair: pair[1]
        )
        return pick[0].copy(), float(pick[1])

    def status(self) -> dict:
        """JSON-friendly snapshot of the engine's public state."""
        best = self.best
        return {
            "algorithm": self.optimizer.name,
            "fantasy": self.fantasy,
            "n_batch": self.n_batch,
            "n_initial": self.n_initial,
            "initialized": self.initialized,
            "initial_best": self.initial_best,
            "n_pending": self.n_pending,
            "n_queued": self.n_queued,
            "n_observations": int(self.optimizer.y.size)
            + len(self._init_y),
            "best_value": None if best is None else best[1],
            "counters": dict(self.counters),
        }

    # -- ask -----------------------------------------------------------
    def ask(self, n: int = 1) -> list[dict]:
        """Issue up to ``n`` tickets ``{"ticket": id, "x": (d,) array}``."""
        if n < 1:
            raise ConfigurationError(f"n must be >= 1, got {n}")
        self.sweep_expired()
        if (
            self.max_pending is not None
            and len(self._pending) + n > self.max_pending
        ):
            raise BackpressureError(
                f"{len(self._pending)} asks already in flight "
                f"(max_pending={self.max_pending}); tell or wait"
            )
        out = []
        for _ in range(n):
            if not self._queue:
                self._refill()
            x = self._queue.pop(0)
            ticket = f"t{self._seq:08d}"
            self._seq += 1
            self._pending[ticket] = {
                "x": x,
                "issued_at": float(self.clock()),
                "requeues": 0,
            }
            self.counters["asks"] += 1
            out.append({"ticket": ticket, "x": x.copy()})
        get_metrics().counter("service.engine.asks").inc(len(out))
        return out

    def sweep_expired(self) -> int:
        """Requeue tickets outstanding past ``ask_timeout``; return count."""
        if self.ask_timeout is None or not self._pending:
            return 0
        now = float(self.clock())
        expired = [
            t
            for t, rec in self._pending.items()
            if now - rec["issued_at"] > self.ask_timeout
        ]
        for ticket in expired:
            rec = self._pending.pop(ticket)
            # Front of the queue: a requeued point is the oldest debt.
            self._queue.insert(0, rec["x"])
            self._retire(ticket, "expired")
            self.counters["requeues"] += 1
        if expired:
            get_metrics().counter("service.engine.requeues").inc(len(expired))
        return len(expired)

    def _refill(self) -> None:
        """Extend the candidate queue by one batch."""
        if not self.initialized:
            if not self._design_emitted:
                fresh = latin_hypercube(
                    self.n_initial, self.problem.bounds, seed=self._rng
                )
                self._design_emitted = True
            else:
                # The whole design is in flight but not yet told: serve
                # overflow asks with uniform candidates rather than
                # blocking (there is no surrogate to propose from yet).
                fresh = uniform_random(
                    self.n_batch, self.problem.bounds, seed=self._rng
                )
            self.optimizer.note_proposed(fresh)
            self._queue.extend(fresh)
            return
        proposal = self._propose_with_fantasies()
        self.counters["proposals"] += 1
        self.optimizer.note_proposed(proposal)
        self._queue.extend(proposal)

    def _propose_with_fantasies(self) -> np.ndarray:
        """One optimizer proposal, fantasizing outstanding points.

        Kriging-Believer at the engine level: the surrogate temporarily
        "observes" every issued-but-untold and queued-but-unissued
        point at its predicted (or imputed) value, so the new batch is
        pushed away from work already in flight — the same mechanism
        KB-q-EGO uses within one batch, lifted to the asynchronous
        boundary (cf. randomized Kriging Believer in parallel BO).
        """
        opt = self.optimizer
        outstanding = [rec["x"] for rec in self._pending.values()]
        outstanding.extend(self._queue)
        if not (self.fantasize and opt.uses_surrogate and outstanding):
            return opt.propose().X
        X_pend = np.vstack(outstanding)
        y_fant = self._fantasy_values(X_pend)
        n_real = opt.X.shape[0]
        opt.X = np.vstack([opt.X, X_pend])
        opt.y = np.concatenate([opt.y, y_fant])
        # Tell the factor cache where the real observations end: the
        # fantasy suffix churns every ask/tell/expiry, so building the
        # factorization with a block boundary at the seam lets the next
        # proposal truncate back to the (stable) real block instead of
        # missing outright.
        opt.fantasy_split = n_real
        try:
            X_prop = opt.propose().X
        finally:
            opt.fantasy_split = None
            opt.X = opt.X[:n_real]
            opt.y = opt.y[:n_real]
        return X_prop

    def _fantasy_values(self, X_pend: np.ndarray) -> np.ndarray:
        """Fantasy values (internal orientation) for pending points.

        Dispatches on the configured strategy (``kb`` posterior mean,
        ``randomized_kb`` mean + scaled posterior-sample perturbation,
        ``constant_liar`` mean observation); every strategy falls back
        to the constant liar before the first fit or when predictions
        come back non-finite.
        """
        return fantasy_values(
            self.optimizer.gp,
            X_pend,
            self.optimizer.y,
            mode=self.fantasy,
            rng=self._fantasy_rng,
            rkb_scale=self.rkb_scale,
        )

    # -- tell ----------------------------------------------------------
    def tell(self, ticket: str, y: float) -> dict:
        """Feed back one evaluation; returns ``{"status": ..., ...}``.

        Statuses: ``accepted`` (applied), ``dropped`` (non-finite value
        discarded under ``on_nonfinite="drop"``), ``duplicate`` (ticket
        already resolved — idempotent), ``expired`` (ticket requeued
        before this tell arrived; the value is acknowledged but not
        applied, because its point is already owned by a fresh ticket).
        """
        self.sweep_expired()
        ticket = str(ticket)
        if ticket in self._retired:
            kind = self._retired[ticket]
            if kind == "expired":
                self.counters["expired_tells"] += 1
                get_metrics().counter("service.engine.expired_tells").inc()
                return {"status": "expired"}
            self.counters["duplicates"] += 1
            get_metrics().counter("service.engine.duplicate_tells").inc()
            return {"status": "duplicate"}
        rec = self._pending.pop(ticket, None)
        if rec is None:
            raise UnknownTicketError(
                f"ticket {ticket!r} was never issued by this session"
            )
        y = float(y)
        status = self._absorb(rec["x"], y)
        self._retire(ticket, "done")
        self.counters["tells"] += 1
        if not np.isfinite(y):
            self.counters["nonfinite"] += 1
            get_metrics().counter("service.engine.nonfinite_tells").inc()
        get_metrics().counter("service.engine.tells").inc()
        return {"status": status, "n_told": self.counters["tells"]}

    def _absorb(self, x: np.ndarray, y_native: float) -> str:
        """Apply one evaluation to the optimizer (or the init buffer)."""
        if not self.initialized:
            self._init_X.append(x)
            self._init_y.append(y_native)
            if len(self._init_y) >= self.n_initial:
                self._initialize()
            return "accepted"
        y_int = self._sign * y_native
        X_used, y_used = _guard_nonfinite(
            x[None, :],
            np.asarray([y_int]),
            self.optimizer,
            self.on_nonfinite,
        )
        if X_used.shape[0] == 0:
            self.counters["dropped"] += 1
            # The point stays consumed from the strict ledger even
            # though its value was unusable, mirroring the driver's
            # "drop" semantics; consume it explicitly.
            self.optimizer._consume_outstanding(x[None, :])
            return "dropped"
        self.optimizer.update(X_used, y_used)
        return "accepted"

    def _initialize(self) -> None:
        """First ``n_initial`` tells arrived: install the initial design."""
        X0 = np.vstack(self._init_X)
        y0 = self._sign * np.asarray(self._init_y, dtype=np.float64)
        X0, y0 = _guard_nonfinite(X0, y0, None, self.on_nonfinite)
        dropped = len(self._init_y) - y0.size
        if dropped:
            self.counters["dropped"] += dropped
        # initialize() bypasses the strict ledger; consume the design
        # rows so the outstanding pool only holds truly in-flight work.
        self.optimizer._consume_outstanding(np.vstack(self._init_X))
        self.optimizer.initialize(X0, check_finite(y0, "initial design"))
        self.initial_best = self._sign * float(np.min(y0))
        self._init_X = []
        self._init_y = []
        self.initialized = True

    def _retire(self, ticket: str, status: str) -> None:
        self._retired[ticket] = status
        if len(self._retired) > _RETIRED_CAP:
            for key in list(self._retired)[: _RETIRED_CAP // 2]:
                del self._retired[key]

    # -- checkpointing -------------------------------------------------
    def get_state(self) -> dict:
        """JSON-serializable snapshot of the full engine state.

        Everything needed to resume mid-flight: optimizer snapshot (RNG
        stream, algorithm internals), observation history, candidate
        queue, pending-ask ledger, retired-ticket map, counters. The
        engine's construction parameters are *not* included — the
        session layer persists those as the session spec.
        """
        return {
            "schema": STATE_SCHEMA,
            "optimizer": self.optimizer.get_state(),
            "outstanding": to_jsonable(self.optimizer.outstanding_proposals()),
            "X": to_jsonable(self.optimizer.X),
            "y": to_jsonable(self.optimizer.y),
            "engine_rng": to_jsonable(capture_rng(self._rng)),
            "fantasy": self.fantasy,
            "fantasy_rng": to_jsonable(capture_rng(self._fantasy_rng)),
            "queue": to_jsonable(
                np.vstack(self._queue)
                if self._queue
                else np.empty((0, self.problem.dim))
            ),
            "pending": [
                {
                    "ticket": t,
                    "x": to_jsonable(rec["x"]),
                    "issued_at": rec["issued_at"],
                    "requeues": rec["requeues"],
                }
                for t, rec in self._pending.items()
            ],
            "retired": [[t, s] for t, s in self._retired.items()],
            "seq": self._seq,
            "design_emitted": self._design_emitted,
            "initialized": self.initialized,
            "initial_best": self.initial_best,
            "init_X": to_jsonable(
                np.vstack(self._init_X)
                if self._init_X
                else np.empty((0, self.problem.dim))
            ),
            "init_y": list(self._init_y),
            "counters": dict(self.counters),
        }

    def set_state(self, state: dict) -> None:
        """Restore a :meth:`get_state` snapshot in place.

        The engine must have been constructed with the same
        configuration the snapshot was taken under (the session layer
        guarantees this by persisting spec + state together).
        """
        if state.get("schema") != STATE_SCHEMA:
            raise ConfigurationError(
                f"engine state schema {state.get('schema')!r} not supported"
            )
        opt = self.optimizer
        opt.X = np.asarray(from_jsonable(state["X"]), dtype=np.float64)
        opt.y = np.asarray(from_jsonable(state["y"]), dtype=np.float64).reshape(-1)
        opt.set_state(state["optimizer"])
        opt._outstanding = np.empty((0, self.problem.dim))
        outstanding = from_jsonable(state["outstanding"])
        if np.asarray(outstanding).size:
            opt.note_proposed(outstanding)
        self._rng = restore_rng(self._rng, from_jsonable(state["engine_rng"]))
        if state.get("fantasy") is not None and state["fantasy"] != self.fantasy:
            raise ConfigurationError(
                f"engine state was taken under fantasy={state['fantasy']!r}, "
                f"this engine uses {self.fantasy!r}"
            )
        if "fantasy_rng" in state:  # absent in pre-portfolio checkpoints
            self._fantasy_rng = restore_rng(
                self._fantasy_rng, from_jsonable(state["fantasy_rng"])
            )
        queue = np.asarray(from_jsonable(state["queue"]), dtype=np.float64)
        self._queue = [row.copy() for row in queue.reshape(-1, self.problem.dim)]
        self._pending = {
            rec["ticket"]: {
                "x": np.asarray(from_jsonable(rec["x"]), dtype=np.float64),
                "issued_at": float(rec["issued_at"]),
                "requeues": int(rec["requeues"]),
            }
            for rec in state["pending"]
        }
        self._retired = {t: s for t, s in state["retired"]}
        self._seq = int(state["seq"])
        self._design_emitted = bool(state["design_emitted"])
        self.initialized = bool(state["initialized"])
        self.initial_best = (
            None
            if state["initial_best"] is None
            else float(state["initial_best"])
        )
        init_X = np.asarray(from_jsonable(state["init_X"]), dtype=np.float64)
        self._init_X = [row.copy() for row in init_X.reshape(-1, self.problem.dim)]
        self._init_y = [float(v) for v in state["init_y"]]
        self.counters = {k: int(v) for k, v in state["counters"].items()}
