"""``repro.service`` — ask/tell suggestion service (DESIGN §11, §13).

The serving layer that turns the reproduction into a long-lived
suggestion service driven by external evaluators:

- :mod:`repro.service.engine` — :class:`AskTellEngine`, inverting any
  registry algorithm's propose/update loop into ask/tell with a
  pending-ticket ledger, Kriging-Believer fantasies for outstanding
  asks, timeout requeue, and checkpointable state;
- :mod:`repro.service.sessions` — :class:`SessionManager`, many named
  concurrent sessions behind per-session locks with an atomic on-disk
  store (idle expiry, LRU eviction — never while tickets are live);
- :mod:`repro.service.server` — :class:`ServiceServer`, a stdlib
  ``ThreadingHTTPServer`` JSON API with backpressure, deadline
  propagation, per-endpoint metrics, and graceful drain;
- :mod:`repro.service.client` / :mod:`repro.service.worker` — the
  ``urllib`` client (full-jitter retries, ``Retry-After``, circuit
  breaker) and the pull-evaluate-tell worker loop behind
  ``repro worker``;
- :mod:`repro.service.router` / :mod:`repro.service.fleet` — the
  fleet tier: a front-door proxy (consistent-hash shard routing,
  admission control, rate limiting) and the shard supervisor
  (heartbeats, automatic restart, checkpoint recovery) behind
  ``repro fleet``.

Start a server with ``repro serve``, a supervised multi-process fleet
with ``repro fleet --shards 4``, attach workers with ``repro worker``,
or embed everything in-process (see ``examples/ask_tell_service.py``).
"""

from repro.service.client import (
    CircuitBreaker,
    CircuitOpenError,
    ServiceClient,
    ServiceClientError,
    full_jitter,
)
from repro.service.engine import AskTellEngine
from repro.service.fleet import FleetSupervisor, ShardProcess
from repro.service.router import (
    AdmissionGate,
    FleetRouter,
    HashRing,
    ShardTable,
    TokenBucket,
)
from repro.service.server import ServiceServer
from repro.service.sessions import (
    Session,
    SessionManager,
    build_engine,
    build_problem,
    validate_spec,
)
from repro.service.worker import WorkerStats, run_worker

__all__ = [
    "AdmissionGate",
    "AskTellEngine",
    "CircuitBreaker",
    "CircuitOpenError",
    "FleetRouter",
    "FleetSupervisor",
    "HashRing",
    "ServiceClient",
    "ServiceClientError",
    "ServiceServer",
    "Session",
    "SessionManager",
    "ShardProcess",
    "ShardTable",
    "TokenBucket",
    "WorkerStats",
    "build_engine",
    "build_problem",
    "full_jitter",
    "run_worker",
    "validate_spec",
]
