"""``repro.service`` — ask/tell suggestion server (DESIGN §11).

The serving layer that turns the reproduction into a long-lived
suggestion service driven by external evaluators:

- :mod:`repro.service.engine` — :class:`AskTellEngine`, inverting any
  registry algorithm's propose/update loop into ask/tell with a
  pending-ticket ledger, Kriging-Believer fantasies for outstanding
  asks, timeout requeue, and checkpointable state;
- :mod:`repro.service.sessions` — :class:`SessionManager`, many named
  concurrent sessions behind per-session locks with an atomic on-disk
  store (idle expiry, LRU eviction);
- :mod:`repro.service.server` — :class:`ServiceServer`, a stdlib
  ``ThreadingHTTPServer`` JSON API with backpressure, per-endpoint
  metrics, and graceful drain;
- :mod:`repro.service.client` / :mod:`repro.service.worker` — the
  ``urllib`` client and the pull-evaluate-tell worker loop behind
  ``repro worker``.

Start a server with ``repro serve``, attach workers with
``repro worker``, or embed everything in-process (see
``examples/ask_tell_service.py``).
"""

from repro.service.client import ServiceClient, ServiceClientError
from repro.service.engine import AskTellEngine
from repro.service.server import ServiceServer
from repro.service.sessions import (
    Session,
    SessionManager,
    build_engine,
    build_problem,
    validate_spec,
)
from repro.service.worker import WorkerStats, run_worker

__all__ = [
    "AskTellEngine",
    "ServiceClient",
    "ServiceClientError",
    "ServiceServer",
    "Session",
    "SessionManager",
    "WorkerStats",
    "build_engine",
    "build_problem",
    "run_worker",
    "validate_spec",
]
