"""Named concurrent ask/tell sessions with a crash-safe on-disk store.

One session = one :class:`~repro.service.engine.AskTellEngine` plus the
spec it was built from (problem, algorithm, batch size, seed, limits).
The :class:`SessionManager` keeps many of them alive at once:

- **per-session locks** — the HTTP server is threaded, engines are
  single-threaded; every request runs under its session's RLock, so
  sessions progress in parallel while each engine sees serial calls;
- **crash-safe persistence** — after every mutating operation the
  session's ``{spec, engine state}`` checkpoint is rewritten atomically
  (:func:`repro.resilience.atomic.atomic_write_json`), so a killed
  server restarts with identical best-so-far and pending ledgers;
- **idle expiry / LRU eviction** — memory is a cache over the store:
  sessions idle past ``idle_timeout`` or beyond ``max_sessions`` are
  persisted and dropped, then transparently reloaded on next touch.

Specs are validated with :mod:`repro.util.validation` semantics at the
API boundary: unknown keys, bad algorithm/problem names, and
non-positive sizes are rejected before an engine is built.
"""

from __future__ import annotations

import contextlib
import json
import re
import threading
import time
from pathlib import Path

from repro.core import algorithm_names, is_known_algorithm
from repro.obs.metrics import get_metrics
from repro.portfolio.fantasy import check_fantasy_mode
from repro.resilience.atomic import atomic_write_json, load_json_with_backup
from repro.service.engine import AskTellEngine
from repro.util import (
    BackpressureError,
    ConfigurationError,
    UnknownSessionError,
    ValidationError,
)

#: Session names must be filesystem- and URL-safe.
_NAME_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]{0,63}$")

#: Recognized spec keys with their defaults (None = engine default).
SPEC_DEFAULTS = {
    "problem": "ackley",
    "dim": 12,
    "sim_time": 0.0,
    "algorithm": "turbo",
    "n_batch": 4,
    "seed": 0,
    "n_initial": None,
    "ask_timeout": None,
    "max_pending": None,
    "on_nonfinite": "impute",
    "fantasize": True,
    "fantasy": "kb",
    "rkb_scale": 1.0,
}

#: Session store schema version.
STORE_SCHEMA = 1


def validate_spec(payload: dict) -> dict:
    """Normalize a session spec, filling defaults and rejecting junk."""
    if not isinstance(payload, dict):
        raise ValidationError("session spec must be a JSON object")
    unknown = set(payload) - set(SPEC_DEFAULTS) - {"name"}
    if unknown:
        raise ValidationError(
            f"unknown session spec keys: {sorted(unknown)}; "
            f"allowed: {sorted(SPEC_DEFAULTS)}"
        )
    spec = {**SPEC_DEFAULTS, **{k: payload[k] for k in payload if k != "name"}}
    algo = str(spec["algorithm"]).strip().lower().replace(" ", "-")
    if not is_known_algorithm(algo):
        raise ConfigurationError(
            f"unknown algorithm {spec['algorithm']!r}; "
            f"available: {algorithm_names()}"
        )
    spec["algorithm"] = algo
    spec["n_batch"] = int(spec["n_batch"])
    if spec["n_batch"] < 1:
        raise ValidationError(f"n_batch must be >= 1, got {spec['n_batch']}")
    spec["dim"] = int(spec["dim"])
    spec["sim_time"] = float(spec["sim_time"])
    if spec["seed"] is not None:
        spec["seed"] = int(spec["seed"])
    for key in ("n_initial", "max_pending"):
        if spec[key] is not None:
            spec[key] = int(spec[key])
    if spec["ask_timeout"] is not None:
        spec["ask_timeout"] = float(spec["ask_timeout"])
    if spec["on_nonfinite"] not in ("impute", "fantasy", "drop", "raise"):
        raise ValidationError(
            f"on_nonfinite must be impute|fantasy|drop|raise, "
            f"got {spec['on_nonfinite']!r}"
        )
    spec["fantasize"] = bool(spec["fantasize"])
    spec["fantasy"] = check_fantasy_mode(spec["fantasy"])
    spec["rkb_scale"] = float(spec["rkb_scale"])
    return spec


def build_problem(spec: dict):
    """Instantiate the problem a spec names (benchmark or UPHES)."""
    if str(spec["problem"]).lower() == "uphes":
        from repro.uphes import UPHESSimulator

        return UPHESSimulator(seed=0, sim_time=spec["sim_time"])
    from repro.problems import get_benchmark

    return get_benchmark(
        spec["problem"], dim=spec["dim"], sim_time=spec["sim_time"]
    )


def build_engine(spec: dict, clock=time.time) -> AskTellEngine:
    """Construct a fresh engine from a validated spec."""
    return AskTellEngine(
        build_problem(spec),
        algorithm=spec["algorithm"],
        n_batch=spec["n_batch"],
        seed=spec["seed"],
        n_initial=spec["n_initial"],
        ask_timeout=spec["ask_timeout"],
        max_pending=spec["max_pending"],
        on_nonfinite=spec["on_nonfinite"],
        fantasize=spec["fantasize"],
        fantasy=spec["fantasy"],
        rkb_scale=spec["rkb_scale"],
        clock=clock,
    )


class Session:
    """One live session: engine + spec + lock + recency bookkeeping."""

    def __init__(self, name: str, spec: dict, engine: AskTellEngine):
        self.name = name
        self.spec = spec
        self.engine = engine
        self.lock = threading.RLock()
        self.last_used = 0.0

    def checkpoint(self) -> dict:
        return {
            "schema": STORE_SCHEMA,
            "name": self.name,
            "spec": self.spec,
            "engine": self.engine.get_state(),
        }

    def quiescent(self, now: float | None = None) -> bool:
        """True when no worker may still answer an in-flight ticket.

        Only quiescent sessions are eligible for LRU/idle eviction:
        evicting a session mid-evaluation would force a reload (and an
        expiry sweep it cannot run while off-memory) between a worker's
        ask and its tell, turning healthy in-flight work into requeue
        churn under memory pressure.
        """
        return self.engine.live_pending(now) == 0


class SessionManager:
    """Concurrent named sessions over an optional crash-safe store.

    Parameters
    ----------
    store_dir:
        Directory for per-session checkpoint files (created if absent).
        ``None`` keeps sessions in memory only — eviction is then
        refused rather than state-losing.
    max_sessions:
        Cap on sessions resident in memory; the least recently used is
        persisted and evicted past it.
    idle_timeout:
        Seconds of inactivity after which :meth:`sweep_idle` evicts a
        session from memory (state stays on disk). None: never.
    fsync:
        Force checkpoints to stable storage (disable only in tests).
    backup_checkpoints:
        Keep the previous checkpoint generation as ``<name>.json.bak``
        on every persist, and fall back to it when the primary is
        corrupt. Costs one extra write per mutation; fleet shards turn
        it on, a single laptop server usually does not need it.
    clock:
        Injectable time source (shared with the engines it builds).
    """

    def __init__(
        self,
        store_dir: str | Path | None = None,
        max_sessions: int = 64,
        idle_timeout: float | None = None,
        fsync: bool = True,
        backup_checkpoints: bool = False,
        clock=time.time,
    ):
        if max_sessions < 1:
            raise ConfigurationError(
                f"max_sessions must be >= 1, got {max_sessions}"
            )
        self.store_dir = None if store_dir is None else Path(store_dir)
        if self.store_dir is not None:
            self.store_dir.mkdir(parents=True, exist_ok=True)
        self.max_sessions = int(max_sessions)
        self.idle_timeout = None if idle_timeout is None else float(idle_timeout)
        self.fsync = bool(fsync)
        self.backup_checkpoints = bool(backup_checkpoints)
        self.clock = clock
        self._sessions: dict[str, Session] = {}  # guarded-by: self._lock
        self._lock = threading.Lock()  # guards the dict, not the engines

    # ------------------------------------------------------------------
    def _path(self, name: str) -> Path | None:
        return None if self.store_dir is None else self.store_dir / f"{name}.json"

    def names(self) -> list[str]:
        """All known sessions: resident plus persisted."""
        with self._lock:
            known = set(self._sessions)
        if self.store_dir is not None:
            known.update(p.stem for p in self.store_dir.glob("*.json"))
        return sorted(known)

    def create(self, name: str, payload: dict | None = None) -> Session:
        """Create (and persist) a new named session from a spec."""
        if not _NAME_RE.match(name or ""):
            raise ValidationError(
                f"invalid session name {name!r}: use 1-64 characters "
                "from [A-Za-z0-9._-], starting alphanumeric"
            )
        spec = validate_spec(payload or {})
        with self._lock:
            path = self._path(name)
            if name in self._sessions or (path is not None and path.exists()):
                raise ConfigurationError(f"session {name!r} already exists")
            self._admit_locked()
            session = Session(name, spec, build_engine(spec, clock=self.clock))
            session.last_used = float(self.clock())
            self._sessions[name] = session
        self.persist(name)
        return session

    def get(self, name: str) -> Session:
        """Fetch a resident session, reloading from the store if needed."""
        with self._lock:
            session = self._sessions.get(name)
            if session is not None:
                session.last_used = float(self.clock())
                return session
            path = self._path(name)
            if path is None or not path.exists():
                raise UnknownSessionError(f"unknown session {name!r}")
            session = self._load_locked(name, path)
            self._admit_locked()
            self._sessions[name] = session
            session.last_used = float(self.clock())
            return session

    def _load_locked(self, name: str, path: Path) -> Session:
        try:
            data, recovered = load_json_with_backup(path)
        except (OSError, json.JSONDecodeError) as exc:
            raise ConfigurationError(
                f"session store for {name!r} is unreadable: {exc}"
            ) from exc
        if recovered:
            get_metrics().counter("service.sessions.backup_recoveries").inc()
        if data.get("schema") != STORE_SCHEMA:
            raise ConfigurationError(
                f"session store schema {data.get('schema')!r} not supported"
            )
        spec = validate_spec(data["spec"])
        session = Session(name, spec, build_engine(spec, clock=self.clock))
        session.engine.set_state(data["engine"])
        return session

    def _admit_locked(self) -> None:
        """Make room for one more resident session (caller holds _lock)."""
        while len(self._sessions) >= self.max_sessions:
            victim = self._pick_lru_locked()
            if victim is None:
                raise BackpressureError(
                    f"{len(self._sessions)} sessions resident "
                    f"(max_sessions={self.max_sessions}) and none evictable"
                )
            self._evict_locked(victim)

    def _pick_lru_locked(self) -> Session | None:
        """Least recently used *ticket-quiescent* session, lock free.

        New checkouts need the manager lock (held by the caller), so a
        session probed free here stays free until eviction completes.
        Sessions holding unexpired in-flight tickets are skipped: a
        worker is mid-evaluation against them, and eviction would trade
        its healthy tell for reload churn (or a spurious requeue).
        """
        if self.store_dir is None:
            return None  # nothing to spill to: refuse rather than lose state
        now = float(self.clock())
        for s in sorted(self._sessions.values(), key=lambda s: s.last_used):
            if not s.lock.acquire(blocking=False):
                continue
            try:
                if s.quiescent(now):
                    return s
            finally:
                s.lock.release()
        return None

    def _evict_locked(self, session: Session) -> None:
        with session.lock:
            self._persist_session(session)
            del self._sessions[session.name]

    def sweep_idle(self) -> int:
        """Evict sessions idle past ``idle_timeout``; return count."""
        if self.idle_timeout is None or self.store_dir is None:
            return 0
        now = float(self.clock())
        evicted = 0
        with self._lock:
            for name in list(self._sessions):
                session = self._sessions[name]
                if now - session.last_used <= self.idle_timeout:
                    continue
                if not session.lock.acquire(blocking=False):
                    continue  # busy right now — not idle after all
                try:
                    if not session.quiescent(now):
                        continue  # a worker still owes this session a tell
                    self._evict_locked(session)
                    evicted += 1
                finally:
                    session.lock.release()
        return evicted

    # ------------------------------------------------------------------
    @contextlib.contextmanager
    def session(self, name: str):
        """Lock a session for one operation; persist it on clean exit."""
        session = self.get(name)
        with session.lock:
            yield session
            self._persist_session(session)

    def persist(self, name: str) -> None:
        """Persist one session's checkpoint (no-op without a store)."""
        with self._lock:
            session = self._sessions.get(name)
        if session is None:
            return
        with session.lock:
            self._persist_session(session)

    def _persist_session(self, session: Session) -> None:
        path = self._path(session.name)
        if path is None:
            return
        atomic_write_json(
            path,
            session.checkpoint(),
            fsync=self.fsync,
            backup=self.backup_checkpoints,
        )

    def persist_all(self) -> None:
        """Persist every resident session (the shutdown drain path)."""
        with self._lock:
            resident = list(self._sessions.values())
        for session in resident:
            with session.lock:
                self._persist_session(session)
