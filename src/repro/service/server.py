"""Stdlib-only JSON HTTP server over the session manager.

A :class:`ThreadingHTTPServer` exposing the ask/tell protocol to
distributed workers — no framework, no new dependencies, exactly the
machinery the standard library ships:

=======  ================================  =====================================
method   path                              action
=======  ================================  =====================================
POST     ``/sessions``                     create a session from a JSON spec
POST     ``/sessions/<name>/ask``          issue up to ``n`` tickets
POST     ``/sessions/<name>/tell``         feed back ``{ticket, y}``
GET      ``/sessions/<name>/best``         best point/value so far
GET      ``/sessions/<name>/status``       engine counters + spec echo
GET      ``/status``                       server-level status (all sessions)
GET      ``/metrics``                      :mod:`repro.obs` metrics snapshot
POST     ``/shutdown``                     begin a graceful drain
=======  ================================  =====================================

Error taxonomy → HTTP status: validation/configuration mistakes are
400, unknown sessions/tickets 404, backpressure
(:class:`~repro.util.errors.BackpressureError`, e.g. the per-session
in-flight-ask cap) 429, evaluation-layer failures 422, a draining
server 503, an expired propagated deadline (``X-Repro-Deadline``
header, unix seconds) 504, everything unexpected 500. Bodies are
always JSON; 429/503 responses carry a ``Retry-After`` header so a
well-behaved client never stampedes a recovering server.

Graceful drain: :meth:`ServiceServer.stop` flips the draining flag (new
requests get 503), stops the accept loop, joins every in-flight handler
thread (``daemon_threads=False``), then persists all sessions. The CLI
wires SIGTERM/SIGINT to it, so ``kill <pid>`` is a clean shutdown.
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.obs.metrics import get_metrics
from repro.service.sessions import SessionManager
from repro.util import (
    BackpressureError,
    ConfigurationError,
    DeadlineExceededError,
    EvaluationError,
    ReproError,
    UnknownSessionError,
    UnknownTicketError,
    ValidationError,
)

#: Largest accepted request body (a spec or a tell — tiny in practice).
MAX_BODY = 1 << 20

#: Request header carrying the caller's absolute deadline (unix s).
DEADLINE_HEADER = "X-Repro-Deadline"

#: Error class → HTTP status code.
ERROR_STATUS = (
    (BackpressureError, 429),
    (DeadlineExceededError, 504),
    (UnknownSessionError, 404),
    (UnknownTicketError, 404),
    (EvaluationError, 422),
    (ValidationError, 400),
    (ConfigurationError, 400),
    (ReproError, 500),
)
_STATUS = ERROR_STATUS  # historical alias

# Metric instruments may be hit from many handler threads at once;
# StreamingQuantiles appends are not atomic under mutation + trim.
_METRICS_LOCK = threading.Lock()


def _observe_request(name: str, status: int, seconds: float) -> None:
    metrics = get_metrics()
    if not metrics.enabled:
        return
    with _METRICS_LOCK:
        metrics.counter(f"{name}.requests").inc()
        if status >= 400:
            metrics.counter(f"{name}.errors").inc()
        metrics.histogram(f"{name}.latency_s").observe(seconds)


class JsonRequestHandler(BaseHTTPRequestHandler):
    """Shared JSON-over-HTTP plumbing for the shard and router servers.

    Subclasses implement ``_route(method) -> (route, status, payload)``
    and may return headers via :meth:`_extra_headers`; everything else
    — body parsing, error→status translation, deadline enforcement,
    Retry-After hints, per-route metrics — lives here so the fleet's
    front door and its shards answer identically.
    """

    server_version = "repro-service/1"
    #: Metric prefix for :func:`_observe_request`.
    metric_prefix = "service.http"

    # -- plumbing ------------------------------------------------------
    def log_message(self, fmt, *args):  # pragma: no cover - log routing
        if not self.server.quiet:
            BaseHTTPRequestHandler.log_message(self, fmt, *args)

    def _send(
        self, status: int, payload: dict, headers: dict | None = None
    ) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for key, value in (headers or {}).items():
            self.send_header(key, value)
        self.end_headers()
        self.wfile.write(body)

    def _read_json(self) -> dict:
        length = int(self.headers.get("Content-Length") or 0)
        if length > MAX_BODY:
            raise ValidationError(f"request body exceeds {MAX_BODY} bytes")
        if length == 0:
            return {}
        try:
            payload = json.loads(self.rfile.read(length).decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ValidationError(f"request body is not valid JSON: {exc}")
        if not isinstance(payload, dict):
            raise ValidationError("request body must be a JSON object")
        return payload

    def deadline(self) -> float | None:
        """The request's absolute deadline (unix seconds), if any."""
        raw = self.headers.get(DEADLINE_HEADER)
        if raw is None:
            return None
        try:
            return float(raw)
        except ValueError:
            raise ValidationError(
                f"{DEADLINE_HEADER} must be unix seconds, got {raw!r}"
            )

    def check_deadline(self) -> float | None:
        """Remaining seconds before the deadline; raises when expired."""
        deadline = self.deadline()
        if deadline is None:
            return None
        remaining = deadline - time.time()
        if remaining <= 0:
            raise DeadlineExceededError(
                f"deadline expired {-remaining:.3f}s before the request "
                "was handled"
            )
        return remaining

    def _retry_after(self) -> float:
        return getattr(self.server, "retry_after_s", 1.0)

    def _extra_headers(self, status: int, exc: Exception | None) -> dict:
        """Response headers beyond Content-*; 429/503 advertise backoff."""
        headers: dict[str, str] = {}
        if status in (429, 503):
            hint = getattr(exc, "retry_after", None)
            if hint is None:
                hint = self._retry_after()
            headers["Retry-After"] = f"{max(0.0, float(hint)):.3f}"
        return headers

    def _dispatch(self, method: str) -> None:
        t0 = time.perf_counter()
        route = "unknown"
        status = 500
        exc_seen: Exception | None = None
        try:
            self.check_deadline()
            route, status, payload = self._route(method)
        except Exception as exc:  # noqa: BLE001 - boundary translation
            exc_seen = exc
            status = 500
            for cls, code in ERROR_STATUS:
                if isinstance(exc, cls):
                    status = code
                    break
            payload = {"error": type(exc).__name__, "message": str(exc)}
        try:
            self._send(status, payload, self._extra_headers(status, exc_seen))
        except (BrokenPipeError, ConnectionResetError):  # pragma: no cover
            pass  # client went away mid-response; nothing to salvage
        _observe_request(
            f"{self.metric_prefix}.{route}", status, time.perf_counter() - t0
        )

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        self._dispatch("GET")

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        self._dispatch("POST")

    def _route(self, method: str) -> tuple[str, int, dict]:
        raise NotImplementedError


class _ServiceHandler(JsonRequestHandler):

    # -- routing -------------------------------------------------------
    def _route(self, method: str) -> tuple[str, int, dict]:
        server: ServiceServer = self.server.service
        parts = [p for p in self.path.split("?")[0].split("/") if p]
        if server.draining and not (method, parts) == ("GET", ["status"]):
            return "draining", 503, {
                "error": "Draining",
                "message": "server is shutting down",
            }
        if method == "GET" and parts == ["status"]:
            return "status", 200, server.server_status()
        if method == "GET" and parts == ["metrics"]:
            return "metrics", 200, get_metrics().snapshot()
        if method == "POST" and parts == ["shutdown"]:
            server.request_shutdown()
            return "shutdown", 202, {"status": "draining"}
        if method == "POST" and parts == ["sessions"]:
            payload = self._read_json()
            name = payload.get("name")
            if not isinstance(name, str):
                raise ValidationError("session spec must carry a 'name' string")
            session = server.manager.create(name, payload)
            return "create", 201, {"name": name, "spec": session.spec}
        if len(parts) == 3 and parts[0] == "sessions":
            return self._route_session(method, parts[1], parts[2])
        raise ValidationError(f"no route for {method} {self.path}")

    def _route_session(
        self, method: str, name: str, verb: str
    ) -> tuple[str, int, dict]:
        server: ServiceServer = self.server.service
        manager = server.manager
        if method == "POST" and verb == "ask":
            payload = self._read_json()
            n = int(payload.get("n", 1))
            with manager.session(name) as session:
                tickets = session.engine.ask(n)
            return "ask", 200, {
                "tickets": [
                    {"ticket": t["ticket"], "x": t["x"].tolist()}
                    for t in tickets
                ]
            }
        if method == "POST" and verb == "tell":
            payload = self._read_json()
            if "ticket" not in payload or "y" not in payload:
                raise ValidationError("tell needs 'ticket' and 'y'")
            y = payload["y"]
            if not isinstance(y, (int, float)) or isinstance(y, bool):
                # NaN/Inf arrive as the JSON-extension literals floats
                # parse to; anything else is malformed.
                raise ValidationError(f"y must be a number, got {y!r}")
            with manager.session(name) as session:
                result = session.engine.tell(str(payload["ticket"]), float(y))
            return "tell", 200, result
        if method == "GET" and verb == "best":
            with manager.session(name) as session:
                best = session.engine.best
                n_told = session.engine.n_told
            if best is None:
                return "best", 409, {
                    "error": "NoData",
                    "message": f"session {name!r} has no evaluations yet",
                }
            x, value = best
            return "best", 200, {
                "x": x.tolist(),
                "y": value,
                "n_told": n_told,
            }
        if method == "GET" and verb == "status":
            with manager.session(name) as session:
                status = session.engine.status()
                spec = session.spec
            return "session_status", 200, {
                "name": name,
                "spec": spec,
                **status,
            }
        raise ValidationError(f"no route for {method} {self.path}")


class ServiceServer:
    """Lifecycle wrapper: threaded HTTP server + graceful drain.

    Start with :meth:`start` (background accept thread) and stop with
    :meth:`stop`; usable as a context manager. ``port=0`` binds an
    ephemeral port, reported by :attr:`port` / :attr:`url`.
    """

    def __init__(
        self,
        manager: SessionManager,
        host: str = "127.0.0.1",
        port: int = 0,
        quiet: bool = True,
        retry_after_s: float = 1.0,
    ):
        self.manager = manager
        self.draining = False
        self._started_at = time.time()
        self._shutdown_requested = threading.Event()
        self.httpd = ThreadingHTTPServer((host, port), _ServiceHandler)
        self.httpd.daemon_threads = False  # join in-flight handlers on stop
        self.httpd.service = self
        self.httpd.quiet = quiet
        self.httpd.retry_after_s = float(retry_after_s)
        self._thread: threading.Thread | None = None

    @property
    def host(self) -> str:
        return self.httpd.server_address[0]

    @property
    def port(self) -> int:
        return self.httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def server_status(self) -> dict:
        return {
            "draining": self.draining,
            "uptime_s": time.time() - self._started_at,
            "sessions": self.manager.names(),
        }

    def start(self) -> "ServiceServer":
        self._thread = threading.Thread(
            target=self.httpd.serve_forever,
            kwargs={"poll_interval": 0.05},
            name="repro-service",
            daemon=True,
        )
        self._thread.start()
        return self

    def request_shutdown(self) -> None:
        """Flag a drain; the owner of :meth:`serve_until_shutdown` (or
        anyone polling :attr:`shutdown_requested`) completes it."""
        self.draining = True
        self._shutdown_requested.set()

    @property
    def shutdown_requested(self) -> bool:
        return self._shutdown_requested.is_set()

    def wait_for_shutdown_request(self, timeout: float | None = None) -> bool:
        return self._shutdown_requested.wait(timeout)

    def stop(self) -> None:
        """Drain and stop: refuse new work, join handlers, persist all."""
        self.draining = True
        self._shutdown_requested.set()
        self.httpd.shutdown()  # stops serve_forever
        self.httpd.server_close()  # joins non-daemon handler threads
        if self._thread is not None:
            self._thread.join(timeout=30.0)
        self.manager.persist_all()

    def __enter__(self) -> "ServiceServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()
