"""Front-door proxy for a sharded ask/tell fleet.

One :class:`FleetRouter` stands in front of N shard servers (each a
:class:`~repro.service.server.ServiceServer` in its own process) and
gives clients a single base URL:

- **consistent-hash routing** — every session name maps to one owner
  shard via :class:`HashRing` (MD5 ring with virtual nodes), so a
  session's engine state lives in exactly one process and resizing the
  fleet moves only ~1/N of the keyspace;
- **admission control** — a global :class:`TokenBucket` rate limiter
  plus a bounded per-shard :class:`AdmissionGate` (in-flight cap with a
  short wait queue); load beyond either is *shed* with 429 and a
  ``Retry-After`` hint rather than queued into memory;
- **deadline propagation** — a request's ``X-Repro-Deadline`` header
  bounds the time spent queued here *and* the upstream socket timeout,
  and an expired deadline is answered 504 without touching the shard;
- **failure containment** — a shard that is down (being restarted by
  the :class:`~repro.service.fleet.FleetSupervisor`) answers 503 +
  ``Retry-After`` for its slice of sessions only; the rest of the
  fleet is unaffected;
- **aggregation** — ``GET /status`` reports per-shard health and
  sessions, ``GET /metrics`` merges per-shard metric snapshots
  (:func:`repro.obs.metrics.merge_snapshots`) next to the router's own.

The router is deliberately stateless about sessions: all durable state
lives in the shards' per-session checkpoints, which is what makes
kill-and-restart recovery a shard-local affair.
"""

from __future__ import annotations

import hashlib
import json
import threading
import time
import urllib.error
import urllib.request
from http.server import ThreadingHTTPServer

from repro.obs.metrics import get_metrics, merge_snapshots
from repro.service.server import (
    DEADLINE_HEADER,
    JsonRequestHandler,
    _observe_request,
)
from repro.util import (
    BackpressureError,
    ConfigurationError,
    DeadlineExceededError,
    ValidationError,
)

class HashRing:
    """Consistent hashing of session names onto shard indices.

    An MD5 ring with ``replicas`` virtual nodes per shard: the owner of
    a name is the first virtual node clockwise of the name's hash.
    Ownership is a pure function of ``(name, n_shards, replicas)`` —
    every router instance, restarted or concurrent, agrees — and
    adding/removing a shard remaps only ~1/N of names (the classic
    consistent-hashing guarantee), so a resized fleet mostly keeps its
    session placement.
    """

    def __init__(self, n_shards: int, replicas: int = 64):
        if n_shards < 1:
            raise ConfigurationError(f"n_shards must be >= 1, got {n_shards}")
        if replicas < 1:
            raise ConfigurationError(f"replicas must be >= 1, got {replicas}")
        self.n_shards = int(n_shards)
        self.replicas = int(replicas)
        ring = []
        for shard in range(self.n_shards):
            for replica in range(self.replicas):
                ring.append((self._hash(f"shard-{shard}#{replica}"), shard))
        ring.sort()
        self._points = [p for p, _ in ring]
        self._owners = [s for _, s in ring]

    @staticmethod
    def _hash(key: str) -> int:
        return int.from_bytes(
            hashlib.md5(key.encode("utf-8")).digest()[:8], "big"
        )

    def owner(self, name: str) -> int:
        """The shard index owning ``name``."""
        point = self._hash(name)
        lo, hi = 0, len(self._points)
        while lo < hi:
            mid = (lo + hi) // 2
            if self._points[mid] < point:
                lo = mid + 1
            else:
                hi = mid
        return self._owners[lo % len(self._owners)]


class TokenBucket:
    """Thread-safe token bucket: ``rate`` tokens/s, ``burst`` capacity.

    ``try_take`` never blocks; on refusal it returns the time until one
    token will exist, which becomes the 429 ``Retry-After`` hint.
    """

    def __init__(self, rate: float, burst: float, clock=time.monotonic):
        if rate <= 0 or burst < 1:
            raise ConfigurationError(
                f"need rate > 0 and burst >= 1, got rate={rate} burst={burst}"
            )
        self.rate = float(rate)
        self.burst = float(burst)
        self.clock = clock
        self._tokens = self.burst  # guarded-by: self._lock
        self._stamp = float(clock())  # guarded-by: self._lock
        self._lock = threading.Lock()

    def try_take(self, n: float = 1.0) -> tuple[bool, float]:
        """``(admitted, wait_s_until_a_token)``."""
        with self._lock:
            now = float(self.clock())
            self._tokens = min(
                self.burst, self._tokens + (now - self._stamp) * self.rate
            )
            self._stamp = now
            if self._tokens >= n:
                self._tokens -= n
                return True, 0.0
            return False, (n - self._tokens) / self.rate


class AdmissionGate:
    """Bounded per-shard admission: an in-flight cap + a short queue.

    Up to ``max_inflight`` requests may be inside the shard at once;
    up to ``max_queue`` more may wait (bounded, deadline-aware). Anyone
    beyond that is shed immediately — the queue is a shock absorber,
    not a reservoir, so a slow shard's latency does not grow without
    bound while looking "accepted".
    """

    def __init__(self, max_inflight: int, max_queue: int):
        if max_inflight < 1 or max_queue < 0:
            raise ConfigurationError(
                f"need max_inflight >= 1 and max_queue >= 0, got "
                f"{max_inflight}/{max_queue}"
            )
        self.max_inflight = int(max_inflight)
        self.max_queue = int(max_queue)
        self.inflight = 0  # guarded-by: self._cond
        self.queued = 0  # guarded-by: self._cond
        self._cond = threading.Condition()

    def admit(self, timeout: float) -> bool:
        """Wait up to ``timeout`` s for an in-flight slot; False = shed."""
        deadline = time.monotonic() + max(0.0, timeout)
        with self._cond:
            if self.inflight < self.max_inflight:
                self.inflight += 1
                return True
            if self.queued >= self.max_queue:
                return False
            self.queued += 1
            try:
                while self.inflight >= self.max_inflight:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0 or not self._cond.wait(remaining):
                        if self.inflight >= self.max_inflight:
                            return False
                self.inflight += 1
                return True
            finally:
                self.queued -= 1

    def release(self) -> None:
        with self._cond:
            self.inflight -= 1
            self._cond.notify()


class ShardTable:
    """Thread-safe registry of shard slots the router forwards to.

    The supervisor owns mutation (announce/mark-down); the router only
    reads. A slot's ``url`` is None while its process is down or not
    yet announced.
    """

    def __init__(self, n_shards: int):
        self.n_shards = int(n_shards)
        self._urls: list[str | None] = [None] * self.n_shards  # guarded-by: self._lock
        self._states: list[str] = ["starting"] * self.n_shards  # guarded-by: self._lock
        self._lock = threading.Lock()

    def set_url(self, index: int, url: str | None) -> None:
        with self._lock:
            self._urls[index] = url

    def set_state(self, index: int, state: str) -> None:
        with self._lock:
            self._states[index] = state

    def url(self, index: int) -> str | None:
        with self._lock:
            return self._urls[index]

    def snapshot(self) -> list[dict]:
        with self._lock:
            return [
                {"shard": i, "url": self._urls[i], "state": self._states[i]}
                for i in range(self.n_shards)
            ]


class _RouterHandler(JsonRequestHandler):
    metric_prefix = "service.router"

    def _route(self, method: str) -> tuple[str, int, dict]:
        router: FleetRouter = self.server.router
        parts = [p for p in self.path.split("?")[0].split("/") if p]
        if router.draining and not (method, parts) == ("GET", ["status"]):
            return "draining", 503, {
                "error": "Draining",
                "message": "fleet is shutting down",
            }
        if method == "GET" and parts == ["status"]:
            return "status", 200, router.fleet_status()
        if method == "GET" and parts == ["metrics"]:
            return "metrics", 200, router.fleet_metrics()
        if method == "POST" and parts == ["shutdown"]:
            router.request_shutdown()
            return "shutdown", 202, {"status": "draining"}
        if method == "POST" and parts == ["sessions"]:
            payload = self._read_json()
            name = payload.get("name")
            if not isinstance(name, str) or not name:
                raise ValidationError("session spec must carry a 'name' string")
            body = json.dumps(payload).encode("utf-8")
            return self._forward("create", name, method, body)
        if len(parts) == 3 and parts[0] == "sessions":
            body = None
            if method == "POST":
                length = int(self.headers.get("Content-Length") or 0)
                body = self.rfile.read(length) if length else b"{}"
            return self._forward(parts[2], parts[1], method, body)
        raise ValidationError(f"no route for {method} {self.path}")

    def _forward(
        self, route: str, session: str, method: str, body: bytes | None
    ) -> tuple[str, int, dict]:
        router: FleetRouter = self.server.router
        status, payload = router.forward(
            session,
            method,
            self.path,
            body,
            deadline=self.deadline(),
        )
        return route, status, payload


class FleetRouter:
    """The fleet's single public endpoint: route, admit, relay, report.

    Parameters
    ----------
    table:
        The :class:`ShardTable` the supervisor keeps current.
    host / port:
        Bind address (``port=0`` picks an ephemeral port).
    max_inflight / max_queue:
        Per-shard admission bounds (see :class:`AdmissionGate`).
    queue_timeout_s:
        Longest a request may wait for an in-flight slot before being
        shed (bounded further by its propagated deadline).
    rate / burst:
        Optional global token-bucket rate limit (requests/s and burst
        size); ``rate=None`` disables it.
    upstream_timeout_s:
        Socket timeout for proxied shard calls (bounded further by the
        propagated deadline).
    retry_after_s:
        Default ``Retry-After`` hint on 429/503 answers.
    """

    def __init__(
        self,
        table: ShardTable,
        host: str = "127.0.0.1",
        port: int = 0,
        max_inflight: int = 64,
        max_queue: int = 64,
        queue_timeout_s: float = 2.0,
        rate: float | None = None,
        burst: float | None = None,
        upstream_timeout_s: float = 30.0,
        retry_after_s: float = 1.0,
        quiet: bool = True,
        fleet_info=None,
    ):
        self.table = table
        self.ring = HashRing(table.n_shards)
        self.gates = [
            AdmissionGate(max_inflight, max_queue)
            for _ in range(table.n_shards)
        ]
        self.bucket = (
            None
            if rate is None
            else TokenBucket(rate, burst if burst is not None else 2 * rate)
        )
        self.queue_timeout_s = float(queue_timeout_s)
        self.upstream_timeout_s = float(upstream_timeout_s)
        self.retry_after_s = float(retry_after_s)
        self.fleet_info = fleet_info
        self.draining = False
        self._started_at = time.time()
        self._shutdown_requested = threading.Event()
        self.httpd = ThreadingHTTPServer((host, port), _RouterHandler)
        self.httpd.daemon_threads = False
        self.httpd.router = self
        self.httpd.quiet = quiet
        self.httpd.retry_after_s = self.retry_after_s
        self._thread: threading.Thread | None = None

    # -- lifecycle -----------------------------------------------------
    @property
    def host(self) -> str:
        return self.httpd.server_address[0]

    @property
    def port(self) -> int:
        return self.httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "FleetRouter":
        self._thread = threading.Thread(
            target=self.httpd.serve_forever,
            kwargs={"poll_interval": 0.05},
            name="repro-fleet-router",
            daemon=True,
        )
        self._thread.start()
        return self

    def request_shutdown(self) -> None:
        self.draining = True
        self._shutdown_requested.set()

    @property
    def shutdown_requested(self) -> bool:
        return self._shutdown_requested.is_set()

    def wait_for_shutdown_request(self, timeout: float | None = None) -> bool:
        return self._shutdown_requested.wait(timeout)

    def stop(self) -> None:
        self.draining = True
        self._shutdown_requested.set()
        self.httpd.shutdown()
        self.httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=30.0)

    def __enter__(self) -> "FleetRouter":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # -- the proxy core ------------------------------------------------
    def owner(self, session: str) -> int:
        return self.ring.owner(session)

    def forward(
        self,
        session: str,
        method: str,
        path: str,
        body: bytes | None,
        deadline: float | None = None,
    ) -> tuple[int, dict]:
        """Admit, route, and relay one session-scoped request."""
        metrics = get_metrics()
        if self.bucket is not None:
            admitted, wait = self.bucket.try_take()
            if not admitted:
                metrics.counter("service.router.shed_rate").inc()
                raise BackpressureError(
                    f"fleet rate limit exceeded; retry in {wait:.3f}s",
                    retry_after=wait,
                )
        shard = self.ring.owner(session)
        url = self.table.url(shard)
        if url is None:
            metrics.counter("service.router.shard_unavailable").inc()
            return 503, {
                "error": "ShardUnavailable",
                "message": f"shard {shard} (owner of {session!r}) is "
                           "down or restarting",
                "shard": shard,
            }
        queue_timeout = self.queue_timeout_s
        if deadline is not None:
            queue_timeout = min(queue_timeout, deadline - time.time())
        gate = self.gates[shard]
        if not gate.admit(max(0.0, queue_timeout)):
            metrics.counter("service.router.shed_queue").inc()
            raise BackpressureError(
                f"shard {shard} admission queue is full "
                f"({gate.max_inflight} in flight, {gate.max_queue} queued)",
                retry_after=self.retry_after_s,
            )
        try:
            return self._relay(shard, url, method, path, body, deadline)
        finally:
            gate.release()

    def _relay(
        self,
        shard: int,
        url: str,
        method: str,
        path: str,
        body: bytes | None,
        deadline: float | None,
    ) -> tuple[int, dict]:
        timeout = self.upstream_timeout_s
        headers = {"Content-Type": "application/json"}
        if deadline is not None:
            remaining = deadline - time.time()
            if remaining <= 0:
                raise DeadlineExceededError(
                    "deadline expired while queued at the router"
                )
            timeout = min(timeout, remaining)
            headers[DEADLINE_HEADER] = f"{deadline:.6f}"
        req = urllib.request.Request(
            url + path, data=body, method=method, headers=headers
        )
        metrics = get_metrics()
        t0 = time.perf_counter()
        try:
            with urllib.request.urlopen(req, timeout=timeout) as resp:
                payload = json.loads(resp.read().decode("utf-8"))
                status = resp.status
        except urllib.error.HTTPError as exc:
            try:
                payload = json.loads(exc.read().decode("utf-8"))
                if not isinstance(payload, dict):  # pragma: no cover
                    payload = {"error": "HTTPError", "message": str(exc)}
            except Exception:  # pragma: no cover - malformed shard answer
                payload = {"error": "HTTPError", "message": str(exc)}
            status = exc.code
        except (TimeoutError, urllib.error.URLError, ConnectionError) as exc:
            reason = getattr(exc, "reason", exc)
            if deadline is not None and time.time() >= deadline:
                raise DeadlineExceededError(
                    f"shard {shard} exceeded the propagated deadline"
                ) from None
            metrics.counter("service.router.upstream_errors").inc()
            return 503, {
                "error": "ShardUnavailable",
                "message": f"shard {shard} did not answer: {reason}",
                "shard": shard,
            }
        finally:
            _observe_request(
                f"service.router.upstream.shard{shard}",
                0,
                time.perf_counter() - t0,
            )
        metrics.counter("service.router.forwarded").inc()
        return status, payload

    # -- aggregation ---------------------------------------------------
    def _fetch(self, url: str, path: str, timeout: float = 3.0):
        req = urllib.request.Request(url + path, method="GET")
        with urllib.request.urlopen(req, timeout=timeout) as resp:
            return json.loads(resp.read().decode("utf-8"))

    def fleet_status(self) -> dict:
        shards = []
        for slot in self.table.snapshot():
            entry = dict(slot)
            gate = self.gates[slot["shard"]]
            entry["inflight"] = gate.inflight
            entry["queued"] = gate.queued
            if slot["url"] is not None:
                try:
                    upstream = self._fetch(slot["url"], "/status")
                    entry["sessions"] = upstream.get("sessions", [])
                    entry["draining"] = upstream.get("draining", False)
                except Exception as exc:
                    entry["probe_error"] = str(exc)
            shards.append(entry)
        status = {
            "role": "fleet-router",
            "draining": self.draining,
            "uptime_s": time.time() - self._started_at,
            "n_shards": self.table.n_shards,
            "shards": shards,
            "sessions": sorted(
                name for s in shards for name in s.get("sessions", [])
            ),
        }
        if self.fleet_info is not None:
            status["supervisor"] = self.fleet_info()
        return status

    def fleet_metrics(self) -> dict:
        per_shard: dict[str, dict] = {}
        for slot in self.table.snapshot():
            if slot["url"] is None:
                continue
            try:
                per_shard[str(slot["shard"])] = self._fetch(
                    slot["url"], "/metrics"
                )
            except Exception:
                per_shard[str(slot["shard"])] = {}
        return {
            "router": get_metrics().snapshot(),
            "fleet": merge_snapshots(per_shard.values()),
            "shards": per_shard,
        }
