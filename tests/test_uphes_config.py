"""Tests for the UPHES configuration dataclasses."""

import numpy as np
import pytest

from repro.uphes import (
    GroundwaterConfig,
    MachineConfig,
    MarketConfig,
    ReservoirConfig,
    UPHESConfig,
)
from repro.util import ConfigurationError


class TestDefaults:
    def test_paper_machine_ranges(self):
        m = MachineConfig()
        assert (m.p_turb_min, m.p_turb_max) == (4.0, 8.0)
        assert (m.p_pump_min, m.p_pump_max) == (6.0, 8.0)

    def test_dimension_is_12(self):
        assert UPHESConfig().dim == 12

    def test_96_steps(self):
        assert UPHESConfig().n_steps == 96

    def test_bounds_layout(self):
        b = UPHESConfig().bounds()
        assert b.shape == (12, 2)
        # energy blocks signed, reserve blocks non-negative
        assert np.all(b[:8, 0] == -8.0) and np.all(b[:8, 1] == 8.0)
        assert np.all(b[8:, 0] == 0.0) and np.all(b[8:, 1] == 4.0)

    def test_energy_capacity_about_80mwh(self):
        """The configured volume at nominal head holds ≈ 80 MWh."""
        cfg = UPHESConfig()
        mwh = (
            cfg.upper.v_max
            * 1000.0
            * 9.81
            * cfg.machine.head_nominal
            * cfg.machine.eta_turb_peak
            / 3.6e9
        )
        assert 60.0 < mwh < 100.0


class TestValidation:
    def test_reservoir_bad_volume(self):
        with pytest.raises(ConfigurationError):
            ReservoirConfig(v_max=-1.0, z_floor=0.0, depth=1.0, shape=1.0)

    def test_machine_bad_range(self):
        with pytest.raises(ConfigurationError):
            MachineConfig(p_turb_min=9.0, p_turb_max=8.0)

    def test_machine_bad_heads(self):
        with pytest.raises(ConfigurationError):
            MachineConfig(head_min_turb=100.0, head_nominal=90.0)

    def test_groundwater_negative(self):
        with pytest.raises(ConfigurationError):
            GroundwaterConfig(conductance=-0.1)

    def test_market_imbalance_below_one(self):
        with pytest.raises(ConfigurationError):
            MarketConfig(imbalance_multiplier=0.5)

    def test_dt_must_divide_horizon(self):
        with pytest.raises(ConfigurationError):
            UPHESConfig(horizon_hours=24.0, dt_hours=0.7)

    def test_fill_fraction_range(self):
        with pytest.raises(ConfigurationError):
            UPHESConfig(upper_fill0=1.5)

    def test_scenarios_positive(self):
        with pytest.raises(ConfigurationError):
            UPHESConfig(n_scenarios=0)
