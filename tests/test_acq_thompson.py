"""Tests for Thompson sampling batch selection."""

import numpy as np
import pytest

from repro.acquisition import thompson_sample
from repro.util import ConfigurationError


@pytest.fixture
def gp(fitted_gp):
    return fitted_gp[0]


class TestThompson:
    def test_shape(self, gp, rng):
        cand = rng.random((100, 3))
        X = thompson_sample(gp, cand, q=4, seed=0)
        assert X.shape == (4, 3)

    def test_rows_come_from_candidates(self, gp, rng):
        cand = rng.random((50, 3))
        X = thompson_sample(gp, cand, q=3, seed=1)
        for row in X:
            assert any(np.allclose(row, c) for c in cand)

    def test_distinct_rows(self, gp, rng):
        cand = rng.random((50, 3))
        X = thompson_sample(gp, cand, q=5, seed=2)
        assert len({tuple(np.round(r, 12)) for r in X}) == 5

    def test_deterministic_given_seed(self, gp, rng):
        cand = rng.random((40, 3))
        a = thompson_sample(gp, cand, q=3, seed=7)
        b = thompson_sample(gp, cand, q=3, seed=7)
        np.testing.assert_array_equal(a, b)

    def test_biased_towards_low_mean(self, gp, rng):
        """TS picks low-posterior-mean candidates far more often."""
        cand = rng.random((200, 3))
        mu, _ = gp.predict(cand)
        picks = np.vstack(
            [thompson_sample(gp, cand, q=1, seed=s) for s in range(30)]
        )
        pick_means = gp.predict(picks)[0]
        assert pick_means.mean() < np.median(mu)

    def test_too_few_candidates(self, gp, rng):
        with pytest.raises(ConfigurationError):
            thompson_sample(gp, rng.random((2, 3)), q=5)

    def test_invalid_q(self, gp, rng):
        with pytest.raises(ConfigurationError):
            thompson_sample(gp, rng.random((10, 3)), q=0)
