"""Tests for the inner acquisition optimizer."""

import numpy as np
import pytest

from repro.acquisition import (
    ExpectedImprovement,
    UpperConfidenceBound,
    optimize_acqf,
    qExpectedImprovement,
)
from repro.gp import GaussianProcess
from repro.util import ConfigurationError


@pytest.fixture
def gp_quadratic(rng, unit_bounds3):
    """GP on a clean quadratic with minimum at 0.3 — EI should point
    the optimizer near the basin."""
    X = rng.random((40, 3))
    y = np.sum((X - 0.3) ** 2, axis=1)
    gp = GaussianProcess(dim=3, input_bounds=unit_bounds3)
    gp.fit(X, y, n_restarts=1, maxiter=60, seed=0)
    return gp, float(y.min())


BOUNDS = np.tile([0.0, 1.0], (3, 1))


class TestSinglePoint:
    def test_within_bounds(self, gp_quadratic):
        gp, best = gp_quadratic
        x, _ = optimize_acqf(ExpectedImprovement(gp, best), BOUNDS, seed=0)
        assert np.all(x >= 0.0) and np.all(x <= 1.0)

    def test_beats_raw_sampling(self, gp_quadratic, rng):
        gp, best = gp_quadratic
        acq = ExpectedImprovement(gp, best)
        _, val = optimize_acqf(acq, BOUNDS, seed=0)
        raw_best = float(acq.value(rng.random((256, 3))).max())
        assert val >= raw_best - 1e-9

    def test_finds_basin(self, gp_quadratic):
        gp, best = gp_quadratic
        x, _ = optimize_acqf(
            ExpectedImprovement(gp, best), BOUNDS, n_restarts=8, seed=0
        )
        mu, _ = gp.predict(x[None, :])
        assert mu[0] < best + 0.05

    def test_initial_points_respected(self, gp_quadratic):
        """A warm start at the optimum should never be lost."""
        gp, best = gp_quadratic
        acq = UpperConfidenceBound(gp, beta=1.0)
        x0 = np.full(3, 0.3)
        _, val = optimize_acqf(
            acq, BOUNDS, n_restarts=1, raw_samples=2, seed=0,
            initial_points=x0[None, :],
        )
        assert val >= float(acq.value(x0[None, :])[0]) - 1e-9

    def test_deterministic_given_seed(self, gp_quadratic):
        gp, best = gp_quadratic
        acq = ExpectedImprovement(gp, best)
        x1, v1 = optimize_acqf(acq, BOUNDS, seed=9)
        x2, v2 = optimize_acqf(acq, BOUNDS, seed=9)
        np.testing.assert_array_equal(x1, x2)
        assert v1 == v2

    def test_sub_box_respected(self, gp_quadratic):
        gp, best = gp_quadratic
        sub = np.array([[0.6, 1.0], [0.6, 1.0], [0.6, 1.0]])
        x, _ = optimize_acqf(ExpectedImprovement(gp, best), sub, seed=0)
        assert np.all(x >= 0.6)

    def test_invalid_q(self, gp_quadratic):
        gp, best = gp_quadratic
        with pytest.raises(ConfigurationError):
            optimize_acqf(ExpectedImprovement(gp, best), BOUNDS, q=0)


class TestJoint:
    def test_shape_and_bounds(self, gp_quadratic):
        gp, best = gp_quadratic
        acq = qExpectedImprovement(gp, best, q=3, n_mc=64, seed=0)
        X, val = optimize_acqf(acq, BOUNDS, q=3, n_restarts=3, seed=0)
        assert X.shape == (3, 3)
        assert np.all(X >= 0.0) and np.all(X <= 1.0)
        assert val >= 0.0

    def test_improves_over_random_batches(self, gp_quadratic, rng):
        # A loose incumbent keeps qEI positive so the comparison is
        # informative (with the true best the landscape is ~flat zero).
        gp, best = gp_quadratic
        acq = qExpectedImprovement(gp, best + 0.5, q=2, n_mc=128, seed=0)
        _, val = optimize_acqf(acq, BOUNDS, q=2, n_restarts=4, seed=0)
        raw = max(acq.value(rng.random((2, 3))) for _ in range(20))
        assert val >= raw - 1e-9

    def test_warm_start_batches(self, gp_quadratic):
        gp, best = gp_quadratic
        acq = qExpectedImprovement(gp, best, q=2, n_mc=64, seed=0)
        warm = np.full((2, 3), 0.3)
        X, val = optimize_acqf(
            acq, BOUNDS, q=2, n_restarts=2, seed=0, initial_points=[warm]
        )
        assert val >= acq.value(warm) - 1e-9
