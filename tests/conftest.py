"""Shared fixtures for the test suite."""

import numpy as np
import pytest

from repro.gp import GaussianProcess
from repro.problems import get_benchmark


@pytest.fixture
def rng():
    return np.random.default_rng(1234)


@pytest.fixture
def sphere3():
    """A cheap 3-d problem with a known optimum at the origin."""
    return get_benchmark("sphere", dim=3)


@pytest.fixture
def unit_bounds3():
    return np.tile([0.0, 1.0], (3, 1))


@pytest.fixture
def fitted_gp(rng, unit_bounds3):
    """A GP fitted on a smooth 3-d function, hyperparameters tuned."""
    X = rng.random((30, 3))
    y = np.sin(3.0 * X[:, 0]) + X[:, 1] ** 2 - 0.5 * X[:, 2]
    gp = GaussianProcess(dim=3, input_bounds=unit_bounds3)
    gp.fit(X, y, n_restarts=1, maxiter=60, seed=0)
    return gp, X, y
