"""Regression tests: drivers must never feed NaN/inf to the GP fit."""

import numpy as np
import pytest

from repro.core.async_driver import run_async_optimization
from repro.core.driver import AnalyticTimeModel, run_optimization
from repro.core.registry import make_optimizer
from repro.problems import get_benchmark
from repro.resilience import RunJournal, read_events
from repro.util import ConfigurationError, EvaluationError


class NaNSubregion:
    """Sphere that returns NaN on the subregion x0 > threshold."""

    def __init__(self, threshold=0.5, dim=2, sim_time=10.0):
        self.inner = get_benchmark("sphere", dim=dim, sim_time=sim_time)
        self.threshold = threshold

    def __call__(self, X):
        X = np.atleast_2d(X)
        y = np.asarray(self.inner(X), dtype=np.float64)
        y[X[:, 0] > self.threshold] = np.nan
        return y

    def __getattr__(self, attr):
        return getattr(self.inner, attr)


def _run(problem, algo="kb_qego", **kwargs):
    optimizer = make_optimizer(algo, problem, 2, seed=0)
    return run_optimization(
        problem,
        optimizer,
        120.0,
        n_initial=8,
        seed=0,
        time_model=AnalyticTimeModel(),
        **kwargs,
    )


class TestSyncDriverGuard:
    def test_nan_subregion_completes_with_warning(self):
        problem = NaNSubregion()
        with pytest.warns(RuntimeWarning, match="non-finite"):
            result = _run(problem)
        assert np.isfinite(result.best_value)
        # The incumbent cannot be one of the imputed (worst-value) points.
        assert result.best_x[0] <= problem.threshold

    @pytest.mark.parametrize("action", ["impute", "fantasy", "drop"])
    def test_all_fallbacks_keep_history_finite(self, action):
        problem = NaNSubregion()
        with pytest.warns(RuntimeWarning):
            result = _run(problem, on_nonfinite=action)
        assert np.isfinite(result.best_value)
        assert result.n_cycles >= 1

    def test_raise_fallback_aborts(self):
        problem = NaNSubregion(threshold=-10.0)  # everything NaN
        with pytest.raises(EvaluationError):
            with pytest.warns(RuntimeWarning):
                _run(problem, on_nonfinite="raise")

    def test_invalid_action_rejected(self):
        with pytest.raises(ConfigurationError):
            _run(get_benchmark("sphere", dim=2), on_nonfinite="ignore")

    def test_guard_events_journaled(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with pytest.warns(RuntimeWarning):
            _run(NaNSubregion(), journal=RunJournal(path, fsync=False))
        guarded = [e for e in read_events(path) if e["event"] == "nonfinite"]
        assert guarded
        assert all(e["action"] == "impute" for e in guarded)
        # Journaled y_used never contains non-finite values.
        for ev in read_events(path):
            if ev["event"] in ("initial_design", "cycle"):
                y_used = np.asarray(ev["y_used"]["data"], dtype=np.float64)
                assert np.isfinite(y_used).all()

    def test_random_search_with_nans_completes(self):
        with pytest.warns(RuntimeWarning):
            result = _run(NaNSubregion(), algo="random")
        assert np.isfinite(result.best_value)


class TestAsyncDriverGuard:
    def test_nan_subregion_completes(self):
        problem = NaNSubregion(sim_time=5.0)
        with pytest.warns(RuntimeWarning, match="non-finite"):
            result = run_async_optimization(
                problem, 2, 40.0, n_initial=8, seed=0
            )
        assert np.isfinite(result.best_value)

    def test_drop_discards_points(self):
        problem = NaNSubregion(sim_time=5.0)
        with pytest.warns(RuntimeWarning):
            result = run_async_optimization(
                problem, 2, 40.0, n_initial=8, seed=0, on_nonfinite="drop"
            )
        assert np.isfinite(result.best_value)

    def test_invalid_action_rejected(self):
        with pytest.raises(ConfigurationError):
            run_async_optimization(
                get_benchmark("sphere", dim=2), 2, 20.0, on_nonfinite="ignore"
            )
