"""Chaos matrix: every paper algorithm under hostile conditions.

Three scenarios that historically crash batch-BO stacks — a perfectly
flat objective (zero target variance), an all-duplicate initial design
(singular kernel matrix), and permanent worker death mid-run — are run
against each of the five paper algorithms. The acceptance property is
identical everywhere: the run completes without raising, the result is
finite, and the journal records the degradations the supervisor
absorbed along the way.
"""

import json

import numpy as np
import pytest

from repro.core import make_optimizer, run_optimization
from repro.core.driver import AnalyticTimeModel
from repro.problems import FunctionProblem
from repro.resilience import FaultSpec, RunJournal

ALGORITHMS = ["kb_qego", "mic_qego", "mc_qego", "bsp_ego", "turbo"]

FAST = {
    "acq_options": {"n_restarts": 2, "raw_samples": 32, "maxiter": 15,
                    "n_mc": 16},
    "gp_options": {"n_restarts": 0, "maxiter": 15},
}

BOUNDS = np.tile([0.0, 1.0], (2, 1))


def _flat_problem():
    return FunctionProblem(
        lambda X: np.zeros(np.atleast_2d(X).shape[0]), BOUNDS, sim_time=10.0
    )


def _quadratic_problem():
    return FunctionProblem(
        lambda X: np.sum(np.atleast_2d(X) ** 2, axis=1), BOUNDS, sim_time=10.0
    )


def _run(problem, algo, path, *, initial_design=None, faults=None,
         budget=120.0):
    optimizer = make_optimizer(algo, problem, 2, seed=3, **FAST)
    return run_optimization(
        problem,
        optimizer,
        budget,
        n_initial=6,
        initial_design=initial_design,
        seed=0,
        time_model=AnalyticTimeModel(),
        journal=RunJournal(path, fsync=False),
        faults=faults,
    )


def _events(path):
    return [json.loads(line) for line in open(path)]


def _assert_completed_with_degradations(path, result):
    events = _events(path)
    assert events[-1]["event"] == "run_completed"
    degradations = [ev for ev in events if ev["event"] == "degradation"]
    assert degradations, "a chaos run must journal its degradations"
    assert np.isfinite(result.best_value)
    assert result.n_cycles > 0


@pytest.mark.parametrize("algo", ALGORITHMS)
class TestChaosMatrix:
    def test_flat_objective(self, algo, tmp_path):
        """Zero target variance: EI is identically zero, the GP's
        standardization hits its floor — the run must still finish."""
        path = tmp_path / "flat.jsonl"
        result = _run(_flat_problem(), algo, path)
        _assert_completed_with_degradations(path, result)
        assert result.best_value == 0.0

    def test_all_duplicate_initial_design(self, algo, tmp_path):
        """Every initial point identical: the kernel matrix is rank
        one and the incumbent is ambiguous."""
        path = tmp_path / "dup.jsonl"
        design = np.tile([0.4, 0.6], (6, 1))
        result = _run(
            _quadratic_problem(), algo, path, initial_design=design
        )
        _assert_completed_with_degradations(path, result)

    def test_permanent_worker_death(self, algo, tmp_path):
        """Workers die for good mid-run: the batch must shrink
        elastically and the run must complete on the survivors."""
        path = tmp_path / "death.jsonl"
        result = _run(
            _quadratic_problem(), algo, path,
            faults=FaultSpec(death_rate=0.5, seed=1),
        )
        _assert_completed_with_degradations(path, result)
        events = _events(path)
        assert any(ev["event"] == "worker_death" for ev in events)
        shrinks = [
            ev for ev in events
            if ev["event"] == "degradation"
            and ev.get("kind") == "worker_death"
        ]
        assert shrinks and shrinks[0]["q_to"] < shrinks[0]["q_from"]
