"""Tests for the report CLI module (static-artefact paths)."""

from pathlib import Path

import pytest

from repro.experiments.report import build_report, main


class TestBuildReport:
    def test_static_only(self, tmp_path):
        artefacts = build_report(
            "quick", root=tmp_path, include_benchmarks=False,
            include_uphes=False, verbose=False,
        )
        assert set(artefacts) == {"table1", "table2", "table3", "figure1"}
        for name in artefacts:
            assert (tmp_path / "quick" / "report" / f"{name}.txt").exists()

    def test_artefact_contents(self, tmp_path):
        artefacts = build_report(
            "smoke", root=tmp_path, include_benchmarks=False,
            include_uphes=False, verbose=False,
        )
        assert "Rosenbrock" in artefacts["table1"]
        assert "n_batch" in artefacts["table2"]
        assert "upper reservoir" in artefacts["figure1"]


class TestCLI:
    def test_main_skips_campaigns(self, tmp_path, capsys):
        code = main([
            "--preset", "smoke",
            "--root", str(tmp_path),
            "--skip-benchmarks",
            "--skip-uphes",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "===== table1 =====" in out
        assert "Schwefel" in out

    def test_main_rejects_bad_preset(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["--preset", "huge", "--root", str(tmp_path)])
