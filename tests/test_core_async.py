"""Tests for the asynchronous (steady-state) driver."""

import numpy as np
import pytest

from repro.core.async_driver import run_async_optimization
from repro.problems import CountingProblem, get_benchmark
from repro.util import ConfigurationError

FAST = {
    "gp_options": {"n_restarts": 0, "maxiter": 20},
    "acq_options": {"n_restarts": 2, "raw_samples": 32, "maxiter": 15},
}


def _run(budget=60.0, n_workers=3, time_scale=0.0, **kwargs):
    problem = get_benchmark("sphere", dim=3, sim_time=10.0)
    return run_async_optimization(
        problem, n_workers, budget, n_initial=8, seed=0,
        time_scale=time_scale, **FAST, **kwargs,
    )


class TestSteadyState:
    def test_result_basics(self):
        res = _run()
        assert res.n_workers == 3
        assert res.n_initial == 8
        assert res.n_simulations > 0
        assert res.best_value <= res.initial_best
        assert np.all(res.best_x >= -5.0) and np.all(res.best_x <= 10.0)

    def test_workers_desynchronize(self):
        """Dispatch times must interleave, not proceed in lockstep —
        the defining feature of the steady-state scheme."""
        res = _run(budget=120.0)
        finishes = sorted(rec.t_finish for rec in res.history)
        gaps = np.diff(finishes)
        # synchronized batches would produce gaps of ~0 then ~10s;
        # the jittered async schedule has intermediate gaps
        assert np.any((gaps > 0.2) & (gaps < 9.0))

    def test_throughput_near_full_utilization(self):
        """With free acquisition, n workers complete ~n·budget/sim_time
        simulations — no synchronization barrier."""
        res = _run(budget=100.0, n_workers=4)
        ideal = 4 * 100.0 / 10.0
        assert res.n_simulations >= 0.75 * ideal

    def test_no_dispatch_after_budget(self):
        res = _run(budget=50.0)
        assert all(rec.t_dispatch <= res.budget + 1e-9 for rec in res.history)

    def test_all_dispatches_evaluated(self):
        problem = CountingProblem(get_benchmark("sphere", dim=3,
                                                sim_time=10.0))
        res = run_async_optimization(
            problem, 2, 40.0, n_initial=6, seed=0, time_scale=0.0, **FAST
        )
        assert problem.n_evals == res.n_initial + res.n_simulations

    def test_improves_over_initial(self):
        res = _run(budget=100.0)
        assert res.best_value < res.initial_best

    def test_trajectory_length_matches_history(self):
        res = _run()
        assert len(res.trajectory) == len(res.history)


class TestConfiguration:
    def test_invalid_workers(self):
        problem = get_benchmark("sphere", dim=3, sim_time=10.0)
        with pytest.raises(ConfigurationError):
            run_async_optimization(problem, 0, 10.0)

    def test_invalid_budget(self):
        problem = get_benchmark("sphere", dim=3, sim_time=10.0)
        with pytest.raises(ConfigurationError):
            run_async_optimization(problem, 2, 0.0)

    def test_invalid_refit(self):
        problem = get_benchmark("sphere", dim=3, sim_time=10.0)
        with pytest.raises(ConfigurationError):
            run_async_optimization(problem, 2, 10.0, refit_every=0)

    def test_refit_deferral_runs(self):
        res = _run(budget=60.0, refit_every=4)
        assert res.n_simulations > 0

    def test_maximization_orientation(self):
        from repro.uphes import UPHESSimulator

        sim = UPHESSimulator(seed=0, sim_time=10.0)
        res = run_async_optimization(
            sim, 2, 40.0, n_initial=8, seed=0, time_scale=0.0, **FAST
        )
        assert res.maximize
        assert res.best_value >= res.initial_best
