"""Golden-trace reduction: scenario specs are RNG-neutral wrappers.

The acceptance criterion of the scenarios subsystem: optimizing a
single-plant / zero-event / one-regime spec produces a bit-identical
trace to the pre-scenario ``UPHESSimulator`` path. The journals are
compared canonically (measured wall seconds dropped); the *only*
permitted delta is the ``problem_spec`` key the scenario run journals
in its ``run_started`` config — everything downstream (initial design,
every cycle's batch, state snapshots, RNG streams, incumbent) must
hash identically.
"""

import numpy as np
import pytest

from repro.core import AnalyticTimeModel, make_optimizer, run_optimization
from repro.resilience import RunJournal, read_events
from repro.scenarios import build_problem, compact, get_scenario
from repro.uphes import UPHESSimulator

from test_golden_traces import (
    FAST,
    canonical_journal,
    history_hash,
    journal_hash,
)

SEED = 1234
N_CYCLES = 3
#: Compact draws keep the suite fast; both runs use the same count.
N_SCENARIOS = 4


def _run(problem, journal_path):
    optimizer = make_optimizer("turbo", problem, 2, seed=SEED, **FAST)
    result = run_optimization(
        problem,
        optimizer,
        budget=1e9,
        n_initial=6,
        seed=SEED,
        max_cycles=N_CYCLES,
        time_model=AnalyticTimeModel(),
        journal=RunJournal(journal_path, fsync=False),
    )
    return result, read_events(journal_path)


def _plain_problem():
    spec = compact(get_scenario("paper"), N_SCENARIOS)
    return UPHESSimulator(
        config=spec.plants[0].resolve(), seed=spec.seed,
        sim_time=spec.sim_time,
    )


def _spec_problem():
    return build_problem(compact(get_scenario("paper"), N_SCENARIOS))


class TestGoldenReduction:
    def test_degenerate_spec_trace_is_bit_identical(self, tmp_path):
        res_plain, ev_plain = _run(_plain_problem(), tmp_path / "plain.jsonl")
        res_spec, ev_spec = _run(_spec_problem(), tmp_path / "spec.jsonl")

        assert history_hash(res_spec) == history_hash(res_plain)
        assert res_spec.best_value == res_plain.best_value
        assert np.array_equal(res_spec.best_x, res_plain.best_x)

        # Canonical journals agree modulo the journaled spec itself.
        can_plain = canonical_journal(ev_plain)
        can_spec = canonical_journal(ev_spec)
        assert len(can_plain) == len(can_spec)
        spec_cfg = dict(can_spec[0])
        assert spec_cfg.pop("config")["problem_spec"] == (
            compact(get_scenario("paper"), N_SCENARIOS).to_dict()
        )
        plain_cfg = dict(can_plain[0])
        cfg_a = dict(can_plain[0]["config"])
        cfg_b = dict(can_spec[0]["config"])
        cfg_b.pop("problem_spec")
        assert cfg_a == cfg_b
        assert plain_cfg.keys() == dict(can_spec[0]).keys()
        # Every post-config event is byte-identical.
        assert journal_hash(ev_plain[1:]) == journal_hash(ev_spec[1:])

    def test_spec_rerun_determinism(self, tmp_path):
        res_a, ev_a = _run(_spec_problem(), tmp_path / "a.jsonl")
        res_b, ev_b = _run(_spec_problem(), tmp_path / "b.jsonl")
        assert journal_hash(ev_a) == journal_hash(ev_b)
        assert history_hash(res_a) == history_hash(res_b)

    def test_uncompacted_paper_spec_reduces_too(self):
        # Full-size check without a driver run: the builder returns the
        # plain simulator and its batch evaluations are bit-equal.
        reduced = build_problem(get_scenario("paper"))
        legacy = UPHESSimulator(seed=0, sim_time=10.0)
        assert isinstance(reduced, UPHESSimulator)
        rng = np.random.default_rng(5)
        X = rng.uniform(
            legacy.bounds[:, 0], legacy.bounds[:, 1], size=(8, legacy.dim)
        )
        assert np.array_equal(reduced.evaluate(X), legacy.evaluate(X))

    def test_event_free_fleet_wrapper_is_rng_neutral(self):
        # The wrapper itself (forced, not reduced) must not perturb any
        # RNG stream: same draws, same values as the inner plant.
        from repro.scenarios import FleetSimulator

        spec = compact(get_scenario("paper"), N_SCENARIOS)
        fleet = FleetSimulator(spec)
        inner = fleet._sims[0][0]
        rng = np.random.default_rng(6)
        X = rng.uniform(
            fleet.bounds[:, 0], fleet.bounds[:, 1], size=(8, fleet.dim)
        )
        assert np.array_equal(fleet.evaluate(X), inner.evaluate(X))


class TestSpecJournalDelta:
    def test_problem_spec_is_the_only_config_delta(self, tmp_path):
        _, ev_plain = _run(_plain_problem(), tmp_path / "p.jsonl")
        _, ev_spec = _run(_spec_problem(), tmp_path / "s.jsonl")
        cfg_plain = ev_plain[0]["config"]
        cfg_spec = dict(ev_spec[0]["config"])
        assert set(cfg_spec) - set(cfg_plain) == {"problem_spec"}
        cfg_spec.pop("problem_spec")
        assert cfg_spec == cfg_plain
