"""Tests for the vectorized multi-start acquisition polish.

Two contracts: the batched ``value_and_grad_batch`` implementations
must agree with the per-point loop they replace, and the batched
multi-start L-BFGS-B in :func:`optimize_acqf` must consume no RNG and
never return a worse point than the raw candidates it started from.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.acquisition import (
    ExpectedImprovement,
    ProbabilityOfImprovement,
    ScaledExpectedImprovement,
    UpperConfidenceBound,
    optimize_acqf,
    qExpectedImprovement,
)
from repro.gp import GaussianProcess
from repro.obs import MetricsRegistry, set_metrics


@pytest.fixture
def metrics():
    reg = MetricsRegistry()
    previous = set_metrics(reg)
    yield reg
    set_metrics(previous)


def _fitted_gp(seed, n=16, d=2):
    rng = np.random.default_rng(seed)
    bounds = np.tile([0.0, 1.0], (d, 1))
    X = rng.random((n, d))
    y = np.sin(4.0 * X[:, 0]) + np.sum((X - 0.4) ** 2, axis=1)
    gp = GaussianProcess(dim=d, input_bounds=bounds)
    gp.fit(X, y, n_restarts=0, maxiter=25, seed=0)
    return gp, bounds, float(y.min())


def _loop_value_and_grad(acq, X):
    vals = np.empty(X.shape[0])
    grads = np.empty_like(X)
    for i in range(X.shape[0]):
        vals[i], grads[i] = acq.value_and_grad(X[i])
    return vals, grads


class TestBatchGradEquivalence:
    """value_and_grad_batch must reproduce the per-point loop."""

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 300), m=st.integers(1, 8))
    def test_ei(self, seed, m):
        gp, _, best_f = _fitted_gp(seed)
        acq = ExpectedImprovement(gp, best_f=best_f)
        X = np.random.default_rng(seed + 1).random((m, 2))
        vals, grads = acq.value_and_grad_batch(X)
        vals_ref, grads_ref = _loop_value_and_grad(acq, X)
        np.testing.assert_allclose(vals, vals_ref, rtol=1e-8, atol=1e-10)
        np.testing.assert_allclose(grads, grads_ref, rtol=1e-7, atol=1e-9)

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 300), m=st.integers(1, 8))
    def test_pi(self, seed, m):
        gp, _, best_f = _fitted_gp(seed)
        acq = ProbabilityOfImprovement(gp, best_f=best_f)
        X = np.random.default_rng(seed + 2).random((m, 2))
        vals, grads = acq.value_and_grad_batch(X)
        vals_ref, grads_ref = _loop_value_and_grad(acq, X)
        np.testing.assert_allclose(vals, vals_ref, rtol=1e-8, atol=1e-10)
        np.testing.assert_allclose(grads, grads_ref, rtol=1e-7, atol=1e-9)

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 300), m=st.integers(1, 8))
    def test_ucb(self, seed, m):
        gp, _, _ = _fitted_gp(seed)
        acq = UpperConfidenceBound(gp, beta=2.0)
        X = np.random.default_rng(seed + 3).random((m, 2))
        vals, grads = acq.value_and_grad_batch(X)
        vals_ref, grads_ref = _loop_value_and_grad(acq, X)
        np.testing.assert_allclose(vals, vals_ref, rtol=1e-8, atol=1e-10)
        np.testing.assert_allclose(grads, grads_ref, rtol=1e-7, atol=1e-9)

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 200), r=st.integers(1, 4), q=st.integers(2, 3))
    def test_qei(self, seed, r, q):
        gp, _, best_f = _fitted_gp(seed)
        acq = qExpectedImprovement(gp, best_f=best_f, q=q, n_mc=64, seed=0)
        Xb = np.random.default_rng(seed + 4).random((r, q, 2))
        vals, grads = acq.value_and_grad_batch(Xb)
        for i in range(r):
            v_ref, g_ref = acq.value_and_grad(Xb[i])
            assert vals[i] == pytest.approx(v_ref, rel=1e-9, abs=1e-12)
            np.testing.assert_allclose(grads[i], g_ref, rtol=1e-8, atol=1e-10)

    def test_on_data_degenerate_rows(self):
        """Rows sitting on training points (σ≈0) match the scalar path."""
        gp, _, best_f = _fitted_gp(0)
        acq = ExpectedImprovement(gp, best_f=best_f)
        # raw (denormalized) training rows give the σ≈0 degenerate case
        X_train = np.random.default_rng(0).random((16, 2))[:2]
        X = np.vstack([X_train, np.full((1, 2), 0.5)])
        vals, grads = acq.value_and_grad_batch(X)
        vals_ref, grads_ref = _loop_value_and_grad(acq, X)
        np.testing.assert_allclose(vals, vals_ref, rtol=1e-8, atol=1e-10)
        np.testing.assert_allclose(grads, grads_ref, rtol=1e-7, atol=1e-9)


class TestBatchedPolish:
    def test_rng_stream_neutral(self):
        """batch_starts on/off must consume the identical RNG stream."""
        gp, bounds, best_f = _fitted_gp(7)
        tails = []
        for batch in (True, False):
            rng = np.random.default_rng(42)
            acq = ExpectedImprovement(gp, best_f=best_f)
            optimize_acqf(
                acq, bounds, n_restarts=4, raw_samples=64, maxiter=20,
                seed=rng, batch_starts=batch,
            )
            tails.append(rng.random(8))
        np.testing.assert_array_equal(tails[0], tails[1])

    def test_rng_stream_neutral_joint(self):
        gp, bounds, best_f = _fitted_gp(8)
        tails = []
        for batch in (True, False):
            rng = np.random.default_rng(43)
            acq = qExpectedImprovement(gp, best_f=best_f, q=2, n_mc=32,
                                       seed=0)
            optimize_acqf(
                acq, bounds, q=2, n_restarts=3, raw_samples=32, maxiter=15,
                seed=rng, batch_starts=batch,
            )
            tails.append(rng.random(8))
        np.testing.assert_array_equal(tails[0], tails[1])

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 200))
    def test_batched_never_worse_than_raw(self, seed):
        """The quality guard: polished ≥ best raw candidate."""
        gp, bounds, best_f = _fitted_gp(seed)
        acq = ExpectedImprovement(gp, best_f=best_f)
        rng = np.random.default_rng(seed)
        x, val = optimize_acqf(
            acq, bounds, n_restarts=4, raw_samples=64, maxiter=20,
            seed=rng, batch_starts=True,
        )
        # the returned value must match its own reported acquisition
        # and stay inside the box
        assert val == pytest.approx(float(acq(x[None, :])[0]), abs=1e-9)
        assert np.all(x >= bounds[:, 0]) and np.all(x <= bounds[:, 1])

    @settings(max_examples=8, deadline=None)
    @given(seed=st.integers(0, 100))
    def test_both_paths_polish_above_raw(self, seed):
        """Either polish only ever improves on the raw-candidate best.

        The two paths may settle in different basins (joint vs
        per-start L-BFGS-B line searches), so value equality is not a
        contract — the guarantee is that polishing never returns less
        than the best unpolished candidate, on both paths."""
        gp, bounds, best_f = _fitted_gp(seed)
        acq = ExpectedImprovement(gp, best_f=best_f)
        # maxiter=0 turns the polish into a no-op: the result is the
        # best raw candidate for the identical RNG stream
        _, raw_best = optimize_acqf(
            acq, bounds, n_restarts=4, raw_samples=64, maxiter=0,
            seed=np.random.default_rng(seed), batch_starts=False,
        )
        for batch in (True, False):
            _, val = optimize_acqf(
                acq, bounds, n_restarts=4, raw_samples=64, maxiter=30,
                seed=np.random.default_rng(seed), batch_starts=batch,
            )
            assert val >= raw_best - 1e-12

    def test_counters_batched_path(self, metrics):
        gp, bounds, best_f = _fitted_gp(9)
        acq = ExpectedImprovement(gp, best_f=best_f)
        optimize_acqf(acq, bounds, n_restarts=4, raw_samples=32,
                      maxiter=10, seed=0, batch_starts=True)
        assert metrics.counter("acq.batched_polish").value >= 1.0
        assert metrics.counter("acq.loop_polish").value == 0.0

    def test_counters_loop_path_when_disabled(self, metrics):
        gp, bounds, best_f = _fitted_gp(10)
        acq = ExpectedImprovement(gp, best_f=best_f)
        optimize_acqf(acq, bounds, n_restarts=4, raw_samples=32,
                      maxiter=10, seed=0, batch_starts=False)
        assert metrics.counter("acq.batched_polish").value == 0.0
        assert metrics.counter("acq.loop_polish").value >= 1.0

    def test_no_batch_grad_criterion_uses_loop(self, metrics):
        """ScaledEI has no batched gradient → silent loop fallback."""
        gp, bounds, best_f = _fitted_gp(11)
        acq = ScaledExpectedImprovement(gp, best_f=best_f)
        optimize_acqf(acq, bounds, n_restarts=3, raw_samples=32,
                      maxiter=5, seed=0, batch_starts=True)
        assert metrics.counter("acq.batched_polish").value == 0.0
        assert metrics.counter("acq.loop_polish").value >= 1.0

    def test_single_start_uses_loop(self, metrics):
        """One restart gains nothing from stacking — loop path."""
        gp, bounds, best_f = _fitted_gp(12)
        acq = ExpectedImprovement(gp, best_f=best_f)
        optimize_acqf(acq, bounds, n_restarts=1, raw_samples=16,
                      maxiter=5, seed=0, batch_starts=True)
        assert metrics.counter("acq.batched_polish").value == 0.0

    def test_failing_acquisition_falls_back(self, metrics):
        """Non-finite batched evaluations must not crash the polish."""
        gp, bounds, best_f = _fitted_gp(13)

        class Broken(ExpectedImprovement):
            def value_and_grad_batch(self, X):
                raise FloatingPointError("boom")

        acq = Broken(gp, best_f=best_f)
        x, val = optimize_acqf(acq, bounds, n_restarts=3, raw_samples=16,
                               maxiter=5, seed=0, batch_starts=True)
        assert np.all(np.isfinite(x))
        assert np.isfinite(val)
