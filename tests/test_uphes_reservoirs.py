"""Tests for reservoir geometry."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.uphes import Reservoir, ReservoirConfig, UPHESConfig, net_head


@pytest.fixture
def pit():
    return Reservoir(ReservoirConfig(v_max=1e5, z_floor=-100.0, depth=30.0, shape=0.7))


@pytest.fixture
def basin():
    return Reservoir(ReservoirConfig(v_max=1e5, z_floor=5.0, depth=10.0, shape=0.95))


class TestLevelVolume:
    def test_empty_at_floor(self, pit):
        assert pit.level(0.0) == pytest.approx(-100.0)

    def test_full_at_floor_plus_depth(self, pit):
        assert pit.level(1e5) == pytest.approx(-70.0)

    def test_monotone_increasing(self, pit):
        v = np.linspace(0, 1e5, 50)
        lv = pit.level(v)
        assert np.all(np.diff(lv) > 0)

    def test_pit_shape_steep_when_empty(self, pit):
        """shape < 1: the level rises faster per m³ near the bottom."""
        dv = 1e3
        rise_low = pit.level(dv) - pit.level(0.0)
        rise_high = pit.level(1e5) - pit.level(1e5 - dv)
        assert rise_low > rise_high

    @settings(max_examples=30, deadline=None)
    @given(frac=st.floats(0.0, 1.0))
    def test_roundtrip(self, frac):
        # built inline: hypothesis reuses the test across examples,
        # so a function-scoped fixture would trip its health check
        res = Reservoir(
            ReservoirConfig(v_max=1e5, z_floor=-100.0, depth=30.0, shape=0.7)
        )
        v = frac * res.v_max
        assert res.volume_from_level(res.level(v)) == pytest.approx(
            v, rel=1e-9, abs=1e-6
        )

    def test_clamp(self, pit):
        np.testing.assert_array_equal(
            pit.clamp(np.array([-5.0, 2e5])), [0.0, 1e5]
        )

    def test_headroom(self, pit):
        assert pit.headroom(3e4) == pytest.approx(7e4)

    def test_overfull_level_saturates(self, pit):
        assert pit.level(5e5) == pytest.approx(pit.level(1e5))


class TestNetHead:
    def test_positive_for_separated_reservoirs(self, pit, basin):
        h = net_head(basin, 5e4, pit, 5e4)
        assert h > 0

    def test_head_drops_as_upper_empties(self, pit, basin):
        h_full = net_head(basin, 1e5, pit, 0.0)
        h_empty = net_head(basin, 0.0, pit, 1e5)
        assert h_full > h_empty

    def test_default_plant_head_range(self):
        """The default plant's head stays in the modelled 60–130 m."""
        cfg = UPHESConfig()
        up = Reservoir(cfg.upper)
        low = Reservoir(cfg.lower)
        for fu in (0.0, 0.5, 1.0):
            for fl in (0.0, 0.5, 1.0):
                h = net_head(up, fu * up.v_max, low, fl * low.v_max)
                assert 60.0 < h < 135.0
