"""Tests for the JSONL run journal and its driver integration."""

import json

import numpy as np
import pytest

from repro.core.driver import AnalyticTimeModel, run_optimization
from repro.core.registry import make_optimizer
from repro.problems import get_benchmark
from repro.resilience import RunJournal, read_events
from repro.util import ConfigurationError


def _problem():
    return get_benchmark("sphere", dim=2, sim_time=10.0)


def _run(journal=None):
    problem = _problem()
    optimizer = make_optimizer("random", problem, 2, seed=7)
    return run_optimization(
        problem,
        optimizer,
        80.0,
        n_initial=6,
        seed=7,
        time_model=AnalyticTimeModel(),
        journal=journal,
    )


class TestRunJournal:
    def test_record_and_read_back(self, tmp_path):
        journal = RunJournal(tmp_path / "j.jsonl", fsync=False)
        journal.record("run_started", config={"n": 1})
        journal.record("cycle", cycle=1, clock=12.5)
        events = journal.events()
        assert [e["event"] for e in events] == ["run_started", "cycle"]
        assert events[1]["clock"] == 12.5
        assert all(e["schema"] == 1 for e in events)

    def test_overwrite_truncates(self, tmp_path):
        path = tmp_path / "j.jsonl"
        RunJournal(path, fsync=False).record("run_started", config={})
        fresh = RunJournal(path, fsync=False)
        fresh.record("run_started", config={"second": True})
        events = read_events(path)
        assert len(events) == 1
        assert events[0]["config"] == {"second": True}

    def test_append_mode_keeps_history(self, tmp_path):
        path = tmp_path / "j.jsonl"
        RunJournal(path, fsync=False).record("run_started", config={})
        RunJournal(path, overwrite=False, fsync=False).record("resumed", from_cycle=3)
        assert [e["event"] for e in read_events(path)] == ["run_started", "resumed"]

    def test_empty_event_name_rejected(self, tmp_path):
        journal = RunJournal(tmp_path / "j.jsonl", fsync=False)
        with pytest.raises(ConfigurationError):
            journal.record("")


class TestReadEvents:
    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(ConfigurationError):
            read_events(tmp_path / "absent.jsonl")

    def test_torn_final_line_skipped(self, tmp_path):
        path = tmp_path / "j.jsonl"
        path.write_text('{"event": "run_started", "config": {}}\n{"event": "cy')
        events = read_events(path)
        assert [e["event"] for e in events] == ["run_started"]

    def test_corrupt_middle_line_raises(self, tmp_path):
        path = tmp_path / "j.jsonl"
        path.write_text(
            '{"event": "run_started"}\nnot json at all\n{"event": "cycle"}\n'
        )
        with pytest.raises(ConfigurationError):
            read_events(path)

    def test_non_journal_json_raises(self, tmp_path):
        path = tmp_path / "j.jsonl"
        path.write_text('{"no_event_field": 1}\n{"x": 2}\n')
        with pytest.raises(ConfigurationError):
            read_events(path)


class TestDriverJournaling:
    def test_event_sequence_of_a_full_run(self, tmp_path):
        path = tmp_path / "run.jsonl"
        result = _run(journal=RunJournal(path, fsync=False))
        kinds = [e["event"] for e in read_events(path)]
        assert kinds[0] == "run_started"
        assert kinds[1] == "initial_design"
        assert kinds[-1] == "run_completed"
        assert kinds[2:-1] == ["cycle"] * result.n_cycles

    def test_journal_replays_incumbent_trajectory(self, tmp_path):
        path = tmp_path / "run.jsonl"
        result = _run(journal=RunJournal(path, fsync=False))
        cycles = [e for e in read_events(path) if e["event"] == "cycle"]
        assert [c["best_value"] for c in cycles] == [
            rec.best_value for rec in result.history
        ]
        final = read_events(path)[-1]
        assert final["best_value"] == result.best_value

    def test_journaling_is_behavior_neutral(self, tmp_path):
        plain = _run()
        journaled = _run(journal=RunJournal(tmp_path / "run.jsonl", fsync=False))
        assert journaled.best_value == plain.best_value
        assert journaled.n_cycles == plain.n_cycles
        assert np.array_equal(journaled.best_x, plain.best_x)

    def test_journal_lines_are_plain_json(self, tmp_path):
        path = tmp_path / "run.jsonl"
        _run(journal=RunJournal(path, fsync=False))
        for line in path.read_text().splitlines():
            assert isinstance(json.loads(line), dict)
