"""Tests for the market scenario generator."""

import numpy as np
import pytest

from repro.uphes import MarketConfig, MarketScenarios, daily_price_shape


@pytest.fixture
def scenarios():
    return MarketScenarios(MarketConfig(), n_steps=96, dt_hours=0.25,
                           n_scenarios=16, seed=3)


class TestDailyShape:
    def test_evening_peak_is_daily_max(self):
        hours = np.linspace(0, 24, 97)
        shape = daily_price_shape(hours, MarketConfig())
        assert 17.0 < hours[np.argmax(shape)] < 21.0

    def test_night_valley_is_daily_min(self):
        hours = np.linspace(0, 24, 97)
        shape = daily_price_shape(hours, MarketConfig())
        assert 1.0 < hours[np.argmin(shape)] < 6.5

    def test_morning_peak_exists(self):
        cfg = MarketConfig()
        hours = np.linspace(0, 24, 97)
        shape = daily_price_shape(hours, cfg)
        morning = shape[(hours > 6) & (hours < 10)].max()
        midday = shape[(hours > 11) & (hours < 15)].max()
        assert morning > midday


class TestScenarios:
    def test_shapes(self, scenarios):
        assert scenarios.energy_price.shape == (16, 96)
        assert scenarios.reserve_price.shape == (16, 4)

    def test_price_floor_respected(self, scenarios):
        assert np.all(scenarios.energy_price >= MarketConfig().min_price)
        assert np.all(scenarios.reserve_price >= 0.0)

    def test_seed_reproducible(self):
        a = MarketScenarios(MarketConfig(), 96, 0.25, 4, seed=11)
        b = MarketScenarios(MarketConfig(), 96, 0.25, 4, seed=11)
        np.testing.assert_array_equal(a.energy_price, b.energy_price)
        np.testing.assert_array_equal(a.reserve_price, b.reserve_price)

    def test_scenarios_differ(self, scenarios):
        assert not np.allclose(scenarios.energy_price[0], scenarios.energy_price[1])

    def test_mean_tracks_base_shape(self, scenarios):
        """Scenario mean should follow the deterministic curve."""
        hours = (np.arange(96) + 0.5) * 0.25
        base = daily_price_shape(hours, MarketConfig())
        mean = scenarios.energy_price.mean(axis=0)
        corr = np.corrcoef(base, mean)[0, 1]
        assert corr > 0.9

    def test_ar1_noise_autocorrelated(self, scenarios):
        hours = (np.arange(96) + 0.5) * 0.25
        base = daily_price_shape(hours, MarketConfig())
        noise = scenarios.energy_price - base[None, :]
        lagged = np.mean(
            [np.corrcoef(n[:-1], n[1:])[0, 1] for n in noise]
        )
        assert lagged > 0.6

    def test_mean_price_scalar(self, scenarios):
        assert 20.0 < scenarios.mean_price < 90.0
