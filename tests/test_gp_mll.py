"""Tests for the marginal likelihood and its gradient."""

import numpy as np
import pytest
from scipy import stats as sps

from repro.gp import make_kernel
from repro.gp.linalg import jittered_cholesky
from repro.gp.mll import mll_value, mll_value_and_grad, profiled_mean


@pytest.fixture
def data(rng):
    X = rng.random((20, 3))
    y = np.sin(4 * X[:, 0]) - X[:, 2] + 0.05 * rng.standard_normal(20)
    z = (y - y.mean()) / y.std()
    return X, z


class TestValue:
    def test_matches_gaussian_logpdf_zero_mean(self, data):
        """With a zero mean the MLL is exactly a multivariate normal
        log-density — cross-check against scipy."""
        X, z = data
        k = make_kernel("matern52", dim=3)
        log_noise = np.log(0.1)
        K = k(X) + 0.1 * np.eye(len(z))
        expected = sps.multivariate_normal(np.zeros(len(z)), K).logpdf(z)
        got = mll_value(k, log_noise, X, z, mean_mode="zero")
        assert got == pytest.approx(expected, rel=1e-9)

    def test_constant_mean_never_worse_than_zero(self, data):
        """Profiling the mean maximizes over one more parameter."""
        X, z = data
        k = make_kernel("matern52", dim=3)
        z_off = z + 2.0
        v_const = mll_value(k, np.log(0.1), X, z_off, "constant")
        v_zero = mll_value(k, np.log(0.1), X, z_off, "zero")
        assert v_const >= v_zero - 1e-9

    def test_profiled_mean_is_gls(self, data):
        X, z = data
        k = make_kernel("matern52", dim=3)
        K = k(X) + 0.1 * np.eye(len(z))
        L, _ = jittered_cholesky(K)
        m = profiled_mean(L, z, "constant")
        Kinv = np.linalg.inv(K)
        ones = np.ones(len(z))
        expected = (ones @ Kinv @ z) / (ones @ Kinv @ ones)
        assert m == pytest.approx(expected, rel=1e-8)

    def test_zero_mode_mean_is_zero(self, data):
        X, z = data
        k = make_kernel("matern52", dim=3)
        K = k(X) + 0.1 * np.eye(len(z))
        L, _ = jittered_cholesky(K)
        assert profiled_mean(L, z, "zero") == 0.0


class TestGradient:
    @pytest.mark.parametrize("mean_mode", ["zero", "constant"])
    def test_against_fd(self, data, mean_mode):
        X, z = data
        k = make_kernel("matern52", dim=3)
        log_noise = np.log(0.05)
        p0 = np.concatenate([k.theta, [log_noise]])
        v0, g = mll_value_and_grad(k, log_noise, X, z, mean_mode)
        h = 1e-6
        for j in range(len(p0)):
            p = p0.copy()
            p[j] += h
            k.theta = p[:-1]
            v1 = mll_value(k, p[-1], X, z, mean_mode)
            k.theta = p0[:-1]
            fd = (v1 - v0) / h
            assert g[j] == pytest.approx(fd, rel=5e-3, abs=1e-5)

    def test_gradient_length(self, data):
        X, z = data
        k = make_kernel("matern52", dim=3)
        _, g = mll_value_and_grad(k, np.log(0.1), X, z)
        assert g.shape == (k.n_params + 1,)
