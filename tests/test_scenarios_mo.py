"""Multi-objective mode: Pareto utilities, MO-BPI, the mo_bpi algorithm."""

import numpy as np
import pytest

from repro.acquisition import (
    MultiObjectivePI,
    hypervolume,
    pareto_front,
    select_batch_pi,
)
from repro.core import (
    AnalyticTimeModel,
    algorithm_names,
    make_optimizer,
    run_optimization,
)
from repro.scenarios import (
    MO_OBJECTIVES,
    MultiObjectiveProblem,
    build_problem,
    compact,
    get_scenario,
)
from repro.util import ConfigurationError

FAST = {
    "acq_options": {"raw_samples": 32, "n_mc": 16},
    "gp_options": {"n_restarts": 0, "maxiter": 15},
}


def _mo_problem() -> MultiObjectiveProblem:
    return build_problem(compact(get_scenario("mo"), 4))


class TestParetoFront:
    def test_simple_2d(self):
        F = np.array([[0.0, 2.0], [1.0, 1.0], [2.0, 0.0], [2.0, 2.0]])
        assert pareto_front(F).tolist() == [True, True, True, False]

    def test_duplicates_keep_first(self):
        F = np.array([[1.0, 1.0], [1.0, 1.0], [0.5, 2.0]])
        assert pareto_front(F).tolist() == [True, False, True]

    def test_single_point(self):
        assert pareto_front(np.array([[3.0, 4.0]])).tolist() == [True]


class TestHypervolume:
    def test_exact_2d(self):
        F = np.array([[1.0, 2.0], [2.0, 1.0]])
        # Slabs: [1,2)x[0,2) relative to ref (3,3): (3-1)(3-2)+(3-2)(3-1)
        # minus overlap accounted by slicing = 2*1 + 1*1 + 1*1 = wrong;
        # computed directly: union of [1,3)x[2,3) is counted once.
        # Area = (3-1)*(3-2) + (3-2)*((3-1)-(3-2)) = 2 + 1 = 3.
        assert hypervolume(F, np.array([3.0, 3.0])) == pytest.approx(3.0)

    def test_exact_3d_single_point(self):
        F = np.array([[0.0, 0.0, 0.0]])
        assert hypervolume(F, np.array([1.0, 2.0, 3.0])) == pytest.approx(6.0)

    def test_dominated_points_do_not_add(self):
        front = np.array([[1.0, 1.0]])
        with_dup = np.array([[1.0, 1.0], [2.0, 2.0]])
        ref = np.array([4.0, 4.0])
        assert hypervolume(front, ref) == hypervolume(with_dup, ref)

    def test_points_outside_ref_ignored(self):
        F = np.array([[1.0, 1.0], [5.0, 0.0]])
        assert hypervolume(F, np.array([4.0, 4.0])) == pytest.approx(9.0)

    def test_monotone_in_front_quality(self):
        ref = np.array([4.0, 4.0])
        better = np.array([[0.5, 0.5]])
        worse = np.array([[1.5, 1.5]])
        assert hypervolume(better, ref) > hypervolume(worse, ref)


class TestMultiObjectiveProblem:
    def test_shapes_and_orientation(self):
        problem = _mo_problem()
        rng = np.random.default_rng(0)
        X = rng.uniform(
            problem.bounds[:, 0], problem.bounds[:, 1], size=(6, problem.dim)
        )
        F = problem.mo_values(X)
        assert F.shape == (6, 3)
        assert problem.n_objectives == 3
        assert problem.objective_names == MO_OBJECTIVES
        # evaluate() is the profit column, maximization-oriented.
        assert np.array_equal(problem.evaluate(X), -F[:, 0])
        # Wear and shortfall are nonnegative costs.
        assert np.all(F[:, 1] >= 0.0) and np.all(F[:, 2] >= 0.0)

    def test_cache_hit_and_recompute_agree(self):
        problem = _mo_problem()
        rng = np.random.default_rng(1)
        X = rng.uniform(
            problem.bounds[:, 0], problem.bounds[:, 1], size=(4, problem.dim)
        )
        first = problem.mo_values(X)
        cached = problem.mo_values(X)
        assert np.array_equal(first, cached)
        # A fresh wrapper (cold cache, same spec) recomputes the same
        # values — the resume-stability property.
        assert np.array_equal(first, _mo_problem().mo_values(X))

    def test_1d_input(self):
        problem = _mo_problem()
        x = problem.bounds.mean(axis=1)
        assert problem.mo_values(x).shape == (1, 3)


class TestMOBPIAcquisition:
    def test_prefers_unexplored_region(self):
        from repro.gp import GaussianProcess

        rng = np.random.default_rng(2)
        bounds = np.tile([0.0, 1.0], (2, 1))
        X = rng.random((20, 2))
        F = np.column_stack([X[:, 0], 1.0 - X[:, 0]])
        gps = []
        for j in range(2):
            gp = GaussianProcess(dim=2, input_bounds=bounds)
            gp.fit(X, F[:, j], n_restarts=0, maxiter=20, seed=0)
            gps.append(gp)
        front = F[pareto_front(F)]
        acq = MultiObjectivePI(gps, front, rng.standard_normal((64, 2)))
        values = acq.value(rng.random((32, 2)))
        assert values.shape == (32,)
        assert np.all((0.0 <= values) & (values <= 1.0))

    def test_batch_selection_is_diverse(self):
        values = np.array([1.0, 0.99, 0.98, 0.1])
        candidates = np.array(
            [[0.0, 0.0], [0.001, 0.0], [0.5, 0.5], [1.0, 1.0]]
        )

        class _Stub:
            def value(self, X):
                keys = [tuple(np.round(row, 6)) for row in X]
                table = {
                    tuple(np.round(c, 6)): v
                    for c, v in zip(candidates, values)
                }
                return np.array([table[k] for k in keys])

        batch = select_batch_pi(
            _Stub(), candidates, 2, span=np.ones(2), diversity=0.1
        )
        assert batch.shape == (2, 2)
        # The near-duplicate of the best point is skipped for the
        # distant mid-value candidate.
        assert [0.5, 0.5] in batch.tolist()


class TestMOBPIAlgorithm:
    def test_registered(self):
        names = algorithm_names()
        assert "mo-bpi" in names or "mo_bpi" in names

    def test_requires_mo_problem(self):
        from repro.problems import get_benchmark

        with pytest.raises(ConfigurationError, match="mo_values"):
            make_optimizer("mo_bpi", get_benchmark("sphere", dim=3), 2)

    def test_short_run_grows_front_and_hv(self):
        problem = _mo_problem()
        optimizer = make_optimizer("mo_bpi", problem, 2, seed=11, **FAST)
        result = run_optimization(
            problem,
            optimizer,
            budget=1e9,
            n_initial=8,
            seed=11,
            max_cycles=2,
            time_model=AnalyticTimeModel(),
        )
        assert result.n_cycles == 2
        assert len(optimizer.hv_history) == 2
        front_x, front_f = optimizer.front()
        assert front_f.shape[1] == 3
        assert front_x.shape[0] == front_f.shape[0] >= 1
        assert np.all(pareto_front(front_f))
        # n_simulations counts cycle evaluations (initial design aside).
        assert result.n_simulations == 2 * 2
        # Normalized hv is rescaled per cycle, so no monotonicity
        # claim — but it is a valid nonnegative volume each cycle.
        assert all(hv >= 0.0 for hv in optimizer.hv_history)
        assert result.history[-1].cycle == 2
