"""Tests for in-flight fantasy strategies (and their engine wiring)."""

import numpy as np
import pytest

from repro.portfolio.fantasy import (
    FANTASY_MODES,
    check_fantasy_mode,
    fantasy_values,
)
from repro.problems import get_benchmark
from repro.service.engine import AskTellEngine
from repro.util import ConfigurationError


class _BrokenGP:
    def predict(self, X, return_std=False):
        raise RuntimeError("sick model")


class TestModeValidation:
    def test_normalizes(self):
        assert check_fantasy_mode(" KB ") == "kb"

    def test_rejects_unknown(self):
        with pytest.raises(ConfigurationError):
            check_fantasy_mode("believer")

    def test_modes_cover_issue_triple(self):
        assert set(FANTASY_MODES) == {"kb", "randomized_kb", "constant_liar"}


class TestFantasyValues:
    def test_constant_liar_is_mean(self, fitted_gp):
        gp, X, y = fitted_gp
        out = fantasy_values(gp, X[:4], y, mode="constant_liar")
        assert np.allclose(out, np.mean(y))

    def test_kb_is_posterior_mean(self, fitted_gp):
        gp, X, y = fitted_gp
        X_pend = np.random.default_rng(0).random((5, 3))
        out = fantasy_values(gp, X_pend, y, mode="kb")
        assert np.allclose(out, gp.predict(X_pend, return_std=False))

    def test_none_gp_falls_back_to_liar(self):
        y = np.array([1.0, 3.0])
        out = fantasy_values(None, np.zeros((2, 3)), y, mode="kb")
        assert np.allclose(out, 2.0)

    def test_broken_gp_falls_back_to_liar(self):
        y = np.array([1.0, 3.0])
        out = fantasy_values(_BrokenGP(), np.zeros((2, 3)), y, mode="kb")
        assert np.allclose(out, 2.0)

    def test_randomized_kb_requires_rng(self, fitted_gp):
        gp, X, y = fitted_gp
        with pytest.raises(ConfigurationError):
            fantasy_values(gp, X[:2], y, mode="randomized_kb")

    def test_randomized_kb_scale_zero_is_kb(self, fitted_gp):
        gp, X, y = fitted_gp
        X_pend = np.random.default_rng(0).random((4, 3))
        rkb = fantasy_values(gp, X_pend, y, mode="randomized_kb",
                             rng=np.random.default_rng(1), rkb_scale=0.0)
        kb = fantasy_values(gp, X_pend, y, mode="kb")
        assert np.allclose(rkb, kb)

    def test_randomized_kb_perturbs_and_is_seeded(self, fitted_gp):
        gp, X, y = fitted_gp
        X_pend = np.random.default_rng(0).random((4, 3))
        a = fantasy_values(gp, X_pend, y, mode="randomized_kb",
                           rng=np.random.default_rng(1), rkb_scale=1.0)
        b = fantasy_values(gp, X_pend, y, mode="randomized_kb",
                           rng=np.random.default_rng(1), rkb_scale=1.0)
        kb = fantasy_values(gp, X_pend, y, mode="kb")
        assert np.array_equal(a, b)  # same rng state, same fantasies
        assert not np.allclose(a, kb)  # genuinely perturbed
        assert np.all(np.isfinite(a))


def _engine(mode, seed=0):
    return AskTellEngine(
        get_benchmark("sphere", dim=3, sim_time=0.0),
        algorithm="kb-q-ego", n_batch=2, seed=seed, n_initial=6,
        fantasy=mode,
    )


class TestEngineWiring:
    @pytest.mark.parametrize("mode", FANTASY_MODES)
    def test_ask_tell_under_each_mode(self, mode):
        eng = _engine(mode)
        t1 = eng.ask(1)[0]
        t2 = eng.ask(1)[0]  # overlapping ask exercises the fantasies
        assert not np.array_equal(t1["x"], t2["x"])
        eng.tell(t1["ticket"], 1.0)
        eng.tell(t2["ticket"], 2.0)
        assert eng.status()["fantasy"] == mode

    def test_state_roundtrip_bit_equal(self):
        eng = _engine("randomized_kb")
        eng.ask(1)
        state = eng.get_state()
        other = _engine("randomized_kb")
        other.set_state(state)
        a = eng.ask(1)[0]
        b = other.ask(1)[0]
        assert np.array_equal(a["x"], b["x"])

    def test_mode_mismatch_rejected(self):
        state = _engine("randomized_kb").get_state()
        with pytest.raises(ConfigurationError):
            _engine("kb").set_state(state)

    def test_legacy_state_without_fantasy_restores(self):
        eng = _engine("kb")
        state = eng.get_state()
        state.pop("fantasy", None)
        state.pop("fantasy_rng", None)
        other = _engine("kb")
        other.set_state(state)  # pre-portfolio checkpoints still load
        assert other.status()["fantasy"] == "kb"
